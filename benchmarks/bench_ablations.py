"""Ablations for the design choices called out in DESIGN.md.

* **MRA backend**: the sorted-array aggregate-count computation versus a
  straightforward radix-trie walk.  Identical results; the bench records
  both costs (the array path is the library default because it touches
  each address once regardless of the 129 lengths).
* **Density backend**: the fixed-length fast path (the paper's own
  shortcut) versus the general densify on the aguri tree, for the same
  n@/p class.  Identical dense-prefix sets when the general result is
  widened; the fast path is what Table 3 uses.
"""

import numpy as np
import pytest

from repro.core.mra import aggregate_counts
from repro.data import store as obstore
from repro.net.addr import ADDRESS_BITS
from repro.sim import EPOCH_2015_03
from repro.trie import build_tree, compute_dense_prefixes, dense_prefixes_fixed


def trie_aggregate_counts(addresses) -> np.ndarray:
    """Reference MRA backend: count covering prefixes via a radix trie.

    A node of the Patricia tree at length L with its subtree covers one
    /p prefix for every p <= L on the node's path... more precisely,
    n_p equals the number of trie edges crossing depth p plus one; this
    implementation walks the tree once accumulating, for every node, the
    span of lengths (parent_length, node_length] at which the node's
    subtree is a distinct aggregate.
    """
    tree = build_tree(set(addresses))
    counts = np.zeros(ADDRESS_BITS + 1, dtype=np.int64)
    if tree.total_count == 0:
        return counts
    # Each node distinct from its parent contributes +1 to n_p for all
    # parent_length < p <= node_length; the root contributes n_0 = 1.
    stack = [(tree.root, -1)]
    deltas = np.zeros(ADDRESS_BITS + 2, dtype=np.int64)
    while stack:
        node, parent_length = stack.pop()
        start = parent_length + 1
        deltas[start] += 1
        deltas[node.length + 1] -= 1
        for child in (node.left, node.right):
            if child is not None:
                stack.append((child, node.length))
    running = np.cumsum(deltas[: ADDRESS_BITS + 1])
    # Below the deepest nodes every address sits alone: n_p = N there.
    counts[:] = running
    counts[counts > tree.total_count] = tree.total_count
    return counts


@pytest.fixture(scope="module")
def day_array(epoch_stores):
    return epoch_stores[EPOCH_2015_03].array(EPOCH_2015_03)


@pytest.mark.benchmark(group="ablation-mra")
def test_ablation_mra_sorted_array(benchmark, day_array, report):
    counts = benchmark(aggregate_counts, day_array)
    report.section("Ablation: MRA via sorted arrays (library default)")
    report.add(f"N={counts[128]}, n_32={counts[32]}, n_64={counts[64]}")
    assert counts[0] == 1


@pytest.mark.benchmark(group="ablation-mra")
def test_ablation_mra_trie_walk(benchmark, day_array, report):
    addresses = obstore.from_array(day_array)
    counts = benchmark.pedantic(
        trie_aggregate_counts, args=(addresses,), rounds=2, iterations=1
    )
    reference = aggregate_counts(day_array)
    report.section("Ablation: MRA via radix-trie walk (reference)")
    report.add(f"matches sorted-array result: {bool((counts == reference).all())}")
    assert (counts == reference).all(), "backends must agree exactly"


@pytest.mark.benchmark(group="ablation-density")
def test_ablation_density_fixed_fast_path(benchmark, day_array, report):
    result = benchmark(dense_prefixes_fixed, day_array_ints(day_array), 2, 112)
    report.section("Ablation: fixed-length dense search (fast path)")
    report.add(f"2@/112-dense prefixes: {len(result)}")
    assert all(length == 112 for _n, length, _c in result)


@pytest.mark.benchmark(group="ablation-density")
def test_ablation_density_general_densify(benchmark, day_array, report):
    addresses = day_array_ints(day_array)
    general = benchmark.pedantic(
        compute_dense_prefixes, args=(addresses, 2, 112, True), rounds=1,
        iterations=1,
    )
    fixed = dense_prefixes_fixed(addresses, 2, 112)
    report.section("Ablation: general densify (aguri tree) vs fast path")
    report.add(f"general (widened): {len(general)}; fixed: {len(fixed)}")
    assert {(network, length) for network, length, _c in general} == {
        (network, length) for network, length, _c in fixed
    }


def day_array_ints(day_array):
    """Materialize the day's addresses as ints (shared by both paths)."""
    return obstore.from_array(day_array)
