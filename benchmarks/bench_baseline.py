"""The Malone baseline versus the paper's temporal approach (§2).

Malone's content-only classifier is "expected to identify approximately
73% of all privacy addresses"; the paper takes the complementary route —
identify the addresses that are *stable*, which are almost certainly not
privacy addresses.  With simulator ground truth both claims are testable:

* the content detector's recall on true privacy addresses is ~73%;
* the temporal classifier's 3d-stable class has near-zero contamination
  by privacy addresses (high precision for "not a privacy address");
* combining them (stable OR content-negative) covers more non-privacy
  addresses than content alone — the complementarity the paper argues.
"""

import pytest

from repro.core.baseline import evaluate, is_privacy_address
from repro.core.temporal import classify_day
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03


def _ground_truth(internet):
    truth = {}
    for day in (EPOCH_2015_03 - 1, EPOCH_2015_03):
        truth.update(
            (address, label.is_privacy)
            for address, label in internet.ground_truth_for_day(day).items()
        )
    return truth


@pytest.mark.benchmark(group="baseline")
def test_malone_baseline_recall(benchmark, internet, report):
    truth = _ground_truth(internet)
    labelled = list(truth.items())
    scores = benchmark.pedantic(evaluate, args=(labelled,), rounds=1, iterations=1)

    report.section("Malone-style content-only privacy detection")
    report.add(f"labelled addresses: {len(labelled)}")
    report.add(f"recall:    {scores['recall']:.1%} (paper cites ~73%)")
    report.add(f"precision: {scores['precision']:.1%}")
    report.add(f"accuracy:  {scores['accuracy']:.1%}")

    assert 0.6 < scores["recall"] < 0.85, "recall must sit near the cited 73%"
    assert scores["precision"] > 0.95, "content matches are rarely wrong"


@pytest.mark.benchmark(group="baseline")
def test_temporal_classifier_complements_baseline(
    benchmark, internet, epoch_stores, report
):
    truth = _ground_truth(internet)
    store = epoch_stores[EPOCH_2015_03]

    def run():
        return classify_day(store, EPOCH_2015_03)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stable = [
        value
        for value in obstore.from_array(result.stable(3))
        if value in truth
    ]
    privacy_among_stable = sum(truth[value] for value in stable)
    contamination = privacy_among_stable / max(1, len(stable))

    report.section("Temporal classification as a privacy-address complement")
    report.add(f"3d-stable addresses with ground truth: {len(stable)}")
    report.add(
        f"privacy addresses among them: {privacy_among_stable} "
        f"({contamination:.2%}) — the paper's premise is ~0"
    )

    # A stable address is almost certainly not a privacy address.
    assert contamination < 0.05

    # Complementarity: among addresses the content test calls
    # non-privacy *wrongly* (false negatives), the temporal classifier's
    # "not stable" label still treats them correctly as candidates.
    active = [v for v in obstore.from_array(result.active) if v in truth]
    false_negatives = [
        value
        for value in active
        if truth[value] and not is_privacy_address(value)
    ]
    stable_set = set(stable)
    caught_by_temporal = sum(
        1 for value in false_negatives if value not in stable_set
    )
    share = caught_by_temporal / max(1, len(false_negatives))
    report.add(
        f"content-test misses (true privacy, called structured): "
        f"{len(false_negatives)}; of these, not-3d-stable (so still "
        f"correctly treated as ephemeral): {share:.1%}"
    )
    assert share > 0.95
