"""Ablation: per-nybble entropy profiles versus MRA count ratios.

Entropy-by-position (the later ``entropy/ip`` style of analysis) and the
paper's MRA ratios are complementary views; this bench computes both for
the flagship networks and verifies where they agree and where MRA sees
more:

* both views mark the privacy IID half as variable and the network half
  as structured;
* entropy sees the pinned u bit (nybble 17 capped at ~3 bits) just as
  the MRA single-bit dip does;
* the mobile carrier's pool field is high-entropy AND fully aggregating
  — MRA's ratio captures the *coverage* (saturation) that entropy alone
  cannot distinguish from sparse randomness.
"""

import math

import pytest

from repro.core.entropy import entropy_profile, render_profile
from repro.core.mra import profile as mra_profile
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03

WEEK = range(EPOCH_2015_03, EPOCH_2015_03 + 7)


def _network_values(internet, epoch_stores, name):
    weekly = obstore.from_array(epoch_stores[EPOCH_2015_03].union_over(WEEK))
    network = next(n for n in internet.networks if n.name == name)
    return [
        v for v in weekly if any(p.contains(v) for p in network.allocation.prefixes)
    ]


@pytest.mark.benchmark(group="entropy")
def test_entropy_vs_mra_on_privacy_network(
    benchmark, internet, epoch_stores, report
):
    values = _network_values(internet, epoch_stores, "jp-isp")
    profile = benchmark.pedantic(
        entropy_profile, args=(values,), rounds=1, iterations=1
    )
    report.section("Entropy profile: JP ISP (privacy IIDs on static /48s)")
    report.add(render_profile(profile))

    # Network half: low entropy except the delegation field (bits 32-48).
    assert profile.segment_mean(0, 32) < 1.0
    assert profile.segment_mean(32, 48) > 2.0
    # Static subnet value (bits 48-64): present but far from uniform...
    # each /48 has one fixed value, values vary across subscribers.
    assert profile.segment_mean(48, 64) > 1.0
    # IID half: near-uniform, with the u-bit nybble capped at ~3 bits.
    assert profile.segment_mean(64, 128) > 3.0
    assert 2.7 < profile.nybble(17) < 3.3

    # Cross-check against MRA: the u-bit dip and the entropy cap mark
    # the same bit.
    mra = mra_profile(values)
    assert mra.ratio(70, 1) < 1.05


@pytest.mark.benchmark(group="entropy")
def test_entropy_cannot_see_pool_saturation(
    benchmark, internet, epoch_stores, report
):
    values = _network_values(internet, epoch_stores, "us-mobile-1")
    profile = benchmark.pedantic(
        entropy_profile, args=(values,), rounds=1, iterations=1
    )
    mra = mra_profile(values)
    network = next(n for n in internet.networks if n.name == "us-mobile-1")
    pool_bits = network.plan.pool_bits

    report.section("Entropy profile: US mobile (dynamic pools, fixed IIDs)")
    report.add(render_profile(profile))
    pool_entropy = profile.segment_mean(64 - ((pool_bits + 3) // 4) * 4, 64)
    coverage = mra.ratio(48, 16)
    report.add(
        f"pool field: mean entropy {pool_entropy:.2f} bits/nybble; "
        f"MRA 16-bit ratio at 48: {coverage:.0f} "
        f"(capacity-normalized coverage is what saturation means)"
    )

    # The pool field is high-entropy...
    assert pool_entropy > 2.7
    # ...but entropy is also ~4 for a *sparse* random field; only the
    # MRA ratio (active aggregates per /48) exposes saturation: it is
    # within 2x of the full pool size.
    assert coverage > (1 << pool_bits) / 2

    # The head-to-head that makes the point: a saturated pool and a
    # sparse random field have the SAME entropy profile in the varying
    # nybbles, while their MRA ratios differ by orders of magnitude.
    import random

    from repro.net import addr as addrmod

    base = addrmod.parse("2600:1234::") >> 64
    saturated = [((base | slot) << 64) | 1 for slot in range(4096)]
    rng = random.Random(7)
    sparse = list(
        {((base | rng.getrandbits(32)) << 64) | 1 for _ in range(4096)}
    )
    entropy_saturated = entropy_profile(saturated).segment_mean(52, 64)
    entropy_sparse = entropy_profile(sparse).segment_mean(52, 64)
    ratio_saturated = mra_profile(saturated).ratio(48, 16)
    ratio_sparse = mra_profile(sparse).ratio(48, 16)
    report.add(
        f"saturated 2^12 pool: entropy {entropy_saturated:.2f}, "
        f"MRA ratio {ratio_saturated:.0f}; sparse 2^32 field: entropy "
        f"{entropy_sparse:.2f}, MRA ratio {ratio_sparse:.0f}"
    )
    assert abs(entropy_saturated - entropy_sparse) < 0.4
    # Both ratios count active /64s per /48 here; saturation shows as
    # the ratio *reaching the field's size*, which the sparse field's
    # ratio (equal in count but spread over 2^32 slots) does not mean —
    # normalize by the field width to see it.
    saturation = ratio_saturated / 4096
    sparse_saturation = ratio_sparse / (1 << 32)
    assert saturation > 0.99
    assert sparse_saturation < 1e-5


@pytest.mark.benchmark(group="entropy")
def test_entropy_flags_dense_structured_fields(
    benchmark, internet, epoch_stores, report
):
    values = _network_values(internet, epoch_stores, "eu-univ-dept")
    profile = benchmark.pedantic(
        entropy_profile, args=(values,), rounds=1, iterations=1
    )
    report.section("Entropy profile: EU dept (one /64, sequential DHCP)")
    report.add(render_profile(profile))
    # Everything fixed except the subnet tag and the host-number tail.
    constant = set(profile.constant_positions(threshold=0.05))
    assert set(range(0, 16)) <= constant  # the /64 itself
    # The host counter keeps its low nybbles busy.
    assert profile.nybble(31) > 2.0
