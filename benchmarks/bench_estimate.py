"""Capstone: plan-aware subscriber estimation vs naive /64 counting (§7.1).

The paper's conclusion — usage estimation must be informed by addressing
practice per network — implemented and scored.  For each flagship
network the bench compares, against ground-truth weekly subscribers:

* the naive estimate (weekly active /64 count), and
* the plan-aware estimate (stable prefixes at the automatically
  discovered plan boundary, with the §7.2 method choosing the unit).

The plan-aware estimator must beat the naive one on the networks where
the naive count is pathological (pools, shared /64s) without hurting the
well-behaved ones.
"""

import pytest

from repro.core.changes import detect_renumbering
from repro.core.estimate import estimate_subscribers, estimation_error
from repro.sim import EPOCH_2015_03
from repro.sim.scenarios import single_network_store

from conftest import BENCH_SEED

DAYS = list(range(EPOCH_2015_03, EPOCH_2015_03 + 14))

NETWORKS = ("jp-isp", "us-mobile-1", "eu-univ-dept", "eu-isp")


def _truth_weekly_subscribers(network, days):
    subscribers = set()
    for day in days:
        subscribers.update(network.population.active_subscribers(day))
    return len(subscribers)


def _estimates(internet):
    results = {}
    for name in NETWORKS:
        network = next(n for n in internet.networks if n.name == name)
        store = single_network_store(network, DAYS, seed=BENCH_SEED)
        estimate = estimate_subscribers(store, DAYS)
        truth = _truth_weekly_subscribers(network, DAYS)
        results[name] = (estimate, truth)
    return results


@pytest.mark.benchmark(group="estimate")
def test_plan_aware_estimation_beats_naive(benchmark, internet, report):
    results = benchmark.pedantic(_estimates, args=(internet,), rounds=1, iterations=1)

    report.section("§7.1 capstone: subscriber estimation, naive vs plan-aware")
    report.add(
        f"{'network':<14} {'truth':>6} {'naive/64s':>10} {'plan-aware':>11} "
        f"{'method':<18} {'naive err':>9} {'aware err':>9}"
    )
    improvements = 0
    comparisons = 0
    for name, (estimate, truth) in results.items():
        naive_error = estimation_error(estimate.naive_64s, truth)
        aware_error = estimation_error(estimate.estimate, truth)
        report.add(
            f"{name:<14} {truth:>6} {estimate.naive_64s:>10} "
            f"{estimate.estimate:>11} {estimate.method:<18} "
            f"{naive_error:>8.1f}x {aware_error:>8.1f}x"
        )
        comparisons += 1
        if aware_error <= naive_error + 1e-9:
            improvements += 1
    report.add(
        f"plan-aware at least as accurate on {improvements}/{comparisons} networks"
    )

    # The pathological cases must improve decisively.
    mobile_estimate, mobile_truth = results["us-mobile-1"]
    assert estimation_error(mobile_estimate.estimate, mobile_truth) < (
        estimation_error(mobile_estimate.naive_64s, mobile_truth)
    )
    department_estimate, department_truth = results["eu-univ-dept"]
    assert estimation_error(department_estimate.estimate, department_truth) < 0.5
    assert estimation_error(
        department_estimate.naive_64s, department_truth
    ) > 5  # the naive count is off by an order of magnitude

    # The well-behaved network must stay accurate.
    jp_estimate, jp_truth = results["jp-isp"]
    assert estimation_error(jp_estimate.estimate, jp_truth) < 0.5

    # Overall: plan-aware wins or ties on most networks.
    assert improvements >= comparisons - 1


@pytest.mark.benchmark(group="estimate")
def test_change_detection_on_simulated_renumbering(benchmark, internet, report):
    """Application: a renumbering event in otherwise steady logs."""
    from repro.data.store import ObservationStore

    network = next(n for n in internet.networks if n.name == "jp-isp")
    store = single_network_store(network, DAYS, seed=BENCH_SEED)

    # Inject the event: from day 8 on, shift every network id into a
    # fresh prefix (the operator migrated).
    from repro.data.store import from_array

    shifted = ObservationStore()
    offset = 0xDEAD << 80
    for observations in store.iter_days():
        values = from_array(observations.addresses)
        if observations.day >= DAYS[8]:
            values = [value + offset for value in values]
        shifted.add_day(observations.day, values)

    def run():
        return detect_renumbering(shifted, DAYS)

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("Application: renumbering detection (event injected at day 8)")
    for event in events:
        report.add(
            f"change at day {event.day}: retention {event.retention:.2f} "
            f"vs baseline {event.baseline:.2f}"
        )
    assert len(events) == 1
    assert events[0].day == DAYS[8]

    # Control: the unmodified logs carry no event.
    assert detect_renumbering(store, DAYS) == []
