"""§6.1.1's EUI-64 churn analysis and §6.2.1's per-IID /64 counts.

Two findings are regenerated:

* Of the EUI-64 addresses classified "not 3d-stable" in the weekly set,
  62% had IIDs appearing in more than one address (the subnet prefix
  varied while the IID stayed fixed — dynamic network identifiers), and
  14% had IIDs that *also* appeared in a 3d-stable address.
* §6.2.1: for the JP ISP, 99.6% of EUI-64 IIDs were observed in just one
  /64 during a week; for the EU ISP (rotating network ids) the figure was
  67.4% — the per-network contrast in addressing practice.
"""

from collections import defaultdict

import pytest

from repro.core.format import eui64_mac
from repro.core.temporal import classify_week
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03

WEEK = list(range(EPOCH_2015_03, EPOCH_2015_03 + 7))


def _weekly_eui64(epoch_stores):
    store = epoch_stores[EPOCH_2015_03]
    weekly = classify_week(store, WEEK, 3)
    stable = set(obstore.from_array(weekly.stable_union))
    union = obstore.from_array(weekly.active_union)
    eui = [(value, eui64_mac(value)) for value in union]
    eui = [(value, mac) for value, mac in eui if mac is not None]
    return eui, stable


@pytest.mark.benchmark(group="eui64churn")
def test_eui64_not_stable_iid_reuse(benchmark, epoch_stores, report):
    eui, stable = benchmark.pedantic(
        _weekly_eui64, args=(epoch_stores,), rounds=1, iterations=1
    )
    addresses_by_mac = defaultdict(set)
    for value, mac in eui:
        addresses_by_mac[mac].add(value)

    not_stable = [(value, mac) for value, mac in eui if value not in stable]
    assert not_stable, "some EUI-64 addresses must be ephemeral"

    multi = sum(
        1 for _value, mac in not_stable if len(addresses_by_mac[mac]) > 1
    )
    stable_macs = {
        mac for value, mac in eui if value in stable
    }
    also_stable = sum(1 for _value, mac in not_stable if mac in stable_macs)

    multi_share = multi / len(not_stable)
    also_share = also_stable / len(not_stable)
    report.section("§6.1.1: EUI-64 addresses classified not-3d-stable")
    report.add(f"not-3d-stable EUI-64 addresses: {len(not_stable)}")
    report.add(
        f"IID appears in >1 address: {multi_share:.1%} (paper: 62%)"
    )
    report.add(
        f"IID also appears in a 3d-stable address: {also_share:.1%} (paper: 14%)"
    )

    # The paper's direction: a substantial share of "ephemeral" EUI-64
    # addresses are really persistent hosts whose network id moved.
    assert multi_share > 0.25
    assert 0.0 <= also_share < multi_share + 0.2


@pytest.mark.benchmark(group="eui64churn")
def test_eui64_64s_per_iid_by_network(benchmark, internet, epoch_stores, report):
    eui, _stable = benchmark.pedantic(
        _weekly_eui64, args=(epoch_stores,), rounds=1, iterations=1
    )

    def single_64_share(network_name):
        network = next(n for n in internet.networks if n.name == network_name)
        prefixes = network.allocation.prefixes
        per_mac = defaultdict(set)
        for value, mac in eui:
            if any(p.contains(value) for p in prefixes):
                per_mac[mac].add(value >> 64)
        if not per_mac:
            return None, 0
        single = sum(1 for sixty_fours in per_mac.values() if len(sixty_fours) == 1)
        return single / len(per_mac), len(per_mac)

    jp_share, jp_count = single_64_share("jp-isp")
    eu_share, eu_count = single_64_share("eu-isp")

    report.section("§6.2.1: EUI-64 IIDs observed in just one /64 over a week")
    report.add(f"JP ISP (static /48s): {jp_share:.1%} of {jp_count} IIDs (paper: 99.6%)")
    report.add(f"EU ISP (rotating ids): {eu_share:.1%} of {eu_count} IIDs (paper: 67.4%)")

    assert jp_count > 0 and eu_count > 0
    # Static delegation keeps an IID in one /64; rotating network ids
    # spread it across several — the paper's contrast.
    assert jp_share > 0.9
    assert eu_share < jp_share
