"""Figure 2: introductory MRA plots — US university vs JP telco.

Panel (a): a university /32 where WWW clients appear under only three
subnet hex values, /64s hold privacy addresses (single-bit ratio ~2 just
past bit 64, the u-bit dip at 70, flatline at 1 deeper in), and /64s are
sparse.  Panel (b): a telco whose statically addressed hosts pack into
small blocks, producing the 112-128 prominence the paper contrasts
against (a).
"""

import pytest

from repro.data import store as obstore
from repro.net import addr as addrmod
from repro.sim.registry import AddressRegistry
from repro.sim.scenarios import EPOCH_2015_03, jp_telco, single_network_store, us_university
from repro.viz.mra_plot import mra_plot

from conftest import BENCH_SCALE, BENCH_SEED

WEEK = range(EPOCH_2015_03, EPOCH_2015_03 + 7)


def _weekly_addresses(network):
    store = single_network_store(network, WEEK, seed=BENCH_SEED)
    return obstore.from_array(store.union_over(WEEK))


@pytest.mark.benchmark(group="fig2")
def test_fig2a_us_university(benchmark, report):
    registry = AddressRegistry(BENCH_SEED)
    network = us_university(
        registry, BENCH_SEED, hosts=max(200, int(2000 * BENCH_SCALE))
    )
    # "Sparse /64 prefixes": the plotted university exposes few active
    # /64s, which is what keeps the privacy plateau long at this volume.
    network.plan.lans_per_subnet = 8
    values = _weekly_addresses(network)
    plot = benchmark.pedantic(
        mra_plot, args=(values, "Fig 2a: US university"), rounds=1, iterations=1
    )
    report.section("Figure 2a: US university MRA plot (paper: 7.22K addrs)")
    report.add(plot.render_ascii())
    report.add("")
    report.add(f"addresses: {len(values)}")
    report.add(f"privacy plateau (bits 65-69): {plot.privacy_plateau():.3f} (paper: ~2)")
    report.add(f"u-bit dip at 70: {plot.u_bit_dip():.3f} (paper: ~1)")
    report.add(f"IID flatline start: bit {plot.iid_flatline_start()} (paper: ~80)")
    report.add(
        f"dense 112-128 prominence: {plot.dense_tail_prominence():.3f} (paper: ~1)"
    )

    # Signature assertions from the paper's annotations.
    assert plot.privacy_plateau() > 1.8, "privacy plateau must approach 2"
    assert plot.u_bit_dip() < 1.1, "the cleared u bit must drop the ratio"
    assert plot.dense_tail_prominence() < 1.3, "no dense low blocks here"
    assert 64 < plot.iid_flatline_start() <= 100

    # Only three subnet values at the nybble past bit 32.
    nybbles = {addrmod.nybble(value, 8) for value in values}
    report.add(f"distinct subnet hex values at nybble 8: {sorted(nybbles)}")
    assert len(nybbles) == 3

    # "Sparse /64 prefixes": many /64s relative to... the network's
    # subnet span, but each /64 well-populated over a week.
    sixty_fours = {value >> 64 for value in values}
    per_64 = len(values) / len(sixty_fours)
    report.add(f"avg addrs per active /64 over the week: {per_64:.1f}")
    assert per_64 > 2


@pytest.mark.benchmark(group="fig2")
def test_fig2b_jp_telco(benchmark, report):
    registry = AddressRegistry(BENCH_SEED)
    network = jp_telco(
        registry, BENCH_SEED, subscribers=max(300, int(3000 * BENCH_SCALE))
    )
    values = _weekly_addresses(network)
    plot = benchmark.pedantic(
        mra_plot, args=(values, "Fig 2b: JP telco"), rounds=1, iterations=1
    )
    report.section("Figure 2b: JP telco MRA plot (paper: 12.8K addrs)")
    report.add(plot.render_ascii())
    report.add("")
    report.add(f"addresses: {len(values)}")
    report.add(
        f"dense 112-128 prominence: {plot.dense_tail_prominence():.3f} "
        "(paper: prominent, >1)"
    )

    # The defining contrast with 2a: a 112-128 bit prominence from the
    # tightly packed static hosts — visible in the aggregate, dominant
    # within the static subnet region (tag 0x10), which is how the paper
    # reads "dense" off the plot.
    assert plot.dense_tail_prominence() > 1.15
    # Select the static subnet region by the plan's own assignment.
    plan = network.plan
    static_64s = {
        plan.network_identifier(sub, 0)
        for sub in range(2000)
        if plan._is_static(sub)
    }
    static_values = [v for v in values if (v >> 64) in static_64s]
    static_plot = mra_plot(static_values, "static subset")
    report.add(
        f"static-subset 112-128 prominence: "
        f"{static_plot.dense_tail_prominence():.3f}"
    )
    assert static_plot.dense_tail_prominence() > 1.6

    # Dense blocks exist: multiple active addresses within single /112s.
    from repro.core.density import DensityClass, find_dense

    dense = find_dense(values, DensityClass(2, 112))
    report.add(f"2@/112-dense prefixes: {dense.num_prefixes}")
    assert dense.num_prefixes >= 1

    # And the sparse (privacy) population coexists: a sizable share of
    # addresses sit alone in their /112.
    alone = len(values) - dense.contained_addresses
    report.add(f"addresses outside dense /112s: {alone}")
    assert alone > 0
