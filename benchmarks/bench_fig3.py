"""Figure 3: aggregate population distributions for one week.

Regenerates the five CCDF series — /32, /48, /112 aggregates of
addresses and /32, /48 aggregates of /64s — for the 2015 week.  Shapes
under test, from the paper's reading of the figure:

* curves are ordered: for a given tail population x, the finer the
  aggregate, the smaller the proportion of prefixes reaching x
  (the /112 curve sits lowest, /32 highest);
* populations are heavy-tailed: a tiny share of /48s holds enormous
  populations while the median /48 is small ("a few prefixes must
  contain most of the addresses");
* only a minuscule share of /112s contains 10+ addresses (paper: 1e-5).
"""

import pytest

from repro.core.population import figure3_series
from repro.sim import EPOCH_2015_03
from repro.viz.ccdf import CcdfPlot


@pytest.mark.benchmark(group="fig3")
def test_fig3_population_ccdfs(benchmark, epoch_stores, report):
    week = epoch_stores[EPOCH_2015_03].union_over(
        range(EPOCH_2015_03, EPOCH_2015_03 + 7)
    )
    series = benchmark.pedantic(figure3_series, args=(week,), rounds=1, iterations=1)
    by_label = {s.label: s for s in series}

    plot = CcdfPlot(title="Figure 3: aggregate population CCDFs (one week)")
    for s in series:
        plot.add_points(s.label, s.points())
    report.section("Figure 3: aggregate population distributions")
    report.add(plot.render_ascii())
    report.add("")
    rows = []
    for s in series:
        rows.append(
            f"{s.label}: {s.num_aggregates} aggregates, "
            f"P(pop>=10) = {s.proportion_at_least(10):.4f}, "
            f"P(pop>=100) = {s.proportion_at_least(100):.5f}"
        )
        report.add(rows[-1])

    addrs32 = by_label["32-agg. of IPv6 addrs"]
    addrs48 = by_label["48-agg. of IPv6 addrs"]
    addrs112 = by_label["112-agg of IPv6 addrs"]
    p64s48 = by_label["48-agg. of /64s"]

    # Ordering of the curves at a common tail point.
    assert (
        addrs32.proportion_at_least(100)
        >= addrs48.proportion_at_least(100)
        >= addrs112.proportion_at_least(100)
    )

    # /112s with 10+ addresses are a tiny minority (paper: ~1e-5 of
    # /112s; scaled sims run a couple of orders denser).
    assert addrs112.proportion_at_least(10) < 0.05

    # /48 populations are heavy-tailed: the top percentile dwarfs the
    # median (paper: ~1e-4 of /48-aggregates hold 1e5+ addresses).
    import numpy as np

    populations = addrs48.populations
    top = float(np.percentile(populations, 99))
    median = float(np.median(populations))
    report.add(f"/48 populations: median {median:.0f}, p99 {top:.0f}")
    assert top > 10 * max(median, 1)

    # Fewer than one in ten /48s holds 10+ addresses... at paper scale;
    # direction preserved: most /48s are small.
    assert addrs48.proportion_at_least(10) < 0.6

    # /64-aggregate curves sit below their address counterparts at the
    # same aggregate length (a /48 holds fewer active /64s than addrs).
    assert p64s48.proportion_at_least(100) <= addrs48.proportion_at_least(100)
