"""Figure 4: the stability time series around the March 2015 epoch.

For reference days matching the paper's March 17 and March 23, plots the
active count per day and the count in common with the reference day, for
full addresses (panel a) and /64 prefixes (panel b).  Shapes under test:

* the common-with-reference series drops sharply at one day's distance
  (privacy-address turnover; paper: 320M -> ~75M) and then decays in a
  stepwise tail for addresses;
* for /64s the common series stays close to the active series across
  the whole window (most /64s persist; paper's Figure 4b);
* the reference day's common count equals its active count.
"""

import pytest

from repro.analysis.tables import render_table, si_count
from repro.core.temporal import window_series
from repro.sim import EPOCH_2015_03
from repro.viz.ascii import AsciiChart

REFERENCE_DAYS = (EPOCH_2015_03, EPOCH_2015_03 + 6)  # Mar 17 and Mar 23


def _series(store):
    return {
        reference: window_series(store, reference)
        for reference in REFERENCE_DAYS
    }


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("granularity", ["addresses", "prefixes64"])
def test_fig4_stability_series(benchmark, epoch_stores, report, granularity):
    store = epoch_stores[EPOCH_2015_03]
    if granularity == "prefixes64":
        store = store.truncated(64)
    results = benchmark.pedantic(_series, args=(store,), rounds=1, iterations=1)

    panel = "4a (addresses)" if granularity == "addresses" else "4b (/64 prefixes)"
    report.section(f"Figure {panel}: activity vs reference days")
    chart = AsciiChart(
        title=f"Figure {panel}", width=66, height=14, log_y=False
    )
    first = results[REFERENCE_DAYS[0]]
    chart.add_series("active per day", list(zip(first.days, first.active_counts)))
    for reference, series in results.items():
        chart.add_series(
            f"common w/ day {reference}", list(zip(series.days, series.common_counts))
        )
    report.add(chart.render())

    rows = []
    for day, active, common in first.rows():
        rows.append([str(day), si_count(active), si_count(common)])
    report.add(
        render_table(
            ["day", "active", f"common w/ {REFERENCE_DAYS[0]}"],
            rows,
        )
    )

    for reference, series in results.items():
        index = series.days.index(reference)
        active_at_ref = series.active_counts[index]
        # Self-intersection is total.
        assert series.common_counts[index] == active_at_ref
        neighbors = [
            series.common_counts[i]
            for i in (index - 1, index + 1)
            if 0 <= i < len(series.days)
        ]
        for neighbor_common in neighbors:
            share = neighbor_common / max(1, active_at_ref)
            if granularity == "addresses":
                # Sharp one-day drop (paper: ~23% in common next day).
                assert 0.02 < share < 0.7
            else:
                # /64s persist (paper: the curves nearly overlap).
                assert share > 0.5
        # Decay: the common count at distance 5+ is below distance 1.
        far = [
            series.common_counts[i]
            for i, day in enumerate(series.days)
            if abs(day - reference) >= 5 and series.active_counts[i] > 0
        ]
        if far and granularity == "addresses":
            assert max(far) <= max(neighbors)
