"""Figure 5c-5h: the six MRA plot panels for one week of client activity.

Each panel is regenerated from the corresponding simulated population and
its defining signature asserted:

* 5c (all native clients): more bit-space use in 32-64 than 0-32; the
  64-128 half aggregates right at bit 64 (sparse random IIDs).
* 5d (6to4): the embedded IPv4 in bits 16-48 aggregates far more than
  any IPv6 segment of 5c.
* 5e (US mobile): the 44-64 segment nearly saturated by dynamic /64
  pools over a week.
* 5f (EU ISP): pseudorandom 15-bit network-id component at bits 41-55;
  bit 40 constant; privacy IIDs below.
* 5g (EU university department): a single /64 whose addresses pack into
  the 112-128 segment; no SLAAC.
* 5h (JP ISP): no aggregation in the 48-64 segment (each /48 one value),
  privacy IIDs below 64.
"""

import pytest

from repro.core.format import TransitionKind, transition_kind
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03
from repro.viz.mra_plot import mra_plot

WEEK = range(EPOCH_2015_03, EPOCH_2015_03 + 7)


@pytest.fixture(scope="module")
def weekly_addresses(epoch_stores):
    store = epoch_stores[EPOCH_2015_03]
    return obstore.from_array(store.union_over(WEEK))


def _network_addresses(internet, weekly_addresses, name):
    network = next(n for n in internet.networks if n.name == name)
    prefixes = network.allocation.prefixes
    return [v for v in weekly_addresses if any(p.contains(v) for p in prefixes)]


@pytest.mark.benchmark(group="fig5mra")
def test_fig5c_all_native(benchmark, weekly_addresses, report):
    native = [
        v for v in weekly_addresses
        if transition_kind(v) is TransitionKind.OTHER
    ]
    plot = benchmark.pedantic(
        mra_plot, args=(native, "Fig 5c: all native clients"), rounds=1, iterations=1
    )
    report.section("Figure 5c: all native IPv6 client addresses")
    report.add(plot.render_ascii())
    profile = plot.profile
    # Bit-space use by halves.  At paper scale the 32-64 range exceeds
    # 0-32 (millions of subscriber subnets per allocation); at simulation
    # scale per-ISP populations are small so the RIR region can win —
    # report both, assert that operator subnetting (32-64) is nontrivial.
    use_0_32 = profile.ratio(0, 16) * profile.ratio(16, 16)
    use_32_64 = profile.ratio(32, 16) * profile.ratio(48, 16)
    report.add(
        f"0-32 use: {use_0_32:.1f}; 32-64 use: {use_32_64:.1f} "
        "(paper: 32-64 greater at full scale)"
    )
    assert use_32_64 > 5.0
    # The 64-128 half is "clearly different": random IIDs aggregate
    # right at bit 64 — ratio ~2 after 64, decaying to 1, with the deep
    # tail segments showing essentially no structure.
    assert profile.ratio(64, 1) > 1.5
    assert profile.ratio(120, 1) < 1.3
    assert profile.ratio(96, 16) < 1.5
    assert profile.ratio(64, 16) > profile.ratio(80, 16)


@pytest.mark.benchmark(group="fig5mra")
def test_fig5d_6to4(benchmark, weekly_addresses, report):
    sixto4 = [
        v for v in weekly_addresses
        if transition_kind(v) is TransitionKind.SIXTO4
    ]
    plot = benchmark.pedantic(
        mra_plot, args=(sixto4, "Fig 5d: 6to4 clients"), rounds=1, iterations=1
    )
    report.section("Figure 5d: 6to4 client addresses (embedded IPv4)")
    report.add(plot.render_ascii())
    profile = plot.profile
    # The IPv4 segment (bits 16-48) carries almost all the aggregation.
    v4_use = profile.ratio(16, 16) * profile.ratio(32, 16)
    rest_use = profile.ratio(0, 16) * profile.ratio(48, 16)
    report.add(f"bits 16-48 use: {v4_use:.1f}; bits 0-16 + 48-64 use: {rest_use:.1f}")
    assert v4_use > 10 * max(rest_use, 1.0)
    # The 2002::/16 prefix itself never splits.
    assert profile.ratio(0, 16) == pytest.approx(1.0)


@pytest.mark.benchmark(group="fig5mra")
def test_fig5e_us_mobile(benchmark, internet, weekly_addresses, report):
    values = _network_addresses(internet, weekly_addresses, "us-mobile-1")
    plot = benchmark.pedantic(
        mra_plot, args=(values, "Fig 5e: US mobile carrier"), rounds=1, iterations=1
    )
    report.section("Figure 5e: US mobile carrier (dynamic /64 pools)")
    report.add(plot.render_ascii())
    network = next(n for n in internet.networks if n.name == "us-mobile-1")
    pool_bits = network.plan.pool_bits
    active_64s = {v >> 64 for v in values}
    capacity = len(network.allocation.prefixes) * (1 << pool_bits)
    utilization = len(active_64s) / capacity
    report.add(
        f"weekly /64 pool utilization: {utilization:.1%} of "
        f"{len(network.allocation.prefixes)} pools x 2^{pool_bits} "
        "(paper: 44-64 bit segment nearly 100% utilized)"
    )
    assert utilization > 0.7, "dynamic pools must be nearly saturated weekly"
    # Aggregation concentrated in the pool segment, not the IID half
    # (fixed ::1-style IIDs dominate).
    assert plot.profile.ratio(48, 16) > plot.profile.ratio(64, 16)


@pytest.mark.benchmark(group="fig5mra")
def test_fig5f_eu_isp(benchmark, internet, weekly_addresses, report):
    values = _network_addresses(internet, weekly_addresses, "eu-isp")
    plot = benchmark.pedantic(
        mra_plot, args=(values, "Fig 5f: EU ISP"), rounds=1, iterations=1
    )
    report.section("Figure 5f: EU ISP (pseudorandom network ids)")
    report.add(plot.render_ascii())
    profile = plot.profile
    # Bit 40 is constant: the single-bit ratio there stays ~1 (the
    # paper's "bit 40 seems to be constant").
    report.add(f"single-bit ratio at 40: {profile.ratio(40, 1):.3f} (paper: ~1)")
    assert profile.ratio(40, 1) < 1.1
    # Bits 41-55 carry the pseudorandom 15-bit number, "populated with
    # many values over a week's time, with heavier usage of the higher
    # order bits of this range" — the leading bits split fully and the
    # ratios decay toward the end of the range.
    ratios_41_55 = [profile.ratio(position, 1) for position in range(41, 56)]
    report.add(
        "single-bit ratios 41-55: "
        + " ".join(f"{value:.2f}" for value in ratios_41_55)
    )
    assert all(value > 1.9 for value in ratios_41_55[:6]), "leading bits split fully"
    assert ratios_41_55[0] >= ratios_41_55[-1], "heavier usage of high-order bits"
    assert sum(ratios_41_55) / len(ratios_41_55) > 1.3
    # Privacy plateau past 64 (softer than Figure 2a's: this network's
    # weekly per-/64 address count is a handful, not hundreds).
    assert profile.ratio(64, 1) > 1.6
    assert profile.ratio(70, 1) < 1.2  # u bit


@pytest.mark.benchmark(group="fig5mra")
def test_fig5g_eu_univ_dept(benchmark, internet, weekly_addresses, report):
    values = _network_addresses(internet, weekly_addresses, "eu-univ-dept")
    plot = benchmark.pedantic(
        mra_plot, args=(values, "Fig 5g: EU university dept"), rounds=1, iterations=1
    )
    report.section("Figure 5g: EU university department (one dense /64)")
    report.add(plot.render_ascii())
    # All client addresses in a single /64.
    assert len({v >> 64 for v in values}) == 1
    # Dense in the tail: the 112-128 segments carry the aggregation,
    # and there are no SLAAC-style random IIDs (64-80 flat besides the
    # subnet tag bits at 72-80).
    assert plot.dense_tail_prominence() > 1.5
    assert plot.profile.ratio(64, 4) == pytest.approx(1.0)
    report.add(
        f"dense 112-128 prominence: {plot.dense_tail_prominence():.2f}; "
        f"addresses: {len(values)} (paper: 94 addrs, 1 /64)"
    )


@pytest.mark.benchmark(group="fig5mra")
def test_fig5h_jp_isp(benchmark, internet, weekly_addresses, report):
    values = _network_addresses(internet, weekly_addresses, "jp-isp")
    plot = benchmark.pedantic(
        mra_plot, args=(values, "Fig 5h: JP ISP"), rounds=1, iterations=1
    )
    report.section("Figure 5h: JP ISP (static /48 delegations)")
    report.add(plot.render_ascii())
    profile = plot.profile
    # "The 48-64 bit segment exhibits seemingly no aggregation": each
    # /48 carries one subnet value, so splitting /48s into /49.../64
    # barely increases the cover.
    ratio_48_64 = profile.ratio(48, 16)
    report.add(f"16-bit ratio at 48: {ratio_48_64:.3f} (paper: ~1)")
    assert ratio_48_64 < 1.6
    # Aggregation happens in 32-48 (the per-subscriber /48s) instead.
    assert profile.ratio(32, 16) > 10 * ratio_48_64
    # Privacy IIDs below bit 64.
    assert profile.ratio(64, 1) > 1.8
