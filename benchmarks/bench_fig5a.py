"""Figure 5a: CCDFs of per-ASN counts for one week.

Four series across all active ASNs: active addresses, active /64s,
active EUI-64 addresses, and 6-month-stable /64s.  Shapes under test:

* all series are heavy-tailed — a handful of ASNs hold most of the
  counts (the paper: one ASN with 500M addresses; top-5 ASNs with 85% of
  /64s and 59% of addresses);
* the address curve extends further right than the /64 curve, which
  extends beyond the EUI-64 curve;
* most 6m-stable /64s concentrate in few ASNs (paper: one ASN accounts
  for over 100M, "most long-lived /64s are in only a few networks").
"""

import pytest

from repro.core.format import is_eui64_address
from repro.core.temporal import cross_epoch_stable
from repro.data import store as obstore
from repro.sim import EPOCH_2014_09, EPOCH_2015_03
from repro.viz.ccdf import CcdfPlot, per_asn_counts


def _per_asn_series(internet, epoch_stores):
    store = epoch_stores[EPOCH_2015_03]
    week = range(EPOCH_2015_03, EPOCH_2015_03 + 7)
    addresses = obstore.from_array(store.union_over(week))
    native = [
        value for value in addresses if internet.registry.origin(value) is not None
    ]

    groups = internet.registry.group_by_asn(native)
    p64_store = store.truncated(64)
    p64s = obstore.from_array(p64_store.union_over(week))
    p64_groups = internet.registry.group_by_asn([v for v in p64s])

    eui = [value for value in native if is_eui64_address(value)]
    eui_groups = internet.registry.group_by_asn(eui)

    earlier_week = range(EPOCH_2014_09, EPOCH_2014_09 + 7)
    earlier64 = epoch_stores[EPOCH_2014_09].truncated(64).union_over(earlier_week)
    stable64 = obstore.from_array(
        cross_epoch_stable(p64_store.union_over(week), earlier64)
    )
    stable_groups = internet.registry.group_by_asn(stable64)
    return groups, p64_groups, eui_groups, stable_groups


@pytest.mark.benchmark(group="fig5a")
def test_fig5a_per_asn_ccdfs(benchmark, internet, epoch_stores, report):
    groups, p64_groups, eui_groups, stable_groups = benchmark.pedantic(
        _per_asn_series, args=(internet, epoch_stores), rounds=1, iterations=1
    )

    plot = CcdfPlot(title="Figure 5a: per-ASN count CCDFs (one week)")
    plot.add("active addresses per ASN", per_asn_counts(groups))
    plot.add("active /64s per ASN", per_asn_counts(p64_groups))
    plot.add("active EUI-64 addresses per ASN", per_asn_counts(eui_groups))
    plot.add("active 6-month-stable /64s per ASN", per_asn_counts(stable_groups))
    report.section("Figure 5a: distribution of per-ASN counts")
    report.add(plot.render_ascii())

    address_counts = sorted(per_asn_counts(groups), reverse=True)
    p64_counts = sorted(per_asn_counts(p64_groups), reverse=True)
    stable_counts = sorted(per_asn_counts(stable_groups), reverse=True)

    total_addresses = sum(address_counts)
    top5_addresses = sum(address_counts[:5]) / total_addresses
    top5_64s = sum(p64_counts[:5]) / sum(p64_counts)
    report.add("")
    report.add(
        f"ASNs active: {len(address_counts)}; top-5 share of addresses: "
        f"{top5_addresses:.1%} (paper: 59%), of /64s: {top5_64s:.1%} (paper: 85%)"
    )

    # Heavy-tailed: the top 5 of ~70 ASNs dominate.
    assert top5_addresses > 0.4
    assert top5_64s > 0.4
    # The largest ASN is at least 10x the median ASN.
    import statistics

    assert address_counts[0] > 10 * statistics.median(address_counts)

    # Curve extents: addresses > /64s >= EUI-64.
    assert max(address_counts) >= max(p64_counts)
    assert max(p64_counts) >= max(per_asn_counts(eui_groups))

    # Long-lived /64s concentrate: the top ASN holds a large share.
    if stable_counts:
        top_share = stable_counts[0] / sum(stable_counts)
        report.add(
            f"top ASN's share of 6m-stable /64s: {top_share:.1%} "
            "(paper: >65%, one ASN with 100M+ of 153M)"
        )
        assert top_share > 0.2
