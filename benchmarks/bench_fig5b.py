"""Figure 5b: distributions of 16-bit segment MRA ratios across BGP prefixes.

For every active BGP prefix with enough addresses, the eight 16-bit
segment ratios are computed and summarized as the paper's box plots
(median, middle 50%, middle 90%, maximum).  Shapes under test:

* most aggregation happens in the three segments spanning bits 32-80
  (their medians exceed the outer segments');
* a meaningful minority (the 75th-95th percentile band) shows
  aggregation in the 112-128 segment — the dense-block networks;
* the 0-16 segment aggregates trivially (every address in a BGP prefix
  shares the leading bits; median ~1).
"""

import pytest

from repro.core.mra import profile, segment_ratio_matrix
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03
from repro.viz.boxplot import render_ascii, segment_box_stats

MIN_PREFIX_POPULATION = 10


def _per_prefix_matrix(internet, epoch_stores):
    week = range(EPOCH_2015_03, EPOCH_2015_03 + 7)
    addresses = obstore.from_array(
        epoch_stores[EPOCH_2015_03].union_over(week)
    )
    groups = internet.registry.group_by_prefix(addresses)
    profiles = [
        profile(values)
        for values in groups.values()
        if len(values) >= MIN_PREFIX_POPULATION
    ]
    return segment_ratio_matrix(profiles)


@pytest.mark.benchmark(group="fig5b")
def test_fig5b_segment_ratio_boxes(benchmark, internet, epoch_stores, report):
    matrix = benchmark.pedantic(
        _per_prefix_matrix, args=(internet, epoch_stores), rounds=1, iterations=1
    )
    stats = segment_box_stats(matrix)

    report.section(
        f"Figure 5b: 16-bit segment ratio distributions over "
        f"{matrix.shape[0]} BGP prefixes"
    )
    report.add(render_ascii(stats))
    report.add("")
    for index, box in enumerate(stats):
        report.add(
            f"bits {16 * index:>3}-{16 * (index + 1):<3}: median {box.median:8.1f}  "
            f"p75 {box.p75:8.1f}  p95 {box.p95:9.1f}  max {box.maximum:9.1f}"
        )

    medians = [box.median for box in stats]

    # Segment 0 (bits 0-16) aggregates trivially within a BGP prefix.
    assert medians[0] == pytest.approx(1.0, abs=0.1)

    # Most aggregation in bits 32-80 (segments 2, 3, 4): their median
    # mass dominates the outer segments'.
    inner = medians[2] * medians[3] * medians[4]
    outer = medians[0] * medians[1] * medians[7]
    assert inner > outer

    # The 112-128 segment: mostly quiet (median near 1) but with an
    # aggregating minority band, the paper's "about 20% of prefixes".
    tail = stats[7]
    assert tail.median < 4.0
    assert tail.maximum > tail.median * 2

    # Ratios never exceed the 16-bit bound.
    for box in stats:
        assert box.maximum <= 65536.0
