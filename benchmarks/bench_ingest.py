"""Ingestion pipeline benchmark: text parsing, cache, and parallel loading.

Measures the fast ingestion subsystem against the seed's scalar path on
a synthetic multi-day store of daily aggregated logs:

* **seed_cold** — the original pure-Python path: per-line ``str.split``,
  scalar ``addr.parse`` per address, per-element structured-array fill.
* **fast_cold** — the vectorized columnar reader
  (:func:`repro.data.logfile.read_daily_log_arrays`).
* **cache_build** — fast cold parse plus writing the binary columnar
  day cache (:mod:`repro.data.daycache`).
* **cache_warm** — re-loading everything from the memory-mapped cache.
* **parallel_cold** / **parallel_warm** — fanning days out over worker
  processes with ``load_store(jobs=N)``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py            # full: 30 days x 100k
    PYTHONPATH=src python benchmarks/bench_ingest.py --quick    # CI smoke: 4 days x 5k
    PYTHONPATH=src python benchmarks/bench_ingest.py --out BENCH_ingest.json

The results (durations, speedups, configuration) are written as JSON;
the repo keeps a reference run in ``BENCH_ingest.json``.  Not a pytest
module — run it as a script.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.data import logfile  # noqa: E402
from repro.data.store import ADDRESS_DTYPE, DailyObservations, ObservationStore  # noqa: E402
from repro.net import addr, batchparse  # noqa: E402


# --------------------------------------------------------------------------
# Seed-equivalent scalar path, kept verbatim so the comparison stays honest
# even as the library's own ingestion keeps improving.
# --------------------------------------------------------------------------


def _seed_read_daily_log(path: str) -> Tuple[Optional[int], List[Tuple[int, int]]]:
    day: Optional[int] = None
    entries: List[Tuple[int, int]] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "day=" in line and day is None:
                    try:
                        day = int(line.split("day=", 1)[1].split()[0])
                    except (ValueError, IndexError):
                        pass
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_number}: bad line")
            address = addr.parse(parts[0])
            if not parts[1].isdigit():
                raise ValueError(f"{path}:{line_number}: bad hits")
            entries.append((address, int(parts[1])))
    return day, entries


def _seed_daily_observations(
    day: int, addresses: List[int], hits: List[int]
) -> DailyObservations:
    raw = np.empty(len(addresses), dtype=ADDRESS_DTYPE)
    for index, value in enumerate(addresses):
        addr.check_address(value)
        raw[index] = (value >> 64, value & addr.IID_MASK)
    hit_list = np.asarray(list(hits), dtype=np.uint64)
    unique, inverse = np.unique(raw, return_inverse=True)
    summed = np.zeros(unique.shape[0], dtype=np.uint64)
    np.add.at(summed, inverse, hit_list)
    observations = DailyObservations.from_array(day, unique)
    observations.hits = summed
    return observations


def _seed_load_store(paths: List[str]) -> ObservationStore:
    store = ObservationStore()
    next_day = 0
    for path in paths:
        day, entries = _seed_read_daily_log(path)
        if day is None:
            day = next_day
        addresses = [address for address, _hits in entries]
        hits = [hits for _address, hits in entries]
        store.add_observations(_seed_daily_observations(day, addresses, hits))
        next_day = day + 1
    return store


# --------------------------------------------------------------------------
# Synthetic data + measurement
# --------------------------------------------------------------------------


def _write_synthetic_logs(
    directory: str, days: int, addrs_per_day: int, seed: int
) -> List[str]:
    """Daily logs of random-but-structured addresses with hit counts."""
    rng = np.random.default_rng(seed)
    # A pool of /64 networks so days share prefixes like real client logs.
    networks = rng.integers(0, 1 << 48, size=max(addrs_per_day // 8, 1), dtype=np.uint64)
    networks = (networks << np.uint64(16)) | np.uint64(0x2000) << np.uint64(48)
    paths = []
    for day in range(days):
        hi = rng.choice(networks, size=addrs_per_day)
        lo = rng.integers(0, 1 << 62, size=addrs_per_day, dtype=np.uint64)
        hits = rng.integers(1, 1000, size=addrs_per_day, dtype=np.uint64)
        path = os.path.join(directory, f"log-{day}.txt")
        logfile.write_daily_log_arrays(path, day, hi, lo, hits)
        paths.append(path)
    return paths


def _timed(fn, repeats: int = 1) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _stores_equal(a: ObservationStore, b: ObservationStore) -> bool:
    if a.days() != b.days():
        return False
    for day in a.days():
        obs_a, obs_b = a.get(day), b.get(day)
        if not np.array_equal(obs_a.addresses, np.asarray(obs_b.addresses)):
            return False
        if not np.array_equal(
            np.asarray(obs_a.hits, dtype=np.uint64),
            np.asarray(obs_b.hits, dtype=np.uint64),
        ):
            return False
    return True


def run_benchmark(
    days: int, addrs_per_day: int, jobs: int, seed: int, skip_seed_baseline: bool
) -> Dict:
    results: Dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as directory:
        log_dir = os.path.join(directory, "logs")
        cache_dir = os.path.join(directory, "cache")
        os.makedirs(log_dir)
        paths = _write_synthetic_logs(log_dir, days, addrs_per_day, seed)

        if not skip_seed_baseline:
            results["seed_cold"], seed_store = _timed(lambda: _seed_load_store(paths))
        else:
            seed_store = None

        results["fast_cold"], fast_store = _timed(lambda: logfile.load_store(paths))
        results["cache_build"], cold_cache_store = _timed(
            lambda: logfile.load_store(paths, cache_dir=cache_dir)
        )
        results["cache_warm"], warm_store = _timed(
            lambda: logfile.load_store(paths, cache_dir=cache_dir)
        )
        results["parallel_cold"], par_store = _timed(
            lambda: logfile.load_store(paths, jobs=jobs)
        )
        results["parallel_warm"], par_warm_store = _timed(
            lambda: logfile.load_store(paths, jobs=jobs, cache_dir=cache_dir)
        )

        for name, other in [
            ("cache_build", cold_cache_store),
            ("cache_warm", warm_store),
            ("parallel_cold", par_store),
            ("parallel_warm", par_warm_store),
        ]:
            if not _stores_equal(fast_store, other):
                raise AssertionError(f"{name} store differs from fast_cold store")
        if seed_store is not None and not _stores_equal(fast_store, seed_store):
            raise AssertionError("fast_cold store differs from seed-path store")

    speedups = {}
    if "seed_cold" in results:
        speedups["cold_text_vs_seed"] = results["seed_cold"] / results["fast_cold"]
        speedups["warm_cache_vs_seed"] = results["seed_cold"] / results["cache_warm"]
    speedups["warm_cache_vs_fast_cold"] = results["fast_cold"] / results["cache_warm"]
    speedups["parallel_vs_serial_cold"] = results["fast_cold"] / results["parallel_cold"]

    return {
        "config": {
            "days": days,
            "addrs_per_day": addrs_per_day,
            "jobs": jobs,
            "seed": seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "seconds": {k: round(v, 4) for k, v in results.items()},
        "speedups": {k: round(v, 2) for k, v in speedups.items()},
        "targets": {
            "warm_cache_vs_seed >= 10x": speedups.get("warm_cache_vs_seed"),
            "cold_text_vs_seed >= 3x": speedups.get("cold_text_vs_seed"),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=30)
    parser.add_argument("--addrs", type=int, default=100_000, help="addresses per day")
    parser.add_argument("--jobs", type=int, default=min(os.cpu_count() or 1, 8))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="tiny run for CI smoke (4 days x 5k)"
    )
    parser.add_argument(
        "--no-seed-baseline",
        action="store_true",
        help="skip the slow seed-path measurement",
    )
    parser.add_argument("--out", default=None, help="write results JSON here")
    args = parser.parse_args(argv)
    if args.quick:
        args.days, args.addrs = 4, 5_000

    report = run_benchmark(
        args.days, args.addrs, args.jobs, args.seed, args.no_seed_baseline
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    for label, value in report["speedups"].items():
        print(f"  {label}: {value:.2f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
