"""Extension: address lifetime and survival analysis behind Figure 4.

Figure 4's stepwise decay samples, at one reference day, the underlying
survival function of addresses; this bench measures the function itself
and the lifetime distribution, split by ground-truth population:

* privacy addresses survive roughly one day (RFC 4941's 24h lifetime,
  extended across two log days by carryover);
* stable-assignment addresses (EUI-64, RFC 7217, static) survive
  limited only by visit frequency;
* the aggregate lifetime histogram is bimodal: a huge single-day mass
  plus a persistent tail — the structure the paper's stability classes
  discretize.
"""

import pytest

from repro.core.churn import daily_churn, lifetime_histogram, survival_curve
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03

WINDOW = list(range(EPOCH_2015_03 - 7, EPOCH_2015_03 + 8))


def _population_curves(internet, epoch_stores):
    store = epoch_stores[EPOCH_2015_03]
    truth = {}
    for day in (EPOCH_2015_03 - 1, EPOCH_2015_03):
        truth.update(internet.ground_truth_for_day(day))
    reference = obstore.from_array(store.array(EPOCH_2015_03))
    privacy = {v for v in reference if v in truth and truth[v].is_privacy}
    stable = {
        v for v in reference if v in truth and truth[v].is_stable_assignment
    }

    def survival_for(subset):
        out = []
        for distance in range(1, 8):
            future = set(
                obstore.from_array(store.array(EPOCH_2015_03 + distance))
            )
            out.append(
                (distance, len(subset & future) / max(1, len(subset)))
            )
        return out

    return survival_for(privacy), survival_for(stable), len(privacy), len(stable)


@pytest.mark.benchmark(group="lifetime")
def test_survival_by_population(benchmark, internet, epoch_stores, report):
    privacy_curve, stable_curve, n_privacy, n_stable = benchmark.pedantic(
        _population_curves, args=(internet, epoch_stores), rounds=1, iterations=1
    )
    report.section("Survival by population (ground truth): P(seen again at +k)")
    report.add(f"{'k':>3} {'privacy':>10} {'stable-assignment':>18}")
    for (k, p_privacy), (_k, p_stable) in zip(privacy_curve, stable_curve):
        report.add(f"{k:>3} {p_privacy:>10.1%} {p_stable:>18.1%}")
    report.add(f"(populations: {n_privacy} privacy, {n_stable} stable)")

    privacy_by_k = dict(privacy_curve)
    stable_by_k = dict(stable_curve)
    # Privacy addresses die fast: survival at +2 days is marginal
    # (carryover covers +1 only partially).
    assert privacy_by_k[2] < 0.10
    assert privacy_by_k[7] < 0.05
    # Stable assignments keep returning, bounded by visit frequency.
    assert stable_by_k[1] > 0.3
    assert stable_by_k[7] > 0.2
    # The separation is stark at every distance.
    for k in range(2, 8):
        assert stable_by_k[k] > 3 * privacy_by_k[k]


@pytest.mark.benchmark(group="lifetime")
def test_lifetime_histogram_bimodal(benchmark, epoch_stores, report):
    store = epoch_stores[EPOCH_2015_03]
    histogram = benchmark.pedantic(
        lifetime_histogram, args=(store, WINDOW), rounds=1, iterations=1
    )
    total = sum(histogram.values())
    single_day = histogram.get(0, 0) + histogram.get(1, 0)
    long_lived = sum(count for span, count in histogram.items() if span >= 7)
    report.section("Observed lifetime (span) distribution over 15 days")
    for span in sorted(histogram):
        share = histogram[span] / total
        report.add(f"span {span:>2}d: {histogram[span]:>7} ({share:.1%})")
    report.add(
        f"single-day-ish mass (span<=1): {single_day / total:.1%}; "
        f"week-plus tail: {long_lived / total:.1%}"
    )
    # Bimodal: dominant ephemeral mass plus a real persistent tail.
    assert single_day / total > 0.6
    assert long_lived / total > 0.01


@pytest.mark.benchmark(group="lifetime")
def test_daily_churn_balance(benchmark, epoch_stores, report):
    store = epoch_stores[EPOCH_2015_03]
    days = list(range(EPOCH_2015_03, EPOCH_2015_03 + 7))
    churn = benchmark.pedantic(
        daily_churn, args=(store, days), rounds=1, iterations=1
    )
    report.section("Daily churn (born/died/retained)")
    for entry in churn:
        report.add(
            f"day {entry.day}: born {entry.born}, died {entry.died}, "
            f"retained {entry.retained}"
        )
    # In steady state (plus slow growth), births roughly match deaths,
    # and the retained share matches the Figure-4 one-day overlap.
    for entry in churn:
        active_today = entry.born + entry.retained
        assert 0.05 < entry.retained / active_today < 0.7
        assert entry.born > 0 and entry.died > 0
