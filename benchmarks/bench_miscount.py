"""§7.1: how badly /64 counts estimate subscribers and devices.

The paper: "the number of active /64s observed in a week's time can
miscount IPv6 WWW client devices by a factor of 100 in either direction"
— dynamic-pool carriers inflate /64 counts far above subscribers, while
shared-subnet networks (the department's single /64) undercount devices
by orders of magnitude.  With simulator ground truth the per-network
miscount factors are computed exactly.
"""

import pytest

from repro.data import store as obstore
from repro.sim import EPOCH_2015_03

WEEK = list(range(EPOCH_2015_03, EPOCH_2015_03 + 7))


def _per_network_counts(internet, epoch_stores):
    store = epoch_stores[EPOCH_2015_03]
    week_64s = obstore.from_array(
        store.truncated(64).union_over(WEEK)
    )
    results = {}
    for network in internet.networks:
        prefixes = network.allocation.prefixes
        active_64s = sum(
            1 for value in week_64s if any(p.contains(value) for p in prefixes)
        )
        # Ground truth: distinct subscribers and devices active in the week.
        subscribers = set()
        devices = set()
        population = network.population
        for day in WEEK:
            for subscriber_id in population.active_subscribers(day):
                subscribers.add(subscriber_id)
                for device in population.devices(subscriber_id):
                    if population.device_is_active(device, day):
                        devices.add((subscriber_id, device.device_index))
        results[network.name] = (active_64s, len(subscribers), len(devices))
    return results


@pytest.mark.benchmark(group="miscount")
def test_64_counts_miscount_subscribers(benchmark, internet, epoch_stores, report):
    results = benchmark.pedantic(
        _per_network_counts, args=(internet, epoch_stores), rounds=1, iterations=1
    )

    report.section("§7.1: weekly active /64s vs ground-truth subscribers/devices")
    report.add(
        f"{'network':<16} {'active /64s':>12} {'subscribers':>12} "
        f"{'devices':>9} {'64s/subs':>9}"
    )
    factors = {}
    for name, (active_64s, subscribers, devices) in sorted(results.items()):
        if subscribers == 0:
            continue
        factor = active_64s / subscribers
        factors[name] = factor
        if name in (
            "us-mobile-1", "us-mobile-2", "eu-isp", "jp-isp", "eu-univ-dept",
            "jp-telco",
        ):
            report.add(
                f"{name:<16} {active_64s:>12} {subscribers:>12} "
                f"{devices:>9} {factor:>9.2f}"
            )

    mobile = factors["us-mobile-1"]
    static = factors["jp-isp"]
    department = factors["eu-univ-dept"]
    report.add("")
    report.add(
        f"overcount (mobile pools): {mobile:.1f}x; faithful (static /48s): "
        f"{static:.2f}x; undercount (shared /64): {department:.3f}x"
    )
    spread = mobile / department
    report.add(
        f"spread between extremes: {spread:.0f}x "
        "(paper: 'factor of 100 in either direction')"
    )

    # The three regimes the paper names.
    assert mobile > 2.0, "dynamic pools must overcount subscribers"
    assert 0.5 < static < 1.5, "static delegation approximates subscribers"
    assert department < 0.1, "a shared /64 undercounts by orders of magnitude"
    assert spread > 50
