"""§6.1.1: 3d-stable addresses as probe targets for router discovery.

The paper probed a random subset of 3d-stable addresses with TTL-limited
packets and discovered 129% more router addresses than a long-standing
IPv4-style target heuristic (recursive DNS resolvers + randomly selected
WWW client addresses).

Two mechanisms produce the gap, both modelled here:

* random active clients concentrate in the handful of largest consumer
  networks — above all the mobile carriers, whose infrastructure filters
  ICMP aggressively — so their probes resurvey a few opaque paths, while
  3d-stable addresses are disproportionately hosts in wired, enterprise
  and hosting networks with responsive routers;
* a probe's deepest hop (the BNG serving the target's region) only
  answers when the target's /64 is currently assigned, which penalizes
  the ephemeral part of the random list.
"""

import random

import pytest

from repro.core.temporal import classify_day
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03
from repro.sim.probing import build_topology, improvement, run_campaign
from repro.sim.routers import RouterCorpus, build_router_corpus

from conftest import BENCH_SCALE, BENCH_SEED

NUM_TARGETS = 150

#: ICMP responsiveness by operator kind: cellular infrastructure is
#: notoriously opaque to traceroute; wired and enterprise networks less so.
RESPONSIVENESS_BY_KIND = {
    "mobile": 0.05,
    "isp": 0.55,
    "telco": 0.9,
    "hosting": 0.9,
    "university": 0.9,
}


def _build_corpus(internet) -> RouterCorpus:
    combined = RouterCorpus()
    for kind, responsiveness in RESPONSIVENESS_BY_KIND.items():
        isps = [
            (network.name, network.allocation.prefixes[0])
            for network in internet.networks
            if network.allocation.kind == kind
        ][:16]
        corpus = build_router_corpus(
            BENCH_SEED, isps, scale=max(0.5, BENCH_SCALE * 3),
            responsiveness=responsiveness,
        )
        combined.interfaces.extend(corpus.interfaces)
        combined.responsive.update(corpus.responsive)
    return combined


def _campaigns(internet, epoch_stores):
    store = epoch_stores[EPOCH_2015_03]
    result = classify_day(store, EPOCH_2015_03)
    routed = [
        value
        for value in obstore.from_array(result.active)
        if internet.registry.origin(value) is not None
    ]
    stable_set = set(obstore.from_array(result.stable(3)))
    stable = [value for value in routed if value in stable_set]

    corpus = _build_corpus(internet)
    isp_prefixes = {
        network.name: network.allocation.prefixes[0]
        for network in internet.networks
    }
    # The probe campaign runs days after the target lists are drawn
    # (building and scheduling large campaigns takes time); at probe
    # time only the persistent targets still exist.  A probe toward a
    # live target elicits its gateway's response — the deepest hop.
    probe_day = EPOCH_2015_03 + 5
    active_64s = [
        int(hi) for hi in store.truncated(64).array(probe_day)["hi"]
    ]
    live = obstore.from_array(
        store.union_over(range(probe_day - 1, probe_day + 2))
    )
    topology = build_topology(
        BENCH_SEED, corpus, active_64s, isp_prefixes=isp_prefixes,
        live_addresses=live,
    )

    rng = random.Random(BENCH_SEED)
    stable_targets = rng.sample(stable, min(NUM_TARGETS, len(stable)))
    # IPv4-style heuristic: randomly selected active WWW clients (the
    # population is dominated by the big consumer networks).
    random_targets = rng.sample(routed, min(NUM_TARGETS, len(routed)))

    stable_campaign = run_campaign(
        BENCH_SEED, topology, stable_targets, corpus, "3d-stable targets"
    )
    baseline_campaign = run_campaign(
        BENCH_SEED, topology, random_targets, corpus, "IPv4-style heuristic"
    )
    return stable_campaign, baseline_campaign


@pytest.mark.benchmark(group="probing")
def test_probing_stable_targets_find_more_routers(
    benchmark, internet, epoch_stores, report
):
    stable_campaign, baseline_campaign = benchmark.pedantic(
        _campaigns, args=(internet, epoch_stores), rounds=1, iterations=1
    )
    gain = improvement(stable_campaign, baseline_campaign)

    report.section("§6.1.1: router discovery by target-selection strategy")
    report.add(
        f"{stable_campaign.strategy}: {stable_campaign.targets_probed} probes "
        f"-> {stable_campaign.discovered_count} distinct router addrs"
    )
    report.add(
        f"{baseline_campaign.strategy}: {baseline_campaign.targets_probed} probes "
        f"-> {baseline_campaign.discovered_count} distinct router addrs"
    )
    report.add(f"improvement: {gain:+.0%} (paper: +129%, i.e. 2.29x)")

    # The stable strategy must discover substantially more routers.
    assert stable_campaign.discovered_count > baseline_campaign.discovered_count
    assert gain > 0.3, f"gain too small: {gain:+.0%}"
