"""§6.2.3: reverse-DNS yield from dense-prefix scanning.

The paper performed ip6.arpa PTR queries for all 2.12 million possible
addresses of the 3@/120-dense class and harvested 47 thousand more
domain names than querying just the active WWW client addresses —
because operators name whole assignment ranges (router links, DHCP
pools), not only the hosts that happened to be active.

The bench rebuilds the zone from the simulated router corpus (every
allocated interface has a PTR record, probe-responsive or not) plus the
department's DHCP range, then compares the two query strategies.
"""

import pytest

from repro.core.density import DensityClass, find_dense
from repro.sim.dns import add_dhcp_range, ptr_yield, zone_from_routers
from repro.sim.routers import build_router_corpus

from conftest import BENCH_SCALE, BENCH_SEED


def _setup(internet):
    isps = [
        (network.name, network.allocation.prefixes[0])
        for network in internet.networks
        if network.allocation.kind in ("isp", "telco", "hosting")
    ][:12]
    corpus = build_router_corpus(
        BENCH_SEED, isps, scale=max(0.5, BENCH_SCALE * 4), responsiveness=0.7
    )
    zone = zone_from_routers(corpus)
    # The department's reverse zone names its whole DHCP pool.
    department = next(
        network for network in internet.networks if network.name == "eu-univ-dept"
    )
    add_dhcp_range(
        zone,
        department.plan.prefix.network >> 64,
        department.plan.host_base,
        512,
    )
    observed = corpus.observed_addresses()
    return zone, observed


@pytest.mark.benchmark(group="ptr")
def test_ptr_scan_of_dense_prefixes_yields_extra_names(
    benchmark, internet, report
):
    zone, observed = _setup(internet)
    dense = find_dense(observed, DensityClass(3, 120))

    def run():
        return ptr_yield(zone, observed, dense.prefixes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("§6.2.3: PTR yield, active-only queries vs dense-prefix scan")
    report.add(f"observed router addresses (active): {len(observed)}")
    report.add(f"3@/120-dense prefixes: {dense.num_prefixes}")
    report.add(
        f"possible addresses to scan: {dense.possible_addresses} "
        "(paper: 2.12M for this class)"
    )
    report.add(f"names from active-only queries: {result.active_names}")
    report.add(f"names from dense-prefix scan:   {result.scan_names}")
    report.add(
        f"extra names from scanning: {result.extra_names} "
        f"(+{result.extra_names / max(1, result.active_names):.0%}; "
        "paper: +47K names)"
    )

    # The headline: scanning dense prefixes finds names active-only
    # queries cannot (ICMP-filtered links, inactive pool slots).
    assert result.extra_names > 0
    assert result.scan_names > result.active_names
    # The yield is material, not marginal.
    assert result.extra_names > 0.05 * result.active_names

    # Location hints: router names embed city codes (the paper's
    # geolocation motivation).
    sample_names = list(zone.records.values())[:200]
    cities = ("nyc", "fra", "tyo", "lon", "sjc", "ams", "sin", "syd")
    assert any(any(city in name for city in cities) for name in sample_names)
