"""Extension: MRA-signature classification of per-network practice.

§5.2.1 leaves "defining MRA-based address classes" as future work; the
library implements a transparent signature classifier
(:mod:`repro.core.signature`).  This bench evaluates it against the
simulator's ground-truth plans over one week of activity:

* the privacy-addressed networks (EU ISP, JP ISP, university, tail
  ISPs) classify PRIVACY_SLAAC;
* the dense populations (department, telco and hosting statics)
  classify DENSE_BLOCK;
* the dynamic-pool carriers classify POOL_SATURATED;
* overall accuracy against ground truth is reported and bounded.
"""

import pytest

from repro.core.signature import PrefixClass, classify_addresses
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03

WEEK = range(EPOCH_2015_03, EPOCH_2015_03 + 7)

#: Ground truth: the plan tag each network kind should classify as.
EXPECTED_BY_PLAN = {
    "dynamic-pool": PrefixClass.POOL_SATURATED,
    "pseudorandom-netid": PrefixClass.PRIVACY_SLAAC,
    "static-isp": PrefixClass.PRIVACY_SLAAC,
    "university": PrefixClass.PRIVACY_SLAAC,
    "dense-dhcp": PrefixClass.DENSE_BLOCK,
    "telco-structured": PrefixClass.DENSE_BLOCK,
}


def _classify_networks(internet, epoch_stores):
    weekly = obstore.from_array(epoch_stores[EPOCH_2015_03].union_over(WEEK))
    results = []
    for network in internet.networks:
        prefixes = network.allocation.prefixes
        values = [v for v in weekly if any(p.contains(v) for p in prefixes)]
        prefix_class, features = classify_addresses(values)
        results.append((network, prefix_class, features, len(values)))
    return results


@pytest.mark.benchmark(group="signature")
def test_mra_signature_classification(benchmark, internet, epoch_stores, report):
    results = benchmark.pedantic(
        _classify_networks, args=(internet, epoch_stores), rounds=1, iterations=1
    )

    report.section("Extension: MRA-signature classification vs ground truth")
    correct = 0
    scored = 0
    flagship = {
        "us-mobile-1", "us-mobile-2", "eu-isp", "jp-isp", "jp-telco",
        "us-university", "eu-univ-dept",
    }
    for network, prefix_class, _features, size in results:
        expected = EXPECTED_BY_PLAN.get(network.plan.tag)
        if expected is None or prefix_class is PrefixClass.UNKNOWN:
            continue
        scored += 1
        mark = "ok" if prefix_class is expected else "MISS"
        correct += prefix_class is expected
        if network.name in flagship:
            report.add(
                f"{network.name:<16} plan={network.plan.tag:<20} "
                f"classified={prefix_class.value:<16} n={size:<6} {mark}"
            )
    accuracy = correct / max(1, scored)
    report.add("")
    report.add(f"accuracy over {scored} classifiable networks: {accuracy:.1%}")

    by_name = {network.name: cls for network, cls, _f, _n in results}
    # The flagship panels must classify correctly.
    assert by_name["us-mobile-1"] is PrefixClass.POOL_SATURATED
    assert by_name["us-mobile-2"] is PrefixClass.POOL_SATURATED
    assert by_name["eu-isp"] is PrefixClass.PRIVACY_SLAAC
    assert by_name["jp-isp"] is PrefixClass.PRIVACY_SLAAC
    assert by_name["eu-univ-dept"] is PrefixClass.DENSE_BLOCK
    assert by_name["jp-telco"] is PrefixClass.DENSE_BLOCK
    # Aggregate accuracy: the signature reads practice well overall.
    assert accuracy > 0.7
