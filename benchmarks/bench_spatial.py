"""Spatial classification benchmark: array-native engine versus trees.

Measures the §5.2 spatial methods over a synthetic address population
with realistic prefix clustering (addresses concentrated in a pool of
subnets, so the dense classes are non-trivial):

* **tree_densify** — the reference general densify
  (:func:`repro.trie.aguri.compute_dense_prefixes_tree`): one
  ``RadixNode`` per address, then the paper's post-order fold.
* **engine_densify** — :func:`repro.core.spatial.general_dense_prefixes`
  on the same set: one adjacent-LCP scan plus a vectorized interval
  sweep, no tree.
* **table3_seed** — the pre-engine fixed-length path kept verbatim: one
  truncate-copy + ``np.unique`` pass per density class.
* **table3_engine** — :func:`repro.core.density.table3`, all twelve
  classes sharing a single LCP scan.
* **sweep_serial / sweep_jobs** —
  :func:`repro.core.spatial.sweep_spatial` over a multi-day store, one
  process versus a fork-based worker pool.

The engine output is asserted **bit-identical** to the tree reference
(and the engine Table 3 to the seed path) before any speedup is
reported; the ``engine_vs_tree >= 10x`` target is recorded in the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_spatial.py             # 1M addresses
    PYTHONPATH=src python benchmarks/bench_spatial.py --quick     # CI smoke: 20k
    PYTHONPATH=src python benchmarks/bench_spatial.py --out BENCH_spatial.json

The results (durations, speedups, configuration) are written as JSON;
the repo keeps a reference run in ``BENCH_spatial.json``.  Not a pytest
module — run it as a script.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.density import TABLE3_CLASSES, table3  # noqa: E402
from repro.core.spatial import general_dense_prefixes, sweep_spatial  # noqa: E402
from repro.data import store as obstore  # noqa: E402
from repro.data.store import DailyObservations, ObservationStore  # noqa: E402
from repro.trie.aguri import compute_dense_prefixes_tree  # noqa: E402

#: The general-densify classes measured against the tree reference.
DENSIFY_CLASSES = [(2, 112), (8, 112), (2, 120)]


# --------------------------------------------------------------------------
# Pre-engine fixed-length path, kept verbatim so the comparison stays
# honest even as the library's own Table 3 keeps improving.
# --------------------------------------------------------------------------


def _seed_dense_fixed(
    array: np.ndarray, n: int, p: int
) -> Tuple[List[Tuple[int, int, int]], int]:
    if array.shape[0] == 0:
        return [], 0
    full = array.copy()
    if p <= 64:
        mask = np.uint64(0) if p == 0 else np.uint64(((1 << p) - 1) << (64 - p))
        full["hi"] = full["hi"] & mask
        full["lo"] = 0
    else:
        low_bits = p - 64
        mask = (
            np.uint64(0xFFFFFFFFFFFFFFFF)
            if low_bits == 64
            else np.uint64(((1 << low_bits) - 1) << (64 - low_bits))
        )
        full["lo"] = full["lo"] & mask
    unique, counts = np.unique(full, return_counts=True)
    dense_mask = counts >= n
    dense_networks = unique[dense_mask]
    dense_counts = counts[dense_mask]
    prefixes = [
        ((int(hi) << 64) | int(lo), p, int(count))
        for (hi, lo), count in zip(dense_networks, dense_counts)
    ]
    return prefixes, int(dense_counts.sum())


# --------------------------------------------------------------------------
# Synthetic data + measurement
# --------------------------------------------------------------------------


def build_synthetic_addresses(size: int, seed: int) -> np.ndarray:
    """A canonical address array with realistic spatial clustering.

    Addresses concentrate in a pool of /116-ish subnets (64 addresses
    per subnet on average, IIDs drawn from a 2**20 space), so every
    Table 3 class finds a non-trivial mix of dense and sparse prefixes.
    """
    rng = np.random.default_rng(seed)
    networks = rng.integers(0, 1 << 44, size=max(size // 64, 1), dtype=np.uint64)
    hi = (np.uint64(0x2000) << np.uint64(48)) | (
        rng.choice(networks, size=size) << np.uint64(4)
    )
    lo = rng.integers(0, 1 << 20, size=size, dtype=np.uint64)
    return obstore.halves_to_array(hi, lo)


def build_synthetic_store(days: int, addrs_per_day: int, seed: int) -> ObservationStore:
    store = ObservationStore()
    for day in range(days):
        array = build_synthetic_addresses(addrs_per_day, seed + day)
        store.add_observations(
            DailyObservations.from_halves(day, array["hi"], array["lo"])
        )
    return store


def _timed(fn) -> Tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_benchmark(size: int, days: int, jobs: int, seed: int) -> Dict:
    array = build_synthetic_addresses(size, seed)
    distinct = int(array.shape[0])
    values = [(int(hi) << 64) | int(lo) for hi, lo in zip(array["hi"], array["lo"])]
    results: Dict[str, float] = {}

    results["tree_densify"], tree_reports = _timed(
        lambda: [
            compute_dense_prefixes_tree(values, n, p) for n, p in DENSIFY_CLASSES
        ]
    )
    results["engine_densify"], engine_reports = _timed(
        lambda: [general_dense_prefixes(array, n, p) for n, p in DENSIFY_CLASSES]
    )
    for (n, p), expected, got in zip(DENSIFY_CLASSES, tree_reports, engine_reports):
        assert got == expected, f"engine != tree for {n}@/{p}"

    results["table3_seed"], seed_rows = _timed(
        lambda: [
            _seed_dense_fixed(array, cls.n, cls.p) for cls in TABLE3_CLASSES
        ]
    )
    results["table3_engine"], engine_rows = _timed(lambda: table3(array))
    for cls, (prefixes, contained), row in zip(
        TABLE3_CLASSES, seed_rows, engine_rows
    ):
        assert row.prefixes == prefixes, f"table3 != seed for {cls.label}"
        assert row.contained_addresses == contained, cls.label

    store = build_synthetic_store(days, max(size // days, 1), seed)
    results["sweep_serial"], swept = _timed(lambda: sweep_spatial(store, jobs=1))
    results["sweep_jobs"], swept_jobs = _timed(lambda: sweep_spatial(store, jobs=jobs))
    assert len(swept) == len(swept_jobs) == days
    for one, two in zip(swept, swept_jobs):
        assert one.day == two.day and one.dense == two.dense
        assert np.array_equal(one.mra_counts, two.mra_counts)

    speedups = {
        "engine_vs_tree": results["tree_densify"] / results["engine_densify"],
        "table3_vs_seed": results["table3_seed"] / results["table3_engine"],
        "sweep_jobs_vs_serial": results["sweep_serial"] / results["sweep_jobs"],
    }

    return {
        "config": {
            "addresses": size,
            "distinct_addresses": distinct,
            "densify_classes": [f"{n}@/{p}" for n, p in DENSIFY_CLASSES],
            "sweep_days": days,
            "jobs": jobs,
            "seed": seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "seconds": {k: round(v, 4) for k, v in results.items()},
        "speedups": {k: round(v, 2) for k, v in speedups.items()},
        "verified": "engine bit-identical to tree densify and seed table3",
        "targets": {
            "engine_vs_tree >= 10x": round(speedups["engine_vs_tree"], 2),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=1_000_000, help="address count")
    parser.add_argument("--days", type=int, default=8, help="sweep store days")
    parser.add_argument("--jobs", type=int, default=min(os.cpu_count() or 1, 8))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="tiny run for CI smoke (20k addrs)"
    )
    parser.add_argument("--out", default=None, help="write results JSON here")
    args = parser.parse_args(argv)
    if args.quick:
        args.size, args.days = 20_000, 4

    report = run_benchmark(args.size, args.days, args.jobs, args.seed)
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    for label, value in report["speedups"].items():
        print(f"  {label}: {value:.2f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
