"""§7.2: longest stable prefixes — automated address-plan discovery.

The paper's future-work proposal, implemented: combine the temporal and
spatial classifiers to find the *stable portions of network identifiers*
without relying on EUI-64 guides.  The bench runs the discovery on each
flagship network's daily logs and checks the recovered plan boundary
against the simulator's ground-truth plan:

* static /48 delegations (JP ISP): the /64s subscribers use are the
  longest stable prefixes;
* dynamic /64 pools (US mobile): stability concentrates at the pool
  region, far above /64 — revealing that counting stable /64s there
  would mislead;
* the department's single /64: one stable prefix inside the /64 (its
  addresses themselves are static).
"""

import pytest

from repro.core.stableprefix import longest_stable_prefixes
from repro.data.store import ObservationStore
from repro.sim import EPOCH_2015_03
from repro.sim.scenarios import single_network_store

from conftest import BENCH_SEED

DAYS = list(range(EPOCH_2015_03, EPOCH_2015_03 + 10))
LENGTHS = tuple(range(128, 28, -4))


def _per_network_reports(internet):
    reports = {}
    for name in ("jp-isp", "us-mobile-1", "eu-univ-dept", "eu-isp"):
        network = next(n for n in internet.networks if n.name == name)
        if name == "eu-isp":
            # Rotation hides at short horizons: a 7-day-rotating network
            # id keeps each /64 alive for up to a week, so the probe
            # window must exceed the rotation period (sampled every 3rd
            # day over a month).
            days = list(range(EPOCH_2015_03, EPOCH_2015_03 + 30, 3))
        else:
            days = DAYS
        store = single_network_store(network, days, seed=BENCH_SEED)
        reports[name] = longest_stable_prefixes(
            store, n=3, lengths=LENGTHS, min_days=5
        )
    return reports


@pytest.mark.benchmark(group="stableprefix")
def test_longest_stable_prefixes_recover_plans(benchmark, internet, report):
    reports = benchmark.pedantic(
        _per_network_reports, args=(internet,), rounds=1, iterations=1
    )

    report.section(
        "§7.2: longest stable prefixes per network (10 days, n=3, min_days=5)"
    )
    for name, result in reports.items():
        histogram = dict(sorted(result.by_length().items()))
        report.add(
            f"{name:<14} dominant length /{result.dominant_length():<3} "
            f"histogram: {histogram}"
        )

    # Static delegation: subscribers' /64s dominate (some EUI-64 hosts
    # are their own stable /128s, some nybble coincidences go deeper).
    jp = reports["jp-isp"]
    assert 48 <= jp.dominant_length() <= 64

    # Dynamic pools: the pool *slots* are stable /64s (reused daily by
    # different subscribers — exactly why Table 2b shows high /64
    # stability while subscribers churn), and almost nothing deeper is.
    mobile = reports["us-mobile-1"]
    from collections import Counter

    counts = Counter(length for _network, length in mobile.prefixes)
    pool_region = sum(count for length, count in counts.items() if length <= 64)
    deeper = sum(count for length, count in counts.items() if length > 64)
    report.add(
        f"us-mobile-1: stable prefixes at /64 or shorter: {pool_region}, "
        f"deeper: {deeper}"
    )
    assert mobile.dominant_length() <= 64
    assert pool_region > deeper

    # The department: everything stable inside one /64.
    department = reports["eu-univ-dept"]
    assert department.prefixes
    assert all(length > 64 for _network, length in department.prefixes)

    # The EU ISP: over a horizon longer than the rotation period, /64s
    # are NOT the stable unit; the boundary moves up into the rotating
    # field (bits 41..55) — counting stable /64s here would mislead.
    eu = reports["eu-isp"]
    assert eu.dominant_length() < 64
    report.add(
        f"eu-isp: rotating network ids push the stable boundary up to "
        f"/{eu.dominant_length()} (plan: random bits start at 41)"
    )
