"""Performance: streaming versus batch stability classification.

The streaming classifier (§5.1's "ongoing basis") must match the batch
results exactly while holding only a window's worth of days; this bench
times both over the same month of logs and checks the equivalence and
the memory bound.  pytest-benchmark's timing table is the deliverable:
streaming pays a per-day re-assembly cost, buying bounded memory for
unbounded feeds.
"""

import pytest

from repro.core.streaming import StabilityStream
from repro.core.temporal import classify_day
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03

DAYS = list(range(EPOCH_2015_03 - 8, EPOCH_2015_03 + 8))


@pytest.fixture(scope="module")
def month_of_logs(epoch_stores):
    store = epoch_stores[EPOCH_2015_03]
    return [(day, obstore.from_array(store.array(day))) for day in DAYS]


@pytest.mark.benchmark(group="streaming")
def test_batch_classification_cost(benchmark, epoch_stores, report):
    store = epoch_stores[EPOCH_2015_03]

    def run_batch():
        return [classify_day(store, day) for day in DAYS[8:-7]]

    results = benchmark(run_batch)
    report.section("Batch classification over preloaded store")
    report.add(f"classified {len(results)} days")
    assert results


@pytest.mark.benchmark(group="streaming")
def test_streaming_classification_cost(benchmark, month_of_logs, report):
    def run_stream():
        stream = StabilityStream()
        out = []
        for day, addresses in month_of_logs:
            out.extend(stream.push(day, addresses))
        return out, stream.days_held

    (results, held) = benchmark.pedantic(run_stream, rounds=3, iterations=1)
    report.section("Streaming classification over a live feed")
    report.add(f"classified {len(results)} days; {held} days buffered at end")
    # The window bound: never more than before+after+slack days in memory.
    assert held <= 16
    assert results

    # Equivalence with batch on the overlapping days.
    from repro.data.store import ObservationStore

    full = ObservationStore()
    for day, addresses in month_of_logs:
        full.add_day(day, addresses)
    for result in results:
        batch = classify_day(full, result.reference_day)
        assert result.active_count == batch.active_count
        assert result.stable_count(3) == batch.stable_count(3)
