"""Table 1: active IPv6 WWW client address characteristics.

Regenerates both panels — (a) per day and (b) per week — at the three
measurement epochs, printing measured values beside the paper's.  The
absolute volumes differ by the simulation scale; the shapes under test:

* "Other" (native) addresses dominate (>90%) and grow across the year;
* 6to4 is a few percent and shrinking; Teredo and ISATAP are negligible;
* weekly counts exceed daily counts severalfold;
* average addresses per active /64 is small daily, larger weekly;
* EUI-64 addresses are a small share with fewer distinct MACs than
  addresses (shared bogus MACs).
"""

import pytest

from repro.analysis.tables import count_with_share, render_table, si_count
from repro.core.census import census
from repro.sim import EPOCH_2014_03, EPOCH_2014_09, EPOCH_2015_03

#: The paper's Table 1 values for the "Other addresses" sanity columns.
PAPER_DAILY = {
    EPOCH_2014_03: {"other_share": 0.920, "sixto4_share": 0.0797, "avg64": 2.41},
    EPOCH_2014_09: {"other_share": 0.941, "sixto4_share": 0.0590, "avg64": 2.40},
    EPOCH_2015_03: {"other_share": 0.958, "sixto4_share": 0.0419, "avg64": 2.63},
}
PAPER_WEEKLY = {
    EPOCH_2014_03: {"other_share": 0.928, "sixto4_share": 0.0722, "avg64": 5.32},
    EPOCH_2014_09: {"other_share": 0.949, "sixto4_share": 0.0634, "avg64": 5.64},
    EPOCH_2015_03: {"other_share": 0.965, "sixto4_share": 0.0343, "avg64": 5.88},
}
EPOCH_NAMES = {
    EPOCH_2014_03: "Mar 2014",
    EPOCH_2014_09: "Sep 2014",
    EPOCH_2015_03: "Mar 2015",
}


def _census_rows(epoch_stores, weekly: bool):
    rows = {}
    for epoch, store in epoch_stores.items():
        if weekly:
            union = store.union_over(range(epoch, epoch + 7))
        else:
            union = store.array(epoch)
        rows[epoch] = census(union, EPOCH_NAMES[epoch])
    return rows


def _render(rows, paper, title):
    headers = ["characteristic"] + [EPOCH_NAMES[e] for e in sorted(rows)] + ["paper 2015"]
    epochs = sorted(rows)
    latest = epochs[-1]

    def row(label, getter, paper_text):
        return [label] + [getter(rows[e]) for e in epochs] + [paper_text]

    body = [
        row("Teredo addresses", lambda r: count_with_share(r.teredo, r.total), "0.01%"),
        row("ISATAP addresses", lambda r: count_with_share(r.isatap, r.total), "0.04%"),
        row(
            "6to4 addresses",
            lambda r: count_with_share(r.sixto4, r.total),
            f"{paper[latest]['sixto4_share']:.2%}",
        ),
        row(
            "Other addresses",
            lambda r: count_with_share(r.other, r.total),
            f"{paper[latest]['other_share']:.1%}",
        ),
        row("Other /64 prefixes", lambda r: si_count(r.other_64s), "-"),
        row(
            "ave. addrs per /64",
            lambda r: f"{r.avg_addrs_per_64:.2f}",
            f"{paper[latest]['avg64']:.2f}",
        ),
        row(
            "EUI-64 addr (!6to4)",
            lambda r: count_with_share(r.eui64_not_6to4, r.total),
            "1.35%" if paper is PAPER_DAILY else "0.87%",
        ),
        row("EUI-64 IIDs (MACs)", lambda r: si_count(r.eui64_distinct_macs), "-"),
    ]
    return render_table(headers, body, title=title)


@pytest.mark.benchmark(group="table1")
def test_table1a_daily_characteristics(benchmark, epoch_stores, report):
    rows = benchmark.pedantic(
        _census_rows, args=(epoch_stores, False), rounds=1, iterations=1
    )
    report.section("Table 1a: address characteristics per day (measured vs paper)")
    report.add(_render(rows, PAPER_DAILY, "per-day census at three epochs"))

    for epoch, row in rows.items():
        assert row.other_share > 0.88, f"native transport must dominate at {epoch}"
        assert row.teredo_share < 0.01
        assert row.isatap_share < 0.01
        assert 0.005 < row.sixto4_share < 0.15
    # Growth across the year: daily Other roughly doubles (paper: 2.13x).
    growth = rows[EPOCH_2015_03].other / max(1, rows[EPOCH_2014_03].other)
    report.add(f"daily Other growth Mar14->Mar15: {growth:.2f}x (paper: 2.13x)")
    assert 1.4 < growth < 3.2
    # 6to4 share shrinks across the year, as in the paper.
    assert (
        rows[EPOCH_2015_03].sixto4_share < rows[EPOCH_2014_03].sixto4_share
    )


@pytest.mark.benchmark(group="table1")
def test_table1b_weekly_characteristics(benchmark, epoch_stores, report):
    rows = benchmark.pedantic(
        _census_rows, args=(epoch_stores, True), rounds=1, iterations=1
    )
    report.section("Table 1b: address characteristics per week (measured vs paper)")
    report.add(_render(rows, PAPER_WEEKLY, "per-week census at three epochs"))

    daily = _census_rows(epoch_stores, False)
    for epoch, row in rows.items():
        assert row.other_share > 0.88
        # Weekly address count is several times the daily count (paper:
        # 1.8B weekly vs 318M daily, ~5.7x).
        ratio = row.other / max(1, daily[epoch].other)
        assert ratio > 2.0, f"weekly/daily ratio too low: {ratio:.2f}"
        # Weekly avg addrs/64 exceeds daily: privacy churn accumulates
        # inside stable /64s.
        assert row.avg_addrs_per_64 > daily[epoch].avg_addrs_per_64
    report.add(
        "weekly/daily Other ratio 2015: "
        f"{rows[EPOCH_2015_03].other / max(1, daily[EPOCH_2015_03].other):.2f}x "
        "(paper: 5.66x)"
    )
    # More EUI-64 addresses than distinct MACs (shared/duplicate MACs).
    latest = rows[EPOCH_2015_03]
    assert latest.eui64_not_6to4 >= latest.eui64_distinct_macs
