"""Table 2: stability of addresses and /64 prefixes, daily and weekly.

Regenerates all four panels at the 2015 epoch with 6m/1y cross-epoch
rows.  The shapes under test, from the paper's highlighted findings:

* full addresses are mostly NOT 3d-stable per day (paper: 90.6% not);
* /64 prefixes are overwhelmingly 3d-stable per day (paper: 89.8% are);
* cross-epoch stable addresses are a tiny share (paper: 0.103% 1y-stable)
  while cross-epoch stable /64s are substantial (paper: 18-38%);
* weekly panels show smaller stable shares for addresses than daily
  (stable sets grow slower than weekly unions).
"""

import pytest

from repro.analysis.tables import count_with_share, render_table
from repro.core.temporal import stability_table
from repro.sim import EPOCH_2014_03, EPOCH_2014_09, EPOCH_2015_03

PAPER = {
    "addr_daily_stable": 0.0944,
    "addr_weekly_stable": 0.0382,
    "addr_6m_weekly": 0.00202,
    "addr_1y_weekly": 0.00100,
    "p64_daily_stable": 0.898,
    "p64_weekly_stable": 0.803,
    "p64_6m_weekly": 0.499,
    "p64_1y_weekly": 0.378,
}

EARLIER = {"6m-stable (-6m)": EPOCH_2014_09, "1y-stable (-1y)": EPOCH_2014_03}


def _tables(full_store):
    addresses = stability_table(
        full_store, "Mar 2015", EPOCH_2015_03, n=3, earlier_epochs=EARLIER
    )
    prefixes = stability_table(
        full_store.truncated(64), "Mar 2015", EPOCH_2015_03, n=3,
        earlier_epochs=EARLIER,
    )
    return addresses, prefixes


def _panel(table, daily: bool, title: str, paper_stable: float) -> str:
    if daily:
        active = table.daily_active
        stable = table.daily_stable
        cross = table.cross_epoch_daily
    else:
        active = table.weekly_active
        stable = table.weekly_stable
        cross = table.cross_epoch_weekly
    rows = [
        ["3d-stable", count_with_share(stable, active), f"{paper_stable:.2%}"],
        [
            "not 3d-stable",
            count_with_share(active - stable, active),
            f"{1 - paper_stable:.2%}",
        ],
    ]
    for label, value in cross.items():
        rows.append([label, count_with_share(value, active), "-"])
    return render_table(["class", "measured", "paper"], rows, title=title)


@pytest.mark.benchmark(group="table2")
def test_table2_stability_panels(benchmark, full_store, report):
    addresses, prefixes = benchmark.pedantic(
        _tables, args=(full_store,), rounds=1, iterations=1
    )

    report.section("Table 2a: stability of IPv6 addresses per day")
    report.add(_panel(addresses, True, "addresses, daily", PAPER["addr_daily_stable"]))
    report.section("Table 2b: stability of /64 prefixes per day")
    report.add(_panel(prefixes, True, "/64s, daily", PAPER["p64_daily_stable"]))
    report.section("Table 2c: stability of IPv6 addresses per week")
    report.add(
        _panel(addresses, False, "addresses, weekly", PAPER["addr_weekly_stable"])
    )
    report.section("Table 2d: stability of /64 prefixes per week")
    report.add(_panel(prefixes, False, "/64s, weekly", PAPER["p64_weekly_stable"]))

    addr_daily = addresses.daily_stable / max(1, addresses.daily_active)
    p64_daily = prefixes.daily_stable / max(1, prefixes.daily_active)
    addr_weekly = addresses.weekly_stable / max(1, addresses.weekly_active)
    p64_weekly = prefixes.weekly_stable / max(1, prefixes.weekly_active)
    report.add("")
    report.add(
        f"addr 3d-stable: daily {addr_daily:.1%} (paper 9.4%), "
        f"weekly {addr_weekly:.1%} (paper 3.8%)"
    )
    report.add(
        f"/64 3d-stable: daily {p64_daily:.1%} (paper 89.8%), "
        f"weekly {p64_weekly:.1%} (paper 80.3%)"
    )

    # Shape assertions.
    assert addr_daily < 0.5, "most addresses must not be 3d-stable"
    assert p64_daily > 0.5, "most /64s must be 3d-stable"
    assert p64_daily > 3 * addr_daily
    # Weekly stable share below daily: unions grow faster than stables.
    assert addr_weekly < addr_daily
    assert p64_weekly <= p64_daily + 0.05

    # Cross-epoch: tiny for addresses, substantial for /64s.
    addr_1y = addresses.cross_epoch_weekly["1y-stable (-1y)"] / max(
        1, addresses.weekly_active
    )
    p64_1y = prefixes.cross_epoch_weekly["1y-stable (-1y)"] / max(
        1, prefixes.weekly_active
    )
    report.add(
        f"1y-stable: addrs {addr_1y:.2%} (paper .100%), /64s {p64_1y:.1%} "
        "(paper 37.8%)"
    )
    assert addr_1y < 0.15
    assert p64_1y > 2 * addr_1y
    # 6m-stable is a superset of 1y-stable in count terms.
    assert (
        addresses.cross_epoch_weekly["6m-stable (-6m)"]
        >= addresses.cross_epoch_weekly["1y-stable (-1y)"] * 0.5
    )


@pytest.mark.benchmark(group="table2")
def test_table2_all_epochs_daily(benchmark, full_store, report):
    """The three-epoch sweep of panels (a) and (b)."""

    def sweep():
        results = {}
        for epoch in (EPOCH_2014_03, EPOCH_2014_09, EPOCH_2015_03):
            results[epoch] = (
                stability_table(full_store, str(epoch), epoch, n=3),
                stability_table(full_store.truncated(64), str(epoch), epoch, n=3),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.section("Table 2a/2b across epochs: daily 3d-stable shares")
    rows = []
    for epoch, (addresses, prefixes) in sorted(results.items()):
        addr_share = addresses.daily_stable / max(1, addresses.daily_active)
        p64_share = prefixes.daily_stable / max(1, prefixes.daily_active)
        rows.append([str(epoch), f"{addr_share:.1%}", f"{p64_share:.1%}"])
        assert addr_share < 0.5
        assert p64_share > 0.5
    report.add(
        render_table(
            ["epoch day", "addr 3d-stable", "/64 3d-stable"],
            rows,
            title="paper: addrs 9.2%/6.8%/9.4%; /64s 91.0%/89.9%/89.8%",
        )
    )
