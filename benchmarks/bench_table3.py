"""Table 3: dense prefixes at twelve density classes (router addresses).

Regenerates the full Table 3 sweep over the simulated router corpus plus
the §6.2.2 client-address section (2@/112-dense prefixes for one day of
WWW clients).  Shapes under test:

* every class finds a non-trivial set of dense prefixes in router space;
* tightening n at fixed p (64@/112 ... 2@/112) monotonically shrinks the
  prefix count and raises per-prefix density;
* widening p at fixed n (2@/112 -> /108 -> /104) monotonically lowers
  the address density (the paper's density column falls from 5.3e-5 to
  1.0e-6 across those rows);
* the possible-address budget (prefixes x span) stays surveyable for the
  small-p classes, the paper's feasibility argument.
"""

import pytest

from repro.analysis.tables import render_table, si_count
from repro.core.density import DensityClass, find_dense, table3
from repro.net.prefix import Prefix
from repro.sim import EPOCH_2015_03
from repro.sim.routers import build_router_corpus

from conftest import BENCH_SCALE, BENCH_SEED

#: Paper's Table 3 densities for shape reference (class -> density).
PAPER_DENSITY = {
    "2 @ /124": 0.1678459119,
    "3 @ /120": 0.0382372758,
    "2 @ /120": 0.0117351137,
    "2 @ /116": 0.0006670818,
    "64 @ /112": 0.0033593815,
    "32 @ /112": 0.0016417438,
    "16 @ /112": 0.0005259994,
    "8 @ /112": 0.0002057970,
    "4 @ /112": 0.0001026403,
    "2 @ /112": 0.0000534072,
    "2 @ /108": 0.0000056895,
    "2 @ /104": 0.0000010171,
}


@pytest.fixture(scope="module")
def router_corpus(internet):
    isps = [
        (network.name, network.allocation.prefixes[0])
        for network in internet.networks
        if network.allocation.kind in ("isp", "telco")
    ][:12]
    return build_router_corpus(
        BENCH_SEED, isps, scale=max(0.5, BENCH_SCALE * 4)
    )


@pytest.mark.benchmark(group="table3")
def test_table3_router_dense_prefixes(benchmark, router_corpus, report):
    addresses = router_corpus.observed_addresses()
    results = benchmark.pedantic(table3, args=(addresses,), rounds=1, iterations=1)

    report.section(
        f"Table 3: dense prefixes for {si_count(len(addresses))} router addrs"
    )
    rows = []
    for result in results:
        label = result.density_class.label
        rows.append(
            [
                label,
                si_count(result.num_prefixes),
                si_count(result.contained_addresses),
                si_count(result.possible_addresses),
                f"{result.address_density:.10f}",
                f"{PAPER_DENSITY[label]:.10f}",
            ]
        )
    report.add(
        render_table(
            ["Density Class", "Dense Prefixes", "Router Addrs",
             "Possible Addrs", "Density", "Paper Density"],
            rows,
        )
    )

    by_label = {r.density_class.label: r for r in results}

    # Router space is dense: every /112-family class finds prefixes.
    assert by_label["2 @ /112"].num_prefixes > 0
    assert by_label["2 @ /124"].num_prefixes > 0

    # Monotonicity in n at p=112.
    p112 = [by_label[f"{n} @ /112"].num_prefixes for n in (64, 32, 16, 8, 4, 2)]
    assert p112 == sorted(p112)

    # Density falls as p widens at n=2 (the paper's 5.3e-5 -> 1.0e-6).
    densities = [
        by_label["2 @ /112"].address_density,
        by_label["2 @ /108"].address_density,
        by_label["2 @ /104"].address_density,
    ]
    assert densities[0] > densities[1] > densities[2] > 0

    # Tight classes stay surveyable: 2@/124's possible-address budget is
    # within a small factor of the observed corpus.
    tight = by_label["2 @ /124"]
    assert tight.possible_addresses < len(addresses) * 100

    # Density ordering matches the paper row-for-row where defined: the
    # tightest class (2@/124) is orders of magnitude denser than the
    # widest (2@/104).
    assert (
        by_label["2 @ /124"].address_density
        > 1000 * by_label["2 @ /104"].address_density
    )


@pytest.mark.benchmark(group="table3")
def test_client_dense_prefixes_section(benchmark, internet, epoch_stores, report):
    """§6.2.2: 2@/112-dense prefixes among one day's WWW client addrs."""
    from repro.data import store as obstore

    day_array = epoch_stores[EPOCH_2015_03].array(EPOCH_2015_03)
    addresses = obstore.from_array(day_array)

    def run():
        return find_dense(day_array, DensityClass(2, 112))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("§6.2.2: client-address dense prefixes (one day)")
    report.add(
        f"2@/112-dense prefixes: {result.num_prefixes} "
        f"(paper: 128K at full scale)"
    )
    report.add(
        f"client addrs therein: {result.contained_addresses} (paper: 1.38M)"
    )
    report.add(
        f"possible probe targets: {si_count(result.possible_addresses)} "
        f"(paper: 8.39B)"
    )
    assert result.num_prefixes > 0
    # Dense client blocks exist but hold a small minority of all client
    # addresses (the paper: 1.38M of 318M, ~0.4%; scaled sims run denser).
    assert result.contained_addresses < len(addresses) * 0.25
    # They come from the statically numbered populations, not privacy
    # space: every dense prefix must contain >= 2 distinct addresses.
    assert all(count >= 2 for _n, _l, count in result.prefixes)
