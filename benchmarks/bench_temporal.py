"""Temporal classification benchmark: sweep engine versus per-day scans.

Measures the §5.1 stability classifier over a year-long synthetic store
(persistent + ephemeral address populations, so the stability classes
are non-trivial):

* **per_day_seed** — the pre-sweep per-day path kept verbatim: for every
  reference day, re-scan all window days with membership tests and
  scalar-dispatch ``np.minimum.at``/``np.maximum.at`` updates.
* **per_day** — the current :func:`repro.core.temporal.classify_day`
  (vectorized ``np.where`` updates) called once per day — the baseline
  the sweep is judged against.
* **sweep_serial** — :func:`repro.core.sweep.sweep_days` in one process.
* **sweep_jobs** — the same sweep fanned out over worker processes.
* **sweep_both_granularities** — /128 and /64 sweeps sharing one pool
  (:func:`repro.core.sweep.sweep_granularities`).
* **stream** — :class:`repro.core.streaming.StabilityStream` fed day by
  day (the online path, including its flush tail).

All sweep and stream outputs are asserted bit-identical to the per-day
baseline before any speedup is reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_temporal.py            # 365 days x 100k
    PYTHONPATH=src python benchmarks/bench_temporal.py --quick    # CI smoke: 40 x 3k
    PYTHONPATH=src python benchmarks/bench_temporal.py --out BENCH_temporal.json

The results (durations, speedups, configuration) are written as JSON;
the repo keeps a reference run in ``BENCH_temporal.json``.  Not a pytest
module — run it as a script.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.streaming import StabilityStream  # noqa: E402
from repro.core.sweep import sweep_days, sweep_granularities  # noqa: E402
from repro.core.temporal import StabilityResult, classify_day  # noqa: E402
from repro.data import store as obstore  # noqa: E402
from repro.data.store import DailyObservations, ObservationStore  # noqa: E402


# --------------------------------------------------------------------------
# Pre-sweep per-day path, kept verbatim so the comparison stays honest
# even as the library's own classifier keeps improving.
# --------------------------------------------------------------------------


def _seed_classify_day(
    observations: ObservationStore,
    reference_day: int,
    window_before: int = 7,
    window_after: int = 7,
) -> StabilityResult:
    active = observations.array(reference_day)
    size = obstore.array_size(active)
    min_day = np.full(size, reference_day, dtype=np.int64)
    max_day = np.full(size, reference_day, dtype=np.int64)
    for day in range(reference_day - window_before, reference_day + window_after + 1):
        if day == reference_day or day not in observations:
            continue
        present = obstore.member_mask(active, observations.array(day))
        if day < reference_day:
            np.minimum.at(min_day, np.nonzero(present)[0], day)
        else:
            np.maximum.at(max_day, np.nonzero(present)[0], day)
    return StabilityResult(
        reference_day=reference_day,
        window=(window_before, window_after),
        active=active,
        gaps=max_day - min_day,
    )


# --------------------------------------------------------------------------
# Synthetic data + measurement
# --------------------------------------------------------------------------


def build_synthetic_store(
    days: int, addrs_per_day: int, seed: int
) -> ObservationStore:
    """A store with realistic temporal structure.

    A quarter of each day's budget comes from a persistent pool (each
    pool address active on any day with p=0.8 — the stable hosts); the
    rest are fresh privacy-style addresses never seen again.  Addresses
    share a pool of /64 networks so the /64 granularity aggregates.
    """
    rng = np.random.default_rng(seed)
    networks = rng.integers(
        0, 1 << 48, size=max(addrs_per_day // 8, 1), dtype=np.uint64
    )
    networks = (networks << np.uint64(16)) | np.uint64(0x2000) << np.uint64(48)
    pool_size = max(addrs_per_day // 4, 1)
    pool_hi = rng.choice(networks, size=pool_size)
    pool_lo = rng.integers(0, 1 << 62, size=pool_size, dtype=np.uint64)
    store = ObservationStore()
    for day in range(days):
        keep = rng.random(pool_size) < 0.8
        ephemeral = addrs_per_day - int(np.count_nonzero(keep))
        eph_hi = rng.choice(networks, size=ephemeral)
        eph_lo = rng.integers(1 << 62, 1 << 63, size=ephemeral, dtype=np.uint64)
        hi = np.concatenate([pool_hi[keep], eph_hi])
        lo = np.concatenate([pool_lo[keep], eph_lo])
        store.add_observations(DailyObservations.from_halves(day, hi, lo))
    return store


def _timed(fn) -> Tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _assert_identical(
    name: str, baseline: List[StabilityResult], candidate: List[StabilityResult]
) -> None:
    assert len(baseline) == len(candidate), name
    for base, other in zip(baseline, candidate):
        assert base.reference_day == other.reference_day, name
        assert np.array_equal(base.active, other.active), (
            f"{name}: active differs on day {base.reference_day}"
        )
        assert np.array_equal(base.gaps, other.gaps), (
            f"{name}: gaps differ on day {base.reference_day}"
        )


def run_benchmark(
    days: int,
    addrs_per_day: int,
    jobs: int,
    seed: int,
    skip_seed_baseline: bool,
) -> Dict:
    store = build_synthetic_store(days, addrs_per_day, seed)
    day_list = store.days()
    results: Dict[str, float] = {}

    if not skip_seed_baseline:
        results["per_day_seed"], seed_results = _timed(
            lambda: [_seed_classify_day(store, day) for day in day_list]
        )
    else:
        seed_results = None

    results["per_day"], per_day = _timed(
        lambda: [classify_day(store, day) for day in day_list]
    )
    results["sweep_serial"], swept = _timed(lambda: sweep_days(store))
    results["sweep_jobs"], swept_jobs = _timed(lambda: sweep_days(store, jobs=jobs))
    results["sweep_both_granularities"], both = _timed(
        lambda: sweep_granularities(store, [128, 64], jobs=jobs)
    )

    def run_stream():
        stream = StabilityStream()
        emitted: List[StabilityResult] = []
        for observations in store.iter_days():
            emitted.extend(stream.push_observations(observations))
        emitted.extend(stream.flush())
        return emitted

    results["stream"], streamed = _timed(run_stream)

    _assert_identical("sweep_serial", per_day, swept)
    _assert_identical("sweep_jobs", per_day, swept_jobs)
    _assert_identical("sweep_granularities[128]", per_day, both[128])
    _assert_identical("stream", per_day, streamed)
    if seed_results is not None:
        _assert_identical("per_day_seed", per_day, seed_results)

    speedups = {
        "sweep_vs_per_day": results["per_day"] / results["sweep_serial"],
        "sweep_jobs_vs_per_day": results["per_day"] / results["sweep_jobs"],
        "sweep_jobs_vs_serial": results["sweep_serial"] / results["sweep_jobs"],
        "stream_vs_per_day": results["per_day"] / results["stream"],
    }
    if "per_day_seed" in results:
        speedups["per_day_vs_seed"] = results["per_day_seed"] / results["per_day"]
        speedups["sweep_vs_seed"] = results["per_day_seed"] / results["sweep_serial"]

    return {
        "config": {
            "days": days,
            "addrs_per_day": addrs_per_day,
            "jobs": jobs,
            "seed": seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "seconds": {k: round(v, 4) for k, v in results.items()},
        "speedups": {k: round(v, 2) for k, v in speedups.items()},
        "verified": "bit-identical to per-day classify_day",
        "targets": {
            "sweep_vs_per_day >= 5x": round(speedups["sweep_vs_per_day"], 2),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=365)
    parser.add_argument("--addrs", type=int, default=100_000, help="addresses per day")
    parser.add_argument("--jobs", type=int, default=min(os.cpu_count() or 1, 8))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="tiny run for CI smoke (40 days x 3k)"
    )
    parser.add_argument(
        "--no-seed-baseline",
        action="store_true",
        help="skip the slow pre-sweep per-day measurement",
    )
    parser.add_argument("--out", default=None, help="write results JSON here")
    args = parser.parse_args(argv)
    if args.quick:
        args.days, args.addrs = 40, 3_000

    report = run_benchmark(
        args.days, args.addrs, args.jobs, args.seed, args.no_seed_baseline
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    for label, value in report["speedups"].items():
        print(f"  {label}: {value:.2f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
