"""Shared fixtures for the benchmark suite.

Every bench regenerates one table or figure of the paper.  The simulated
internet is built once per session at ``REPRO_BENCH_SCALE`` (default
0.15) and its daily logs for the three measurement epochs are shared
across benches.  Each bench writes its paper-versus-measured report to
``reports/<name>.txt`` (and the same text is attached to the benchmark's
``extra_info``), so the full set of regenerated tables survives the run.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.data.store import ObservationStore
from repro.sim import (
    EPOCH_2014_03,
    EPOCH_2014_09,
    EPOCH_2015_03,
    InternetConfig,
    build_internet,
)
from repro.sim.scenarios import epoch_days

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))

REPORT_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "reports")


@pytest.fixture(scope="session")
def internet():
    """The session-wide simulated internet."""
    return build_internet(seed=BENCH_SEED, config=InternetConfig(scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def epoch_stores(internet) -> Dict[int, ObservationStore]:
    """Daily logs around each of the three measurement epochs."""
    return {
        epoch: internet.build_store(epoch_days(epoch))
        for epoch in (EPOCH_2014_03, EPOCH_2014_09, EPOCH_2015_03)
    }


@pytest.fixture(scope="session")
def full_store(epoch_stores) -> ObservationStore:
    """All three epochs merged into one store (for cross-epoch classes)."""
    merged = ObservationStore()
    for store in epoch_stores.values():
        for observations in store.iter_days():
            merged.add_observations(observations)
    return merged


@pytest.fixture()
def report(request):
    """Collect report lines; write them to reports/<test>.txt at teardown."""
    lines = []

    class Reporter:
        def add(self, text: str = "") -> None:
            lines.append(text)

        def section(self, title: str) -> None:
            lines.append("")
            lines.append(f"== {title} ==")

    reporter = Reporter()
    yield reporter
    os.makedirs(REPORT_DIR, exist_ok=True)
    name = request.node.name.replace("[", "_").replace("]", "")
    path = os.path.join(REPORT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    # Echo the report so `pytest -s` shows it inline too.
    print()
    print("\n".join(lines))
