#!/usr/bin/env python3
"""Reverse-engineering addressing plans from passive observations (§7.2).

The paper's future-work proposal: discover the *stable portions of
network identifiers* automatically — the longest prefixes that persist
across many days of observations — and read the operator's address plan
off the result.  This script runs the discovery against four networks
with sharply different (ground-truth) plans and prints what a passive
observer would conclude about each.

Run:  python examples/address_plan_discovery.py
"""

from repro.core.stableprefix import longest_stable_prefixes
from repro.sim import EPOCH_2015_03, InternetConfig, build_internet
from repro.sim.scenarios import single_network_store

SEED = 13
LENGTHS = tuple(range(128, 28, -4))

TRUTH = {
    "jp-isp": "static /48 per subscriber, one /64 in use",
    "us-mobile-1": "dynamic /64s from LRU pools under /44s",
    "eu-isp": "pseudorandom 15-bit network id at bits 41-55, rotating",
    "eu-univ-dept": "one shared /64, static DHCP host numbers",
}


def interpret(name: str, dominant: int) -> str:
    """What the dominant stable-prefix length says about the plan."""
    if dominant >= 96:
        return (
            "full addresses are stable: statically numbered hosts; "
            "count addresses, not /64s, to estimate devices"
        )
    if dominant == 64:
        return (
            "/64s are the stable unit; active-/64 counts approximate "
            "subscribers (or pool slots — check reuse!)"
        )
    if dominant > 0:
        return (
            f"the stable boundary sits at /{dominant}: network ids below "
            "it churn, so counting /64s would miscount subscribers"
        )
    return "nothing stable observed"


def main() -> None:
    internet = build_internet(seed=SEED, config=InternetConfig(scale=0.1))
    for name, plan_truth in TRUTH.items():
        network = next(n for n in internet.networks if n.name == name)
        # A month sampled every third day: horizons must exceed any
        # rotation period for the boundary to show.
        days = list(range(EPOCH_2015_03, EPOCH_2015_03 + 30, 3))
        store = single_network_store(network, days, seed=SEED)
        report = longest_stable_prefixes(store, n=3, lengths=LENGTHS, min_days=5)
        dominant = report.dominant_length()
        histogram = dict(sorted(report.by_length().items()))
        print(f"{name}")
        print(f"  ground-truth plan : {plan_truth}")
        print(f"  stable lengths    : {histogram}")
        print(f"  dominant boundary : /{dominant}")
        print(f"  interpretation    : {interpret(name, dominant)}")
        print()


if __name__ == "__main__":
    main()
