#!/usr/bin/env python3
"""Operating on aggregated log files: the on-disk pipeline.

The library's analyses run off plain text logs — one file per day, one
``address hit-count`` line per active client — so external datasets
(public hitlists, zmap output) convert in with an awk one-liner.  This
script writes a week of simulated logs to a temporary directory, reads
them back, and runs the classifiers, demonstrating the file format and
round trip.  The same files drive the CLI tools::

    repro-census   logs/log-*.txt
    repro-stability --reference 447 logs/log-*.txt
    repro-mra      logs/log-*.txt
    repro-dense    --density 2@/112 logs/log-*.txt

Run:  python examples/analyze_logs.py
"""

import os
import tempfile

from repro.analysis.tables import count_with_share, si_count
from repro.core import census, classify_week
from repro.data import logfile
from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

SEED = 3
WEEK = list(range(EPOCH_2015_03, EPOCH_2015_03 + 7))


def main() -> None:
    internet = build_internet(seed=SEED, config=InternetConfig(scale=0.05))
    # Daily logs need the surrounding window for stability analysis.
    days = range(EPOCH_2015_03 - 8, EPOCH_2015_03 + 14)
    store = internet.build_store(days)

    with tempfile.TemporaryDirectory() as directory:
        paths = logfile.save_store(store, directory)
        print(f"wrote {len(paths)} daily logs to {directory}")
        sample_path = paths[len(paths) // 2]
        with open(sample_path) as handle:
            lines = handle.readlines()
        print(f"sample ({os.path.basename(sample_path)}):")
        for line in lines[:4]:
            print(f"  {line.rstrip()}")
        print(f"  ... {len(lines) - 4} more lines")

        loaded = logfile.load_store(paths)
        assert loaded.days() == store.days()

        row = census(loaded.union_over(WEEK), "week")
        print(
            f"\nweekly census: {si_count(row.total)} addresses, "
            f"{count_with_share(row.other, row.total)} native, "
            f"{si_count(row.other_64s)} /64s"
        )

        weekly = classify_week(loaded, WEEK, 3)
        print(
            f"weekly 3d-stable: "
            f"{count_with_share(weekly.stable_count, weekly.active_count)}"
        )


if __name__ == "__main__":
    main()
