#!/usr/bin/env python3
"""Generate the full figure gallery: every paper figure as ASCII + CSV.

Writes ``figures/`` with one ``.txt`` (ASCII panel) and one ``.csv``
(raw series for external plotting) per figure of the paper, from a
freshly simulated dataset.  This is the release artifact a reader uses
to re-plot the reproduction in their own stack.

Run:  python examples/generate_figures.py [output-dir]
"""

import os
import sys

from repro.core.format import TransitionKind, transition_kind
from repro.core.mra import profile, segment_ratio_matrix
from repro.core.population import figure3_series
from repro.core.temporal import window_series
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03, InternetConfig, build_internet
from repro.viz import (
    CcdfPlot,
    mra_plot,
    per_asn_counts,
    render_boxplot,
    segment_box_stats,
    write_boxstats_csv,
    write_ccdf_csv,
    write_mra_csv,
    write_series_csv,
)

SEED = 42
SCALE = 0.1
WEEK = range(EPOCH_2015_03, EPOCH_2015_03 + 7)


def save(directory: str, name: str, text: str) -> None:
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"  wrote {path}")


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else "figures"
    os.makedirs(directory, exist_ok=True)

    print("simulating ...")
    internet = build_internet(seed=SEED, config=InternetConfig(scale=SCALE))
    store = internet.build_store(range(EPOCH_2015_03 - 8, EPOCH_2015_03 + 8))
    weekly = obstore.from_array(store.union_over(WEEK))
    native = [v for v in weekly if transition_kind(v) is TransitionKind.OTHER]

    # Figure 2 panels come from dedicated single networks; Figure 5c-5h
    # panels from the full mixture's per-network subsets.
    panels = {"fig5c_all_native": native}
    for name, key in (
        ("fig5d_6to4", None),
        ("fig5e_us_mobile", "us-mobile-1"),
        ("fig5f_eu_isp", "eu-isp"),
        ("fig5g_eu_univ_dept", "eu-univ-dept"),
        ("fig5h_jp_isp", "jp-isp"),
    ):
        if key is None:
            panels[name] = [
                v for v in weekly
                if transition_kind(v) is TransitionKind.SIXTO4
            ]
        else:
            network = next(n for n in internet.networks if n.name == key)
            panels[name] = [
                v for v in weekly
                if any(p.contains(v) for p in network.allocation.prefixes)
            ]

    print("rendering MRA panels ...")
    for name, values in panels.items():
        plot = mra_plot(values, title=name)
        save(directory, name, plot.render_ascii())
        write_mra_csv(plot, os.path.join(directory, f"{name}.csv"))

    print("rendering Figure 3 ...")
    fig3 = CcdfPlot(title="Figure 3: aggregate population CCDFs")
    for series in figure3_series(store.union_over(WEEK)):
        fig3.add_points(series.label, series.points())
    save(directory, "fig3_population_ccdfs", fig3.render_ascii())
    write_ccdf_csv(fig3, os.path.join(directory, "fig3_population_ccdfs.csv"))

    print("rendering Figure 4 ...")
    for label, granularity in (("fig4a_addresses", 128), ("fig4b_64s", 64)):
        view = store if granularity == 128 else store.truncated(64)
        series = window_series(view, EPOCH_2015_03)
        write_series_csv(
            os.path.join(directory, f"{label}.csv"),
            ["day", "active", "common_with_reference"],
            series.rows(),
        )
        print(f"  wrote {directory}/{label}.csv")

    print("rendering Figure 5a ...")
    groups = internet.registry.group_by_asn(native)
    fig5a = CcdfPlot(title="Figure 5a: per-ASN counts")
    fig5a.add("active addresses per ASN", per_asn_counts(groups))
    save(directory, "fig5a_per_asn", fig5a.render_ascii())
    write_ccdf_csv(fig5a, os.path.join(directory, "fig5a_per_asn.csv"))

    print("rendering Figure 5b ...")
    prefix_groups = internet.registry.group_by_prefix(native)
    profiles = [
        profile(values) for values in prefix_groups.values() if len(values) >= 10
    ]
    stats = segment_box_stats(segment_ratio_matrix(profiles))
    save(directory, "fig5b_segment_boxes", render_boxplot(stats))
    write_boxstats_csv(stats, os.path.join(directory, "fig5b_segment_boxes.csv"))

    print(f"\ndone: {len(os.listdir(directory))} files in {directory}/")


if __name__ == "__main__":
    main()
