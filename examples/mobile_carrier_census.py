#!/usr/bin/env python3
"""Case study: why counting a mobile carrier's /64s misleads (§6.2.1, §7.1).

A dynamic-pool carrier (the paper's Figure 5e network) hands each UE a
fresh /64 from capacity-sized pools on every association.  This script
measures, against simulator ground truth:

* how the weekly active /64 count compares to the true subscriber count
  (the §7.1 overcount),
* how quickly individual /64s are *reused by different subscribers*
  (the operator-confirmed behaviour: "in just days"),
* why "stable addresses" appear in a network with dynamic network
  identifiers: fixed interface identifiers riding on reused /64s, and
* the weekly MRA saturation of the pool segment.

Run:  python examples/mobile_carrier_census.py
"""

from collections import defaultdict

from repro.data import store as obstore
from repro.sim import EPOCH_2015_03, InternetConfig, build_internet
from repro.sim.scenarios import single_network_store
from repro.viz.mra_plot import mra_plot

SEED = 21
WEEK = list(range(EPOCH_2015_03, EPOCH_2015_03 + 7))


def main() -> None:
    internet = build_internet(seed=SEED, config=InternetConfig(scale=0.1))
    carrier = next(n for n in internet.networks if n.name == "us-mobile-1")
    store = single_network_store(carrier, WEEK, seed=SEED)

    # --- /64 counts vs subscribers -----------------------------------
    weekly_64s = obstore.from_array(store.truncated(64).union_over(WEEK))
    subscribers = set()
    for day in WEEK:
        subscribers.update(carrier.population.active_subscribers(day))
    print(f"weekly active /64s:       {len(weekly_64s)}")
    print(f"weekly active subscribers: {len(subscribers)}")
    print(
        f"-> the /64 count overcounts subscribers "
        f"{len(weekly_64s) / len(subscribers):.1f}x\n"
    )

    # --- /64 reuse across subscribers --------------------------------
    plan = carrier.plan
    holders = defaultdict(set)
    for day in WEEK:
        for subscriber_id in carrier.population.active_subscribers(day):
            for association in range(plan.associations(subscriber_id, day)):
                network = plan.network_identifier(subscriber_id, day, association)
                holders[network].add(subscriber_id)
    reused = sum(1 for owners in holders.values() if len(owners) > 1)
    print(
        f"/64s assigned to more than one subscriber within the week: "
        f"{reused} of {len(holders)} ({reused / len(holders):.0%})"
    )
    print("-> the paper's operator: reuse 'can occur in just days'\n")

    # --- apparent stability from fixed IIDs --------------------------
    week_union = obstore.from_array(store.union_over(WEEK))
    daily_sets = [set(obstore.from_array(store.array(day))) for day in WEEK]
    recurring = [
        value
        for value in week_union
        if sum(value in day_set for day_set in daily_sets) >= 3
    ]
    fixed_one = sum(1 for value in recurring if value & 0xFFFFFFFFFFFFFFFF == 1)
    print(
        f"addresses recurring on 3+ days: {len(recurring)} "
        f"({fixed_one} with the ::1 fixed IID)"
    )
    print(
        "-> 'stable' addresses in a dynamic network: fixed IIDs on "
        "reused /64s, usually a *different* subscriber each time (§6.1.1)\n"
    )

    # --- the Figure 5e MRA signature ----------------------------------
    plot = mra_plot(week_union, title="US mobile carrier, one week")
    print(plot.render_ascii())
    capacity = len(carrier.allocation.prefixes) * (1 << plan.pool_bits)
    print(
        f"\npool utilization: {len(weekly_64s)}/{capacity} /64 slots "
        f"({len(weekly_64s) / capacity:.0%}) — the 44-64 bit segment "
        "saturates, as in Figure 5e"
    )


if __name__ == "__main__":
    main()
