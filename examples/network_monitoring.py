#!/usr/bin/env python3
"""Continuous monitoring: streaming stability, churn, change detection.

The production setting the paper's methods serve: one aggregated log
arrives per day, forever.  This script simulates that feed and runs the
online pipeline day by day:

1. :class:`~repro.core.streaming.StabilityStream` classifies each day as
   soon as its (-7d,+7d) window completes, with bounded memory;
2. churn counters track born/died/retained addresses per day;
3. the turnover detector watches for renumbering events — and catches
   the one this script injects.

Run:  python examples/network_monitoring.py
"""

from repro.core.changes import detect_changes, turnover_series
from repro.core.churn import survival_curve
from repro.core.streaming import StabilityStream
from repro.data.store import ObservationStore, from_array
from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

SEED = 17
START = EPOCH_2015_03 - 8
NUM_DAYS = 24
RENUMBER_AT = START + 16  # inject an operator migration here
RENUMBER_OFFSET = 0xBEEF << 80


def main() -> None:
    internet = build_internet(seed=SEED, config=InternetConfig(scale=0.05))
    jp = next(n for n in internet.networks if n.name == "jp-isp")
    prefix = jp.allocation.prefixes[0]

    stream = StabilityStream(window_before=7, window_after=7)
    archive = ObservationStore()  # kept only for the offline comparisons

    print("day-by-day feed (jp-isp view):")
    for day in range(START, START + NUM_DAYS):
        addresses = [
            value
            for value in internet.day_addresses(day, include_transition=False)
            if prefix.contains(value)
        ]
        # The injected renumbering: the operator migrates all network
        # ids to fresh space.
        if day >= RENUMBER_AT:
            addresses = [value + RENUMBER_OFFSET for value in addresses]
        archive.add_day(day, addresses)
        completed = stream.push(day, addresses)
        for result in completed:
            stable = result.stable_count(3)
            print(
                f"  day {result.reference_day}: {result.active_count:4d} active, "
                f"{stable:3d} 3d-stable ({result.stable_fraction(3):5.1%})  "
                f"[{stream.days_held} days buffered]"
            )
    for result in stream.flush():
        print(
            f"  day {result.reference_day}: {result.active_count:4d} active "
            f"(tail, partial window)"
        )

    print("\nsurvival from the first full day:")
    for distance, probability in survival_curve(archive, START + 1, 5):
        print(f"  P(seen again at +{distance}d) = {probability:.1%}")

    print("\nchange detection over the /64 sets:")
    series = turnover_series(archive, range(START, START + NUM_DAYS))
    events = detect_changes(series)
    for event in events:
        marker = " <- the injected migration" if event.day == RENUMBER_AT else ""
        print(
            f"  RENUMBERING at day {event.day}: retention "
            f"{event.retention:.2f} vs baseline {event.baseline:.2f}{marker}"
        )
    if not events:
        print("  (none detected)")


if __name__ == "__main__":
    main()
