#!/usr/bin/env python3
"""Quickstart: classify a simulated day of IPv6 WWW client activity.

Builds a small simulated internet, generates daily aggregated logs
around one reference day, and runs the paper's full toolchain:

1. census (Table-1-style characteristics, culling transition mechanisms),
2. temporal classification (3d-stable addresses and /64s),
3. an MRA plot of the native address set,
4. dense-prefix discovery (the 2@/112 class).

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import count_with_share, render_table, si_count
from repro.core import census, classify_day, find_dense
from repro.core.density import DensityClass
from repro.sim import EPOCH_2015_03, InternetConfig, build_internet
from repro.viz.mra_plot import mra_plot

SEED = 7
SCALE = 0.1
REFERENCE = EPOCH_2015_03


def main() -> None:
    print("building the simulated internet ...")
    internet = build_internet(seed=SEED, config=InternetConfig(scale=SCALE))
    store = internet.build_store(range(REFERENCE - 8, REFERENCE + 8))

    # 1. Census of the reference day.
    row = census(store.array(REFERENCE), "reference day")
    print()
    print(
        render_table(
            ["characteristic", "value"],
            [
                ["Teredo addresses", count_with_share(row.teredo, row.total)],
                ["ISATAP addresses", count_with_share(row.isatap, row.total)],
                ["6to4 addresses", count_with_share(row.sixto4, row.total)],
                ["Other addresses", count_with_share(row.other, row.total)],
                ["Other /64 prefixes", si_count(row.other_64s)],
                ["ave. addrs per /64", f"{row.avg_addrs_per_64:.2f}"],
                ["EUI-64 addr (!6to4)", count_with_share(row.eui64_not_6to4, row.total)],
            ],
            title=f"Census: {si_count(row.total)} active addresses",
        )
    )

    # 2. Temporal classification with the (-7d,+7d) window.
    addresses = classify_day(store, REFERENCE)
    prefixes = classify_day(store.truncated(64), REFERENCE)
    print()
    print(
        render_table(
            ["class", "addresses", "/64 prefixes"],
            [
                [
                    "3d-stable",
                    count_with_share(addresses.stable_count(3), addresses.active_count),
                    count_with_share(prefixes.stable_count(3), prefixes.active_count),
                ],
                [
                    "not 3d-stable",
                    count_with_share(
                        addresses.active_count - addresses.stable_count(3),
                        addresses.active_count,
                    ),
                    count_with_share(
                        prefixes.active_count - prefixes.stable_count(3),
                        prefixes.active_count,
                    ),
                ],
            ],
            title="Stability (-7d,+7d): addresses churn, /64s persist",
        )
    )

    # 3. MRA plot of the native set.
    native = row.other_addresses
    plot = mra_plot(native, title="MRA: all native client addresses")
    print()
    print(plot.render_ascii())

    # 4. Dense prefixes: natural targets for active measurement.
    dense = find_dense(native, DensityClass(2, 112))
    print()
    print(
        f"2@/112-dense prefixes: {dense.num_prefixes} "
        f"({dense.contained_addresses} client addrs inside, "
        f"{si_count(dense.possible_addresses)} possible probe targets)"
    )


if __name__ == "__main__":
    main()
