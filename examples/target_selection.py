#!/usr/bin/env python3
"""Target selection for active IPv6 measurement (§6.1.1, §6.2.2, §6.2.3).

The IPv6 space cannot be scanned exhaustively; the paper's classifiers
pick *where to look*.  This script demonstrates the complete loop:

1. classify a day of client activity; keep the 3d-stable addresses,
2. probe them (simulated TTL-limited traceroute) and compare router
   discovery against the naive random-client strategy,
3. find dense prefixes among the discovered router addresses, enumerate
   their spans as scan targets (the /112-as-IPv4-/16 analogy), and
4. harvest extra PTR names by scanning a dense class (the §6.2.3 yield).

Run:  python examples/target_selection.py
"""

import random

from repro.core import classify_day
from repro.core.density import DensityClass, find_dense, scan_targets
from repro.data import store as obstore
from repro.sim import EPOCH_2015_03, InternetConfig, build_internet
from repro.sim.dns import ptr_yield, zone_from_routers
from repro.sim.probing import build_topology, improvement, run_campaign
from repro.sim.routers import build_router_corpus

SEED = 5


def main() -> None:
    internet = build_internet(seed=SEED, config=InternetConfig(scale=0.1))
    store = internet.build_store(range(EPOCH_2015_03 - 8, EPOCH_2015_03 + 8))

    # 1. Stable addresses are the probe-worthy ones.
    result = classify_day(store, EPOCH_2015_03)
    stable = obstore.from_array(result.stable(3))
    active = obstore.from_array(result.active)
    print(f"active on reference day: {len(active)}; 3d-stable: {len(stable)}")

    # 2. Probe comparison.  Infrastructure responsiveness differs by
    # operator kind: cellular networks filter ICMP heavily, which is one
    # of the two reasons random (mobile-dominated) target lists discover
    # fewer routers.
    responsiveness = {"mobile": 0.05, "isp": 0.55, "telco": 0.9,
                      "hosting": 0.9, "university": 0.9}
    corpus = build_router_corpus(SEED, [], scale=0.5)
    for kind, share in responsiveness.items():
        isps = [
            (n.name, n.allocation.prefixes[0])
            for n in internet.networks
            if n.allocation.kind == kind
        ][:12]
        partial = build_router_corpus(SEED, isps, scale=0.5, responsiveness=share)
        corpus.interfaces.extend(partial.interfaces)
        corpus.responsive.update(partial.responsive)
    probe_day = EPOCH_2015_03 + 5
    live = obstore.from_array(store.union_over(range(probe_day - 1, probe_day + 2)))
    topology = build_topology(
        SEED,
        corpus,
        [int(hi) for hi in store.truncated(64).array(probe_day)["hi"]],
        isp_prefixes={n.name: n.allocation.prefixes[0] for n in internet.networks},
        live_addresses=live,
    )
    rng = random.Random(SEED)
    count = min(150, len(stable))
    stable_campaign = run_campaign(
        SEED, topology, rng.sample(list(stable), count), corpus, "3d-stable"
    )
    random_campaign = run_campaign(
        SEED, topology, rng.sample(list(active), count), corpus, "random clients"
    )
    gain = improvement(stable_campaign, random_campaign)
    print(
        f"router discovery: stable targets {stable_campaign.discovered_count} "
        f"vs random {random_campaign.discovered_count} ({gain:+.0%}; "
        "paper: +129%)"
    )

    # 3. Dense prefixes among discovered routers -> scan targets.
    dense = find_dense(
        sorted(stable_campaign.discovered), DensityClass(2, 112)
    )
    targets = scan_targets(dense, limit=200_000)
    print(
        f"2@/112-dense prefixes among discovered routers: {dense.num_prefixes}"
        f" -> {len(targets)} enumerable scan targets"
        " (a /112 scans like an IPv4 /16)"
    )

    # 4. PTR harvest from a dense class.
    zone = zone_from_routers(corpus)
    observed = corpus.observed_addresses()
    dense_120 = find_dense(observed, DensityClass(3, 120))
    yield_result = ptr_yield(zone, observed, dense_120.prefixes)
    print(
        f"PTR names: active-only {yield_result.active_names}, "
        f"dense-prefix scan {yield_result.scan_names} "
        f"(+{yield_result.extra_names} extra; paper: +47K)"
    )


if __name__ == "__main__":
    main()
