"""Setup shim for environments without the `wheel` package (offline dev)."""
from setuptools import setup

setup()
