"""repro: reproduction of Plonka & Berger, "Temporal and Spatial
Classification of Active IPv6 Addresses" (ACM IMC 2015).

The package implements the paper's classifiers from scratch, together
with every substrate the study depends on:

* :mod:`repro.net` — IPv6 address/prefix/MAC machinery;
* :mod:`repro.trie` — Patricia trie, aguri aggregation, densify;
* :mod:`repro.core` — the temporal and spatial classifiers, the
  address-format classifier, the Malone-style baseline, MRA, population
  distributions, dense prefixes, longest-stable-prefix discovery, and
  the census pipeline;
* :mod:`repro.data` — the day-indexed observation store and log I/O;
* :mod:`repro.sim` — the synthetic internet + CDN-log simulator that
  substitutes for the paper's proprietary data sources;
* :mod:`repro.viz` — MRA plots, CCDFs and box plots as data and ASCII;
* :mod:`repro.analysis` — paper-style table formatting.

Quick start::

    from repro.sim import build_internet, InternetConfig, EPOCH_2015_03
    from repro.core import census, classify_day

    internet = build_internet(seed=7, config=InternetConfig(scale=0.2))
    store = internet.build_store(range(EPOCH_2015_03 - 8, EPOCH_2015_03 + 8))
    row = census(store.array(EPOCH_2015_03))
    stability = classify_day(store, EPOCH_2015_03)
    print(row.other, stability.stable_count(3))
"""

from repro.core import (
    census,
    classify,
    classify_day,
    classify_week,
    find_dense,
    profile,
    stability_table,
    table3,
)
from repro.data import ObservationStore
from repro.net import IPv6Address, Prefix

__version__ = "1.0.0"

__all__ = [
    "IPv6Address",
    "ObservationStore",
    "Prefix",
    "__version__",
    "census",
    "classify",
    "classify_day",
    "classify_week",
    "find_dense",
    "profile",
    "stability_table",
    "table3",
]
