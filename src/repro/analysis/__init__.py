"""Report formatting helpers."""

from repro.analysis.tables import count_with_share, percent, render_table, si_count

__all__ = ["count_with_share", "percent", "render_table", "si_count"]
