"""Paper-style table formatting.

The paper reports counts with three-significant-figure SI suffixes
("30.1M", "1.81M", "64.2K") and shares as percentages with three
significant figures ("9.44%", ".296%").  The benchmarks print their rows
in the same style so paper-versus-measured comparison is eyeball-direct;
this module supplies the formatters and a minimal fixed-width table
renderer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

_SUFFIXES = ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K"))


def si_count(value: float) -> str:
    """Format a count the way the paper does: ``30.1M``, ``1.8B``, ``64.2K``.

    Three significant figures, suffix chosen by magnitude, no suffix under
    one thousand.
    """
    if value < 0:
        return "-" + si_count(-value)
    for threshold, suffix in _SUFFIXES:
        if value >= threshold:
            scaled = value / threshold
            if scaled >= 100:
                return f"{scaled:.0f}{suffix}"
            if scaled >= 10:
                return f"{scaled:.1f}{suffix}"
            return f"{scaled:.2f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def percent(fraction: float) -> str:
    """Format a share as the paper does: ``9.44%``, ``.296%``, ``92.0%``.

    Three significant figures; a leading zero is dropped below 1% to
    match the paper's style (``.103%``).
    """
    value = fraction * 100.0
    if value >= 100:
        return f"{value:.0f}%"
    if value >= 10:
        return f"{value:.1f}%"
    if value >= 1:
        return f"{value:.2f}%"
    text = f"{value:.3f}"
    # Trim to three significant figures and drop the leading zero.
    if value > 0:
        digits = 0
        out: List[str] = []
        seen_nonzero = False
        for char in text:
            out.append(char)
            if char.isdigit():
                if char != "0":
                    seen_nonzero = True
                if seen_nonzero:
                    digits += 1
                if digits == 3:
                    break
        text = "".join(out)
    return text.lstrip("0") + "%" if text.startswith("0.") else text + "%"


def count_with_share(count: float, total: float) -> str:
    """``30.1M (9.44%)`` — the paper's combined cell format."""
    share = count / total if total else 0.0
    return f"{si_count(count)} ({percent(share)})"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table with a header rule."""
    materialized: List[List[str]] = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) if index == 0 else cell.rjust(widths[index])
            for index, cell in enumerate(cells)
        )

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in materialized)
    return "\n".join(lines)
