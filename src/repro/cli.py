"""Command-line interface.

Four tools mirror the paper's workflow, operating on aggregated daily log
files (``address hits`` lines; see :mod:`repro.data.logfile`):

* ``repro-census LOG...`` — Table-1-style characteristics of the union of
  the given logs.
* ``repro-stability --reference DAY LOG...`` — nd-stable classification
  of the reference day within its sliding window.
* ``repro-sweep LOG...`` — nd-stable classification of *every* day in
  one pass of the incremental sweep engine (``--jobs`` parallelism,
  ``--prefix-len`` granularity).
* ``repro-mra LOG...`` — the MRA plot of the logs' union, as an ASCII
  chart plus the numeric ratio rows.
* ``repro-dense --density n@/p LOG...`` — the dense prefixes of the
  union, with the Table-3 accounting columns.
* ``repro-spatial LOG...`` — spatial profile of *every* day via the
  array-native spatial engine (``--jobs`` parallelism, ``--cull`` to
  scope to native addresses, repeatable ``--density`` classes).
* ``repro-faultcheck`` — deterministic fault-injection gauntlet: inject
  every modeled failure (corrupt lines, truncated cache, dropped days,
  killed workers, mid-sweep SIGKILL) and verify the pipeline classifies,
  retries, or resumes each one.

Every tool accepts ``--simulate SCALE`` instead of log files to run
against freshly generated simulator data, so the CLI is usable with zero
inputs; ``--errors quarantine`` switches ingestion from fail-fast to
bounded, reported quarantine of malformed inputs.

Exit codes are classified uniformly (see
:mod:`repro.runtime.exitcodes`): 0 success, 1 findings (repro-lint),
2 usage, 3 input error, 4 quarantine threshold exceeded, 5 internal
fault.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.analysis.tables import count_with_share, percent, render_table, si_count
import importlib

# The package namespace re-exports a function named `census`, shadowing the
# same-named submodule in `import a.b as x` syntax, so resolve the modules
# through importlib, which always returns the module object.
census_mod = importlib.import_module("repro.core.census")
density_mod = importlib.import_module("repro.core.density")
temporal_mod = importlib.import_module("repro.core.temporal")
sweep_mod = importlib.import_module("repro.core.sweep")
spatial_mod = importlib.import_module("repro.core.spatial")
from repro.data import logfile, store as obstore
from repro.runtime.exitcodes import (
    EXIT_INTERNAL,
    EXIT_OK,
    InputError,
    classify_exception,
)
from repro.runtime.quarantine import (
    ERRORS_QUARANTINE,
    ERRORS_STRICT,
    QuarantineReport,
)
from repro.viz.mra_plot import mra_plot


def _load_store(args: argparse.Namespace) -> obstore.ObservationStore:
    """Load logs from files or generate a simulated store."""
    if getattr(args, "simulate", None) is not None:
        from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

        internet = build_internet(
            seed=args.seed, config=InternetConfig(scale=args.simulate)
        )
        days = range(EPOCH_2015_03 - 8, EPOCH_2015_03 + 8)
        return internet.build_store(days)
    if not args.logs:
        raise InputError("no log files given (or use --simulate SCALE)")
    errors = getattr(args, "errors", ERRORS_STRICT)
    report: Optional[QuarantineReport] = None
    if errors == ERRORS_QUARANTINE:
        report = QuarantineReport()
    try:
        store = logfile.load_store(
            args.logs,
            jobs=getattr(args, "jobs", None),
            cache_dir=getattr(args, "cache_dir", None),
            errors=errors,
            report=report,
        )
    finally:
        # The quarantine account is part of the result even when the
        # budget aborts the run: print whatever was diverted.
        if report is not None and not report.is_empty():
            print(report.summary(), file=sys.stderr)
    return store


def _pipe_safe(
    tool: Callable[[Optional[Sequence[str]]], int]
) -> Callable[[Optional[Sequence[str]]], int]:
    """Make a CLI entry point exit cleanly when its stdout pipe closes.

    ``repro-census ... | head`` should not traceback: a closed pipe is
    the downstream consumer saying "enough".
    """
    import functools

    @functools.wraps(tool)
    def wrapper(argv: Optional[Sequence[str]] = None) -> int:
        try:
            return tool(argv)
        except BrokenPipeError:
            try:
                sys.stdout.close()
            except Exception:  # repro-lint: ignore[R007]
                pass
            return 0

    return wrapper


def _classified(
    tool: Callable[[Optional[Sequence[str]]], int]
) -> Callable[[Optional[Sequence[str]]], int]:
    """Map a tool's exceptions to the classified exit codes.

    Input problems exit 3, quarantine budget aborts exit 4, pool/internal
    faults exit 5 — with a one-line diagnosis on stderr instead of a
    traceback (set ``REPRO_DEBUG=1`` to see the traceback).  ``SystemExit``
    (argparse usage errors: 2) and ``BrokenPipeError`` (handled by
    :func:`_pipe_safe`) pass through untouched.
    """
    import functools

    @functools.wraps(tool)
    def wrapper(argv: Optional[Sequence[str]] = None) -> int:
        try:
            return tool(argv)
        except (SystemExit, BrokenPipeError, KeyboardInterrupt):
            raise
        except BaseException as exc:
            if os.environ.get("REPRO_DEBUG"):
                raise
            code = classify_exception(exc)
            print(
                f"{tool.__name__.replace('main_', 'repro-')}: error: {exc}",
                file=sys.stderr,
            )
            raise SystemExit(code) from exc

    return wrapper


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("logs", nargs="*", help="aggregated daily log files")
    parser.add_argument(
        "--simulate",
        type=float,
        default=None,
        metavar="SCALE",
        help="generate simulator data at this scale instead of reading logs",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="load log files with N worker processes (0 = all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        metavar="DIR",
        help=(
            "binary columnar day-log cache directory; warm runs skip text "
            "parsing (default: $REPRO_CACHE_DIR)"
        ),
    )
    parser.add_argument(
        "--errors",
        choices=(ERRORS_STRICT, ERRORS_QUARANTINE),
        default=ERRORS_STRICT,
        help=(
            "strict (default): abort on the first malformed line; "
            "quarantine: divert malformed lines and unreadable days into "
            "a reported quarantine, bounded by loss budgets (exit 4 when "
            "exceeded)"
        ),
    )


@_pipe_safe
@_classified
def main_census(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-census``."""
    parser = argparse.ArgumentParser(
        prog="repro-census",
        description="Table-1-style characteristics of aggregated logs.",
    )
    _common_arguments(parser)
    args = parser.parse_args(argv)
    store = _load_store(args)
    union = store.union_over(store.days())
    row = census_mod.census(union, period_name="all days")
    print(
        render_table(
            ["characteristic", "value"],
            [
                ["Teredo addresses", count_with_share(row.teredo, row.total)],
                ["ISATAP addresses", count_with_share(row.isatap, row.total)],
                ["6to4 addresses", count_with_share(row.sixto4, row.total)],
                ["Other addresses", count_with_share(row.other, row.total)],
                ["Other /64 prefixes", si_count(row.other_64s)],
                ["ave. addrs per /64", f"{row.avg_addrs_per_64:.2f}"],
                ["EUI-64 addr (!6to4)", count_with_share(row.eui64_not_6to4, row.total)],
                ["EUI-64 IIDs (MACs)", si_count(row.eui64_distinct_macs)],
            ],
            title=f"Census of {row.period_name}: {si_count(row.total)} addresses",
        )
    )
    return 0


@_pipe_safe
@_classified
def main_stability(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-stability``."""
    parser = argparse.ArgumentParser(
        prog="repro-stability",
        description="nd-stable classification of a reference day.",
    )
    _common_arguments(parser)
    parser.add_argument(
        "--reference", type=int, default=None, help="reference day number"
    )
    parser.add_argument("-n", type=int, default=3, help="stability gap in days")
    parser.add_argument("--window", type=int, default=7, help="window half-span")
    args = parser.parse_args(argv)
    store = _load_store(args)
    days = store.days()
    if not days:
        raise InputError("store is empty")
    reference = args.reference if args.reference is not None else days[len(days) // 2]
    result = temporal_mod.classify_day(store, reference, args.window, args.window)
    stable = result.stable_count(args.n)
    print(
        render_table(
            ["class", "count"],
            [
                [f"{args.n}d-stable", count_with_share(stable, result.active_count)],
                [
                    f"not {args.n}d-stable",
                    count_with_share(
                        result.active_count - stable, result.active_count
                    ),
                ],
            ],
            title=(
                f"Stability of day {reference} "
                f"(-{args.window}d,+{args.window}d): "
                f"{si_count(result.active_count)} active"
            ),
        )
    )
    return 0


@_pipe_safe
@_classified
def main_sweep(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-sweep``: classify every day in one pass."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description=(
            "Sliding-window nd-stable classification of every day of the "
            "logs via the incremental sweep engine."
        ),
    )
    _common_arguments(parser)
    parser.add_argument("-n", type=int, default=3, help="stability gap in days")
    parser.add_argument("--window", type=int, default=7, help="window half-span")
    parser.add_argument(
        "--prefix-len",
        type=int,
        default=128,
        metavar="P",
        help="truncate addresses to /P prefixes before sweeping (e.g. 64)",
    )
    parser.add_argument(
        "--chunk-days",
        type=int,
        default=sweep_mod.DEFAULT_CHUNK_DAYS,
        metavar="D",
        help="reference days per sweep chunk (memory/parallelism unit)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist each completed sweep chunk atomically to DIR; a "
            "killed run re-invoked with the same inputs and flags "
            "resumes from its last checkpoint, bit-identical to an "
            "uninterrupted run"
        ),
    )
    args = parser.parse_args(argv)
    store = _load_store(args)
    if not 0 <= args.prefix_len <= 128:
        raise InputError(f"bad --prefix-len {args.prefix_len}: not in 0..128")
    if args.prefix_len < 128:
        store = store.truncated(args.prefix_len)
    results = sweep_mod.sweep_days(
        store,
        window_before=args.window,
        window_after=args.window,
        jobs=args.jobs,
        chunk_days=args.chunk_days,
        checkpoint_dir=args.checkpoint_dir,
    )
    rows: List[List[str]] = []
    total_active = 0
    total_stable = 0
    for result in results:
        stable = result.stable_count(args.n)
        total_active += result.active_count
        total_stable += stable
        rows.append(
            [
                str(result.reference_day),
                si_count(result.active_count),
                count_with_share(stable, result.active_count),
            ]
        )
    granularity = "addresses" if args.prefix_len == 128 else f"/{args.prefix_len}s"
    print(
        render_table(
            ["day", "active", f"{args.n}d-stable"],
            rows,
            title=(
                f"Sweep of {len(results)} days ({granularity}, "
                f"-{args.window}d,+{args.window}d)"
            ),
        )
    )
    print()
    print(
        f"total: {count_with_share(total_stable, total_active)} of "
        f"{si_count(total_active)} active address-days are "
        f"{args.n}d-stable"
    )
    return 0


@_pipe_safe
@_classified
def main_mra(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-mra``."""
    parser = argparse.ArgumentParser(
        prog="repro-mra",
        description="MRA plot of the union of aggregated logs.",
    )
    _common_arguments(parser)
    parser.add_argument("--title", default="MRA plot", help="chart title")
    args = parser.parse_args(argv)
    store = _load_store(args)
    union = store.union_over(store.days())
    plot = mra_plot(union, title=args.title)
    print(plot.render_ascii())
    print()
    print(
        render_table(
            ["p", "16-bit", "4-bit", "1-bit"],
            [
                [str(p), f"{r16:.3g}", f"{r4:.3g}", f"{r1:.3g}"]
                for p, r16, r4, r1 in plot.rows()
            ],
        )
    )
    return 0


@_pipe_safe
@_classified
def main_dense(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-dense``."""
    parser = argparse.ArgumentParser(
        prog="repro-dense",
        description="Dense-prefix (n@/p) classification of aggregated logs.",
    )
    _common_arguments(parser)
    parser.add_argument(
        "--density",
        default="2@/112",
        help="density class, e.g. 2@/112",
    )
    parser.add_argument(
        "--show",
        type=int,
        default=0,
        metavar="N",
        help="also print the first N dense prefixes",
    )
    args = parser.parse_args(argv)
    try:
        n_text, _, p_text = args.density.partition("@/")
        density_class = density_mod.DensityClass(int(n_text), int(p_text))
    except (ValueError, TypeError) as exc:
        raise InputError(f"bad --density {args.density!r}: {exc}") from exc
    store = _load_store(args)
    union = store.union_over(store.days())
    result = density_mod.find_dense(union, density_class)
    print(
        render_table(
            ["metric", "value"],
            [
                ["density class", density_class.label],
                ["dense prefixes", si_count(result.num_prefixes)],
                ["contained addresses", si_count(result.contained_addresses)],
                ["possible addresses", si_count(result.possible_addresses)],
                ["address density", f"{result.address_density:.10f}"],
            ],
        )
    )
    if args.show and result.prefixes:
        from repro.net.prefix import Prefix

        print()
        for network, length, count in result.prefixes[: args.show]:
            print(f"  {Prefix(network, length)}  ({count} addrs)")
    return 0


@_pipe_safe
@_classified
def main_spatial(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-spatial``: per-day spatial profiles."""
    parser = argparse.ArgumentParser(
        prog="repro-spatial",
        description=(
            "Spatial profile of every day of the logs — MRA aggregate "
            "counts and dense-prefix (n@/p) classes — via the "
            "array-native spatial engine."
        ),
    )
    _common_arguments(parser)
    parser.add_argument(
        "--density",
        action="append",
        default=None,
        metavar="n@/p",
        help="density class to profile, e.g. 2@/112 (repeatable; "
        "default: 2@/112 and 2@/120)",
    )
    parser.add_argument(
        "--cull",
        action="store_true",
        help="profile only native (\"Other\") addresses, as in the paper",
    )
    args = parser.parse_args(argv)
    specs = args.density if args.density else ["2@/112", "2@/120"]
    classes: List[Any] = []
    for spec in specs:
        try:
            n_text, _, p_text = spec.partition("@/")
            classes.append(density_mod.DensityClass(int(n_text), int(p_text)))
        except (ValueError, TypeError) as exc:
            raise InputError(f"bad --density {spec!r}: {exc}") from exc
    store = _load_store(args)
    results = spatial_mod.sweep_spatial(
        store, classes=classes, jobs=args.jobs, cull=args.cull
    )
    header = ["day", "addrs", "/64s"] + [
        f"{cls.label} pfx (addrs)" for cls in classes
    ]
    rows: List[List[str]] = []
    for result in results:
        sixty_fours = int(result.mra_counts[64]) if result.mra_counts is not None else 0
        row = [str(result.day), si_count(result.total), si_count(sixty_fours)]
        for summary in result.dense:
            row.append(
                f"{si_count(summary.num_prefixes)} "
                f"({count_with_share(summary.contained_addresses, result.total)})"
            )
        rows.append(row)
    scope = "native (Other) addresses" if args.cull else "all addresses"
    print(
        render_table(
            header,
            rows,
            title=f"Spatial sweep of {len(results)} days ({scope})",
        )
    )
    return 0


@_pipe_safe
@_classified
def main_stableprefix(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-stableprefix`` (§7.2 plan discovery)."""
    parser = argparse.ArgumentParser(
        prog="repro-stableprefix",
        description="Longest-stable-prefix discovery across daily logs.",
    )
    _common_arguments(parser)
    parser.add_argument("-n", type=int, default=3, help="stability gap in days")
    parser.add_argument(
        "--min-days", type=int, default=2,
        help="distinct observation days required per prefix",
    )
    args = parser.parse_args(argv)
    store = _load_store(args)
    from repro.core.stableprefix import longest_stable_prefixes

    result = longest_stable_prefixes(store, n=args.n, min_days=args.min_days)
    histogram = result.by_length()
    print(
        render_table(
            ["prefix length", "longest stable prefixes"],
            [[f"/{length}", str(count)] for length, count in sorted(histogram.items())],
            title=(
                f"Longest stable prefixes over days "
                f"{store.days()[0]}..{store.days()[-1]} "
                f"(n={args.n}, min_days={args.min_days})"
            ),
        )
    )
    print()
    print(f"dominant boundary: /{result.dominant_length()}")
    return 0


@_pipe_safe
@_classified
def main_simulate(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-simulate``: write simulated daily logs."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Generate simulated daily aggregated logs to a directory.",
    )
    parser.add_argument("directory", help="output directory for log files")
    parser.add_argument("--scale", type=float, default=0.1, help="population scale")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--days", type=int, default=16, help="number of days")
    parser.add_argument(
        "--start",
        type=int,
        default=None,
        help="first day number (default: 8 days before the 2015 epoch)",
    )
    args = parser.parse_args(argv)
    from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

    start = args.start if args.start is not None else EPOCH_2015_03 - 8
    internet = build_internet(seed=args.seed, config=InternetConfig(scale=args.scale))
    store = internet.build_store(range(start, start + args.days))
    paths = logfile.save_store(store, args.directory)
    total = sum(len(store.get(day)) for day in store.days())
    print(
        f"wrote {len(paths)} daily logs ({si_count(total)} address-days) "
        f"to {args.directory}"
    )
    return 0


#: Sweep parameters shared by the faultcheck kill-and-resume child and
#: its parent (the checkpoint signature must match across processes).
_FAULTCHECK_WINDOW = 3
_FAULTCHECK_CHUNK_DAYS = 3


def _faultcheck_logs(directory: str) -> List[str]:
    """The faultcheck campaign's day logs, in day order."""
    import glob

    return sorted(
        glob.glob(os.path.join(directory, "log-*.txt")),
        key=lambda p: int(os.path.basename(p)[4:-4]),
    )


def _faultcheck_sweep_child(log_dir: str, checkpoint_dir: str) -> int:
    """Child body for the kill-and-resume scenario: sweep with checkpoints.

    The parent arms ``REPRO_FAULT_KILL_AFTER_CHECKPOINTS`` so this
    process dies by SIGKILL partway through; a surviving run prints a
    digest line instead (useful when invoked by hand).
    """
    store = logfile.load_store(_faultcheck_logs(log_dir))
    results = sweep_mod.sweep_days(
        store,
        window_before=_FAULTCHECK_WINDOW,
        window_after=_FAULTCHECK_WINDOW,
        jobs=2,
        chunk_days=_FAULTCHECK_CHUNK_DAYS,
        checkpoint_dir=checkpoint_dir,
    )
    print(f"child swept {len(results)} day(s) uninterrupted")
    return EXIT_OK


def _stores_equal(a: obstore.ObservationStore, b: obstore.ObservationStore) -> bool:
    import numpy as np

    if a.days() != b.days():
        return False
    return all(np.array_equal(a.array(day), b.array(day)) for day in a.days())


@_pipe_safe
@_classified
def main_faultcheck(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-faultcheck``: the fault-injection gauntlet.

    Builds a small deterministic campaign, injects every modeled fault
    (:mod:`repro.sim.faults`), and verifies each one ends *classified*,
    *retried*, or *resumed* — never hung, never silently wrong.  Exit 0
    when every scenario holds, 5 otherwise.
    """
    import shutil
    import subprocess
    import tempfile

    import numpy as np

    from repro.runtime.checkpoint import KILL_AFTER_CHECKPOINTS_ENV
    from repro.runtime.pool import RunReport
    from repro.runtime.quarantine import (
        QuarantinePolicy,
        QuarantineThresholdError,
    )
    from repro.sim.faults import FAULT_ENV, FaultPlan

    parser = argparse.ArgumentParser(
        prog="repro-faultcheck",
        description=(
            "Deterministic fault-injection gauntlet for the resilience "
            "layer: corrupt lines, truncated cache entries, dropped "
            "days, killed workers, and a SIGKILL mid-sweep, each "
            "verified to end classified, retried, or resumed."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller campaign and fewer workers (CI-friendly)",
    )
    parser.add_argument(
        "--keep",
        metavar="DIR",
        default=None,
        help="run inside DIR and keep its artifacts for inspection",
    )
    parser.add_argument(
        "--child-sweep",
        nargs=2,
        metavar=("LOGDIR", "CKDIR"),
        default=None,
        help=argparse.SUPPRESS,  # internal: kill-and-resume child body
    )
    args = parser.parse_args(argv)
    if args.child_sweep is not None:
        return _faultcheck_sweep_child(*args.child_sweep)

    from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

    root = args.keep or tempfile.mkdtemp(prefix="repro-faultcheck-")
    os.makedirs(root, exist_ok=True)
    scale = 0.01 if args.quick else 0.02
    n_days = 8 if args.quick else 12
    jobs = 2 if args.quick else 4
    plan = FaultPlan(
        seed=args.seed,
        corrupt_line_rate=0.05,
        truncate_cache_rate=0.6,
        drop_day_rate=0.3,
        kill_worker_rate=0.9,
    )
    internet = build_internet(seed=args.seed, config=InternetConfig(scale=scale))
    start = EPOCH_2015_03 - n_days // 2
    store = internet.build_store(range(start, start + n_days))
    pristine_dir = os.path.join(root, "pristine")
    logfile.save_store(store, pristine_dir)
    baseline = logfile.load_store(_faultcheck_logs(pristine_dir))
    outcomes: List[Tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        outcomes.append((name, ok, detail))
        print(f"{'PASS' if ok else 'FAIL'}  {name}: {detail}")

    # -- scenario 1: corrupt log lines -> classified quarantine ------------
    dirty_dir = os.path.join(root, "corrupt")
    shutil.copytree(pristine_dir, dirty_dir, dirs_exist_ok=True)
    dirty_logs = _faultcheck_logs(dirty_dir)
    events = plan.corrupt_logs(dirty_logs)
    strict_raised = False
    try:
        logfile.load_store(dirty_logs)
    except logfile.LogFormatError:
        strict_raised = True
    report = QuarantineReport()
    quarantined = logfile.load_store(
        dirty_logs,
        jobs=jobs,
        errors=ERRORS_QUARANTINE,
        report=report,
        policy=QuarantinePolicy(max_line_fraction=0.5, line_grace=0),
    )
    accounted = report.total_line_faults == len(events)
    check(
        "corrupt-lines",
        strict_raised and accounted and len(quarantined) == n_days,
        f"{len(events)} injected, {report.total_line_faults} quarantined, "
        f"strict {'aborted' if strict_raised else 'DID NOT abort'}",
    )

    # -- scenario 2: loss over budget -> threshold abort -------------------
    flood_path = os.path.join(root, "flood.txt")
    with open(flood_path, "w", encoding="ascii") as handle:
        handle.write("# repro aggregated log day=0\n")
        for i in range(50):
            handle.write(f"2001:db8::{i:x} 1\n")
        for i in range(20):
            handle.write(f"not-an-address-{i} 1\n")
    aborted = False
    try:
        logfile.load_store([flood_path], errors=ERRORS_QUARANTINE)
    except QuarantineThresholdError:
        aborted = True
    check(
        "loss-over-budget",
        aborted,
        "20/70 bad lines " + ("tripped the budget" if aborted else "went unnoticed"),
    )

    # -- scenario 3: truncated cache entries -> rebuilt, identical ---------
    cache_dir = os.path.join(root, "cache")
    cached = logfile.load_store(_faultcheck_logs(pristine_dir), cache_dir=cache_dir)
    truncated = plan.truncate_cache(cache_dir)
    rebuilt = logfile.load_store(_faultcheck_logs(pristine_dir), cache_dir=cache_dir)
    check(
        "cache-truncation",
        bool(truncated)
        and _stores_equal(cached, baseline)
        and _stores_equal(rebuilt, baseline),
        f"{len(truncated)} entr{'y' if len(truncated) == 1 else 'ies'} "
        "truncated, reload bit-identical",
    )

    # -- scenario 4: dropped days -> explicit gaps -------------------------
    drop_dir = os.path.join(root, "dropped")
    shutil.copytree(pristine_dir, drop_dir, dirs_exist_ok=True)
    drop_logs = _faultcheck_logs(drop_dir)
    drops = plan.drop_days(drop_logs)
    drop_report = QuarantineReport()
    gapped = logfile.load_store(
        drop_logs,
        errors=ERRORS_QUARANTINE,
        report=drop_report,
        policy=QuarantinePolicy(max_day_fraction=1.0),
    )
    plan.restore_days(drops)
    check(
        "dropped-days",
        bool(drops)
        and drop_report.total_day_faults == len(drops)
        and len(gapped) == n_days - len(drops),
        f"{len(drops)} day(s) dropped, {drop_report.total_day_faults} "
        f"classified as gaps, {len(gapped)} day(s) loaded",
    )

    # -- scenario 5: killed workers -> retried, identical ------------------
    sink: List[RunReport] = []
    previous = os.environ.get(FAULT_ENV)
    os.environ.update(plan.worker_env())
    try:
        survived = logfile.load_store(
            _faultcheck_logs(pristine_dir), jobs=jobs, report_sink=sink
        )
    finally:
        if previous is None:
            os.environ.pop(FAULT_ENV, None)
        else:
            os.environ[FAULT_ENV] = previous
    pool_report = sink[0] if sink else RunReport(label="load-store", tasks=0)
    recovered = pool_report.crashes > 0 and _stores_equal(survived, baseline)
    check(
        "killed-workers",
        recovered,
        pool_report.summary() + ", result bit-identical",
    )

    # -- scenario 6: SIGKILL mid-sweep -> checkpoint resume ----------------
    ck_dir = os.path.join(root, "checkpoints")
    env = dict(os.environ)
    env[KILL_AFTER_CHECKPOINTS_ENV] = "1"
    env.pop(FAULT_ENV, None)
    child = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "faultcheck",
            "--child-sweep",
            pristine_dir,
            ck_dir,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    partial = (
        len([n for n in os.listdir(ck_dir) if n.endswith(".npz")])
        if os.path.isdir(ck_dir)
        else 0
    )
    resumed = sweep_mod.sweep_days(
        baseline,
        window_before=_FAULTCHECK_WINDOW,
        window_after=_FAULTCHECK_WINDOW,
        jobs=2,
        chunk_days=_FAULTCHECK_CHUNK_DAYS,
        checkpoint_dir=ck_dir,
    )
    uninterrupted = sweep_mod.sweep_days(
        baseline,
        window_before=_FAULTCHECK_WINDOW,
        window_after=_FAULTCHECK_WINDOW,
        chunk_days=_FAULTCHECK_CHUNK_DAYS,
    )
    identical = len(resumed) == len(uninterrupted) and all(
        np.array_equal(a.active, b.active) and np.array_equal(a.gaps, b.gaps)
        for a, b in zip(resumed, uninterrupted)
    )
    check(
        "kill-and-resume",
        child.returncode != 0 and partial >= 1 and identical,
        f"child exit {child.returncode}, {partial} chunk(s) checkpointed "
        "before the kill, resumed sweep bit-identical",
    )

    failures = [name for name, ok, _detail in outcomes if not ok]
    print()
    if failures:
        print(f"repro-faultcheck: {len(failures)} scenario(s) FAILED: "
              + ", ".join(failures))
        return EXIT_INTERNAL
    where = f", artifacts kept in {root}" if args.keep else ""
    print(
        f"repro-faultcheck: all {len(outcomes)} scenario(s) passed "
        f"(seed {args.seed}{where})"
    )
    if args.keep is None:
        shutil.rmtree(root, ignore_errors=True)
    return EXIT_OK


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch ``python -m repro.cli <tool> ...``."""
    tools = {
        "census": main_census,
        "stability": main_stability,
        "sweep": main_sweep,
        "mra": main_mra,
        "dense": main_dense,
        "spatial": main_spatial,
        "stableprefix": main_stableprefix,
        "simulate": main_simulate,
        "faultcheck": main_faultcheck,
    }
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in tools:
        print(f"usage: repro.cli {{{','.join(tools)}}} ...", file=sys.stderr)
        return 2
    return tools[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
