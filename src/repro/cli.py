"""Command-line interface.

Four tools mirror the paper's workflow, operating on aggregated daily log
files (``address hits`` lines; see :mod:`repro.data.logfile`):

* ``repro-census LOG...`` — Table-1-style characteristics of the union of
  the given logs.
* ``repro-stability --reference DAY LOG...`` — nd-stable classification
  of the reference day within its sliding window.
* ``repro-sweep LOG...`` — nd-stable classification of *every* day in
  one pass of the incremental sweep engine (``--jobs`` parallelism,
  ``--prefix-len`` granularity).
* ``repro-mra LOG...`` — the MRA plot of the logs' union, as an ASCII
  chart plus the numeric ratio rows.
* ``repro-dense --density n@/p LOG...`` — the dense prefixes of the
  union, with the Table-3 accounting columns.
* ``repro-spatial LOG...`` — spatial profile of *every* day via the
  array-native spatial engine (``--jobs`` parallelism, ``--cull`` to
  scope to native addresses, repeatable ``--density`` classes).

Every tool accepts ``--simulate SCALE`` instead of log files to run
against freshly generated simulator data, so the CLI is usable with zero
inputs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Callable, List, Optional, Sequence

from repro.analysis.tables import count_with_share, percent, render_table, si_count
import importlib

# The package namespace re-exports a function named `census`, shadowing the
# same-named submodule in `import a.b as x` syntax, so resolve the modules
# through importlib, which always returns the module object.
census_mod = importlib.import_module("repro.core.census")
density_mod = importlib.import_module("repro.core.density")
temporal_mod = importlib.import_module("repro.core.temporal")
sweep_mod = importlib.import_module("repro.core.sweep")
spatial_mod = importlib.import_module("repro.core.spatial")
from repro.data import logfile, store as obstore
from repro.viz.mra_plot import mra_plot


def _load_store(args: argparse.Namespace) -> obstore.ObservationStore:
    """Load logs from files or generate a simulated store."""
    if getattr(args, "simulate", None) is not None:
        from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

        internet = build_internet(
            seed=args.seed, config=InternetConfig(scale=args.simulate)
        )
        days = range(EPOCH_2015_03 - 8, EPOCH_2015_03 + 8)
        return internet.build_store(days)
    if not args.logs:
        raise SystemExit("no log files given (or use --simulate SCALE)")
    return logfile.load_store(
        args.logs,
        jobs=getattr(args, "jobs", None),
        cache_dir=getattr(args, "cache_dir", None),
    )


def _pipe_safe(
    tool: Callable[[Optional[Sequence[str]]], int]
) -> Callable[[Optional[Sequence[str]]], int]:
    """Make a CLI entry point exit cleanly when its stdout pipe closes.

    ``repro-census ... | head`` should not traceback: a closed pipe is
    the downstream consumer saying "enough".
    """
    import functools

    @functools.wraps(tool)
    def wrapper(argv: Optional[Sequence[str]] = None) -> int:
        try:
            return tool(argv)
        except BrokenPipeError:
            try:
                sys.stdout.close()
            except Exception:
                pass
            return 0

    return wrapper


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("logs", nargs="*", help="aggregated daily log files")
    parser.add_argument(
        "--simulate",
        type=float,
        default=None,
        metavar="SCALE",
        help="generate simulator data at this scale instead of reading logs",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="load log files with N worker processes (0 = all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        metavar="DIR",
        help=(
            "binary columnar day-log cache directory; warm runs skip text "
            "parsing (default: $REPRO_CACHE_DIR)"
        ),
    )


@_pipe_safe
def main_census(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-census``."""
    parser = argparse.ArgumentParser(
        prog="repro-census",
        description="Table-1-style characteristics of aggregated logs.",
    )
    _common_arguments(parser)
    args = parser.parse_args(argv)
    store = _load_store(args)
    union = store.union_over(store.days())
    row = census_mod.census(union, period_name="all days")
    print(
        render_table(
            ["characteristic", "value"],
            [
                ["Teredo addresses", count_with_share(row.teredo, row.total)],
                ["ISATAP addresses", count_with_share(row.isatap, row.total)],
                ["6to4 addresses", count_with_share(row.sixto4, row.total)],
                ["Other addresses", count_with_share(row.other, row.total)],
                ["Other /64 prefixes", si_count(row.other_64s)],
                ["ave. addrs per /64", f"{row.avg_addrs_per_64:.2f}"],
                ["EUI-64 addr (!6to4)", count_with_share(row.eui64_not_6to4, row.total)],
                ["EUI-64 IIDs (MACs)", si_count(row.eui64_distinct_macs)],
            ],
            title=f"Census of {row.period_name}: {si_count(row.total)} addresses",
        )
    )
    return 0


@_pipe_safe
def main_stability(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-stability``."""
    parser = argparse.ArgumentParser(
        prog="repro-stability",
        description="nd-stable classification of a reference day.",
    )
    _common_arguments(parser)
    parser.add_argument(
        "--reference", type=int, default=None, help="reference day number"
    )
    parser.add_argument("-n", type=int, default=3, help="stability gap in days")
    parser.add_argument("--window", type=int, default=7, help="window half-span")
    args = parser.parse_args(argv)
    store = _load_store(args)
    days = store.days()
    if not days:
        raise SystemExit("store is empty")
    reference = args.reference if args.reference is not None else days[len(days) // 2]
    result = temporal_mod.classify_day(store, reference, args.window, args.window)
    stable = result.stable_count(args.n)
    print(
        render_table(
            ["class", "count"],
            [
                [f"{args.n}d-stable", count_with_share(stable, result.active_count)],
                [
                    f"not {args.n}d-stable",
                    count_with_share(
                        result.active_count - stable, result.active_count
                    ),
                ],
            ],
            title=(
                f"Stability of day {reference} "
                f"(-{args.window}d,+{args.window}d): "
                f"{si_count(result.active_count)} active"
            ),
        )
    )
    return 0


@_pipe_safe
def main_sweep(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-sweep``: classify every day in one pass."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description=(
            "Sliding-window nd-stable classification of every day of the "
            "logs via the incremental sweep engine."
        ),
    )
    _common_arguments(parser)
    parser.add_argument("-n", type=int, default=3, help="stability gap in days")
    parser.add_argument("--window", type=int, default=7, help="window half-span")
    parser.add_argument(
        "--prefix-len",
        type=int,
        default=128,
        metavar="P",
        help="truncate addresses to /P prefixes before sweeping (e.g. 64)",
    )
    parser.add_argument(
        "--chunk-days",
        type=int,
        default=sweep_mod.DEFAULT_CHUNK_DAYS,
        metavar="D",
        help="reference days per sweep chunk (memory/parallelism unit)",
    )
    args = parser.parse_args(argv)
    store = _load_store(args)
    if not 0 <= args.prefix_len <= 128:
        raise SystemExit(f"bad --prefix-len {args.prefix_len}: not in 0..128")
    if args.prefix_len < 128:
        store = store.truncated(args.prefix_len)
    results = sweep_mod.sweep_days(
        store,
        window_before=args.window,
        window_after=args.window,
        jobs=args.jobs,
        chunk_days=args.chunk_days,
    )
    rows: List[List[str]] = []
    total_active = 0
    total_stable = 0
    for result in results:
        stable = result.stable_count(args.n)
        total_active += result.active_count
        total_stable += stable
        rows.append(
            [
                str(result.reference_day),
                si_count(result.active_count),
                count_with_share(stable, result.active_count),
            ]
        )
    granularity = "addresses" if args.prefix_len == 128 else f"/{args.prefix_len}s"
    print(
        render_table(
            ["day", "active", f"{args.n}d-stable"],
            rows,
            title=(
                f"Sweep of {len(results)} days ({granularity}, "
                f"-{args.window}d,+{args.window}d)"
            ),
        )
    )
    print()
    print(
        f"total: {count_with_share(total_stable, total_active)} of "
        f"{si_count(total_active)} active address-days are "
        f"{args.n}d-stable"
    )
    return 0


@_pipe_safe
def main_mra(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-mra``."""
    parser = argparse.ArgumentParser(
        prog="repro-mra",
        description="MRA plot of the union of aggregated logs.",
    )
    _common_arguments(parser)
    parser.add_argument("--title", default="MRA plot", help="chart title")
    args = parser.parse_args(argv)
    store = _load_store(args)
    union = store.union_over(store.days())
    plot = mra_plot(union, title=args.title)
    print(plot.render_ascii())
    print()
    print(
        render_table(
            ["p", "16-bit", "4-bit", "1-bit"],
            [
                [str(p), f"{r16:.3g}", f"{r4:.3g}", f"{r1:.3g}"]
                for p, r16, r4, r1 in plot.rows()
            ],
        )
    )
    return 0


@_pipe_safe
def main_dense(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-dense``."""
    parser = argparse.ArgumentParser(
        prog="repro-dense",
        description="Dense-prefix (n@/p) classification of aggregated logs.",
    )
    _common_arguments(parser)
    parser.add_argument(
        "--density",
        default="2@/112",
        help="density class, e.g. 2@/112",
    )
    parser.add_argument(
        "--show",
        type=int,
        default=0,
        metavar="N",
        help="also print the first N dense prefixes",
    )
    args = parser.parse_args(argv)
    try:
        n_text, _, p_text = args.density.partition("@/")
        density_class = density_mod.DensityClass(int(n_text), int(p_text))
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"bad --density {args.density!r}: {exc}") from exc
    store = _load_store(args)
    union = store.union_over(store.days())
    result = density_mod.find_dense(union, density_class)
    print(
        render_table(
            ["metric", "value"],
            [
                ["density class", density_class.label],
                ["dense prefixes", si_count(result.num_prefixes)],
                ["contained addresses", si_count(result.contained_addresses)],
                ["possible addresses", si_count(result.possible_addresses)],
                ["address density", f"{result.address_density:.10f}"],
            ],
        )
    )
    if args.show and result.prefixes:
        from repro.net.prefix import Prefix

        print()
        for network, length, count in result.prefixes[: args.show]:
            print(f"  {Prefix(network, length)}  ({count} addrs)")
    return 0


@_pipe_safe
def main_spatial(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-spatial``: per-day spatial profiles."""
    parser = argparse.ArgumentParser(
        prog="repro-spatial",
        description=(
            "Spatial profile of every day of the logs — MRA aggregate "
            "counts and dense-prefix (n@/p) classes — via the "
            "array-native spatial engine."
        ),
    )
    _common_arguments(parser)
    parser.add_argument(
        "--density",
        action="append",
        default=None,
        metavar="n@/p",
        help="density class to profile, e.g. 2@/112 (repeatable; "
        "default: 2@/112 and 2@/120)",
    )
    parser.add_argument(
        "--cull",
        action="store_true",
        help="profile only native (\"Other\") addresses, as in the paper",
    )
    args = parser.parse_args(argv)
    specs = args.density if args.density else ["2@/112", "2@/120"]
    classes: List[Any] = []
    for spec in specs:
        try:
            n_text, _, p_text = spec.partition("@/")
            classes.append(density_mod.DensityClass(int(n_text), int(p_text)))
        except (ValueError, TypeError) as exc:
            raise SystemExit(f"bad --density {spec!r}: {exc}") from exc
    store = _load_store(args)
    results = spatial_mod.sweep_spatial(
        store, classes=classes, jobs=args.jobs, cull=args.cull
    )
    header = ["day", "addrs", "/64s"] + [
        f"{cls.label} pfx (addrs)" for cls in classes
    ]
    rows: List[List[str]] = []
    for result in results:
        sixty_fours = int(result.mra_counts[64]) if result.mra_counts is not None else 0
        row = [str(result.day), si_count(result.total), si_count(sixty_fours)]
        for summary in result.dense:
            row.append(
                f"{si_count(summary.num_prefixes)} "
                f"({count_with_share(summary.contained_addresses, result.total)})"
            )
        rows.append(row)
    scope = "native (Other) addresses" if args.cull else "all addresses"
    print(
        render_table(
            header,
            rows,
            title=f"Spatial sweep of {len(results)} days ({scope})",
        )
    )
    return 0


@_pipe_safe
def main_stableprefix(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-stableprefix`` (§7.2 plan discovery)."""
    parser = argparse.ArgumentParser(
        prog="repro-stableprefix",
        description="Longest-stable-prefix discovery across daily logs.",
    )
    _common_arguments(parser)
    parser.add_argument("-n", type=int, default=3, help="stability gap in days")
    parser.add_argument(
        "--min-days", type=int, default=2,
        help="distinct observation days required per prefix",
    )
    args = parser.parse_args(argv)
    store = _load_store(args)
    from repro.core.stableprefix import longest_stable_prefixes

    result = longest_stable_prefixes(store, n=args.n, min_days=args.min_days)
    histogram = result.by_length()
    print(
        render_table(
            ["prefix length", "longest stable prefixes"],
            [[f"/{length}", str(count)] for length, count in sorted(histogram.items())],
            title=(
                f"Longest stable prefixes over days "
                f"{store.days()[0]}..{store.days()[-1]} "
                f"(n={args.n}, min_days={args.min_days})"
            ),
        )
    )
    print()
    print(f"dominant boundary: /{result.dominant_length()}")
    return 0


@_pipe_safe
def main_simulate(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-simulate``: write simulated daily logs."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Generate simulated daily aggregated logs to a directory.",
    )
    parser.add_argument("directory", help="output directory for log files")
    parser.add_argument("--scale", type=float, default=0.1, help="population scale")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--days", type=int, default=16, help="number of days")
    parser.add_argument(
        "--start",
        type=int,
        default=None,
        help="first day number (default: 8 days before the 2015 epoch)",
    )
    args = parser.parse_args(argv)
    from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

    start = args.start if args.start is not None else EPOCH_2015_03 - 8
    internet = build_internet(seed=args.seed, config=InternetConfig(scale=args.scale))
    store = internet.build_store(range(start, start + args.days))
    paths = logfile.save_store(store, args.directory)
    total = sum(len(store.get(day)) for day in store.days())
    print(
        f"wrote {len(paths)} daily logs ({si_count(total)} address-days) "
        f"to {args.directory}"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch ``python -m repro.cli <tool> ...``."""
    tools = {
        "census": main_census,
        "stability": main_stability,
        "sweep": main_sweep,
        "mra": main_mra,
        "dense": main_dense,
        "spatial": main_spatial,
        "stableprefix": main_stableprefix,
        "simulate": main_simulate,
    }
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in tools:
        print(f"usage: repro.cli {{{','.join(tools)}}} ...", file=sys.stderr)
        return 2
    return tools[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
