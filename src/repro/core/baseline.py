"""Malone-style content-only privacy-address detector (the paper's baseline).

Malone (PAM 2008) classified active IPv6 addresses purely by inspecting
address content, flagging an address as an RFC 4941 privacy address when
its interface identifier "looks random".  The paper (§2) notes this
approach is limited by design — detecting randomness in a 63-bit string is
hard — and is "expected to identify approximately 73% of all privacy
addresses".  Plonka & Berger take the complementary route: identify the
*stable* addresses temporally, since a stable address is almost certainly
not a privacy address.

This module reimplements the content-only detector so the benchmark suite
can measure its recall/precision against simulator ground truth and
contrast it with the temporal classifier, reproducing the paper's framing.

The detector deems an IID pseudorandom when:

* it carries none of the recognizable structures (EUI-64 ``ff:fe``,
  ISATAP ``5efe``, low integer, embedded IPv4), and
* the "u" bit is 0, as RFC 4941 requires of generated IIDs, and
* its hex representation is high-entropy: at least ``min_distinct``
  distinct nybbles among 16 and no single nybble occurring more than
  ``max_repeat`` times.

The entropy thresholds are deliberately conservative: loosening them to
catch every random IID would misclassify structured-but-busy IIDs.  With
the defaults, recall on uniformly random IIDs is ~70-75% (matching the
baseline's designed limitation), while precision on non-random IIDs stays
high.  The calibration is asserted by tests and measured by
``benchmarks/bench_baseline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.net import addr, mac
from repro.core.format import (
    LOW_IID_LIMIT,
    plausible_embedded_ipv4,
)

#: Default minimum distinct nybbles for an IID to count as random.
DEFAULT_MIN_DISTINCT = 10

#: Default maximum occurrences of any single nybble value.
DEFAULT_MAX_REPEAT = 4


@dataclass(frozen=True)
class BaselineVerdict:
    """Outcome of the content-only test for one address.

    Attributes:
        value: the address examined.
        is_privacy: True when the detector calls it an RFC 4941 address.
        reason: short tag explaining the decision (for error analysis).
    """

    value: int
    is_privacy: bool
    reason: str


def nybble_histogram(iid: int) -> Tuple[int, int]:
    """Return (distinct nybble count, max occurrences of one nybble)."""
    counts = [0] * 16
    for shift in range(0, 64, 4):
        counts[(iid >> shift) & 0xF] += 1
    distinct = sum(1 for count in counts if count)
    return distinct, max(counts)


def classify_privacy(
    value: int,
    min_distinct: int = DEFAULT_MIN_DISTINCT,
    max_repeat: int = DEFAULT_MAX_REPEAT,
) -> BaselineVerdict:
    """Run the Malone-style content test on one address."""
    addr.check_address(value)
    iid = value & addr.IID_MASK

    if mac.is_eui64_iid(iid):
        return BaselineVerdict(value, False, "eui64")
    if (iid >> 32) in (0x00005EFE, 0x02005EFE):
        return BaselineVerdict(value, False, "isatap")
    if iid < LOW_IID_LIMIT:
        return BaselineVerdict(value, False, "low")
    if plausible_embedded_ipv4(iid) is not None:
        return BaselineVerdict(value, False, "embedded-ipv4")
    if mac.iid_u_bit(iid) != 0:
        # RFC 4941 clears the u bit; a set u bit claims universal scope.
        return BaselineVerdict(value, False, "u-bit-set")

    distinct, repeat = nybble_histogram(iid)
    if distinct >= min_distinct and repeat <= max_repeat:
        return BaselineVerdict(value, True, "random")
    return BaselineVerdict(value, False, "structured")


def is_privacy_address(
    value: int,
    min_distinct: int = DEFAULT_MIN_DISTINCT,
    max_repeat: int = DEFAULT_MAX_REPEAT,
) -> bool:
    """Convenience wrapper returning just the boolean verdict."""
    return classify_privacy(value, min_distinct, max_repeat).is_privacy


def evaluate(
    labelled: Iterable[Tuple[int, bool]],
    min_distinct: int = DEFAULT_MIN_DISTINCT,
    max_repeat: int = DEFAULT_MAX_REPEAT,
) -> Dict[str, float]:
    """Score the detector against ground truth.

    ``labelled`` yields ``(address, truly_privacy)`` pairs, e.g. from the
    simulator.  Returns a dict with recall, precision, accuracy and the
    raw confusion counts — the quantities ``bench_baseline.py`` compares
    against the paper's cited ~73% identification rate.
    """
    tp = fp = tn = fn = 0
    for value, truth in labelled:
        predicted = is_privacy_address(value, min_distinct, max_repeat)
        if truth and predicted:
            tp += 1
        elif truth:
            fn += 1
        elif predicted:
            fp += 1
        else:
            tn += 1
    total = tp + fp + tn + fn
    recall = tp / (tp + fn) if tp + fn else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    accuracy = (tp + tn) / total if total else 0.0
    return {
        "true_positive": float(tp),
        "false_positive": float(fp),
        "true_negative": float(tn),
        "false_negative": float(fn),
        "recall": recall,
        "precision": precision,
        "accuracy": accuracy,
    }
