"""Census pipeline: Table-1-style address characteristics (§4.1).

Given the raw active address set of a day (or a week's union), this module
produces the characteristics row the paper reports in Table 1:

* counts and shares of Teredo, ISATAP and 6to4 addresses,
* the "Other" (native transport) count and share,
* active /64 prefixes among Other addresses and the mean addresses per
  active /64,
* EUI-64 addresses among non-6to4 traffic and their distinct MACs.

It also performs the culling step: handing the "Other" subset onward to
the temporal and spatial classifiers, which is how the paper scopes all
of its Section 6 results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import format as fmt
from repro.core.format import TransitionKind
from repro.data import store as obstore
from repro.net import addr, mac


@dataclass
class CensusRow:
    """One column of Table 1: characteristics of one observation period.

    All counts are of distinct addresses.  ``other_addresses`` holds the
    native subset for downstream classification.
    """

    period_name: str
    total: int
    teredo: int
    isatap: int
    sixto4: int
    other: int
    other_64s: int
    avg_addrs_per_64: float
    eui64_not_6to4: int
    eui64_distinct_macs: int
    other_addresses: Optional[np.ndarray] = None

    def share(self, count: int) -> float:
        """Share of the period's total address count."""
        if self.total == 0:
            return 0.0
        return count / self.total

    @property
    def teredo_share(self) -> float:
        """Teredo addresses as a share of all addresses."""
        return self.share(self.teredo)

    @property
    def isatap_share(self) -> float:
        """ISATAP addresses as a share of all addresses."""
        return self.share(self.isatap)

    @property
    def sixto4_share(self) -> float:
        """6to4 addresses as a share of all addresses."""
        return self.share(self.sixto4)

    @property
    def other_share(self) -> float:
        """Native ("Other") addresses as a share of all addresses."""
        return self.share(self.other)

    @property
    def eui64_share(self) -> float:
        """EUI-64 (not 6to4) addresses as a share of all addresses."""
        return self.share(self.eui64_not_6to4)


def transition_masks(
    array: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized (teredo, sixto4, isatap) membership masks of an array.

    The masks are mutually exclusive (an ISATAP-looking IID inside a
    Teredo or 6to4 prefix counts as the tunnelling mechanism, matching
    :func:`repro.core.format.transition_kind`).
    """
    hi = array["hi"]
    lo = array["lo"]
    teredo_mask = (hi >> np.uint64(32)) == np.uint64(0x20010000)
    sixto4_mask = (hi >> np.uint64(48)) == np.uint64(0x2002)
    isatap_marker = (lo >> np.uint64(32)) & np.uint64(0xFDFFFFFF)
    isatap_mask = (
        (isatap_marker == np.uint64(0x00005EFE)) & ~teredo_mask & ~sixto4_mask
    )
    return teredo_mask, sixto4_mask, isatap_mask


def other_mask(array: np.ndarray) -> np.ndarray:
    """Mask selecting the native ("Other") addresses of an array.

    The vectorized form of the culling step: the spatial and temporal
    classifiers run on ``array[other_mask(array)]``, which is how the
    paper scopes its Section 6 results.
    """
    teredo, sixto4, isatap = transition_masks(array)
    return ~(teredo | sixto4 | isatap)


def _eui64_stats_array(array: np.ndarray) -> Tuple[int, int]:
    """Vectorized EUI-64 count and distinct-MAC count on an address array.

    The ``ff:fe`` marker occupies IID bits 24..39 (from the LSB), i.e.
    ``(lo >> 24) & 0xffff == 0xfffe``; the MAC is recovered by dropping
    the marker and flipping the u bit.
    """
    lo = array["lo"]
    marker = (lo >> np.uint64(24)) & np.uint64(0xFFFF)
    is_eui = marker == np.uint64(0xFFFE)
    eui_lo = lo[is_eui]
    count = int(eui_lo.shape[0])
    if count == 0:
        return 0, 0
    unflipped = eui_lo ^ np.uint64(1 << 57)  # u bit: IID bit 6 from the MSB
    high24 = unflipped >> np.uint64(40)
    low24 = unflipped & np.uint64(0xFFFFFF)
    macs = (high24 << np.uint64(24)) | low24
    return count, int(np.unique(macs).shape[0])


def census(
    addresses: "np.ndarray | Iterable[int]", period_name: str = ""
) -> CensusRow:
    """Compute the Table 1 characteristics of one observation period.

    Accepts a structured address array or an iterable of integer
    addresses; distinct addresses are what get counted, as in the paper's
    aggregated logs.  Input is canonicalized (sorted, deduplicated) —
    trusting arbitrary structured-array input previously counted
    duplicated addresses twice in every Table 1 column.
    """
    from repro.core.mra import _as_address_array

    array = _as_address_array(addresses)
    total = int(array.shape[0])

    teredo_mask, sixto4_mask, isatap_mask = transition_masks(array)
    native_mask = ~(teredo_mask | sixto4_mask | isatap_mask)

    other_array = array[native_mask]
    other_64s = obstore.truncate_array(other_array, 64)
    other_count = int(other_array.shape[0])
    sixty_four_count = int(other_64s.shape[0])
    avg = other_count / sixty_four_count if sixty_four_count else 0.0

    eui_count, mac_count = _eui64_stats_array(array[~sixto4_mask])

    return CensusRow(
        period_name=period_name,
        total=total,
        teredo=int(np.count_nonzero(teredo_mask)),
        isatap=int(np.count_nonzero(isatap_mask)),
        sixto4=int(np.count_nonzero(sixto4_mask)),
        other=other_count,
        other_64s=sixty_four_count,
        avg_addrs_per_64=avg,
        eui64_not_6to4=eui_count,
        eui64_distinct_macs=mac_count,
        other_addresses=other_array,
    )


def census_day(observations: "obstore.ObservationStore", day: int) -> CensusRow:
    """Table 1a: characteristics of a single day."""
    return census(observations.array(day), period_name=f"day {day}")


def census_week(
    observations: "obstore.ObservationStore", days: Sequence[int]
) -> CensusRow:
    """Table 1b: characteristics of a week's union of daily sets."""
    label = f"days {min(days)}-{max(days)}" if days else "empty"
    return census(observations.union_over(days), period_name=label)


def cull_other(addresses: Iterable[int]) -> List[int]:
    """Return only the native ("Other") addresses, the classifiers' input.

    Scalar (non-vectorized) variant for small collections and tests.
    """
    return [
        value
        for value in addresses
        if fmt.transition_kind(value) is TransitionKind.OTHER
    ]
