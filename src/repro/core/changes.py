"""Detecting changes in network operation from daily logs.

The paper's introduction lists "detecting changes in network operation"
among the applications of temporal/spatial classification.  The
observable: when an operator renumbers (migrates to a new prefix, turns
on privacy-style network ids, re-pools its space), the network's set of
active prefixes turns over abruptly — far beyond the daily churn its
addressing plan normally produces.

:func:`turnover_series` measures the day-over-day retention of a
network's active prefix set at a configurable length (e.g. its /64s, or
its plan-boundary prefixes); :func:`detect_changes` flags the days whose
retention falls far below the network's own baseline.  Because privacy
churn lives in the IID half, working at the /64 (or shorter) level makes
renumbering stand out even in heavily privacy-addressed networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data import store as obstore
from repro.data.store import ObservationStore


@dataclass(frozen=True)
class TurnoverPoint:
    """Day-over-day retention of the active prefix set.

    Attributes:
        day: the later day of the pair.
        retention: |yesterday ∩ today| / |yesterday| (0 when yesterday
            was empty).
        jaccard: |∩| / |∪| — symmetric overlap.
        active: today's active prefix count.
    """

    day: int
    retention: float
    jaccard: float
    active: int


def turnover_series(
    observations: ObservationStore,
    days: Sequence[int],
    prefix_len: int = 64,
) -> List[TurnoverPoint]:
    """Per-day retention/Jaccard of the active /``prefix_len`` set."""
    ordered = sorted(days)
    truncated = observations.truncated(prefix_len)
    series: List[TurnoverPoint] = []
    for yesterday, today in zip(ordered, ordered[1:]):
        previous = truncated.array(yesterday)
        current = truncated.array(today)
        intersection = obstore.array_size(obstore.intersect(previous, current))
        union = obstore.array_size(obstore.union(previous, current))
        previous_size = obstore.array_size(previous)
        series.append(
            TurnoverPoint(
                day=today,
                retention=intersection / previous_size if previous_size else 0.0,
                jaccard=intersection / union if union else 0.0,
                active=obstore.array_size(current),
            )
        )
    return series


@dataclass(frozen=True)
class ChangeEvent:
    """One detected operational change.

    Attributes:
        day: first day the new regime is visible.
        retention: the anomalous retention value.
        baseline: the network's median retention before the event.
        severity: baseline minus observed retention (0..1).
    """

    day: int
    retention: float
    baseline: float
    severity: float


def detect_changes(
    series: Sequence[TurnoverPoint],
    drop_threshold: float = 0.5,
    min_baseline_days: int = 3,
) -> List[ChangeEvent]:
    """Flag days whose retention collapses versus the running baseline.

    A change fires when retention falls below ``drop_threshold`` times
    the median retention of the preceding days (at least
    ``min_baseline_days`` of history required).  Renumbering produces a
    near-zero retention day; ordinary plan churn (even dynamic pools,
    whose /64s are reused) does not.
    """
    events: List[ChangeEvent] = []
    history: List[float] = []
    for point in series:
        if len(history) >= min_baseline_days:
            baseline = float(np.median(history))
            if baseline > 0 and point.retention < drop_threshold * baseline:
                events.append(
                    ChangeEvent(
                        day=point.day,
                        retention=point.retention,
                        baseline=baseline,
                        severity=baseline - point.retention,
                    )
                )
                # Reset history: the new regime builds its own baseline.
                history = []
                continue
        history.append(point.retention)
    return events


def detect_renumbering(
    observations: ObservationStore,
    days: Sequence[int],
    prefix_len: int = 64,
    drop_threshold: float = 0.5,
) -> List[ChangeEvent]:
    """End-to-end: turnover series then change detection."""
    series = turnover_series(observations, days, prefix_len)
    return detect_changes(series, drop_threshold=drop_threshold)
