"""Address lifetime and churn analysis.

Figure 4's stepwise decay is a window onto the underlying *lifetime
distribution* of addresses: privacy addresses live a day or two, EUI-64
and static hosts persist indefinitely (observed intermittently).  This
module measures the distributions directly from a day-indexed store:

* :func:`observation_spans` — per address: first day, last day, and
  number of days observed within a range;
* :func:`lifetime_histogram` — distribution of observed spans;
* :func:`survival_curve` — P(an address active on day d is seen again
  at distance >= k), the decay Figure 4 samples at one reference day;
* :func:`daily_churn` — per consecutive-day pair: born, died, retained.

These quantify what the paper's temporal classes discretize, and back
the lifetime benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data import store as obstore
from repro.data.store import ObservationStore


@dataclass
class SpanTable:
    """Per-address observation spans over a day range.

    Parallel arrays: ``addresses`` (structured), ``first``, ``last`` and
    ``days_seen`` (int64).
    """

    addresses: np.ndarray
    first: np.ndarray
    last: np.ndarray
    days_seen: np.ndarray

    @property
    def spans(self) -> np.ndarray:
        """Observed lifetime of each address: last - first, in days."""
        return self.last - self.first

    def __len__(self) -> int:
        return int(self.addresses.shape[0])


def observation_spans(
    observations: ObservationStore, days: Sequence[int]
) -> SpanTable:
    """Compute per-address first/last/day-count over the given days.

    Runs on the sweep engine's grouped pass
    (:func:`repro.core.sweep.grouped_spans`): one stable radix sort by
    (address, day) replaces the structured ``np.unique`` and the
    scalar-dispatch ``ufunc.at`` updates of the original implementation.
    """
    from repro.core.sweep import grouped_spans

    arrays = [observations.array(day) for day in days]
    addresses, first, last, days_seen = grouped_spans(arrays, list(days))
    return SpanTable(addresses=addresses, first=first, last=last, days_seen=days_seen)


def lifetime_histogram(
    observations: ObservationStore, days: Sequence[int]
) -> Dict[int, int]:
    """Histogram of observed spans (0 = seen on a single day only).

    The privacy-address mass sits at span 0-1; the long tail is the
    stable population the paper's classes isolate.
    """
    table = observation_spans(observations, days)
    spans, counts = np.unique(table.spans, return_counts=True)
    return {int(span): int(count) for span, count in zip(spans, counts)}


def survival_curve(
    observations: ObservationStore,
    reference_day: int,
    max_distance: int = 7,
) -> List[Tuple[int, float]]:
    """P(address active on the reference day is also active at +k).

    The forward half of Figure 4's common-with-reference series, as a
    probability; k runs 1..max_distance.
    """
    reference = observations.array(reference_day)
    size = obstore.array_size(reference)
    curve: List[Tuple[int, float]] = []
    for distance in range(1, max_distance + 1):
        if size == 0:
            curve.append((distance, 0.0))
            continue
        future = observations.array(reference_day + distance)
        common = obstore.array_size(obstore.intersect(reference, future))
        curve.append((distance, common / size))
    return curve


@dataclass(frozen=True)
class ChurnDay:
    """One consecutive-day transition."""

    day: int
    born: int  # active today, not yesterday
    died: int  # active yesterday, not today
    retained: int  # active both days


def daily_churn(
    observations: ObservationStore, days: Sequence[int]
) -> List[ChurnDay]:
    """Born/died/retained counts for each consecutive day pair."""
    ordered = sorted(days)
    results: List[ChurnDay] = []
    for yesterday, today in zip(ordered, ordered[1:]):
        previous = observations.array(yesterday)
        current = observations.array(today)
        retained = obstore.array_size(obstore.intersect(previous, current))
        results.append(
            ChurnDay(
                day=today,
                born=obstore.array_size(current) - retained,
                died=obstore.array_size(previous) - retained,
                retained=retained,
            )
        )
    return results
