"""Dense-prefix classification and Table 3 reporting (§5.2.2–§6.2.2).

The spatial class *n@/p-dense* is the set of length-p prefixes containing
at least n observed addresses, together with the addresses inside them.
This module wraps the trie-level primitives with the bookkeeping the
paper reports for each density class:

* the number of dense prefixes found,
* the observed addresses contained in them,
* the number of *possible* addresses the prefixes span
  (``prefixes * 2**(128-p)`` — the active-probing target budget), and
* the resulting address density (observed / possible).

These are exactly the columns of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.core.mra import ArrayOrAddresses, _as_address_array
from repro.data import store as obstore
from repro.net import addr
from repro.net.prefix import Prefix, check_length


@dataclass(frozen=True)
class DensityClass:
    """A density class specification: at least ``n`` addresses in a /p."""

    n: int
    p: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1: {self.n}")
        check_length(self.p)

    @property
    def label(self) -> str:
        """The paper's notation, e.g. ``"2 @ /112"``."""
        return f"{self.n} @ /{self.p}"

    @property
    def span(self) -> int:
        """Addresses covered by one prefix of this class."""
        return 1 << (128 - self.p)


#: The twelve density classes of Table 3, in the paper's row order.
TABLE3_CLASSES: Tuple[DensityClass, ...] = (
    DensityClass(2, 124),
    DensityClass(3, 120),
    DensityClass(2, 120),
    DensityClass(2, 116),
    DensityClass(64, 112),
    DensityClass(32, 112),
    DensityClass(16, 112),
    DensityClass(8, 112),
    DensityClass(4, 112),
    DensityClass(2, 112),
    DensityClass(2, 108),
    DensityClass(2, 104),
)


@dataclass
class DenseResult:
    """One row of Table 3: the outcome of one density-class search.

    Attributes:
        density_class: the (n, p) class searched.
        prefixes: the dense prefixes as (network, length, count) tuples.
        contained_addresses: observed addresses inside the dense prefixes.
    """

    density_class: DensityClass
    prefixes: List[Tuple[int, int, int]]
    contained_addresses: int

    @property
    def num_prefixes(self) -> int:
        """Count of dense prefixes found."""
        return len(self.prefixes)

    @property
    def possible_addresses(self) -> int:
        """Total addresses spanned: the active-probing target budget."""
        return self.num_prefixes * self.density_class.span

    @property
    def address_density(self) -> float:
        """Observed contained addresses divided by possible addresses."""
        if self.possible_addresses == 0:
            return 0.0
        return self.contained_addresses / self.possible_addresses


def _dense_fixed_from_array(
    array: np.ndarray, n: int, p: int
) -> Tuple[List[Tuple[int, int, int]], int]:
    """Vectorized fixed-length dense search on a sorted address array.

    Returns the dense (network, p, count) list and the total number of
    observed addresses falling inside dense prefixes.
    """
    if array.shape[0] == 0:
        return [], 0
    full = array.copy()
    if p <= 64:
        mask = np.uint64(0) if p == 0 else np.uint64(((1 << p) - 1) << (64 - p))
        full["hi"] = full["hi"] & mask
        full["lo"] = 0
    else:
        low_bits = p - 64
        mask = (
            np.uint64(0xFFFFFFFFFFFFFFFF)
            if low_bits == 64
            else np.uint64(((1 << low_bits) - 1) << (64 - low_bits))
        )
        full["lo"] = full["lo"] & mask
    unique, counts = np.unique(full, return_counts=True)
    dense_mask = counts >= n
    dense_networks = unique[dense_mask]
    dense_counts = counts[dense_mask]
    prefixes = [
        ((int(hi) << 64) | int(lo), p, int(count))
        for (hi, lo), count in zip(dense_networks, dense_counts)
    ]
    contained = int(dense_counts.sum())
    return prefixes, contained


def find_dense(
    addresses: ArrayOrAddresses, density_class: DensityClass
) -> DenseResult:
    """Find all prefixes of one density class among distinct addresses."""
    array = _as_address_array(addresses)
    prefixes, contained = _dense_fixed_from_array(
        array, density_class.n, density_class.p
    )
    return DenseResult(
        density_class=density_class,
        prefixes=prefixes,
        contained_addresses=contained,
    )


def table3(
    addresses: ArrayOrAddresses,
    classes: Sequence[DensityClass] = TABLE3_CLASSES,
) -> List[DenseResult]:
    """Run the full Table 3 sweep over the given density classes."""
    array = _as_address_array(addresses)
    return [find_dense(array, density_class) for density_class in classes]


def dense_prefix_objects(result: DenseResult) -> List[Prefix]:
    """The dense prefixes of a result as :class:`Prefix` objects."""
    return [Prefix(network, length) for network, length, _count in result.prefixes]


def scan_targets(result: DenseResult, limit: int = 1_000_000) -> List[int]:
    """Enumerate candidate probe targets inside the dense prefixes.

    Every address of every dense prefix, up to ``limit`` (the budget
    guard): this is the §6.2.2 proposal that dense blocks are feasible
    active-scan targets, /112s being the IPv6 analogue of IPv4 /16s.
    """
    targets: List[int] = []
    for network, length, _count in result.prefixes:
        span = 1 << (128 - length)
        remaining = limit - len(targets)
        if remaining <= 0:
            break
        targets.extend(range(network, network + min(span, remaining)))
    return targets
