"""Dense-prefix classification and Table 3 reporting (§5.2.2–§6.2.2).

The spatial class *n@/p-dense* is the set of length-p prefixes containing
at least n observed addresses, together with the addresses inside them.
This module wraps the trie-level primitives with the bookkeeping the
paper reports for each density class:

* the number of dense prefixes found,
* the observed addresses contained in them,
* the number of *possible* addresses the prefixes span
  (``prefixes * 2**(128-p)`` — the active-probing target budget), and
* the resulting address density (observed / possible).

These are exactly the columns of Table 3.

The searches run on the array-native spatial engine
(:mod:`repro.core.spatial`): one adjacent-LCP scan of the sorted address
array is shared by every density class of a :func:`table3` sweep, and
each class is one run-length encoding of that scan — no per-class
truncate/sort/unique pass and no radix tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mra import (
    ArrayOrAddresses,
    _as_address_array,
    adjacent_common_prefix_lengths,
)
from repro.core.spatial import dense_runs
from repro.data import store as obstore
from repro.net import addr
from repro.net.prefix import Prefix, check_length


@dataclass(frozen=True)
class DensityClass:
    """A density class specification: at least ``n`` addresses in a /p."""

    n: int
    p: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1: {self.n}")
        check_length(self.p)

    @property
    def label(self) -> str:
        """The paper's notation, e.g. ``"2 @ /112"``."""
        return f"{self.n} @ /{self.p}"

    @property
    def span(self) -> int:
        """Addresses covered by one prefix of this class."""
        return 1 << (128 - self.p)


#: The twelve density classes of Table 3, in the paper's row order.
TABLE3_CLASSES: Tuple[DensityClass, ...] = (
    DensityClass(2, 124),
    DensityClass(3, 120),
    DensityClass(2, 120),
    DensityClass(2, 116),
    DensityClass(64, 112),
    DensityClass(32, 112),
    DensityClass(16, 112),
    DensityClass(8, 112),
    DensityClass(4, 112),
    DensityClass(2, 112),
    DensityClass(2, 108),
    DensityClass(2, 104),
)


@dataclass
class DenseResult:
    """One row of Table 3: the outcome of one density-class search.

    Attributes:
        density_class: the (n, p) class searched.
        prefixes: the dense prefixes as (network, length, count) tuples.
        contained_addresses: observed addresses inside the dense prefixes.
    """

    density_class: DensityClass
    prefixes: List[Tuple[int, int, int]]
    contained_addresses: int

    @property
    def num_prefixes(self) -> int:
        """Count of dense prefixes found."""
        return len(self.prefixes)

    @property
    def possible_addresses(self) -> int:
        """Total addresses spanned: the active-probing target budget."""
        return self.num_prefixes * self.density_class.span

    @property
    def address_density(self) -> float:
        """Observed contained addresses divided by possible addresses."""
        if self.possible_addresses == 0:
            return 0.0
        return self.contained_addresses / self.possible_addresses


def find_dense(
    addresses: ArrayOrAddresses,
    density_class: DensityClass,
    lengths: Optional[np.ndarray] = None,
) -> DenseResult:
    """Find all prefixes of one density class among distinct addresses.

    Input is canonicalized (sorted, deduplicated) before counting, so
    repeated observations of an address can neither push a prefix over
    the ``n`` threshold nor inflate ``contained_addresses``.  ``lengths``
    optionally supplies the precomputed adjacent-LCP array of the
    canonical input, letting multi-class sweeps share one scan.
    """
    array = _as_address_array(addresses)
    prefixes, contained = dense_runs(array, density_class.n, density_class.p, lengths)
    return DenseResult(
        density_class=density_class,
        prefixes=prefixes,
        contained_addresses=contained,
    )


def table3(
    addresses: ArrayOrAddresses,
    classes: Sequence[DensityClass] = TABLE3_CLASSES,
) -> List[DenseResult]:
    """Run the full Table 3 sweep over the given density classes.

    One adjacent-LCP scan of the canonical address array serves every
    class; each row is then a single run-length pass over that scan.
    """
    array = _as_address_array(addresses)
    lengths = adjacent_common_prefix_lengths(array)
    return [find_dense(array, density_class, lengths) for density_class in classes]


def dense_prefix_objects(result: DenseResult) -> List[Prefix]:
    """The dense prefixes of a result as :class:`Prefix` objects."""
    return [Prefix(network, length) for network, length, _count in result.prefixes]


def scan_targets(result: DenseResult, limit: int = 1_000_000) -> List[int]:
    """Enumerate candidate probe targets inside the dense prefixes.

    Every address of every dense prefix, up to ``limit`` (the budget
    guard): this is the §6.2.2 proposal that dense blocks are feasible
    active-scan targets, /112s being the IPv6 analogue of IPv4 /16s.
    """
    targets: List[int] = []
    for network, length, _count in result.prefixes:
        span = 1 << (128 - length)
        remaining = limit - len(targets)
        if remaining <= 0:
            break
        targets.extend(range(network, network + min(span, remaining)))
    return targets
