"""Per-position entropy profiling of address sets.

A companion to the MRA ratios: for each of the 32 nybble positions,
the Shannon entropy (in bits, 0..4) of the values observed at that
position across a set of addresses.  Where MRA ratios measure how a set
*aggregates* under prefix splitting, entropy measures how *variable*
each position is independently — the view tools like ``entropy/ip``
popularized after this paper.

The two views agree on the broad strokes (fixed fields score 0, random
fields score ~4) but differ usefully: a position can carry high entropy
yet aggregate completely (e.g. the last nybble of sequential hosts), and
MRA sees ordering that entropy cannot.  ``benchmarks/bench_entropy.py``
contrasts them on the scenario networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.mra import ArrayOrAddresses, _as_address_array


@dataclass
class EntropyProfile:
    """Per-nybble entropies of one address set.

    Attributes:
        size: number of distinct addresses profiled.
        entropies: 32 values in bits (0 = constant, 4 = uniform hex).
    """

    size: int
    entropies: np.ndarray

    def nybble(self, index: int) -> float:
        """Entropy of nybble ``index`` (0 = most significant)."""
        if not 0 <= index < 32:
            raise ValueError(f"nybble index out of range: {index}")
        return float(self.entropies[index])

    def segment_mean(self, start_bit: int, end_bit: int) -> float:
        """Mean nybble entropy over a bit range (nybble-aligned)."""
        if start_bit % 4 or end_bit % 4 or not 0 <= start_bit < end_bit <= 128:
            raise ValueError(f"bad nybble-aligned range: {start_bit}..{end_bit}")
        return float(self.entropies[start_bit // 4 : end_bit // 4].mean())

    def constant_positions(self, threshold: float = 0.01) -> List[int]:
        """Nybble indices whose entropy is ~0 (fixed fields)."""
        return [int(i) for i in np.nonzero(self.entropies <= threshold)[0]]

    def variable_positions(self, threshold: float = 3.5) -> List[int]:
        """Nybble indices near maximal entropy (random-looking fields)."""
        return [int(i) for i in np.nonzero(self.entropies >= threshold)[0]]


def entropy_profile(addresses: ArrayOrAddresses) -> EntropyProfile:
    """Compute the 32-nybble entropy profile of an address set."""
    array = _as_address_array(addresses)
    size = int(array.shape[0])
    entropies = np.zeros(32, dtype=np.float64)
    if size == 0:
        return EntropyProfile(size=0, entropies=entropies)
    hi = array["hi"]
    lo = array["lo"]
    for index in range(32):
        if index < 16:
            values = (hi >> np.uint64(60 - 4 * index)) & np.uint64(0xF)
        else:
            values = (lo >> np.uint64(60 - 4 * (index - 16))) & np.uint64(0xF)
        counts = np.bincount(values.astype(np.int64), minlength=16)
        probabilities = counts[counts > 0] / size
        entropies[index] = float(-(probabilities * np.log2(probabilities)).sum())
    return EntropyProfile(size=size, entropies=entropies)


def render_profile(profile: EntropyProfile, title: str = "") -> str:
    """Render an entropy profile as a compact bar string.

    One character per nybble: ``.`` for ~0 bits through ``#`` for ~4,
    with a scale line, e.g.::

        nybble entropy (0..4 bits):  ....#### ######## ........ ........
    """
    glyphs = ".:-=+*%#"
    cells: List[str] = []
    for index in range(32):
        level = min(len(glyphs) - 1, int(profile.entropies[index] / 4.0 * len(glyphs)))
        cells.append(glyphs[level])
        if index % 8 == 7 and index != 31:
            cells.append(" ")
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("nybble entropy (. = 0 bits, # = 4 bits), MSB first:")
    lines.append("  " + "".join(cells))
    return "\n".join(lines)


def compare_positions(
    profile: EntropyProfile, mra_ratios_4bit: Sequence[Tuple[int, float]]
) -> List[Tuple[int, float, float]]:
    """Pair each nybble's entropy with its 4-bit MRA ratio.

    Returns (bit position, entropy, log2(ratio)) rows — the two columns
    agree where variability and aggregation coincide and diverge where
    ordering matters.
    """
    ratio_by_position = dict(mra_ratios_4bit)
    rows: List[Tuple[int, float, float]] = []
    for index in range(32):
        position = 4 * index
        ratio = ratio_by_position.get(position, 1.0)
        rows.append((position, float(profile.entropies[index]), float(np.log2(ratio))))
    return rows
