"""Plan-aware subscriber estimation (§7.1 operationalized).

The paper concludes: "estimating IPv6 user or device counts should be
informed by addressing practice on a per-network or per-prefix basis" —
raw active-/64 counts miscount by up to 100x in either direction.  This
module implements the correction the paper calls for, entirely from
passive data:

1. discover each network's *plan boundary* with the longest-stable-
   prefix method (§7.2, :mod:`repro.core.stableprefix`);
2. count the **stable prefixes at that boundary** instead of raw /64s:
   * boundary < 64 → network ids below the boundary churn (rotating ids
     or pools); the boundary prefixes are the durable subscriber-ish
     unit — but a boundary *region* can serve many subscribers, so the
     estimate degrades to a capacity bound there and is flagged;
   * boundary == 64 → stable /64s approximate subscribers directly;
   * boundary > 64 → multiple users share each /64 (the department);
     count stable addresses instead.

Returned estimates carry their method tag so consumers know which
regime produced each number.  ``benchmarks/bench_estimate.py`` scores
naive versus plan-aware estimation against simulator ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.stableprefix import longest_stable_prefixes
from repro.data import store as obstore
from repro.data.store import ObservationStore


@dataclass(frozen=True)
class SubscriberEstimate:
    """One network's subscriber estimate.

    Attributes:
        boundary: the detected plan-boundary prefix length (0 = none).
        naive_64s: the raw weekly active /64 count (the naive estimate).
        estimate: the plan-aware estimate.
        method: how the estimate was formed — "stable-64s",
            "boundary-prefixes" (with the capacity caveat),
            "stable-addresses", or "naive-fallback".
    """

    boundary: int
    naive_64s: int
    estimate: int
    method: str


def estimate_subscribers(
    observations: ObservationStore,
    days: Sequence[int],
    n: int = 3,
    min_days: Optional[int] = None,
    lengths: Optional[Sequence[int]] = None,
) -> SubscriberEstimate:
    """Plan-aware subscriber estimate for one network's daily logs.

    ``observations`` should contain a single network's activity (filter
    by BGP prefix first); ``days`` is the analysis span — at least two
    weeks, and longer than any suspected rotation period.

    ``min_days`` (the stable-prefix evidence threshold) defaults to 40%
    of the span: coincidental recurrences of deeper-than-plan prefixes
    grow with the number of day pairs, so the evidence bar must grow
    with the window or the detected boundary drifts too deep.
    """
    if lengths is None:
        lengths = tuple(range(128, 28, -4))
    day_list = sorted(days)
    if min_days is None:
        min_days = max(4, (len(day_list) * 2) // 5)
    naive_64s = obstore.array_size(
        observations.truncated(64).union_over(day_list)
    )
    report = longest_stable_prefixes(
        observations, n=n, lengths=lengths, min_days=min_days
    )
    boundary = report.dominant_length()
    histogram = report.by_length()

    if boundary == 0:
        return SubscriberEstimate(
            boundary=0,
            naive_64s=naive_64s,
            estimate=naive_64s,
            method="naive-fallback",
        )

    if boundary == 64:
        # Stable /64s are the subscriber-ish unit; this also covers
        # capacity pools, where the stable /64s equal the pool slots —
        # closer to concurrent capacity than raw weekly unions.
        estimate = sum(
            count for length, count in histogram.items() if length <= 64
        )
        return SubscriberEstimate(
            boundary=boundary,
            naive_64s=naive_64s,
            estimate=estimate,
            method="stable-64s",
        )

    if boundary < 64:
        # Network ids churn below the boundary: the boundary prefixes
        # are durable, but each may serve many subscribers, so this is a
        # structure count, not a head count; scale by the typical daily
        # active /64s per boundary prefix as a first-order correction.
        boundary_count = sum(
            count for length, count in histogram.items() if length <= 64
        )
        daily_64 = [
            obstore.array_size(observations.truncated(64).array(day))
            for day in day_list
        ]
        typical_daily = sorted(daily_64)[len(daily_64) // 2] if daily_64 else 0
        estimate = max(boundary_count, typical_daily)
        return SubscriberEstimate(
            boundary=boundary,
            naive_64s=naive_64s,
            estimate=estimate,
            method="boundary-prefixes",
        )

    # boundary > 64: users share /64s — count stable addresses.
    estimate = sum(count for _length, count in histogram.items())
    return SubscriberEstimate(
        boundary=boundary,
        naive_64s=naive_64s,
        estimate=estimate,
        method="stable-addresses",
    )


def estimation_error(estimate: int, truth: int) -> float:
    """Symmetric multiplicative error: max(e/t, t/e) - 1 (0 = exact)."""
    if truth <= 0 or estimate <= 0:
        return float("inf")
    ratio = estimate / truth
    return max(ratio, 1.0 / ratio) - 1.0
