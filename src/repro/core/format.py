"""Standards-based address-format classification.

The paper (§3, §4) first buckets addresses by the early transition
mechanisms whose formats are trivially recognized — Teredo, ISATAP, and
6to4 — and calls everything else "Other" (native end-to-end IPv6
transport).  Within "Other", EUI-64 SLAAC addresses can still be spotted
by the ``ff:fe`` marker in the interface identifier, yielding a persistent
per-host identity (the embedded MAC).  This module implements that
classification, plus the finer-grained IID content features used by the
Malone-style baseline and the simulator's ground-truth checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net import addr, mac, special


class TransitionKind(enum.Enum):
    """The transition-mechanism buckets of Table 1.

    ``OTHER`` is the paper's "native" bucket: everything that is not one
    of the three easily classified early transition mechanisms.  Newer
    mechanisms (464XLAT, DS-Lite) use IPv6 end-to-end and so land in
    ``OTHER`` deliberately, as in the paper.
    """

    TEREDO = "teredo"
    ISATAP = "isatap"
    SIXTO4 = "6to4"
    OTHER = "other"


class IidKind(enum.Enum):
    """Content-based interface-identifier categories (after Malone).

    These describe what the low 64 bits *look like*; they are heuristics,
    which is exactly why the paper complements them with temporal
    analysis.
    """

    EUI64 = "eui64"  # ff:fe marker; embeds a MAC address
    ISATAP = "isatap"  # 5efe marker; embeds an IPv4 address
    LOW = "low"  # small integer, e.g. ::103 (static assignment)
    EMBEDDED_IPV4 = "embedded-ipv4"  # dotted quad readable in the IID
    STRUCTURED = "structured"  # low-entropy but not small, e.g. ::10:901
    RANDOM = "random"  # high-entropy; consistent with RFC 4941 privacy


@dataclass(frozen=True)
class AddressFormat:
    """Full format classification of one address.

    Attributes:
        value: the classified address.
        transition: which Table-1 bucket the address falls in.
        iid_kind: content category of the interface identifier (only
            meaningful for OTHER addresses with /64-style IIDs).
        mac: the embedded MAC for EUI-64 IIDs, else None.
        embedded_ipv4: IPv4 address recovered from 6to4/Teredo/ISATAP
            forms, else None.
    """

    value: int
    transition: TransitionKind
    iid_kind: Optional[IidKind]
    mac: Optional[int]
    embedded_ipv4: Optional[int]

    @property
    def is_native(self) -> bool:
        """True for the paper's "Other" (native transport) bucket."""
        return self.transition is TransitionKind.OTHER

    @property
    def is_eui64(self) -> bool:
        """True when the IID carries the EUI-64 ``ff:fe`` marker."""
        return self.iid_kind is IidKind.EUI64


#: IIDs numerically below this are treated as "low" static assignments.
LOW_IID_LIMIT = 1 << 16


def transition_kind(value: int) -> TransitionKind:
    """Classify an address into the Table-1 transition buckets.

    Teredo and 6to4 are prefix tests; ISATAP is an IID-content test and is
    checked only for addresses that are not in the two reserved prefixes.
    """
    if special.is_teredo(value):
        return TransitionKind.TEREDO
    if special.is_6to4(value):
        return TransitionKind.SIXTO4
    if special.is_isatap(value):
        return TransitionKind.ISATAP
    return TransitionKind.OTHER


def distinct_nybbles(iid: int) -> int:
    """Number of distinct hex characters among the IID's 16 nybbles."""
    seen = 0
    for shift in range(0, 64, 4):
        seen |= 1 << ((iid >> shift) & 0xF)
    return bin(seen).count("1")


def plausible_embedded_ipv4(iid: int) -> Optional[int]:
    """Detect an IPv4 address written into the low 64 bits.

    Two ad hoc conventions are recognized (cf. §3 "additional ad hoc
    schemes"):

    * hex-embedded: the high 32 bits of the IID are zero and the low 32
      bits hold the IPv4 address directly (e.g. ``::c000:21e``); required
      to look non-trivial (first octet non-zero).
    * decimal-coded: each 16-bit segment of the IID spells one octet in
      decimal (e.g. ``::192:0:2:33`` for 192.0.2.33).

    Returns the 32-bit IPv4 value or None.
    """
    if iid >> 32 == 0 and iid >= LOW_IID_LIMIT:
        candidate = iid & 0xFFFFFFFF
        if (candidate >> 24) != 0:
            return candidate
    # Decimal-coded: each segment, read as hex text, is a decimal 0..255.
    octets: List[int] = []
    for shift in (48, 32, 16, 0):
        segment = (iid >> shift) & 0xFFFF
        text = f"{segment:x}"
        if not text.isdigit():
            break
        value = int(text)
        if value > 255:
            break
        octets.append(value)
    if len(octets) == 4 and octets[0] != 0:
        return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
    return None


def classify_iid(iid: int, min_random_nybbles: int = 10) -> IidKind:
    """Classify a 64-bit interface identifier by content.

    The order of tests mirrors their reliability: exact markers first
    (EUI-64, ISATAP), then numeric conventions (low, embedded IPv4), and
    finally an entropy heuristic separating "structured" from "random".
    ``min_random_nybbles`` is the distinct-hex-character threshold above
    which an IID is deemed pseudorandom; see
    :mod:`repro.core.baseline` for its calibration.
    """
    if mac.is_eui64_iid(iid):
        return IidKind.EUI64
    if (iid >> 32) in (0x00005EFE, 0x02005EFE):
        return IidKind.ISATAP
    if iid < LOW_IID_LIMIT:
        return IidKind.LOW
    if plausible_embedded_ipv4(iid) is not None:
        return IidKind.EMBEDDED_IPV4
    if distinct_nybbles(iid) >= min_random_nybbles:
        return IidKind.RANDOM
    return IidKind.STRUCTURED


def classify(value: int) -> AddressFormat:
    """Produce the full :class:`AddressFormat` for one address."""
    addr.check_address(value)
    transition = transition_kind(value)
    embedded = None
    if transition is TransitionKind.SIXTO4:
        embedded = special.embedded_ipv4_6to4(value)
    elif transition is TransitionKind.TEREDO:
        embedded = special.embedded_ipv4_teredo(value)
    elif transition is TransitionKind.ISATAP:
        embedded = special.embedded_ipv4_isatap(value)

    iid = value & addr.IID_MASK
    iid_kind = classify_iid(iid)
    embedded_mac = mac.eui64_mac_or_none(iid)
    if embedded is None and iid_kind is IidKind.EMBEDDED_IPV4:
        embedded = plausible_embedded_ipv4(iid)
    return AddressFormat(
        value=value,
        transition=transition,
        iid_kind=iid_kind,
        mac=embedded_mac,
        embedded_ipv4=embedded,
    )


def is_eui64_address(value: int) -> bool:
    """True if the address's IID carries the EUI-64 marker."""
    return mac.is_eui64_iid(addr.check_address(value) & addr.IID_MASK)


def eui64_mac(value: int) -> Optional[int]:
    """Return the MAC embedded in an EUI-64 address, else None."""
    return mac.eui64_mac_or_none(addr.check_address(value) & addr.IID_MASK)


def partition_by_transition(
    addresses: Iterable[int],
) -> Dict[TransitionKind, List[int]]:
    """Split addresses into the four Table-1 buckets.

    Returns a dict with all four keys present (possibly empty lists), in
    the spirit of the paper's culling step: callers typically keep only
    ``TransitionKind.OTHER`` for the temporal/spatial classifiers.
    """
    buckets: Dict[TransitionKind, List[int]] = {kind: [] for kind in TransitionKind}
    for value in addresses:
        buckets[transition_kind(value)].append(value)
    return buckets


def count_eui64(addresses: Iterable[int]) -> Tuple[int, int]:
    """Count EUI-64 addresses and their distinct embedded MACs.

    Returns ``(eui64_address_count, distinct_mac_count)`` — the two
    EUI-64 rows of Table 1.
    """
    count = 0
    macs: Set[int] = set()
    for value in addresses:
        embedded = mac.eui64_mac_or_none(value & addr.IID_MASK)
        if embedded is not None:
            count += 1
            macs.add(embedded)
    return count, len(macs)
