"""Multi-Resolution Aggregate (MRA) counts and count ratios (§5.2.1).

Given a set of N addresses, the *active aggregate count* ``n_p`` is the
size of the smallest set of /p prefixes covering all of them (Kohler et
al.).  By definition ``n_0 = 1`` and ``n_128 = N`` (for distinct
addresses).  The *MRA count ratio* generalizes Kohler's ratio to segments
of k bits::

    γ^k_p = n_{p+k} / n_p        k ∈ {1, 4, 16}, p a multiple of k

γ ranges from 1 (splitting prefixes never separates addresses — total
aggregation) to 2**k (every split separates them — no aggregation), and
the product of the ratios along one resolution equals N.  MRA plots of
these ratios expose addressing structure: privacy addressing shows a
plateau at 2 past bit 64 with a drop to ~1 at bit 70 (the cleared "u"
bit), dense server blocks show prominence in the 112–128 segment, and
dynamic /64 pools saturate the 44–64 segment.

The implementation computes *all 129* aggregate counts in one pass: with
the addresses sorted, ``n_p`` is one more than the number of adjacent
pairs whose common prefix is shorter than p, so a histogram of adjacent
common-prefix lengths yields every count at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.data import store as obstore
from repro.data.store import ADDRESS_DTYPE

#: The three resolutions the paper plots: single bits, nybbles, 16-bit segments.
CANONICAL_RESOLUTIONS = (1, 4, 16)

ArrayOrAddresses = Union[np.ndarray, Iterable[int]]


def is_canonical(array: np.ndarray) -> bool:
    """True when an address array is strictly increasing (sorted, unique).

    Every consumer of the shared ``(hi, lo)`` columnar form — MRA counts,
    density classes, aggregate populations — requires this canonical
    order: :func:`adjacent_common_prefix_lengths` reads structure off
    *adjacent* pairs, and the dense/population accounting counts
    *distinct* addresses.  The check is one vectorized pass.
    """
    if array.shape[0] < 2:
        return True
    hi, lo = array["hi"], array["lo"]
    ascending = (hi[1:] > hi[:-1]) | ((hi[1:] == hi[:-1]) & (lo[1:] > lo[:-1]))
    return bool(np.all(ascending))


def _as_address_array(addresses: ArrayOrAddresses) -> np.ndarray:
    """Accept either a structured address array or an iterable of ints.

    Structured arrays are validated with a cheap ascending-order guard and
    sorted/deduplicated when they fail it: silently trusting arbitrary
    ``ADDRESS_DTYPE`` input previously returned wrong aggregate counts for
    unsorted arrays and double-counted duplicated addresses in the dense
    and population accounting.
    """
    if isinstance(addresses, np.ndarray) and addresses.dtype == ADDRESS_DTYPE:
        if is_canonical(addresses):
            return addresses
        return np.unique(addresses)
    return obstore.to_array(addresses)


def _bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Vectorized bit length of uint64 values (0 maps to 0).

    Splits each value into 32-bit halves so ``frexp`` exponents (exact for
    integers below 2**53) give the answer without float rounding risk.
    """
    high = (values >> np.uint64(32)).astype(np.uint32)
    low = (values & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    high_bits = np.frexp(high.astype(np.float64))[1]
    low_bits = np.frexp(low.astype(np.float64))[1]
    return np.where(high != 0, high_bits + 32, low_bits).astype(np.int64)


def adjacent_common_prefix_lengths(array: np.ndarray) -> np.ndarray:
    """Common-prefix length of each adjacent pair of a sorted address array."""
    if array.shape[0] < 2:
        return np.empty(0, dtype=np.int64)
    xor_hi = array["hi"][1:] ^ array["hi"][:-1]
    xor_lo = array["lo"][1:] ^ array["lo"][:-1]
    hi_len = 64 - _bit_length_u64(xor_hi)
    lo_len = 128 - _bit_length_u64(xor_lo)
    return np.where(xor_hi != 0, hi_len, lo_len)


def counts_from_lengths(lengths: np.ndarray, size: int) -> np.ndarray:
    """Aggregate counts ``n_0 .. n_128`` from precomputed adjacent LCPs.

    The spatial engine computes one LCP array per address set and derives
    MRA counts, fixed-length runs and general dense prefixes from it; this
    is the MRA leg of that shared pass.  ``size`` is the number of
    addresses (``len(lengths) + 1`` for non-empty sets).
    """
    counts = np.zeros(129, dtype=np.int64)
    if size == 0:
        return counts
    # A pair with common prefix length L splits at every p > L, so
    # n_p = 1 + #{pairs with L < p} = 1 + cumulative histogram below p.
    histogram = np.bincount(lengths, minlength=129)
    counts[0] = 1
    counts[1:] = 1 + np.cumsum(histogram)[:128]
    return counts


def aggregate_counts(addresses: ArrayOrAddresses) -> np.ndarray:
    """Return the full vector ``n_0 .. n_128`` of active aggregate counts.

    ``counts[p]`` is the number of /p prefixes needed to cover the set.
    An empty input yields all zeros.  Structured-array input is validated
    (and sorted/deduplicated when necessary): the adjacent-pair scan is
    only meaningful on the canonical sorted form.
    """
    array = _as_address_array(addresses)
    size = int(array.shape[0])
    if size == 0:
        return np.zeros(129, dtype=np.int64)
    return counts_from_lengths(adjacent_common_prefix_lengths(array), size)


@dataclass
class MraProfile:
    """The MRA profile of one address set: every aggregate count.

    ``counts[p]`` is ``n_p``.  Ratio series for any resolution are derived
    on demand; this object is the data behind one MRA plot.
    """

    counts: np.ndarray

    @property
    def size(self) -> int:
        """Number of distinct addresses profiled (``n_128``)."""
        return int(self.counts[128])

    def n(self, p: int) -> int:
        """Aggregate count at prefix length ``p``."""
        if not 0 <= p <= 128:
            raise ValueError(f"prefix length out of range: {p}")
        return int(self.counts[p])

    def ratio(self, p: int, k: int = 1) -> float:
        """The MRA count ratio ``γ^k_p = n_{p+k} / n_p``."""
        if not 0 <= p <= 128 - k:
            raise ValueError(f"ratio undefined at p={p}, k={k}")
        denominator = self.counts[p]
        if denominator == 0:
            return 0.0
        return float(self.counts[p + k]) / float(denominator)

    def series(self, k: int) -> List[Tuple[int, float]]:
        """The plotted series for resolution ``k``: (p, γ^k_p) pairs.

        ``p`` runs over multiples of ``k`` from 0 through 128-k, matching
        the paper's canonical x positions (a point plotted at p describes
        the segment of bits p..p+k-1).
        """
        if k < 1 or 128 % k != 0:
            raise ValueError(f"k must divide 128: {k}")
        return [(p, self.ratio(p, k)) for p in range(0, 128, k)]

    def segment_ratios_16(self) -> List[float]:
        """The eight 16-bit segment ratios (Figure 5b's per-prefix data)."""
        return [self.ratio(p, 16) for p in range(0, 128, 16)]

    def ratio_product(self, k: int) -> float:
        """Product of the ratios at resolution ``k``.

        Equals the set size for any k (the identity the paper notes),
        which the property-based tests assert.  The factors telescope —
        ``(n_k/n_0)(n_2k/n_k)...(n_128/n_{128-k}) = n_128/n_0`` — so the
        product is evaluated exactly over the integer counts; repeated
        float multiplication drifts below the identity for large sets.
        A zero anywhere in the denominators (the empty set) makes some
        factor 0, hence a zero product, matching :meth:`ratio`.
        """
        if k < 1 or 128 % k != 0:
            raise ValueError(f"k must divide 128: {k}")
        denominators = self.counts[0:128:k]
        if np.any(denominators == 0):
            return 0.0
        return float(self.counts[128]) / float(self.counts[0])


def profile(addresses: ArrayOrAddresses) -> MraProfile:
    """Compute the MRA profile of an address set."""
    return MraProfile(counts=aggregate_counts(addresses))


def grouped_aggregate_counts(
    groups: Sequence[ArrayOrAddresses],
) -> np.ndarray:
    """Aggregate-count vectors of many address sets in one vectorized pass.

    Returns a ``(len(groups), 129)`` matrix whose row g equals
    ``aggregate_counts(groups[g])``.  All groups are concatenated and a
    single adjacent-LCP scan runs over the combined columns; pairs that
    straddle a group boundary are masked out, and one 2-D histogram
    yields every group's count vector at once — no per-group Python loop
    over thousands of BGP prefixes.
    """
    arrays = [_as_address_array(group) for group in groups]
    num_groups = len(arrays)
    counts = np.zeros((num_groups, 129), dtype=np.int64)
    if num_groups == 0:
        return counts
    sizes = np.array([array.shape[0] for array in arrays], dtype=np.int64)
    total = int(sizes.sum())
    if total == 0:
        return counts
    concat = np.concatenate(arrays)
    group_of = np.repeat(np.arange(num_groups, dtype=np.int64), sizes)
    lengths = adjacent_common_prefix_lengths(concat)
    within = group_of[1:] == group_of[:-1]
    keys = group_of[:-1][within] * 129 + lengths[within]
    histogram = np.bincount(keys, minlength=num_groups * 129)
    histogram = histogram.reshape(num_groups, 129)
    nonempty = sizes > 0
    counts[nonempty, 0] = 1
    counts[:, 1:] = np.cumsum(histogram, axis=1)[:, :128]
    counts[:, 1:] += counts[:, :1]
    return counts


def profiles_by_group(
    groups: Iterable[Tuple[object, ArrayOrAddresses]]
) -> List[Tuple[object, MraProfile]]:
    """Profile many (key, addresses) groups, e.g. one per BGP prefix.

    Used for Figure 5b, where the distribution of each 16-bit segment's
    ratio is taken across all BGP prefixes.  Backed by
    :func:`grouped_aggregate_counts`, so the whole collection is profiled
    with one concatenated LCP scan instead of one pass per group.
    """
    items = list(groups)
    matrix = grouped_aggregate_counts([addresses for _key, addresses in items])
    return [
        (key, MraProfile(counts=matrix[index]))
        for index, (key, _addresses) in enumerate(items)
    ]


def segment_ratio_matrix(
    profiles: Sequence[MraProfile],
) -> np.ndarray:
    """Stack 16-bit segment ratios into a (num_profiles, 8) matrix.

    Column j holds γ¹⁶ at p = 16·j across the profiles; feed the columns
    to :func:`repro.viz.boxplot.box_stats` to get Figure 5b.
    """
    return np.array(
        [prof.segment_ratios_16() for prof in profiles], dtype=np.float64
    )
