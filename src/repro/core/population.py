"""Aggregate population distributions (§5.2.2, Figure 3).

Kohler et al.'s "aggregate population" is the number of observed items
(addresses, or /64 prefixes) inside each prefix of a given aggregate
length.  The paper plots the complementary CDF of these populations across
prefixes — for /32, /48 and /112 aggregates of addresses and /32, /48
aggregates of /64s — to show how strongly observed IPv6 addresses
concentrate in a small subset of prefixes.

The populations are computed on the array-native spatial engine
(:mod:`repro.core.spatial`): aggregates are the runs of the sorted
address array delimited by adjacent common prefixes shorter than the
aggregate length, so a whole family of aggregate lengths shares one
adjacent-LCP scan per base array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.mra import (
    ArrayOrAddresses,
    _as_address_array,
    adjacent_common_prefix_lengths,
)
from repro.core.spatial import prefix_runs
from repro.data import store as obstore


def aggregate_populations(
    addresses: ArrayOrAddresses,
    aggregate_len: int,
    lengths: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Population of every active /``aggregate_len`` prefix.

    Returns one count of *distinct* addresses per active aggregate
    (prefixes containing zero observed items are naturally absent), in
    ascending aggregate-network order.  ``lengths`` optionally supplies
    the precomputed adjacent-LCP array of the canonical input, letting
    several aggregate lengths share one scan.
    """
    array = _as_address_array(addresses)
    if array.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    _starts, counts = prefix_runs(array, aggregate_len, lengths)
    return counts


@dataclass
class PopulationCcdf:
    """A CCDF over aggregate populations: P(population >= x).

    Attributes:
        label: series label, e.g. ``"48-agg. of IPv6 addrs"``.
        populations: sorted populations, one per active aggregate.
    """

    label: str
    populations: np.ndarray

    @property
    def num_aggregates(self) -> int:
        """Number of active aggregates (prefixes with population >= 1)."""
        return int(self.populations.shape[0])

    def proportion_at_least(self, x: float) -> float:
        """Proportion of aggregates with population >= x."""
        if self.num_aggregates == 0:
            return 0.0
        index = np.searchsorted(self.populations, x, side="left")
        return float(self.num_aggregates - index) / self.num_aggregates

    def points(self) -> List[Tuple[float, float]]:
        """The (population, CCDF proportion) step points for plotting."""
        if self.num_aggregates == 0:
            return []
        unique, first_index = np.unique(self.populations, return_index=True)
        total = self.num_aggregates
        return [
            (float(value), float(total - start) / total)
            for value, start in zip(unique, first_index)
        ]


def population_ccdf(
    addresses: ArrayOrAddresses,
    aggregate_len: int,
    label: str = "",
    lengths: Optional[np.ndarray] = None,
) -> PopulationCcdf:
    """Build the CCDF of populations for one aggregate length."""
    populations = np.sort(aggregate_populations(addresses, aggregate_len, lengths))
    if not label:
        label = f"{aggregate_len}-agg."
    return PopulationCcdf(label=label, populations=populations)


def figure3_series(
    addresses: ArrayOrAddresses,
) -> List[PopulationCcdf]:
    """The five series of Figure 3 for one week's address set.

    Addresses contribute /32-, /48- and /112-aggregate populations; the
    derived /64 set contributes /32- and /48-aggregate populations.  One
    adjacent-LCP scan per base set (addresses, /64s) feeds all its series.
    """
    array = _as_address_array(addresses)
    sixty_fours = obstore.truncate_array(array, 64)
    addr_lengths = adjacent_common_prefix_lengths(array)
    sf_lengths = adjacent_common_prefix_lengths(sixty_fours)
    return [
        population_ccdf(array, 32, "32-agg. of IPv6 addrs", addr_lengths),
        population_ccdf(sixty_fours, 32, "32-agg. of /64s", sf_lengths),
        population_ccdf(array, 48, "48-agg. of IPv6 addrs", addr_lengths),
        population_ccdf(sixty_fours, 48, "48-agg. of /64s", sf_lengths),
        population_ccdf(array, 112, "112-agg of IPv6 addrs", addr_lengths),
    ]


def average_per_aggregate(
    addresses: ArrayOrAddresses, aggregate_len: int
) -> float:
    """Mean population per active aggregate.

    With ``aggregate_len=64`` this is Table 1's "ave. addrs per /64".
    """
    populations = aggregate_populations(addresses, aggregate_len)
    if populations.shape[0] == 0:
        return 0.0
    return float(populations.mean())
