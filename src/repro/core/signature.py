"""MRA-signature classification of prefixes (the paper's proposed future work).

§5.2.1 closes: "While defining MRA-based address classes is left for
future work, we begin by developing spatial classification by
identifying dense prefixes."  This module takes the next step the paper
gestures at: classify a prefix's *addressing practice* directly from its
MRA profile, using the signature features the paper reads off its plots.

Classes (one per operator practice the paper documents):

* ``PRIVACY_SLAAC`` — per-host /64s with RFC 4941 IIDs: single-bit
  ratios near 2 just past bit 64, the u-bit dip at 70, a sparse tail.
* ``DENSE_BLOCK`` — statically numbered hosts packed into small blocks:
  prominent 112-128 ratios (Figures 2b, 5g).
* ``POOL_SATURATED`` — dynamic /64 pools heavily utilized: large 16-bit
  ratios in the 32-64 range with a quiet IID half (Figure 5e).
* ``STRUCTURED`` — low-entropy assignment that matches none of the
  above strongly (low IIDs, small subnet sets).
* ``UNKNOWN`` — too few addresses to say.

The classifier is deliberately transparent: thresholded features, each
traceable to a sentence in the paper, evaluated by
``benchmarks/bench_signature.py`` against simulator ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.mra import ArrayOrAddresses, MraProfile, profile as mra_profile


class PrefixClass(enum.Enum):
    """MRA-signature classes of addressing practice."""

    PRIVACY_SLAAC = "privacy-slaac"
    DENSE_BLOCK = "dense-block"
    POOL_SATURATED = "pool-saturated"
    STRUCTURED = "structured"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SignatureFeatures:
    """The numeric features one classification is based on.

    Attributes:
        size: distinct addresses profiled.
        iid_plateau: mean single-bit ratio over bits 64..69.
        u_bit_dip: single-bit ratio at bit 70 relative to its neighbours
            (ratio < 1 marks RFC 4941's cleared u bit; exactly 1 when
            the IID half carries no randomness at all).
        tail_prominence: mean 4-bit ratio over bits 112..124.
        subnet_use: product of 16-bit ratios at 32 and 48 (how much of
            the operator-subnetting span is exercised).
        iid_use: product of the four 16-bit ratios past bit 64.
        iid_onset: single-bit ratio right at bit 64 — above ~1.3 when
            /64s hold multiple addresses with differing IIDs.
        u_bit_flat: the raw single-bit ratio at bit 70; exactly 1.0 when
            the u bit is constant across every /71 pair (RFC 4941 sets
            it to 0, EUI-64 to 1 — the value share disambiguates).
        dense_share: fraction of addresses inside 2@/112-dense prefixes
            (only available when classifying from addresses; None when
            classifying a bare profile).
        u_one_share: fraction of addresses whose u bit is 1 (EUI-64
            territory); only available when classifying from addresses.
    """

    size: int
    iid_plateau: float
    u_bit_dip: float
    tail_prominence: float
    subnet_use: float
    iid_use: float
    iid_onset: float = 1.0
    u_bit_flat: float = 1.0
    dense_share: "float | None" = None
    u_one_share: "float | None" = None


#: Minimum distinct addresses for a confident signature.
MIN_ADDRESSES = 24


def extract_features(profile: MraProfile) -> SignatureFeatures:
    """Compute the signature features from an MRA profile."""
    plateau = sum(profile.ratio(p, 1) for p in range(64, 70)) / 6.0
    neighbours = (profile.ratio(69, 1) + profile.ratio(71, 1)) / 2.0
    dip = profile.ratio(70, 1) / max(neighbours, 1.0)
    tail = sum(profile.ratio(p, 4) for p in range(112, 128, 4)) / 4.0
    subnet_use = profile.ratio(32, 16) * profile.ratio(48, 16)
    iid_use = 1.0
    for p in range(64, 128, 16):
        iid_use *= profile.ratio(p, 16)
    return SignatureFeatures(
        size=profile.size,
        iid_plateau=plateau,
        u_bit_dip=dip,
        tail_prominence=tail,
        subnet_use=subnet_use,
        iid_use=iid_use,
        iid_onset=profile.ratio(64, 1),
        u_bit_flat=profile.ratio(70, 1),
    )


def _decide(features: SignatureFeatures) -> PrefixClass:
    """The decision rules, in reliability order.

    1. Dense blocks — by the dense-share of 2@/112 prefixes when
       available (robust to mixed populations), else by tail ratios.
    2. Privacy SLAAC — the relative u-bit dip is the load-bearing
       signature (structured and fixed IIDs show no dip because the IID
       half carries no randomness); a modest plateau confirms multiple
       random IIDs per /64.
    3. Pool saturation — the subnetting span heavily exercised while the
       IID half is quiet (fixed IIDs riding dynamic /64s, Figure 5e).
    4. Everything else is structured.
    """
    if features.size < MIN_ADDRESSES:
        return PrefixClass.UNKNOWN

    if features.dense_share is not None:
        if features.dense_share > 0.3:
            return PrefixClass.DENSE_BLOCK
    elif features.tail_prominence > 1.5:
        return PrefixClass.DENSE_BLOCK

    # Privacy: /64s carry multiple differing IIDs (onset above 1.3) yet
    # bit 70 never splits (RFC 4941's constant u=0); when the u-bit
    # *value* is known, a u=1 majority means EUI-64, not privacy.
    privacy_shape = features.iid_onset > 1.3 and features.u_bit_flat < 1.02
    if privacy_shape and (
        features.u_one_share is None or features.u_one_share < 0.3
    ):
        return PrefixClass.PRIVACY_SLAAC

    if features.subnet_use > 16 * features.iid_use and features.subnet_use > 64:
        return PrefixClass.POOL_SATURATED

    if features.iid_plateau > 1.8:
        return PrefixClass.PRIVACY_SLAAC

    return PrefixClass.STRUCTURED


def classify_profile(profile: MraProfile) -> Tuple[PrefixClass, SignatureFeatures]:
    """Classify one prefix's addressing practice from its MRA profile.

    Works from the profile alone (no dense-share available); prefer
    :func:`classify_addresses` when the raw addresses are at hand.
    """
    features = extract_features(profile)
    return _decide(features), features


def classify_addresses(
    addresses: ArrayOrAddresses,
) -> Tuple[PrefixClass, SignatureFeatures]:
    """Classify from raw addresses: profile features plus dense share."""
    from repro.core.density import DensityClass, find_dense
    from repro.core.mra import _as_address_array

    import numpy as np

    array = _as_address_array(addresses)
    base = extract_features(mra_profile(array))
    if base.size:
        dense = find_dense(array, DensityClass(2, 112))
        dense_share = dense.contained_addresses / base.size
        # The u bit is IID bit 6 from the MSB: low-half bit 57.
        u_bits = (array["lo"] >> np.uint64(57)) & np.uint64(1)
        u_one_share = float(u_bits.mean())
    else:
        dense_share = 0.0
        u_one_share = 0.0
    features = SignatureFeatures(
        size=base.size,
        iid_plateau=base.iid_plateau,
        u_bit_dip=base.u_bit_dip,
        tail_prominence=base.tail_prominence,
        subnet_use=base.subnet_use,
        iid_use=base.iid_use,
        iid_onset=base.iid_onset,
        u_bit_flat=base.u_bit_flat,
        dense_share=dense_share,
        u_one_share=u_one_share,
    )
    return _decide(features), features


def classify_groups(
    groups: Iterable[Tuple[object, ArrayOrAddresses]],
) -> List[Tuple[object, PrefixClass, SignatureFeatures]]:
    """Classify many (key, addresses) groups, e.g. one per BGP prefix."""
    results: List[Tuple[object, PrefixClass, SignatureFeatures]] = []
    for key, addresses in groups:
        prefix_class, features = classify_addresses(addresses)
        results.append((key, prefix_class, features))
    return results


def class_histogram(
    results: Iterable[Tuple[object, PrefixClass, SignatureFeatures]],
) -> Dict[PrefixClass, int]:
    """Count classifications per class (for survey-style reporting)."""
    histogram: Dict[PrefixClass, int] = {cls: 0 for cls in PrefixClass}
    for _key, prefix_class, _features in results:
        histogram[prefix_class] += 1
    return histogram
