"""Array-native spatial classification engine (§5.2).

The paper's spatial methods — MRA count ratios (§5.2.1), aggregate
population CCDFs (§5.2.2) and the aguri-style *densify* operation behind
Table 3 (§5.2.3) — all interrogate the same object: the prefix structure
of a sorted address set.  The tree implementation
(:mod:`repro.trie.aguri`) materializes that structure as one Python
``RadixNode`` per address, which cannot densify a year-scale store in
reasonable time.  This engine computes the identical answers directly on
the canonical ``(hi, lo)`` columnar address arrays:

* One vectorized **adjacent-LCP scan**
  (:func:`repro.core.mra.adjacent_common_prefix_lengths`) is shared by
  every spatial question about a set.
* **Fixed-length /p groups** are the runs between LCP entries below p
  (:func:`prefix_runs`), giving Table 3 rows and aggregate populations
  without re-truncating and re-sorting per length.
* **Patricia branch points** are exactly the LCP entries: the branch
  node split at adjacent pair i has prefix length ``lcp[i]``, and its
  subtree spans the maximal run of pairs with LCP >= ``lcp[i]``.  The
  nearest-smaller-value bounds of each entry (computed by vectorized
  pointer doubling) therefore recover every node's (length, count), and
  the paper's *general densify* reduces to an interval sweep: report the
  dense nodes not covered by any dense ancestor interval
  (:func:`general_dense_prefixes`) — bit-identical to building the
  2M-node radix tree and folding it (tested and asserted in
  ``benchmarks/bench_spatial.py``).

Per-day spatial profiles over a whole store run through
:func:`sweep_spatial`, which mirrors :mod:`repro.core.sweep`'s
fork-based ``jobs=N`` fan-out and can apply the paper's census culling
step (§4.1) so the spatial classes describe the native "Other" subset,
as in the paper's Section 6 results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mra import (
    ArrayOrAddresses,
    _as_address_array,
    adjacent_common_prefix_lengths,
    counts_from_lengths,
)
from repro.data.store import ObservationStore
from repro.net import addr
from repro.net.prefix import check_length
from repro.runtime.pool import PoolConfig, RunReport, run_supervised
from repro.trie.aguri import density_threshold, widen_dense_prefixes

#: Counts are array sizes, far below 2**62; thresholds above this cap can
#: never be met, so the table stays within int64.
_THRESHOLD_CAP = 1 << 62


def threshold_table(n: int, p: int) -> np.ndarray:
    """Density thresholds for every node length, as an int64 lookup table.

    ``table[length]`` is the minimum subtree count for a length-``length``
    node to meet the ``n@/p`` density, per
    :func:`repro.trie.aguri.density_threshold`; astronomically large
    thresholds (short lengths far above ``p``) are clipped to an
    unreachable cap so the table fits int64.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    check_length(p)
    return np.array(
        [min(density_threshold(n, p, length), _THRESHOLD_CAP) for length in range(129)],
        dtype=np.int64,
    )


def _nearest_smaller_left(values: np.ndarray) -> np.ndarray:
    """Index of the nearest strictly smaller value to the left (-1 if none).

    Vectorized pointer doubling: every unresolved index jumps to its
    candidate's candidate, so chains of equal-or-larger values collapse
    geometrically — O(log n) passes of O(n) vector work, no Python loop
    over elements.
    """
    size = values.shape[0]
    out = np.arange(-1, size - 1, dtype=np.int64)
    while True:
        resolved_or_done = out < 0
        candidate = np.where(resolved_or_done, 0, out)
        need = ~resolved_or_done & (values[candidate] >= values)
        if not need.any():
            return out
        out[need] = out[out[need]]


def _nearest_smaller_right(values: np.ndarray) -> np.ndarray:
    """Index of the nearest strictly smaller value to the right (``size`` if none)."""
    size = values.shape[0]
    return (size - 1) - _nearest_smaller_left(values[::-1])[::-1]


def prefix_runs(
    array: np.ndarray, p: int, lengths: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Run-length encode a canonical address array into /p groups.

    Returns ``(starts, counts)``: index of each active /p prefix's first
    address, and the number of distinct addresses it contains, in
    ascending network order.  Adjacent addresses share a /p exactly when
    their common prefix is at least p long, so group boundaries are the
    LCP entries below p — no per-length truncate/sort/unique pass.
    """
    check_length(p)
    size = int(array.shape[0])
    if size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    if lengths is None:
        lengths = adjacent_common_prefix_lengths(array)
    boundaries = np.nonzero(lengths < p)[0]
    starts = np.concatenate([[0], boundaries + 1])
    ends = np.concatenate([boundaries + 1, [size]])
    return starts, ends - starts


def _network_int(array: np.ndarray, index: int, length: int) -> int:
    """The /length network containing the address at ``index``, as an int."""
    value = (int(array["hi"][index]) << 64) | int(array["lo"][index])
    return addr.truncate(value, length)


def dense_runs(
    array: np.ndarray,
    n: int,
    p: int,
    lengths: Optional[np.ndarray] = None,
) -> Tuple[List[Tuple[int, int, int]], int]:
    """Fixed-length dense search: /p groups holding at least n addresses.

    Returns the dense (network, p, count) list in ascending network order
    and the total number of observed addresses inside dense groups — the
    two quantities a Table 3 row accounts for.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    starts, counts = prefix_runs(array, p, lengths)
    dense = counts >= n
    dense_starts = starts[dense]
    dense_counts = counts[dense]
    prefixes = [
        (_network_int(array, int(start), p), p, int(count))
        for start, count in zip(dense_starts, dense_counts)
    ]
    return prefixes, int(dense_counts.sum())


def general_dense_prefixes(
    addresses: ArrayOrAddresses,
    n: int,
    p: int,
    widen: bool = False,
    lengths: Optional[np.ndarray] = None,
) -> List[Tuple[int, int, int]]:
    """Vectorized general densify: the paper's §5.2.3 on columnar arrays.

    Bit-identical to
    ``repro.trie.aguri.compute_dense_prefixes(addresses, n, p, widen)``
    — the least-specific non-overlapping prefixes meeting density
    ``n / 2**(128 - p)`` with at least n observed addresses — but
    computed from the adjacent-LCP array instead of a per-address radix
    tree:

    1. every Patricia branch node is an LCP entry; its subtree count is
       the width of the maximal surrounding run of LCPs at least as long
       (nearest-smaller bounds, by vectorized pointer doubling);
    2. a node is *dense* when its count meets the density threshold for
       its own length (the densify fold condition);
    3. the reported nodes are the dense nodes whose pair-interval is
       covered by no other dense interval — absorbing folds every dense
       node into its shallowest dense ancestor, so exactly the
       coverage-1 intervals survive (one difference-array cumsum).

    The tree implementation remains as the reference; the equivalence is
    asserted property-style in the tests and in ``bench_spatial.py``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    check_length(p)
    array = _as_address_array(addresses)
    size = int(array.shape[0])
    if size == 0:
        return []
    table = threshold_table(n, p)
    root_threshold = int(table[0])
    if size == 1:
        # Lone address: the only internal node is the root itself.
        if size >= root_threshold and size >= n:
            return [(0, 0, size)]
        return []
    if lengths is None:
        lengths = adjacent_common_prefix_lengths(array)
    if int(lengths.min()) > 0 and size >= root_threshold:
        # The root is not a branch point but meets the density: it
        # absorbs the entire tree, exactly as the post-order fold does.
        return [(0, 0, size)] if size >= n else []
    left = _nearest_smaller_left(lengths)
    right = _nearest_smaller_right(lengths)
    counts = right - left  # addresses spanned by each branch node
    dense = counts >= table[lengths]
    num_pairs = size - 1
    coverage_delta = np.zeros(num_pairs + 1, dtype=np.int64)
    np.add.at(coverage_delta, left[dense] + 1, 1)
    np.add.at(coverage_delta, right[dense], -1)
    coverage = np.cumsum(coverage_delta[:num_pairs])
    reported = dense & (coverage == 1) & (counts >= n)
    indices = np.nonzero(reported)[0]
    found = [
        (
            _network_int(array, int(left[i]) + 1, int(lengths[i])),
            int(lengths[i]),
            int(counts[i]),
        )
        for i in indices
    ]
    found.sort()
    if widen:
        return widen_dense_prefixes(found, p)
    return found


# ---------------------------------------------------------------------------
# Per-day spatial sweep: one engine pass per day, fork-based fan-out.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DenseSummary:
    """The Table 3 accounting of one density class on one address set."""

    n: int
    p: int
    num_prefixes: int
    contained_addresses: int

    @property
    def label(self) -> str:
        """The paper's notation, e.g. ``"2 @ /112"``."""
        return f"{self.n} @ /{self.p}"

    @property
    def possible_addresses(self) -> int:
        """Total addresses spanned: the active-probing target budget."""
        return self.num_prefixes * (1 << (128 - self.p))

    @property
    def address_density(self) -> float:
        """Observed contained addresses divided by possible addresses."""
        if self.possible_addresses == 0:
            return 0.0
        return self.contained_addresses / self.possible_addresses


@dataclass
class SpatialDayResult:
    """One day's spatial profile: MRA counts plus per-class dense rows.

    Attributes:
        day: the profiled day number.
        total: distinct addresses profiled (after any culling).
        mra_counts: the full ``n_0..n_128`` aggregate-count vector
            (``None`` when the sweep ran with ``mra=False``).
        dense: one :class:`DenseSummary` per requested density class.
        prefixes: the dense (network, length, count) lists per class
            label, kept only with ``keep_prefixes=True`` (they can be
            large; the summaries are what year-scale sweeps aggregate).
    """

    day: int
    total: int
    mra_counts: Optional[np.ndarray]
    dense: List[DenseSummary]
    prefixes: Optional[Dict[str, List[Tuple[int, int, int]]]] = None


def _class_params(density_class: object) -> Tuple[int, int]:
    """Accept DensityClass-like objects or plain (n, p) tuples."""
    n = getattr(density_class, "n", None)
    p = getattr(density_class, "p", None)
    if n is None or p is None:
        n, p = density_class  # type: ignore[misc]
    return int(n), int(p)


def day_spatial_summary(
    addresses: ArrayOrAddresses,
    classes: Sequence[object],
    day: int = 0,
    mra: bool = True,
    keep_prefixes: bool = False,
) -> SpatialDayResult:
    """Profile one address set: shared LCP scan, then every spatial leg.

    The LCP array is computed once and feeds the MRA count vector and
    every density class's run encoding — each extra class costs one
    vectorized comparison over the LCP array, not a fresh sort.
    """
    array = _as_address_array(addresses)
    size = int(array.shape[0])
    lengths = (
        adjacent_common_prefix_lengths(array) if size else np.empty(0, dtype=np.int64)
    )
    mra_counts = counts_from_lengths(lengths, size) if mra else None
    dense: List[DenseSummary] = []
    prefixes: Optional[Dict[str, List[Tuple[int, int, int]]]] = (
        {} if keep_prefixes else None
    )
    for density_class in classes:
        n, p = _class_params(density_class)
        found, contained = dense_runs(array, n, p, lengths)
        summary = DenseSummary(
            n=n, p=p, num_prefixes=len(found), contained_addresses=contained
        )
        dense.append(summary)
        if prefixes is not None:
            prefixes[summary.label] = found
    return SpatialDayResult(
        day=int(day),
        total=size,
        mra_counts=mra_counts,
        dense=dense,
        prefixes=prefixes,
    )


#: Store inherited by forked sweep workers (fork shares the parent's
#: memory copy-on-write, so day arrays are never pickled to workers).
_WORKER_STORE: Dict[int, ObservationStore] = {}


def _cull_other(array: np.ndarray) -> np.ndarray:
    """The native ("Other") subset of a day array, per the census step."""
    from repro.core.census import other_mask

    return array[other_mask(array)]


def _sweep_day_task(
    task: Tuple[Sequence[int], Sequence[object], bool, bool, bool]
) -> List[SpatialDayResult]:
    """Pool worker: profile one batch of days against the inherited store."""
    days, classes, mra, keep_prefixes, cull = task
    store = _WORKER_STORE[0]
    results: List[SpatialDayResult] = []
    for day in days:
        array = store.array(day)
        if cull:
            array = _cull_other(array)
        results.append(
            day_spatial_summary(
                array, classes, day=day, mra=mra, keep_prefixes=keep_prefixes
            )
        )
    return results


def sweep_spatial(
    observations: ObservationStore,
    days: Optional[Sequence[int]] = None,
    classes: Optional[Sequence[object]] = None,
    jobs: Optional[int] = None,
    mra: bool = True,
    keep_prefixes: bool = False,
    cull: bool = False,
    report_sink: "Optional[List[RunReport]]" = None,
) -> List[SpatialDayResult]:
    """Spatial profile of every requested day of a store.

    The spatial mirror of :func:`repro.core.sweep.sweep_days`: one
    :class:`SpatialDayResult` per day, with ``jobs`` fanning day batches
    out over supervised fork-based worker processes
    (:func:`repro.runtime.pool.run_supervised` — ``0`` = all CPUs,
    ``None``/``1`` = serial; crashed or wedged workers are retried, then
    re-run serially); results are independent of ``jobs``.
    ``report_sink`` receives the pool's
    :class:`repro.runtime.pool.RunReport`.  ``classes`` defaults to the
    twelve Table 3 classes.  With ``cull=True`` each day is first
    reduced to its native "Other" subset (the paper's §4.1 hand-off from
    the census to the classifiers).  Days absent from the store yield
    empty profiles.
    """
    from repro.core.density import TABLE3_CLASSES
    from repro.core.sweep import _resolve_jobs

    if classes is None:
        classes = TABLE3_CLASSES
    if days is None:
        day_list = observations.days()
    else:
        day_list = sorted({int(day) for day in days})
    if not day_list:
        return []
    workers = min(_resolve_jobs(jobs), len(day_list))
    if workers > 1:
        batches = [list(batch) for batch in np.array_split(day_list, workers * 4)]
        tasks = [
            (batch, tuple(classes), mra, keep_prefixes, cull)
            for batch in batches
            if batch
        ]
        _WORKER_STORE[0] = observations
        try:
            outputs, report = run_supervised(
                _sweep_day_task,
                tasks,
                PoolConfig(jobs=workers, label="spatial-sweep"),
            )
        finally:
            _WORKER_STORE.clear()
        if report_sink is not None:
            report_sink.append(report)
        return [result for batch_results in outputs for result in batch_results]
    results: List[SpatialDayResult] = []
    for day in day_list:
        array = observations.array(day)
        if cull:
            array = _cull_other(array)
        results.append(
            day_spatial_summary(
                array, classes, day=day, mra=mra, keep_prefixes=keep_prefixes
            )
        )
    return results
