"""Longest stable prefix discovery (§7.2, the paper's future work).

The paper proposes combining the temporal and spatial classifiers to
automatically find the *stable portions of network identifiers*: the
longest prefixes that persist across observations, without needing
long-lived IIDs (EUI-64) as guides.  Such prefixes are likely significant
aggregates in the network's routing tables, so the result is a passively
gleaned sketch of the operator's address plan.

Definition used here: a prefix is *stable* when its truncated form was
observed on two days at least ``n`` days apart (address stability applied
at that length), and it is a **longest stable prefix** when no observed
more-specific prefix within it is also stable.  The search proceeds from
long prefixes to short ones over a configurable set of lengths (every
nybble boundary by default, matching operator subnetting practice), so a
network that assigns subscribers dynamic /64s from stable /44 pools
reports /44s — recovering the pool boundary, as the paper's discussion of
the US mobile carrier anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data import store as obstore
from repro.data.store import ObservationStore

#: Nybble-aligned candidate lengths from /16 through /128.
DEFAULT_LENGTHS: Tuple[int, ...] = tuple(range(128, 12, -4))


@dataclass
class StablePrefixReport:
    """Result of a longest-stable-prefix search.

    Attributes:
        n: the day-gap parameter of the underlying stability test.
        lengths: the candidate lengths searched (descending).
        prefixes: the longest stable prefixes as (network, length) pairs,
            sorted by network then length.
    """

    n: int
    lengths: Tuple[int, ...]
    prefixes: List[Tuple[int, int]]

    def by_length(self) -> Dict[int, int]:
        """Histogram: number of longest stable prefixes per length."""
        histogram: Dict[int, int] = {}
        for _network, length in self.prefixes:
            histogram[length] = histogram.get(length, 0) + 1
        return histogram

    def dominant_length(self) -> int:
        """The most common longest-stable-prefix length.

        For a network with one addressing plan this recovers the
        network-identifier boundary (e.g. 64 for static-/64 plans, 44 for
        a /44-pool mobile carrier).  Returns 0 when nothing was stable.
        """
        histogram = self.by_length()
        if not histogram:
            return 0
        return max(histogram, key=lambda length: (histogram[length], length))


def _stable_truncations(
    observations: ObservationStore, length: int, n: int, min_days: int = 2
) -> np.ndarray:
    """Prefixes of ``length`` observed on ``min_days`` days spanning >= n.

    Works over the whole store: for each truncated prefix the first and
    last observation days and the distinct-day count are tracked.  The
    span witnesses stability; the day count is the *evidence* threshold —
    at high address densities a 4-bit-deeper prefix repeats across two
    days by coincidence easily, but recurring on many days marks a real
    assignment boundary rather than chance.
    """
    days = observations.days()
    chunks: List[np.ndarray] = []
    day_chunks: List[np.ndarray] = []
    for day in days:
        truncated = obstore.truncate_array(observations.array(day), length)
        chunks.append(truncated)
        day_chunks.append(np.full(truncated.shape[0], day, dtype=np.int64))
    if not chunks:
        return np.empty(0, dtype=obstore.ADDRESS_DTYPE)
    combined = np.concatenate(chunks)
    combined_days = np.concatenate(day_chunks)
    unique, inverse = np.unique(combined, return_inverse=True)
    first = np.full(unique.shape[0], np.iinfo(np.int64).max, dtype=np.int64)
    last = np.full(unique.shape[0], np.iinfo(np.int64).min, dtype=np.int64)
    day_counts = np.zeros(unique.shape[0], dtype=np.int64)
    np.minimum.at(first, inverse, combined_days)
    np.maximum.at(last, inverse, combined_days)
    np.add.at(day_counts, inverse, 1)  # one entry per (day, prefix): distinct
    return unique[((last - first) >= n) & (day_counts >= min_days)]


def longest_stable_prefixes(
    observations: ObservationStore,
    n: int = 3,
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    min_days: int = 2,
) -> StablePrefixReport:
    """Find the longest stable prefixes across the store's whole span.

    ``lengths`` must be sorted descending; the first (longest) length at
    which a region of the space shows stability claims that region, and
    shorter stable ancestors of claimed regions are suppressed.
    ``min_days`` sets the evidence threshold (see
    :func:`_stable_truncations`): raise it when the dataset holds many
    addresses per subnet, or chance recurrences of deeper prefixes will
    mask the true assignment boundary.
    """
    ordered = tuple(sorted(set(lengths), reverse=True))
    if not ordered:
        raise ValueError("at least one candidate length required")
    claimed = np.empty(0, dtype=obstore.ADDRESS_DTYPE)
    claimed_length = 129  # length at which `claimed` networks were cut
    results: List[Tuple[int, int]] = []

    for length in ordered:
        stable = _stable_truncations(observations, length, n, min_days)
        if stable.shape[0] == 0:
            continue
        if claimed.shape[0] > 0:
            # Suppress prefixes that contain an already-claimed longer one.
            covering = obstore.truncate_array(claimed, length)
            keep = ~obstore.member_mask(stable, covering)
            fresh = stable[keep]
        else:
            fresh = stable
        results.extend((value, length) for value in obstore.from_array(fresh))
        claimed = obstore.union(claimed, fresh)
        claimed_length = length

    results.sort()
    return StablePrefixReport(n=n, lengths=ordered, prefixes=results)


def plan_boundary_estimate(
    observations: ObservationStore,
    n: int = 3,
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    min_days: int = 2,
) -> int:
    """Estimate a network's subscriber-assignment boundary length.

    Convenience wrapper returning the dominant longest-stable-prefix
    length — the automated version of the paper's manual reverse
    engineering of addressing practice (§7.1–§7.2).
    """
    return longest_stable_prefixes(
        observations, n, lengths, min_days
    ).dominant_length()
