"""Streaming (online) stability classification.

§5.1: "we wish to perform stability analysis on an ongoing basis" — the
production setting is a pipeline that receives one aggregated log per
day, forever, and must classify each day as soon as its trailing window
completes, holding only a bounded number of days in memory.

:class:`StabilityStream` implements that: feed days in chronological
order with :meth:`push`; whenever a day's ``(-before, +after)`` window
is complete, the classification for that day is emitted.  Memory is
bounded by the window length — old days are dropped as the window
slides — so the stream can run over unbounded log sequences.

The emitted results are identical to the batch classifier's
(:func:`repro.core.temporal.classify_day` over a store holding the same
days), which a test asserts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.core.temporal import StabilityResult, classify_day
from repro.data.store import DailyObservations, ObservationStore


class StabilityStream:
    """Online nd-stable classification with bounded memory.

    Args:
        window_before: days of history each classification needs.
        window_after: days of future each classification waits for.
    """

    def __init__(self, window_before: int = 7, window_after: int = 7) -> None:
        if window_before < 0 or window_after < 0:
            raise ValueError("window spans must be non-negative")
        self.window_before = window_before
        self.window_after = window_after
        self._days: "OrderedDict[int, DailyObservations]" = OrderedDict()
        self._last_day: Optional[int] = None
        self._pending: List[int] = []  # days awaiting their trailing window

    def push(self, day: int, addresses: Iterable[int]) -> List[StabilityResult]:
        """Ingest one day's log; return any newly complete classifications.

        Days must arrive in strictly increasing order (the aggregation
        pipeline's natural order); gaps are allowed and simply count as
        empty days.
        """
        day = int(day)
        if self._last_day is not None and day <= self._last_day:
            raise ValueError(
                f"days must be pushed in increasing order: {day} after "
                f"{self._last_day}"
            )
        self._last_day = day
        self._days[day] = DailyObservations(day, addresses)
        self._pending.append(day)
        return self._drain()

    def _drain(self) -> List[StabilityResult]:
        """Classify every pending day whose trailing window has arrived."""
        results: List[StabilityResult] = []
        while self._pending:
            reference = self._pending[0]
            if self._last_day < reference + self.window_after:
                break
            self._pending.pop(0)
            results.append(self._classify(reference))
            self._evict(reference)
        return results

    def _classify(self, reference: int) -> StabilityResult:
        store = ObservationStore()
        for observations in self._days.values():
            store.add_observations(observations)
        return classify_day(
            store, reference, self.window_before, self.window_after
        )

    def _evict(self, classified_day: int) -> None:
        """Drop days that no pending classification can still need."""
        horizon = classified_day + 1 - self.window_before
        for day in list(self._days):
            if day < horizon:
                del self._days[day]
            else:
                break

    def flush(self) -> List[StabilityResult]:
        """Classify the trailing days whose future window will never fill.

        Call at end of stream: remaining days are classified with
        whatever future context exists (fewer following days than the
        window requests — exactly what a live pipeline would do at the
        data's edge).
        """
        results: List[StabilityResult] = []
        while self._pending:
            reference = self._pending.pop(0)
            results.append(self._classify(reference))
        return results

    @property
    def days_held(self) -> int:
        """How many days are currently buffered (bounded by the window)."""
        return len(self._days)


def stream_classify(
    days: Iterable[tuple],
    window_before: int = 7,
    window_after: int = 7,
) -> Iterator[StabilityResult]:
    """Run a whole (day, addresses) sequence through a stability stream.

    Yields classifications in day order, including the flushed tail.
    """
    stream = StabilityStream(window_before, window_after)
    for day, addresses in days:
        yield from stream.push(day, addresses)
    yield from stream.flush()
