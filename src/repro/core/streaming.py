"""Streaming (online) stability classification.

§5.1: "we wish to perform stability analysis on an ongoing basis" — the
production setting is a pipeline that receives one aggregated log per
day, forever, and must classify each day as soon as its trailing window
completes, holding only a bounded number of days in memory.

:class:`StabilityStream` implements that: feed days in chronological
order with :meth:`push`; whenever a day's ``(-before, +after)`` window
is complete, the classification for that day is emitted.  Memory is
bounded by the window length — old days are dropped as the window
slides — so the stream can run over unbounded log sequences.

Classification rides on the sweep engine's incremental window state
(:class:`repro.core.sweep.SweepState`): the live window's observations
are kept merged and sorted by (address, day), days entering and leaving
as the window slides, so emitting a day costs two vectorized binary
searches instead of rebuilding an :class:`ObservationStore` and
re-scanning all window days (the pre-sweep implementation did both for
every emitted day).  Pending days wait in a ``deque``, so draining is
O(1) per emission rather than an O(n) list shift.

The emitted results are identical to the batch classifier's
(:func:`repro.core.temporal.classify_day` over a store holding the same
days), which a test asserts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional

from repro.core.sweep import SweepState
from repro.core.temporal import StabilityResult
from repro.data.store import DailyObservations


class StabilityStream:
    """Online nd-stable classification with bounded memory.

    Args:
        window_before: days of history each classification needs.
        window_after: days of future each classification waits for.
    """

    def __init__(self, window_before: int = 7, window_after: int = 7) -> None:
        if window_before < 0 or window_after < 0:
            raise ValueError("window spans must be non-negative")
        self.window_before = window_before
        self.window_after = window_after
        self._state = SweepState(window_before, window_after)
        self._last_day: Optional[int] = None
        self._pending: Deque[int] = deque()  # days awaiting their window

    def push(self, day: int, addresses: Iterable[int]) -> List[StabilityResult]:
        """Ingest one day's log; return any newly complete classifications.

        Days must arrive in strictly increasing order (the aggregation
        pipeline's natural order); gaps are allowed and simply count as
        empty days.
        """
        return self.push_observations(DailyObservations(day, addresses))

    def push_observations(
        self, observations: DailyObservations
    ) -> List[StabilityResult]:
        """Ingest one prebuilt day of observations (no re-parsing).

        The fast path for pipelines that already hold
        :class:`DailyObservations` (e.g. from the day-log cache); same
        ordering contract and emissions as :meth:`push`.
        """
        day = observations.day
        if self._last_day is not None and day <= self._last_day:
            raise ValueError(
                f"days must be pushed in increasing order: {day} after "
                f"{self._last_day}"
            )
        self._last_day = day
        self._state.push_day(day, observations.addresses)
        self._pending.append(day)
        return self._drain()

    def _drain(self) -> List[StabilityResult]:
        """Classify every pending day whose trailing window has arrived."""
        results: List[StabilityResult] = []
        while self._pending:
            reference = self._pending[0]
            if self._last_day < reference + self.window_after:
                break
            self._pending.popleft()
            results.append(self._state.classify(reference))
            # Drop days that no pending classification can still need.
            self._state.evict_before(reference + 1 - self.window_before)
        return results

    def flush(self) -> List[StabilityResult]:
        """Classify the trailing days whose future window will never fill.

        Call at end of stream: remaining days are classified with
        whatever future context exists (fewer following days than the
        window requests — exactly what a live pipeline would do at the
        data's edge).
        """
        results: List[StabilityResult] = []
        while self._pending:
            results.append(self._state.classify(self._pending.popleft()))
        return results

    @property
    def days_held(self) -> int:
        """How many days are currently buffered (bounded by the window)."""
        return self._state.days_held


def stream_classify(
    days: Iterable[tuple],
    window_before: int = 7,
    window_after: int = 7,
) -> Iterator[StabilityResult]:
    """Run a whole (day, addresses) sequence through a stability stream.

    Yields classifications in day order, including the flushed tail.
    """
    stream = StabilityStream(window_before, window_after)
    for day, addresses in days:
        yield from stream.push(day, addresses)
    yield from stream.flush()
