"""Incremental sliding-window sweep engine for temporal classification (§5.1).

:func:`repro.core.temporal.classify_day` answers one question — "which of
this day's addresses are nd-stable?" — by re-scanning every day of the
``(-before, +after)`` window.  Classifying *every* day of a store that way
touches each day array ``window``-many times, which dominates the runtime
of full-campaign analyses now that ingestion is fast.

This module classifies every requested day in one chronological pass.
The core observation: for an address active on reference day ``r``, the
classifier's per-address extremes are exactly the first and last days the
address was observed within ``[r - before, r + after]`` — and because the
address *is* observed on ``r``, those extremes can be read off the
address's global observation sequence with two binary searches.  So the
engine:

1. concatenates the window days' ``(hi, lo)`` address columns with a
   parallel day column (each day array touched once);
2. sorts the observations by ``(address, day)`` with one stable radix
   ``lexsort`` — no structured-dtype comparisons anywhere on the hot
   path;
3. assigns run ids to equal-address runs and builds integer keys
   ``run_id * scale + day`` so that *per-address* day ranges can be
   found with plain global ``searchsorted`` calls;
4. answers every (observation, window) query at once with two vectorized
   binary searches, then scatters the gaps back to each day's array
   order.

The emitted :class:`~repro.core.temporal.StabilityResult` objects are
bit-identical to per-day :func:`classify_day` output (tested), while each
day array is touched O(1) times instead of O(window).

Long campaigns are processed in bounded-memory chunks of reference days
(overlapping by the window so results stay exact), and chunks can be
fanned out over ``fork``-based worker processes — across disjoint day
ranges and, via :func:`sweep_granularities`, across prefix granularities
(/128 addresses and /64 prefixes) simultaneously.

:class:`SweepState` is the engine's incremental form for streaming: a
window state that days enter (``push_day``) and leave (``evict_before``),
holding the live window's observations merged and sorted so any buffered
day can be classified without rebuilding a store.
:class:`repro.core.streaming.StabilityStream` is built on it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.temporal import (
    DEFAULT_WINDOW_AFTER,
    DEFAULT_WINDOW_BEFORE,
    StabilityResult,
)
from repro.data.store import ADDRESS_DTYPE, ObservationStore
from repro.runtime.checkpoint import SweepCheckpoint, sweep_signature
from repro.runtime.pool import PoolConfig, RunReport, resolve_jobs, run_supervised

#: Reference days per chunk: bounds peak memory (a chunk loads
#: ``chunk + before + after`` day arrays) and is the unit of parallelism.
DEFAULT_CHUNK_DAYS = 64


class _SortedWindow:
    """Observations of several days, sorted by (address, day).

    ``hi``/``lo``/``day`` are the sorted columns; ``order`` is the
    permutation that produced them (for scattering results back);
    ``gid`` numbers equal-address runs; ``key = gid * scale + day-offset``
    lets per-address day ranges be located with global ``searchsorted``.

    Precondition: within the *input* columns, the observations of any one
    address must already be in ascending day order (true whenever whole
    day arrays are concatenated chronologically, since ``lexsort`` is
    stable).  ``margin`` must be at least ``before + after + 1`` of any
    window later queried, so that out-of-range query keys cannot cross
    into a neighbouring address's key range.
    """

    __slots__ = ("order", "hi", "lo", "day", "gid", "key", "scale", "offset")

    def __init__(
        self, hi: np.ndarray, lo: np.ndarray, day: np.ndarray, margin: int
    ) -> None:
        order = np.lexsort((lo, hi))
        self.order = order
        self.hi = hi[order]
        self.lo = lo[order]
        sday = np.asarray(day, dtype=np.int64)[order]
        self.day = sday
        n = sday.shape[0]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (self.hi[1:] != self.hi[:-1]) | (self.lo[1:] != self.lo[:-1])
        self.gid = np.cumsum(boundary, dtype=np.int64) - 1
        self.offset = int(sday.min())
        span = int(sday.max()) - self.offset + 1
        self.scale = span + int(margin)
        if (int(self.gid[-1]) + 1) * self.scale >= 2**62:
            raise ValueError(
                "day span too large for sweep keys; reduce chunk_days"
            )
        self.key = self.gid * self.scale + (sday - self.offset)

    def extremes(
        self,
        positions: np.ndarray,
        low: "np.ndarray | int",
        high: "np.ndarray | int",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """First and last observation day, within ``[low, high]``, of the
        address at each queried (sorted-order) position.

        ``low``/``high`` may be scalars or arrays parallel to
        ``positions``.  Each queried position's own day must lie inside
        its ``[low, high]`` (true for window queries: the reference day
        observation is its own witness), which guarantees both searches
        land inside the address's run.
        """
        base = self.gid[positions] * self.scale
        first = np.searchsorted(self.key, base + (low - self.offset), side="left")
        last = (
            np.searchsorted(self.key, base + (high - self.offset), side="right") - 1
        )
        return self.day[first], self.day[last]


def _concat_columns(
    arrays: Sequence[np.ndarray], days: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate day arrays into (hi, lo, day) columns."""
    sizes = [array.shape[0] for array in arrays]
    hi = np.concatenate([array["hi"] for array in arrays])
    lo = np.concatenate([array["lo"] for array in arrays])
    day = np.repeat(np.asarray(days, dtype=np.int64), sizes)
    return hi, lo, day


def grouped_spans(
    arrays: Sequence[np.ndarray], days: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-address (addresses, first, last, days_seen) over day arrays.

    The sweep engine's grouped pass without a window: one stable radix
    sort by (address, day) instead of a structured ``np.unique`` plus
    scalar-dispatch ``ufunc.at`` updates.  Backs
    :func:`repro.core.churn.observation_spans`.
    """
    total = sum(array.shape[0] for array in arrays)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=ADDRESS_DTYPE), empty, empty.copy(), empty.copy()
    hi, lo, day = _concat_columns(arrays, [int(d) for d in days])
    order = np.lexsort((day, lo, hi))
    shi, slo, sday = hi[order], lo[order], day[order]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    boundary[1:] = (shi[1:] != shi[:-1]) | (slo[1:] != slo[:-1])
    starts = np.nonzero(boundary)[0]
    ends = np.concatenate([starts[1:], [total]])
    addresses = np.empty(starts.shape[0], dtype=ADDRESS_DTYPE)
    addresses["hi"] = shi[starts]
    addresses["lo"] = slo[starts]
    return addresses, sday[starts], sday[ends - 1], ends - starts


def _plan_chunks(ref_days: Sequence[int], chunk_days: int) -> List[List[int]]:
    """Split sorted reference days into chunks of bounded day span."""
    chunks: List[List[int]] = []
    current = [ref_days[0]]
    for day in ref_days[1:]:
        if day - current[0] >= chunk_days:
            chunks.append(current)
            current = [day]
        else:
            current.append(day)
    chunks.append(current)
    return chunks


def _sweep_chunk(
    observations: ObservationStore,
    ref_days: Sequence[int],
    window_before: int,
    window_after: int,
) -> List[Tuple[int, np.ndarray]]:
    """Classify one chunk of reference days; return (day, gaps) pairs.

    Gaps arrays are parallel to each reference day's sorted address
    array; absent days yield empty arrays, matching ``classify_day``.
    """
    low = ref_days[0] - window_before
    high = ref_days[-1] + window_after
    window_days = [day for day in observations.days() if low <= day <= high]
    arrays = [observations.array(day) for day in window_days]
    sizes = [array.shape[0] for array in arrays]
    total = sum(sizes)
    if total == 0:
        return [(day, np.empty(0, dtype=np.int64)) for day in ref_days]
    hi, lo, day_col = _concat_columns(arrays, window_days)
    window = _SortedWindow(hi, lo, day_col, margin=window_before + window_after + 1)
    # Mark which sorted positions belong to reference days (boundary days
    # are context only — their own windows extend outside this chunk).
    span = int(window.day.max()) - window.offset + 1
    is_ref = np.zeros(span, dtype=bool)
    for day in ref_days:
        if 0 <= day - window.offset < span:
            is_ref[day - window.offset] = True
    qpos = np.nonzero(is_ref[window.day - window.offset])[0]
    gaps_all = np.empty(total, dtype=np.int64)
    if qpos.shape[0]:
        qday = window.day[qpos]
        first, last = window.extremes(qpos, qday - window_before, qday + window_after)
        gaps_all[window.order[qpos]] = last - first
    starts = np.concatenate([[0], np.cumsum(sizes)])
    day_index = {day: i for i, day in enumerate(window_days)}
    out: List[Tuple[int, np.ndarray]] = []
    for day in ref_days:
        i = day_index.get(day)
        if i is None:
            out.append((day, np.empty(0, dtype=np.int64)))
        else:
            out.append((day, gaps_all[starts[i] : starts[i + 1]]))
    return out


# ---------------------------------------------------------------------------
# Parallel fan-out: chunks (and granularities) over fork-based workers.
# ---------------------------------------------------------------------------

#: Stores inherited by forked workers (set immediately before the pool is
#: created; fork shares the parent's memory copy-on-write, so the stores
#: are never pickled).
_WORKER_STORES: Dict[int, ObservationStore] = {}


def _worker_sweep(
    task: Tuple[int, Sequence[int], int, int]
) -> Tuple[int, List[Tuple[int, np.ndarray]]]:
    """Pool worker: run one (store key, chunk) task against the inherited
    stores."""
    key, ref_days, window_before, window_after = task
    return key, _sweep_chunk(_WORKER_STORES[key], ref_days, window_before, window_after)


def _resolve_jobs(jobs: Optional[int]) -> int:
    """None/1 -> serial; 0 -> all CPUs; N -> N workers."""
    return resolve_jobs(jobs)


def _sweep_stores(
    stores: Dict[int, ObservationStore],
    ref_days: Sequence[int],
    window_before: int,
    window_after: int,
    jobs: Optional[int],
    chunk_days: int,
    checkpoint_dir: Optional[str] = None,
    report_sink: Optional[List[RunReport]] = None,
) -> Dict[int, Dict[int, np.ndarray]]:
    """Sweep several stores over the same reference days.

    Returns ``{store key: {day: gaps}}``.  With ``jobs`` workers, all
    (store, chunk) tasks share one supervised fork-based pool
    (:func:`repro.runtime.pool.run_supervised`), so parallelism spans
    both disjoint day ranges and prefix granularities while crashed or
    wedged workers are retried and finally re-run serially.

    With ``checkpoint_dir``, each completed chunk is persisted
    atomically as it lands (in completion order) and valid chunks from
    a previous identically-parameterized run are loaded instead of
    recomputed — the kill-and-resume path.  Results are bit-identical
    with or without checkpointing, resumption, ``jobs``, or
    ``chunk_days``.
    """
    if window_before < 0 or window_after < 0:
        raise ValueError("window spans must be non-negative")
    if chunk_days < 1:
        raise ValueError(f"chunk_days must be >= 1: {chunk_days}")
    gaps: Dict[int, Dict[int, np.ndarray]] = {key: {} for key in stores}
    if not ref_days:
        return gaps
    chunks = _plan_chunks(ref_days, chunk_days)
    checkpoint: Optional[SweepCheckpoint] = None
    if checkpoint_dir is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_dir,
            sweep_signature(
                stores, ref_days, window_before, window_after, chunk_days
            ),
        )
    tasks: List[Tuple[int, Sequence[int], int, int]] = []
    #: parallel to ``tasks``: the (store key, chunk index, chunk) behind each.
    task_meta: List[Tuple[int, int, List[int]]] = []
    for key in stores:
        for chunk_index, chunk in enumerate(chunks):
            if checkpoint is not None:
                cached = checkpoint.load_chunk(key, chunk_index, chunk)
                if cached is not None:
                    gaps[key].update(cached)
                    continue
            tasks.append((key, chunk, window_before, window_after))
            task_meta.append((key, chunk_index, chunk))
    if not tasks:
        # Fully resumed from checkpoints: report an empty run so callers
        # can tell "nothing recomputed" from "no report collected".
        if report_sink is not None:
            report_sink.append(RunReport(label="sweep", tasks=0))
        return gaps
    workers = min(_resolve_jobs(jobs), len(tasks))

    def on_result(
        index: int, value: Tuple[int, List[Tuple[int, np.ndarray]]]
    ) -> None:
        key, chunk_result = value
        gaps[key].update(chunk_result)
        if checkpoint is not None:
            _store_key, chunk_index, _chunk = task_meta[index]
            checkpoint.save_chunk(key, chunk_index, chunk_result)

    _WORKER_STORES.update(stores)
    try:
        _results, report = run_supervised(
            _worker_sweep,
            tasks,
            PoolConfig(jobs=workers, label="sweep"),
            on_result=on_result,
        )
    finally:
        _WORKER_STORES.clear()
    if report_sink is not None:
        report_sink.append(report)
    return gaps


def _normalized_days(
    observations: ObservationStore, days: Optional[Sequence[int]]
) -> List[int]:
    """The sorted, deduplicated reference day list for a sweep."""
    if days is None:
        return observations.days()
    return sorted({int(day) for day in days})


def sweep_days(
    observations: ObservationStore,
    days: Optional[Sequence[int]] = None,
    window_before: int = DEFAULT_WINDOW_BEFORE,
    window_after: int = DEFAULT_WINDOW_AFTER,
    jobs: Optional[int] = None,
    chunk_days: int = DEFAULT_CHUNK_DAYS,
    checkpoint_dir: Optional[str] = None,
    report_sink: Optional[List[RunReport]] = None,
) -> List[StabilityResult]:
    """Classify every requested day of the store in one rolling pass.

    Equivalent to ``[classify_day(observations, d, ...) for d in days]``
    — bit-identical results — but each day array is touched O(1) times
    instead of once per overlapping window.  ``days`` defaults to every
    day in the store; days absent from the store yield empty results.

    ``jobs`` fans chunks of ``chunk_days`` reference days out over
    supervised fork-based worker processes (``0`` = all CPUs,
    ``None``/``1`` = serial); ``checkpoint_dir`` persists each completed
    chunk atomically so a killed sweep resumes from its last checkpoint;
    ``report_sink`` receives the pool's
    :class:`repro.runtime.pool.RunReport`.  Results are independent of
    ``jobs``, ``chunk_days``, checkpointing, and resumption.
    """
    ref_days = _normalized_days(observations, days)
    gaps = _sweep_stores(
        {0: observations},
        ref_days,
        window_before,
        window_after,
        jobs,
        chunk_days,
        checkpoint_dir=checkpoint_dir,
        report_sink=report_sink,
    )[0]
    return [
        StabilityResult(
            reference_day=day,
            window=(window_before, window_after),
            active=observations.array(day),
            gaps=gaps[day],
        )
        for day in ref_days
    ]


def sweep_granularities(
    observations: ObservationStore,
    prefix_lens: Iterable[int],
    days: Optional[Sequence[int]] = None,
    window_before: int = DEFAULT_WINDOW_BEFORE,
    window_after: int = DEFAULT_WINDOW_AFTER,
    jobs: Optional[int] = None,
    chunk_days: int = DEFAULT_CHUNK_DAYS,
    checkpoint_dir: Optional[str] = None,
    report_sink: Optional[List[RunReport]] = None,
) -> Dict[int, List[StabilityResult]]:
    """Sweep several prefix granularities of one store at once.

    ``prefix_lens`` names the granularities (128 = full addresses; 64 =
    the paper's /64 prefixes; any length works).  All granularities'
    chunks share one supervised worker pool, so a two-granularity year
    sweep keeps ``jobs`` workers busy throughout.  Returns
    ``{prefix_len: results}`` with each list equal to
    :func:`sweep_days` on the derived store.  ``checkpoint_dir`` and
    ``report_sink`` behave as in :func:`sweep_days`; checkpoint entries
    are keyed per granularity.
    """
    stores = {
        int(p): observations if int(p) >= 128 else observations.truncated(int(p))
        for p in prefix_lens
    }
    ref_days = _normalized_days(observations, days)
    gaps = _sweep_stores(
        stores,
        ref_days,
        window_before,
        window_after,
        jobs,
        chunk_days,
        checkpoint_dir=checkpoint_dir,
        report_sink=report_sink,
    )
    return {
        p: [
            StabilityResult(
                reference_day=day,
                window=(window_before, window_after),
                active=store.array(day),
                gaps=gaps[p][day],
            )
            for day in ref_days
        ]
        for p, store in stores.items()
    }


class SweepState:
    """The sweep engine's incremental window state, for streaming use.

    Days enter with :meth:`push_day` (chronological order) and leave with
    :meth:`evict_before`; :meth:`classify` answers for any buffered
    reference day, bit-identical to ``classify_day`` over a store holding
    the same days.  The buffered observations are kept merged and sorted
    by (address, day) — consolidation runs at most once per push, one
    stable radix sort over the live window, replacing the per-emission
    store rebuild and O(window) membership rescans of the pre-sweep
    streaming classifier.
    """

    def __init__(
        self,
        window_before: int = DEFAULT_WINDOW_BEFORE,
        window_after: int = DEFAULT_WINDOW_AFTER,
    ) -> None:
        if window_before < 0 or window_after < 0:
            raise ValueError("window spans must be non-negative")
        self.window_before = window_before
        self.window_after = window_after
        self._segments: "deque[Tuple[int, np.ndarray]]" = deque()
        self._window: Optional[_SortedWindow] = None

    @property
    def days_held(self) -> int:
        """Number of days currently buffered."""
        return len(self._segments)

    def push_day(self, day: int, addresses: np.ndarray) -> None:
        """Add one day's sorted address array to the live window."""
        day = int(day)
        if self._segments and day <= self._segments[-1][0]:
            raise ValueError(
                f"days must be pushed in increasing order: {day} after "
                f"{self._segments[-1][0]}"
            )
        self._segments.append((day, addresses))
        self._window = None

    def evict_before(self, day: int) -> None:
        """Drop buffered days earlier than ``day`` from the window."""
        evicted = False
        while self._segments and self._segments[0][0] < day:
            self._segments.popleft()
            evicted = True
        if evicted:
            self._window = None

    def _sorted_window(self) -> Optional[_SortedWindow]:
        if self._window is None:
            arrays = [array for _, array in self._segments]
            if sum(array.shape[0] for array in arrays) == 0:
                return None
            hi, lo, day = _concat_columns(
                arrays, [day for day, _ in self._segments]
            )
            self._window = _SortedWindow(
                hi, lo, day, margin=self.window_before + self.window_after + 1
            )
        return self._window

    def classify(self, reference: int) -> StabilityResult:
        """Classify a buffered reference day within the live window.

        Days outside ``[reference - before, reference + after]`` that are
        still buffered (e.g. after a gap jump) are excluded by the key
        query, not by eviction, so classification never depends on
        eviction timing.
        """
        reference = int(reference)
        window = self._sorted_window()
        if window is None:
            qpos = np.empty(0, dtype=np.int64)
        else:
            qpos = np.nonzero(window.day == reference)[0]
        active = np.empty(qpos.shape[0], dtype=ADDRESS_DTYPE)
        if qpos.shape[0]:
            active["hi"] = window.hi[qpos]
            active["lo"] = window.lo[qpos]
            first, last = window.extremes(
                qpos, reference - self.window_before, reference + self.window_after
            )
            gaps = last - first
        else:
            gaps = np.empty(0, dtype=np.int64)
        return StabilityResult(
            reference_day=reference,
            window=(self.window_before, self.window_after),
            active=active,
            gaps=gaps,
        )
