"""Temporal classification: address and prefix stability analysis (§5.1).

Definitions, from the paper:

* An address is **nd-stable** when it was observed active on two different
  days with at least ``n - 1`` intervening days — equivalently, on two days
  whose day numbers differ by at least ``n``.  Classes are not mutually
  exclusive: nd-stable implies (n-1)d-stable.
* Daily analysis uses a **sliding window**, canonically 15 days —
  ``(-7d, +7d)`` around the reference day: only observations inside the
  window count toward the reference day's classification.  The window also
  absorbs the up-to-one-day timestamp slew of aggregated-log processing.
* Longer horizons compare *epochs*: an address active in the current epoch
  that was also active one epoch earlier is **6m-stable (-6m)** or
  **1y-stable (-1y)**.
* Everything not shown stable is labelled **not stable**, meaning only
  "not known to be stable" — passive observation cannot prove absence.
* All of this generalizes to prefixes of any length by truncating the
  observed addresses first (the paper's /64 analysis).

The implementation is vectorized over the day-indexed
:class:`~repro.data.store.ObservationStore`: classifying one reference day
touches each window day once with a sorted-array membership test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data import store as obstore
from repro.data.store import ObservationStore

#: The paper's canonical window: 7 days before through 7 days after.
DEFAULT_WINDOW_BEFORE = 7
DEFAULT_WINDOW_AFTER = 7


@dataclass
class StabilityResult:
    """Stability classification of the addresses active on a reference day.

    Attributes:
        reference_day: the day whose active set was classified.
        window: (before, after) day spans of the sliding window.
        active: sorted address array of the reference day.
        gaps: per-address maximum day gap observed within the window
            (0 when the address was seen on no other window day).
    """

    reference_day: int
    window: Tuple[int, int]
    active: np.ndarray
    gaps: np.ndarray

    @property
    def active_count(self) -> int:
        """Number of addresses active on the reference day."""
        return obstore.array_size(self.active)

    def stable_mask(self, n: int) -> np.ndarray:
        """Boolean mask of nd-stable members of the active set."""
        if n < 1:
            raise ValueError(f"n must be >= 1: {n}")
        return self.gaps >= n

    def stable(self, n: int) -> np.ndarray:
        """The nd-stable subset of the reference day's active set."""
        return self.active[self.stable_mask(n)]

    def not_stable(self, n: int) -> np.ndarray:
        """The complement: active addresses not shown to be nd-stable."""
        return self.active[~self.stable_mask(n)]

    def stable_count(self, n: int) -> int:
        """Number of nd-stable addresses."""
        return int(np.count_nonzero(self.stable_mask(n)))

    def stable_fraction(self, n: int) -> float:
        """nd-stable share of the reference day's active set."""
        if self.active_count == 0:
            return 0.0
        return self.stable_count(n) / self.active_count


def classify_day(
    observations: ObservationStore,
    reference_day: int,
    window_before: int = DEFAULT_WINDOW_BEFORE,
    window_after: int = DEFAULT_WINDOW_AFTER,
) -> StabilityResult:
    """Classify the reference day's active set within its sliding window.

    For each address active on ``reference_day``, finds the earliest and
    latest window days on which it was observed; the difference is the
    largest day gap witnessing stability, so ``gap >= n`` is exactly
    *nd-stable*.  Days absent from the store contribute nothing (no data
    is different from an empty set only in what it proves; both yield
    "not stable").
    """
    if window_before < 0 or window_after < 0:
        raise ValueError("window spans must be non-negative")
    active = observations.array(reference_day)
    size = obstore.array_size(active)
    min_day = np.full(size, reference_day, dtype=np.int64)
    max_day = np.full(size, reference_day, dtype=np.int64)
    for day in range(reference_day - window_before, reference_day + window_after + 1):
        if day == reference_day or day not in observations:
            continue
        present = obstore.member_mask(active, observations.array(day))
        if day < reference_day:
            min_day = np.where(present, np.minimum(min_day, day), min_day)
        else:
            max_day = np.where(present, np.maximum(max_day, day), max_day)
    return StabilityResult(
        reference_day=reference_day,
        window=(window_before, window_after),
        active=active,
        gaps=max_day - min_day,
    )


@dataclass
class WeeklyStability:
    """Union-based weekly stability (the Table 2c/2d construction).

    For each day of the week the nd-stable addresses are determined (each
    with its own sliding window); the weekly figures are the union of the
    per-day stable sets, and "not stable" is the weekly active union minus
    that.
    """

    days: List[int]
    n: int
    active_union: np.ndarray
    stable_union: np.ndarray

    @property
    def active_count(self) -> int:
        """Unique addresses active during the week."""
        return obstore.array_size(self.active_union)

    @property
    def stable_count(self) -> int:
        """Unique addresses nd-stable on at least one day of the week."""
        return obstore.array_size(self.stable_union)

    @property
    def not_stable_count(self) -> int:
        """Weekly active addresses never shown nd-stable."""
        return self.active_count - self.stable_count

    @property
    def stable_fraction(self) -> float:
        """Stable share of the weekly active union."""
        if self.active_count == 0:
            return 0.0
        return self.stable_count / self.active_count


def classify_week(
    observations: ObservationStore,
    days: Sequence[int],
    n: int,
    window_before: int = DEFAULT_WINDOW_BEFORE,
    window_after: int = DEFAULT_WINDOW_AFTER,
) -> WeeklyStability:
    """Run per-day stability over ``days`` and report the weekly unions.

    The per-day classifications run through the sweep engine
    (:func:`repro.core.sweep.sweep_days`), so each window day is touched
    once for the whole week rather than once per overlapping window.
    """
    from repro.core.sweep import sweep_days

    results = {
        result.reference_day: result
        for result in sweep_days(
            observations, list(days), window_before, window_after
        )
    }
    stable_sets = [results[int(day)].stable(n) for day in days]
    return WeeklyStability(
        days=list(days),
        n=n,
        active_union=observations.union_over(days),
        stable_union=obstore.union_many(stable_sets),
    )


def cross_epoch_stable(
    current: np.ndarray, earlier: np.ndarray
) -> np.ndarray:
    """Addresses active now that were also active an epoch earlier.

    This is the 6m-stable (-6m) / 1y-stable (-1y) construction: pass the
    current epoch's active set (a day or a week union) and the set from 6
    or 12 months before; the intersection is the cross-epoch stable class.
    """
    return obstore.intersect(current, earlier)


@dataclass
class WindowSeries:
    """Data behind Figure 4: daily activity versus a reference day.

    Attributes:
        reference_day: the centre of the window.
        days: each day of the window, in order.
        active_counts: unique active addresses per day.
        common_counts: per day, how many of its addresses were also
            active on the reference day.
    """

    reference_day: int
    days: List[int]
    active_counts: List[int]
    common_counts: List[int]

    def rows(self) -> List[Tuple[int, int, int]]:
        """(day, active, common-with-reference) rows for plotting."""
        return list(zip(self.days, self.active_counts, self.common_counts))


def window_series(
    observations: ObservationStore,
    reference_day: int,
    window_before: int = DEFAULT_WINDOW_BEFORE,
    window_after: int = DEFAULT_WINDOW_AFTER,
) -> WindowSeries:
    """Compute the Figure 4 series for one reference day."""
    reference = observations.array(reference_day)
    days: List[int] = []
    active_counts: List[int] = []
    common_counts: List[int] = []
    for day in range(reference_day - window_before, reference_day + window_after + 1):
        array = observations.array(day)
        days.append(day)
        active_counts.append(obstore.array_size(array))
        common_counts.append(obstore.array_size(obstore.intersect(array, reference)))
    return WindowSeries(
        reference_day=reference_day,
        days=days,
        active_counts=active_counts,
        common_counts=common_counts,
    )


@dataclass
class StabilityTable:
    """One column of Table 2: daily and weekly stability at one epoch.

    All counts concern a single address granularity (full addresses or
    /64s — derive the store first for prefixes).
    """

    epoch_name: str
    reference_day: int
    week_days: List[int]
    n: int
    daily_active: int = 0
    daily_stable: int = 0
    weekly_active: int = 0
    weekly_stable: int = 0
    cross_epoch_daily: Dict[str, int] = field(default_factory=dict)
    cross_epoch_weekly: Dict[str, int] = field(default_factory=dict)

    @property
    def daily_not_stable(self) -> int:
        """Reference-day actives not shown nd-stable."""
        return self.daily_active - self.daily_stable

    @property
    def weekly_not_stable(self) -> int:
        """Weekly actives not shown nd-stable."""
        return self.weekly_active - self.weekly_stable


def stability_table(
    observations: ObservationStore,
    epoch_name: str,
    reference_day: int,
    n: int = 3,
    week_length: int = 7,
    window_before: int = DEFAULT_WINDOW_BEFORE,
    window_after: int = DEFAULT_WINDOW_AFTER,
    earlier_epochs: Optional[Dict[str, int]] = None,
) -> StabilityTable:
    """Build a Table 2 column for one epoch.

    ``earlier_epochs`` optionally maps labels (e.g. ``"6m-stable (-6m)"``)
    to the *reference day* of an earlier epoch.  For each label two
    cross-epoch counts are produced: daily (this reference day's actives
    also active on the earlier reference day) and weekly (this week's
    union intersected with the earlier week's union), matching Tables
    2a/2b versus 2c/2d.

    The daily and weekly figures share one sweep-engine pass, so the
    reference day (which is also a week day) is classified exactly once.
    """
    from repro.core.sweep import sweep_days

    week_days = list(range(reference_day, reference_day + week_length))
    results = {
        result.reference_day: result
        for result in sweep_days(
            observations,
            week_days + [reference_day],
            window_before,
            window_after,
        )
    }
    daily = results[reference_day]
    weekly = WeeklyStability(
        days=week_days,
        n=n,
        active_union=observations.union_over(week_days),
        stable_union=obstore.union_many(
            [results[day].stable(n) for day in week_days]
        ),
    )
    table = StabilityTable(
        epoch_name=epoch_name,
        reference_day=reference_day,
        week_days=week_days,
        n=n,
        daily_active=daily.active_count,
        daily_stable=daily.stable_count(n),
        weekly_active=weekly.active_count,
        weekly_stable=weekly.stable_count,
    )
    if earlier_epochs:
        for label, earlier_reference in earlier_epochs.items():
            daily_common = cross_epoch_stable(
                daily.active, observations.array(earlier_reference)
            )
            table.cross_epoch_daily[label] = obstore.array_size(daily_common)
            earlier_week = list(
                range(earlier_reference, earlier_reference + week_length)
            )
            weekly_common = cross_epoch_stable(
                weekly.active_union, observations.union_over(earlier_week)
            )
            table.cross_epoch_weekly[label] = obstore.array_size(weekly_common)
    return table
