"""Observation storage and aggregated-log file I/O."""

from repro.data.hitlist import (
    HitlistReport,
    read_hitlist,
    sample_hitlist,
    store_from_snapshots,
    write_hitlist,
)
from repro.data.store import (
    ADDRESS_DTYPE,
    DailyObservations,
    ObservationStore,
    day_date,
    day_number,
    from_array,
    halves_to_array,
    to_array,
    truncate_array,
)

__all__ = [
    "ADDRESS_DTYPE",
    "HitlistReport",
    "DailyObservations",
    "ObservationStore",
    "day_date",
    "day_number",
    "from_array",
    "halves_to_array",
    "read_hitlist",
    "sample_hitlist",
    "store_from_snapshots",
    "to_array",
    "truncate_array",
    "write_hitlist",
]
