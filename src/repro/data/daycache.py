"""Binary columnar cache for parsed day logs.

Text parsing — even the vectorized kind — is the dominant cost of
re-running ``census``/``stability``/``mra`` over the same daily logs.
This module persists each day's parsed result (sorted, deduplicated
``(hi, lo)`` address columns plus summed hit counts) as a structured
``.npy`` file so warm re-runs skip text entirely and load via
``np.load(..., mmap_mode="r")``.

Layout — one pair of files per distinct source-file *content*::

    <cache_dir>/day-<sha256[:24]>.npy        # columns: hi, lo, hits (uint64)
    <cache_dir>/day-<sha256[:24]>.meta.json  # {"version", "sha256", "day", "source", "rows"}

Entries are keyed by the SHA-256 of the source file's bytes, so:

* editing a log file changes its digest and the stale entry simply
  stops matching — stale reuse cannot occur;
* identical files (however named) share one cache entry;
* a corrupted or truncated cache entry fails verification and is
  rebuilt from the text source.

Writes go through a temp file + ``os.replace`` so concurrent loaders
(e.g. ``load_store(jobs=8, cache_dir=...)``) never observe a partial
entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional, Tuple

import numpy as np

from repro.data import logfile
from repro.runtime.quarantine import (
    ERRORS_QUARANTINE,
    ERRORS_STRICT,
    QuarantineReport,
    check_errors_mode,
)

#: Bump when the on-disk layout changes; mismatched entries are rebuilt.
CACHE_VERSION = 1

#: Columnar record stored per address: the two 64-bit halves + hit count.
CACHE_DTYPE = np.dtype([("hi", "<u8"), ("lo", "<u8"), ("hits", "<u8")])

_DIGEST_CHARS = 24


def content_hash(path: str) -> str:
    """SHA-256 hex digest of a file's bytes (the cache key)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def cache_paths(cache_dir: str, digest: str) -> Tuple[str, str]:
    """The (.npy, .meta.json) paths for a given content digest."""
    stem = os.path.join(cache_dir, f"day-{digest[:_DIGEST_CHARS]}")
    return f"{stem}.npy", f"{stem}.meta.json"


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _atomic_save_array(path: str, array: np.ndarray) -> None:
    import io

    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    _atomic_write_bytes(path, buffer.getvalue())


def _try_load(
    npy_path: str, meta_path: str, digest: str
) -> Tuple[
    Optional[Tuple[Optional[int], np.ndarray, np.ndarray, np.ndarray]],
    Optional[str],
]:
    """Load a cache entry: ``(payload, corrupt_reason)``.

    ``(payload, None)`` is a hit.  ``(None, None)`` is a clean miss
    (entry absent or keyed to different content) — the ordinary cold
    path.  ``(None, reason)`` means an entry *was* present for this
    digest but failed verification (truncated payload, damaged meta,
    wrong JSON types); the caller rebuilds it from the text source and,
    in quarantine mode, records the recovery.

    Verification is type-checked field by field rather than trusting
    ``json.load``'s output shape: a meta file holding ``[1, 2]`` or
    ``{"rows": "many"}`` is a *corrupt entry to rebuild*, not a
    ``TypeError`` to crash the loader with.
    """
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError:
        return None, None
    except (OSError, ValueError, json.JSONDecodeError):
        return None, "unreadable meta"
    if not isinstance(meta, dict):
        return None, f"meta is {type(meta).__name__}, not an object"
    if meta.get("version") != CACHE_VERSION:
        return None, None  # older layout: stale, not corrupt
    if meta.get("sha256") != digest:
        return None, None  # keyed to different content: clean miss
    rows = meta.get("rows")
    if not isinstance(rows, int) or isinstance(rows, bool) or rows < 0:
        return None, f"meta rows field is {rows!r}"
    day = meta.get("day")
    if day is not None and (not isinstance(day, int) or isinstance(day, bool)):
        return None, f"meta day field is {day!r}"
    try:
        array = np.load(npy_path, mmap_mode="r", allow_pickle=False)
    except FileNotFoundError:
        return None, "payload missing"
    except (OSError, ValueError):
        return None, "unreadable payload"
    if array.dtype != CACHE_DTYPE or array.ndim != 1:
        return None, f"payload dtype/shape mismatch ({array.dtype}, ndim={array.ndim})"
    if rows != array.shape[0]:
        return None, f"payload has {array.shape[0]} rows, meta says {rows}"
    return (
        (day, array["hi"], array["lo"], array["hits"]),
        None,
    )


def store_day(
    cache_dir: str,
    digest: str,
    source: str,
    day: Optional[int],
    hi: np.ndarray,
    lo: np.ndarray,
    hits: np.ndarray,
) -> str:
    """Persist one parsed day under its content digest; returns the .npy path."""
    os.makedirs(cache_dir, exist_ok=True)
    npy_path, meta_path = cache_paths(cache_dir, digest)
    record = np.empty(hi.shape[0], dtype=CACHE_DTYPE)
    record["hi"] = hi
    record["lo"] = lo
    record["hits"] = hits
    _atomic_save_array(npy_path, record)
    meta = {
        "version": CACHE_VERSION,
        "sha256": digest,
        "day": None if day is None else int(day),
        "source": os.path.abspath(source),
        "rows": int(record.shape[0]),
    }
    # Meta lands after the array: a reader that sees the meta can trust
    # the array it points at (both replaced atomically).
    _atomic_write_bytes(
        meta_path, json.dumps(meta, sort_keys=True).encode("utf-8")
    )
    return npy_path


def load_day(
    path: str,
    cache_dir: str,
    errors: str = ERRORS_STRICT,
    report: Optional[QuarantineReport] = None,
) -> Tuple[Optional[int], np.ndarray, np.ndarray, np.ndarray]:
    """Load one day log through the cache.

    On a hit, the columns come straight from the memory-mapped cache
    entry.  On a miss (or a stale/corrupt entry), the text file is
    parsed with the columnar fast path and the result is written back.
    Returns ``(day, hi, lo, hits)`` sorted, deduplicated, and summed —
    identical to :func:`repro.data.logfile.read_daily_log_arrays`.

    With ``errors="quarantine"``: a corrupt cache entry is rebuilt and
    recorded in ``report`` as an info record (recovered, no data loss);
    malformed text lines divert into ``report`` per the logfile reader —
    and a parse that quarantined any line is **not** written back to the
    cache, so a later strict load of the same file can never be served
    silently-cleaned columns from a cache hit.
    """
    quarantine = check_errors_mode(errors) == ERRORS_QUARANTINE
    if quarantine and report is None:
        report = QuarantineReport()
    digest = content_hash(path)
    npy_path, meta_path = cache_paths(cache_dir, digest)
    cached, corrupt_reason = _try_load(npy_path, meta_path, digest)
    if cached is not None:
        return cached
    if quarantine and corrupt_reason is not None:
        assert report is not None
        report.info(npy_path, "cache-rebuilt", corrupt_reason)
    faults_before = (
        report.line_faults.get(path, 0) if quarantine and report is not None else 0
    )
    day, hi, lo, hits = logfile.read_daily_log_arrays(
        path, errors=errors, report=report
    )
    dirty = (
        quarantine
        and report is not None
        and report.line_faults.get(path, 0) > faults_before
    )
    if not dirty:
        store_day(cache_dir, digest, path, day, hi, lo, hits)
    return day, hi, lo, hits


def prune(cache_dir: str, keep_digests: "set[str]") -> int:
    """Delete cache entries whose digest is not in ``keep_digests``.

    Returns the number of entries removed.  Useful for housekeeping
    after source logs are rewritten; never required for correctness
    (stale entries are unreachable by construction).
    """
    removed = 0
    try:
        names = os.listdir(cache_dir)
    except OSError:
        return 0
    keep_prefixes = {digest[:_DIGEST_CHARS] for digest in keep_digests}
    for name in names:
        if not name.startswith("day-"):
            continue
        stem = name[4:].split(".", 1)[0]
        if stem in keep_prefixes:
            continue
        try:
            os.unlink(os.path.join(cache_dir, name))
            removed += 1
        except OSError:
            pass
    return removed
