"""Public-hitlist ingestion: plain address lists as classifier input.

The paper's CDN logs are proprietary, but public IPv6 hitlists (one
address per line, optionally gzip-compressed, ``#`` comments) are the
standard open substitute for *spatial* analysis — a hitlist is a single
observation set, so temporal classification needs dated snapshots (one
list per day), which this module also supports by treating a sequence of
hitlist files as consecutive days.

Functions here deliberately tolerate the mess real hitlists carry:
duplicate addresses, mixed case, surrounding whitespace, and junk lines
(reported, optionally skipped).
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data.store import ObservationStore
from repro.net import addr


@dataclass
class HitlistReport:
    """What a hitlist load encountered.

    Attributes:
        addresses: the parsed, deduplicated addresses (sorted).
        total_lines: every line seen.
        parsed: lines that yielded an address (pre-dedup).
        duplicates: parsed lines dropped as repeats.
        skipped: comment/blank lines.
        bad_lines: (line number, content) of unparseable lines.
    """

    addresses: List[int] = field(default_factory=list)
    total_lines: int = 0
    parsed: int = 0
    duplicates: int = 0
    skipped: int = 0
    bad_lines: List[Tuple[int, str]] = field(default_factory=list)


def _open_maybe_gzip(path: str) -> IO[str]:
    """Open a text file, transparently decompressing ``.gz``."""
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="ascii")
    return open(path, "r", encoding="ascii")


def read_hitlist(path: str, strict: bool = False) -> HitlistReport:
    """Read one hitlist file.

    With ``strict=True`` the first malformed line raises
    :class:`~repro.net.addr.AddressError`; otherwise malformed lines are
    collected in the report and skipped.
    """
    report = HitlistReport()
    seen: Set[int] = set()
    with _open_maybe_gzip(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            report.total_lines += 1
            line = raw.strip()
            if not line or line.startswith("#"):
                report.skipped += 1
                continue
            # Hitlists sometimes carry trailing annotations; the address
            # is always the first whitespace-separated token.
            token = line.split()[0]
            try:
                value = addr.parse(token)
            except addr.AddressError:
                if strict:
                    raise
                report.bad_lines.append((line_number, line[:80]))
                continue
            report.parsed += 1
            if value in seen:
                report.duplicates += 1
                continue
            seen.add(value)
    report.addresses = sorted(seen)
    return report


def write_hitlist(path: str, addresses: Iterable[int]) -> int:
    """Write addresses one per line (gzip when the path ends ``.gz``).

    Returns the number of lines written.
    """
    count = 0
    if path.endswith(".gz"):
        handle: IO[str] = io.TextIOWrapper(
            gzip.open(path, "wb"), encoding="ascii"
        )
    else:
        handle = open(path, "w", encoding="ascii")
    with handle:
        for value in addresses:
            handle.write(addr.format_address(value) + "\n")
            count += 1
    return count


def store_from_snapshots(
    paths: Sequence[str],
    start_day: int = 0,
    strict: bool = False,
) -> Tuple[ObservationStore, List[HitlistReport]]:
    """Treat a sequence of hitlist files as consecutive daily snapshots.

    This is how public dated hitlists substitute for the paper's daily
    logs: file *i* becomes day ``start_day + i``.  Returns the store and
    the per-file load reports.
    """
    store = ObservationStore()
    reports: List[HitlistReport] = []
    for index, path in enumerate(paths):
        report = read_hitlist(path, strict=strict)
        reports.append(report)
        store.add_day(start_day + index, report.addresses)
    return store, reports


def sample_hitlist(
    addresses: Sequence[int], limit: int, seed: int = 0
) -> List[int]:
    """Deterministic uniform sample without replacement.

    Probing budgets are finite; sampling a hitlist down is routine.
    """
    import random

    if limit >= len(addresses):
        return sorted(addresses)
    rng = random.Random(seed)
    return sorted(rng.sample(list(addresses), limit))
