"""Aggregated-log file format: the on-disk form of the paper's input.

One text file per day, one log entry per line::

    <address-presentation-format> <hit-count>

with ``#``-prefixed comment lines (the header records the day number).
This mirrors the paper's aggregated logs — hit counts per client address
per 24-hour period — in a form that sorts and greps well.  The format is
deliberately plain so external datasets (public hitlists, zmap output)
can be converted in with a one-line awk script.

Semantics:

* **Duplicate addresses are merged** by summing their hit counts.  The
  aggregated logs are per-address totals, so two lines for the same
  address mean the aggregator flushed twice; a reader must never count
  the address twice.  :func:`read_daily_log` keeps first-seen order for
  merged entries; :func:`read_daily_log_arrays` returns them sorted.
* **Hit counts are ASCII digits only** (``0-9``).  Unicode digits such
  as ``"٣"`` satisfy ``str.isdigit()`` and convert via ``int()``, but
  are not valid log syntax and raise :class:`LogFormatError`.

Ingestion is columnar: the whole file is tokenized with vectorized
numpy passes over the raw bytes, address bytes are gathered into a
matrix and parsed by :func:`repro.net.batchparse.parse_matrix`, and hit
counts are evaluated with a handful of vectorized digit passes.  Only
exotic rows (embedded IPv4, >19-digit counts, …) fall back to scalar
code.  :func:`load_store` can additionally fan days out across worker
processes (days are independent) and reuse the binary columnar cache in
:mod:`repro.data.daycache`.

Error handling is two-mode.  ``errors="strict"`` (the default) raises
:class:`LogFormatError` on the first malformed line — bit-for-bit the
historical behavior.  ``errors="quarantine"`` diverts each malformed
line (and, in :func:`load_store`, each unreadable day file) into a
structured :class:`repro.runtime.quarantine.QuarantineReport` and keeps
going, with :class:`repro.runtime.quarantine.QuarantinePolicy`
thresholds bounding the tolerated loss — dirty year-long campaigns
degrade gracefully instead of aborting on one bad byte, and the loss is
always reported.  Parallel loading runs under the supervised pool
(:mod:`repro.runtime.pool`): crashed or wedged parse workers are
detected, retried with backoff, and finally re-executed serially.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.store import DailyObservations, ObservationStore
from repro.net import addr, batchparse
from repro.runtime.pool import PoolConfig, RunReport, supervised_map
from repro.runtime.quarantine import (
    ERRORS_QUARANTINE,
    ERRORS_STRICT,
    QuarantinePolicy,
    QuarantineReport,
    check_errors_mode,
)


class LogFormatError(ValueError):
    """Raised when a log line cannot be parsed."""


_NEWLINE = 0x0A
_HASH = ord("#")
_ZERO = ord("0")
_NINE = ord("9")

#: Hit counts of at most this many digits are parsed vectorized; longer
#: ones take the scalar path (and must still fit in uint64).
_MAX_FAST_HIT_DIGITS = 19

_UINT64_MAX = (1 << 64) - 1


def write_daily_log(
    path: str,
    day: int,
    entries: Iterable[Tuple[int, int]],
) -> None:
    """Write one day's aggregated log: (address, hits) pairs."""
    pairs = list(entries)
    hi, lo = batchparse.ints_to_halves([address for address, _hits in pairs])
    texts = batchparse.format_batch(hi, lo)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# repro aggregated log day={day}\n")
        handle.writelines(
            f"{text} {int(hits)}\n"
            for text, (_address, hits) in zip(texts, pairs)
        )


def write_daily_log_arrays(
    path: str,
    day: int,
    hi: np.ndarray,
    lo: np.ndarray,
    hits: Optional[np.ndarray] = None,
) -> None:
    """Write one day's log directly from columnar (hi, lo, hits) arrays.

    The output is canonical: addresses are sorted, duplicates merged by
    summing their hit counts.  Readers detect the sorted form and skip
    their own merge pass.
    """
    hi = np.ascontiguousarray(hi, dtype=np.uint64)
    lo = np.ascontiguousarray(lo, dtype=np.uint64)
    from repro.data import store as obstore

    entries = np.empty(hi.shape[0], dtype=obstore.ADDRESS_DTYPE)
    entries["hi"] = hi
    entries["lo"] = lo
    unique, inverse = np.unique(entries, return_inverse=True)
    if hits is None:
        merged_hits = np.zeros(unique.shape[0], dtype=np.uint64)
        np.add.at(merged_hits, inverse, np.uint64(1))
    else:
        merged_hits = np.zeros(unique.shape[0], dtype=np.uint64)
        np.add.at(merged_hits, inverse, np.asarray(hits, dtype=np.uint64))
    texts = batchparse.format_batch(unique["hi"], unique["lo"])
    lines = [f"{text} {int(h)}\n" for text, h in zip(texts, merged_hits)]
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# repro aggregated log day={day}\n")
        handle.writelines(lines)


def _day_from_comment(line: str) -> Optional[int]:
    if "day=" not in line:
        return None
    try:
        return int(line.split("day=", 1)[1].split()[0])
    except (ValueError, IndexError):
        return None


def _error(path: str, line_number: int, message: str) -> LogFormatError:
    return LogFormatError(f"{path}:{line_number}: {message}")


def read_daily_log(
    path: str,
    errors: str = ERRORS_STRICT,
    report: Optional[QuarantineReport] = None,
) -> Tuple[Optional[int], List[Tuple[int, int]]]:
    """Read one day's aggregated log; returns (day, entries).

    The day comes from the header comment when present, else None.
    Duplicate addresses are merged by summing hit counts (first-seen
    order is kept).  With ``errors="strict"`` malformed lines raise
    :class:`LogFormatError` with the line number; with
    ``errors="quarantine"`` they are diverted into ``report`` and
    skipped.
    """
    quarantine = check_errors_mode(errors) == ERRORS_QUARANTINE
    if quarantine and report is None:
        report = QuarantineReport()
    day: Optional[int] = None
    address_texts: List[str] = []
    hit_values: List[int] = []
    line_numbers: List[int] = []
    entry_line_count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if day is None:
                    day = _day_from_comment(line)
                continue
            entry_line_count += 1
            parts = line.split()
            if len(parts) != 2:
                if not quarantine:
                    raise _error(
                        path, line_number, f"expected 'address hits', got {line!r}"
                    )
                assert report is not None
                report.line_fault(path, line_number, "bad-line-shape", line)
                continue
            hits_text = parts[1]
            if not hits_text or any(
                not ("0" <= ch <= "9") for ch in hits_text
            ):
                if not quarantine:
                    raise _error(path, line_number, f"bad hit count {hits_text!r}")
                assert report is not None
                report.line_fault(path, line_number, "bad-hit-count", line)
                continue
            address_texts.append(parts[0])
            hit_values.append(int(hits_text))
            line_numbers.append(line_number)
    if quarantine:
        assert report is not None
        report.note_lines(path, entry_line_count)
    try:
        values = batchparse.parse_batch_ints(address_texts)
    except addr.AddressError:
        if quarantine:
            assert report is not None
            values = []
            kept_hits: List[int] = []
            for text, hits, line_number in zip(
                address_texts, hit_values, line_numbers
            ):
                try:
                    values.append(addr.parse(text))
                    kept_hits.append(hits)
                except addr.AddressError:
                    report.line_fault(path, line_number, "bad-address", text)
            hit_values = kept_hits
        else:
            # Re-scan scalar to report the first offending line precisely.
            for text, line_number in zip(address_texts, line_numbers):
                try:
                    addr.parse(text)
                except addr.AddressError as exc:
                    raise _error(path, line_number, str(exc)) from exc
            raise  # pragma: no cover - batch/scalar disagreement
    merged: Dict[int, int] = {}
    for value, hits in zip(values, hit_values):
        merged[value] = merged.get(value, 0) + hits
    return day, list(merged.items())


def _token_spans(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized tokenizer: (starts, ends, line_index) of all tokens."""
    is_nl = data == _NEWLINE
    is_ws = (data == 0x20) | (data == 0x09) | (data == 0x0D) | is_nl
    word = ~is_ws
    starts_mask = word.copy()
    starts_mask[1:] &= ~word[:-1]
    ends_mask = word.copy()
    ends_mask[:-1] &= ~word[1:]
    starts = np.nonzero(starts_mask)[0]
    ends = np.nonzero(ends_mask)[0] + 1
    newlines_before = np.cumsum(is_nl, dtype=np.int64)
    lines = newlines_before[starts]  # starts are never newlines
    return starts, ends, lines


def _gather_matrix(
    data: np.ndarray, starts: np.ndarray, lengths: np.ndarray, width: int
) -> np.ndarray:
    """Gather variable-length byte tokens into a NUL-padded matrix."""
    span = np.arange(width)
    index = starts[:, None] + span
    valid = span < lengths[:, None]
    np.clip(index, 0, data.shape[0] - 1, out=index)
    matrix = data[index]
    matrix[~valid] = 0
    return matrix


def _line_excerpt(raw: np.ndarray, line_id: int) -> str:
    """Decode one line of the raw byte buffer for a quarantine record."""
    newline_positions = np.nonzero(raw == _NEWLINE)[0]
    start = 0 if line_id == 0 else int(newline_positions[line_id - 1]) + 1
    end = (
        int(newline_positions[line_id])
        if line_id < newline_positions.shape[0]
        else raw.shape[0]
    )
    return bytes(raw[start:end]).decode("utf-8", errors="replace").strip()


def _parse_log_bytes(
    data: bytes,
    path: str,
    errors: str = ERRORS_STRICT,
    report: Optional[QuarantineReport] = None,
) -> Tuple[Optional[int], np.ndarray, np.ndarray, np.ndarray]:
    """Columnar day-log parse: returns (day, hi, lo, hits) merged+sorted.

    With ``errors="quarantine"``, malformed entry lines are recorded in
    ``report`` and dropped instead of raising; the surviving rows merge
    and sort exactly as in strict mode.
    """
    quarantine = errors == ERRORS_QUARANTINE
    if quarantine and report is None:
        report = QuarantineReport()
    raw = np.frombuffer(data, dtype=np.uint8)
    empty = (
        None,
        np.empty(0, dtype=np.uint64),
        np.empty(0, dtype=np.uint64),
        np.empty(0, dtype=np.uint64),
    )
    if raw.shape[0] == 0:
        return empty
    starts, ends, lines = _token_spans(raw)
    if starts.shape[0] == 0:
        return empty

    # `lines` is nondecreasing, so line groups are contiguous runs — no
    # need for np.unique's sort.
    boundary = np.empty(lines.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(lines[1:], lines[:-1], out=boundary[1:])
    first_token = np.nonzero(boundary)[0]
    line_ids = lines[first_token]
    tokens_per_line = np.diff(np.append(first_token, lines.shape[0]))
    is_comment_line = raw[starts[first_token]] == _HASH

    # Day header: first comment line mentioning day=.
    day: Optional[int] = None
    if is_comment_line.any():
        newline_positions = np.nonzero(raw == _NEWLINE)[0]
        for line_id in line_ids[is_comment_line]:
            start = 0 if line_id == 0 else int(newline_positions[line_id - 1]) + 1
            end = (
                int(newline_positions[line_id])
                if line_id < newline_positions.shape[0]
                else raw.shape[0]
            )
            day = _day_from_comment(
                bytes(raw[start:end]).decode("utf-8", errors="replace")
            )
            if day is not None:
                break

    bad_counts = ~is_comment_line & (tokens_per_line != 2)
    if quarantine:
        assert report is not None
        report.note_lines(path, int((~is_comment_line).sum()))
    if bad_counts.any():
        if not quarantine:
            bad_line = int(line_ids[bad_counts][0]) + 1
            raise _error(path, bad_line, "expected 'address hits'")
        assert report is not None
        for line_id in line_ids[bad_counts]:
            report.line_fault(
                path,
                int(line_id) + 1,
                "bad-line-shape",
                _line_excerpt(raw, int(line_id)),
            )

    keep = np.repeat(~is_comment_line & ~bad_counts, tokens_per_line)
    starts, ends, lines = starts[keep], ends[keep], lines[keep]
    if starts.shape[0] == 0:
        return (day, *empty[1:])

    address_starts, address_ends = starts[0::2], ends[0::2]
    hit_starts, hit_ends = starts[1::2], ends[1::2]
    entry_lines = lines[0::2] + 1  # 1-based line numbers

    # --- address column ---
    address_lengths = address_ends - address_starts
    width = int(address_lengths.max())
    overlong = address_lengths > batchparse._MAX_WIDTH
    matrix = _gather_matrix(
        raw,
        address_starts,
        np.where(overlong, 0, address_lengths),
        min(width, batchparse._MAX_WIDTH),
    )
    hi, lo, fast = batchparse.parse_matrix(matrix)
    fast &= ~overlong
    bad_rows = np.zeros(hi.shape[0], dtype=bool)
    if not fast.all():
        for i in np.nonzero(~fast)[0]:
            token = bytes(raw[address_starts[i] : address_ends[i]])
            try:
                value = addr.parse(token.decode("utf-8", errors="replace"))
            except addr.AddressError as exc:
                if not quarantine:
                    raise _error(path, int(entry_lines[i]), str(exc)) from exc
                assert report is not None
                report.line_fault(
                    path,
                    int(entry_lines[i]),
                    "bad-address",
                    token.decode("utf-8", errors="replace"),
                )
                bad_rows[i] = True
                continue
            hi[i] = value >> 64
            lo[i] = value & addr.IID_MASK

    # --- hit-count column ---
    hit_lengths = hit_ends - hit_starts
    slow_hits = hit_lengths > _MAX_FAST_HIT_DIGITS
    hit_matrix = _gather_matrix(
        raw,
        hit_starts,
        np.where(slow_hits, 0, hit_lengths),
        min(int(hit_lengths.max()), _MAX_FAST_HIT_DIGITS),
    )
    in_token = np.arange(hit_matrix.shape[1]) < hit_lengths[:, None]
    digit_ok = (hit_matrix >= _ZERO) & (hit_matrix <= _NINE)
    bad_digit = (in_token & ~digit_ok).any(axis=1)
    if bad_digit.any():
        if not quarantine:
            i = int(np.nonzero(bad_digit)[0][0])
            token = bytes(raw[hit_starts[i] : hit_ends[i]])
            raise _error(
                path,
                int(entry_lines[i]),
                f"bad hit count {token.decode('utf-8', errors='replace')!r}",
            )
        assert report is not None
        for i in np.nonzero(bad_digit & ~bad_rows)[0]:
            token = bytes(raw[hit_starts[i] : hit_ends[i]])
            report.line_fault(
                path,
                int(entry_lines[i]),
                "bad-hit-count",
                token.decode("utf-8", errors="replace"),
            )
        bad_rows |= bad_digit
    digits = (hit_matrix - _ZERO).astype(np.uint64)
    hits = np.zeros(hit_lengths.shape[0], dtype=np.uint64)
    for column in range(hit_matrix.shape[1]):
        active = column < hit_lengths
        hits = np.where(active, hits * np.uint64(10) + digits[:, column], hits)
    if slow_hits.any():
        for i in np.nonzero(slow_hits)[0]:
            if bad_rows[i]:
                continue
            token = bytes(raw[hit_starts[i] : hit_ends[i]]).decode(
                "utf-8", errors="replace"
            )
            fault: Optional[str] = None
            if any(not ("0" <= ch <= "9") for ch in token):
                fault = f"bad hit count {token!r}"
            elif int(token) > _UINT64_MAX:
                fault = f"hit count exceeds 64 bits: {token!r}"
            if fault is not None:
                if not quarantine:
                    raise _error(path, int(entry_lines[i]), fault)
                assert report is not None
                report.line_fault(path, int(entry_lines[i]), "bad-hit-count", token)
                bad_rows[i] = True
                continue
            hits[i] = int(token)

    if quarantine and bad_rows.any():
        good = ~bad_rows
        hi, lo, hits = hi[good], lo[good], hits[good]
        if hi.shape[0] == 0:
            return (day, *empty[1:])

    # --- merge duplicates, sort ---
    # Logs written by save_store are already sorted and unique; detect
    # that with a few vectorized passes and skip the O(n log n) sort.
    if hi.shape[0] > 1:
        increasing = (hi[1:] > hi[:-1]) | ((hi[1:] == hi[:-1]) & (lo[1:] > lo[:-1]))
        already_sorted = bool(increasing.all())
    else:
        already_sorted = True
    if already_sorted:
        return day, hi, lo, hits

    from repro.data import store as obstore

    entries = np.empty(hi.shape[0], dtype=obstore.ADDRESS_DTYPE)
    entries["hi"] = hi
    entries["lo"] = lo
    unique, inverse = np.unique(entries, return_inverse=True)
    summed = np.zeros(unique.shape[0], dtype=np.uint64)
    np.add.at(summed, inverse, hits)
    return day, unique["hi"].copy(), unique["lo"].copy(), summed


def read_daily_log_arrays(
    path: str,
    errors: str = ERRORS_STRICT,
    report: Optional[QuarantineReport] = None,
) -> Tuple[Optional[int], np.ndarray, np.ndarray, np.ndarray]:
    """Columnar fast path: read a day log straight into uint64 arrays.

    Returns ``(day, hi, lo, hits)`` with addresses sorted, deduplicated,
    and duplicate hit counts summed — exactly the layout
    :class:`repro.data.store.DailyObservations` holds, so no per-element
    Python work happens anywhere on this path.  ``errors="quarantine"``
    diverts malformed lines into ``report`` instead of raising.
    """
    check_errors_mode(errors)
    with open(path, "rb") as handle:
        data = handle.read()
    return _parse_log_bytes(data, path, errors=errors, report=report)


#: A load_store worker task: (path, cache_dir, errors).
_DayTask = Tuple[str, Optional[str], str]

#: A worker's answer: (payload or None for a lost day, delta report).
_DayResult = Tuple[
    Optional[Tuple[Optional[int], np.ndarray, np.ndarray, np.ndarray]],
    Optional[QuarantineReport],
]


def _load_day_task(task: _DayTask) -> _DayResult:
    """Load one day as arrays, through the binary cache when enabled.

    Runs in a (possibly forked) pool worker; in quarantine mode every
    fault lands in the returned delta report, which the parent merges —
    including whole-day loss (unreadable file), returned as a ``None``
    payload so the day becomes an explicit gap rather than an abort.
    Threshold enforcement is deliberately left to the parent: a
    threshold breach must abort the *run*, not look like a worker fault
    the supervisor would pointlessly retry.
    """
    path, cache_dir, errors = task
    quarantine = errors == ERRORS_QUARANTINE
    delta = QuarantineReport() if quarantine else None
    try:
        if cache_dir is not None:
            from repro.data import daycache

            payload = daycache.load_day(path, cache_dir, errors=errors, report=delta)
        else:
            payload = read_daily_log_arrays(path, errors=errors, report=delta)
    except OSError as exc:
        if not quarantine:
            raise
        assert delta is not None
        delta.day_fault(path, "unreadable-file", str(exc))
        return None, delta
    return payload, delta


def save_store(store: ObservationStore, directory: str, prefix: str = "log") -> List[str]:
    """Write every day of a store as ``<prefix>-<day>.txt`` files."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for observations in store.iter_days():
        path = os.path.join(directory, f"{prefix}-{observations.day}.txt")
        write_daily_log_arrays(
            path,
            observations.day,
            observations.addresses["hi"],
            observations.addresses["lo"],
            observations.hits,
        )
        paths.append(path)
    return paths


def load_store(
    paths: Iterable[str],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    errors: str = ERRORS_STRICT,
    report: Optional[QuarantineReport] = None,
    policy: Optional[QuarantinePolicy] = None,
    report_sink: Optional[List[RunReport]] = None,
) -> ObservationStore:
    """Load daily log files into an observation store.

    Files without a day header take the next integer after the current
    maximum (so ordering of pathnames defines their sequence).

    Args:
        paths: the daily log files, in day order.
        jobs: number of worker processes.  ``None`` or 1 loads serially;
            0 (or negative) uses all CPUs.  Days are independent, so the
            parse work fans out cleanly under the supervised pool
            (crashed/wedged workers are retried, then re-run serially).
        cache_dir: when given, each file's parsed columns are persisted
            in (and reused from) a binary columnar cache keyed by the
            file's content hash — see :mod:`repro.data.daycache`.
        errors: ``"strict"`` (default) raises on the first malformed
            line or unreadable file; ``"quarantine"`` diverts faults
            into ``report`` — malformed lines are dropped, unreadable
            days become explicit gaps, duplicate day numbers merge with
            an info record.
        report: quarantine sink; a fresh one is created when omitted.
        policy: loss budgets enforced in quarantine mode (defaults to
            :class:`QuarantinePolicy`); raises
            :class:`repro.runtime.quarantine.QuarantineThresholdError`
            when exceeded.
        report_sink: when given, receives the pool's
            :class:`repro.runtime.pool.RunReport`.
    """
    quarantine = check_errors_mode(errors) == ERRORS_QUARANTINE
    if quarantine and report is None:
        report = QuarantineReport()
    if quarantine and policy is None:
        policy = QuarantinePolicy()
    path_list = [os.fspath(p) for p in paths]
    if jobs is not None and jobs <= 0:
        jobs = os.cpu_count() or 1
    tasks: List[_DayTask] = [(p, cache_dir, errors) for p in path_list]
    config = PoolConfig(label="load-store")
    outcomes = supervised_map(
        _load_day_task, tasks, jobs=jobs, config=config, report_sink=report_sink
    )
    store = ObservationStore()
    next_day = 0
    for path, (payload, delta) in zip(path_list, outcomes):
        if quarantine and delta is not None:
            assert report is not None
            report.merge(delta)
        if payload is None:
            continue  # lost day: explicit gap, already in the report
        day, hi, lo, hits = payload
        if day is None:
            day = next_day
        if quarantine and day in store:
            assert report is not None
            report.info(
                path, "duplicate-day", f"day {day} already loaded; replacing"
            )
        store.add_observations(
            DailyObservations.from_halves(day, hi, lo, hits, merged=True)
        )
        next_day = day + 1
    if quarantine:
        assert report is not None and policy is not None
        for path in path_list:
            report.enforce_day(path, policy)
        report.enforce_run(policy, len(path_list))
    return store
