"""Aggregated-log file format: the on-disk form of the paper's input.

One text file per day, one log entry per line::

    <address-presentation-format> <hit-count>

with ``#``-prefixed comment lines (the header records the day number).
This mirrors the paper's aggregated logs — hit counts per client address
per 24-hour period — in a form that sorts and greps well.  The format is
deliberately plain so external datasets (public hitlists, zmap output)
can be converted in with a one-line awk script.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.data.store import DailyObservations, ObservationStore
from repro.net import addr


class LogFormatError(ValueError):
    """Raised when a log line cannot be parsed."""


def write_daily_log(
    path: str,
    day: int,
    entries: Iterable[Tuple[int, int]],
) -> None:
    """Write one day's aggregated log: (address, hits) pairs."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# repro aggregated log day={day}\n")
        for address, hits in entries:
            handle.write(f"{addr.format_address(address)} {int(hits)}\n")


def read_daily_log(path: str) -> Tuple[Optional[int], List[Tuple[int, int]]]:
    """Read one day's aggregated log; returns (day, entries).

    The day comes from the header comment when present, else None.
    Malformed lines raise :class:`LogFormatError` with the line number.
    """
    day: Optional[int] = None
    entries: List[Tuple[int, int]] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "day=" in line and day is None:
                    try:
                        day = int(line.split("day=", 1)[1].split()[0])
                    except (ValueError, IndexError):
                        pass
                continue
            parts = line.split()
            if len(parts) != 2:
                raise LogFormatError(
                    f"{path}:{line_number}: expected 'address hits', got {line!r}"
                )
            try:
                address = addr.parse(parts[0])
            except addr.AddressError as exc:
                raise LogFormatError(f"{path}:{line_number}: {exc}") from exc
            if not parts[1].isdigit():
                raise LogFormatError(
                    f"{path}:{line_number}: bad hit count {parts[1]!r}"
                )
            entries.append((address, int(parts[1])))
    return day, entries


def save_store(store: ObservationStore, directory: str, prefix: str = "log") -> List[str]:
    """Write every day of a store as ``<prefix>-<day>.txt`` files."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for observations in store.iter_days():
        path = os.path.join(directory, f"{prefix}-{observations.day}.txt")
        if observations.hits is not None:
            entries = zip(observations.as_ints(), (int(h) for h in observations.hits))
        else:
            entries = ((address, 1) for address in observations.as_ints())
        write_daily_log(path, observations.day, entries)
        paths.append(path)
    return paths


def load_store(paths: Iterable[str]) -> ObservationStore:
    """Load daily log files into an observation store.

    Files without a day header take the next integer after the current
    maximum (so ordering of pathnames defines their sequence).
    """
    store = ObservationStore()
    next_day = 0
    for path in paths:
        day, entries = read_daily_log(path)
        if day is None:
            day = next_day
        addresses = [address for address, _hits in entries]
        hits = [hits for _address, hits in entries]
        store.add_day(day, addresses, hits)
        next_day = day + 1
    return store
