"""Day-indexed observation storage for active-address analysis.

The paper's input is a sequence of *daily aggregated logs*: for each day, the
set of client addresses observed (with hit counts).  This module provides the
column-oriented store the temporal classifier runs over.

Addresses are held as numpy structured arrays with two unsigned 64-bit
columns ``(hi, lo)`` — the high and low halves of the 128-bit address —
sorted lexicographically and deduplicated.  numpy's ``intersect1d`` /
``union1d`` / ``isin`` then give the per-day set algebra in vectorized form,
which is what makes window-based stability analysis over millions of
addresses per day practical in pure Python.

Days are plain integers (day numbers); use any epoch you like, as the
classifiers only ever take differences.  :func:`day_number` converts ISO
dates for convenience.
"""

from __future__ import annotations

import datetime
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.net import batchparse

#: Structured dtype for address columns: high then low 64 bits, so that the
#: lexicographic order numpy uses for structured comparison equals numeric
#: order of the 128-bit value.
ADDRESS_DTYPE = np.dtype([("hi", "<u8"), ("lo", "<u8")])

_EPOCH = datetime.date(2014, 1, 1)


def day_number(date: "str | datetime.date") -> int:
    """Convert an ISO date (or date object) to a day number.

    Day 0 is 2014-01-01, placing the paper's three measurement epochs at
    small positive numbers; only differences ever matter.
    """
    if isinstance(date, str):
        date = datetime.date.fromisoformat(date)
    return (date - _EPOCH).days


def day_date(day: int) -> datetime.date:
    """Inverse of :func:`day_number`."""
    return _EPOCH + datetime.timedelta(days=int(day))


def _raw_from_ints(addresses: Iterable[int]) -> np.ndarray:
    """Bulk-convert integer addresses to an (unsorted) structured array."""
    hi, lo = batchparse.ints_to_halves(addresses)
    raw = np.empty(hi.shape[0], dtype=ADDRESS_DTYPE)
    raw["hi"] = hi
    raw["lo"] = lo
    return raw


def to_array(addresses: Iterable[int]) -> np.ndarray:
    """Build a sorted, deduplicated address array from integer addresses."""
    return np.unique(_raw_from_ints(addresses))


def halves_to_array(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Build a sorted, deduplicated address array from uint64 halves."""
    raw = np.empty(np.shape(hi)[0], dtype=ADDRESS_DTYPE)
    raw["hi"] = hi
    raw["lo"] = lo
    return np.unique(raw)


def from_array(array: np.ndarray) -> List[int]:
    """Convert an address array back to a list of 128-bit integers."""
    return batchparse.halves_to_ints(array["hi"], array["lo"])


def array_size(array: np.ndarray) -> int:
    """Number of addresses in an address array."""
    return int(array.shape[0])


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Set intersection of two sorted address arrays."""
    return np.intersect1d(a, b, assume_unique=True)


def union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Set union of two sorted address arrays."""
    return np.union1d(a, b)


def difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Addresses in ``a`` but not in ``b``."""
    return np.setdiff1d(a, b, assume_unique=True)


def member_mask(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean mask over ``a``: which elements also appear in ``b``.

    Both arrays must be sorted and unique; uses ``searchsorted`` rather
    than ``np.isin`` because structured ``isin`` falls back to slow paths.
    """
    if array_size(b) == 0:
        return np.zeros(array_size(a), dtype=bool)
    positions = np.searchsorted(b, a)
    positions = np.clip(positions, 0, array_size(b) - 1)
    return b[positions] == a


def union_many(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Union of any number of address arrays (empty input gives empty set)."""
    if not arrays:
        return np.empty(0, dtype=ADDRESS_DTYPE)
    return np.unique(np.concatenate(arrays))


def truncate_array(array: np.ndarray, prefix_len: int) -> np.ndarray:
    """Truncate every address to ``prefix_len`` bits; dedupe and sort.

    Truncating to /64 reduces the problem to distinct ``hi`` values with
    ``lo`` zero — the "/64 prefixes" the paper tracks alongside full
    addresses.
    """
    if not 0 <= prefix_len <= 128:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    result = array.copy()
    if prefix_len <= 64:
        if prefix_len == 0:
            hi_mask = np.uint64(0)
        else:
            hi_mask = np.uint64(((1 << prefix_len) - 1) << (64 - prefix_len))
        result["hi"] = result["hi"] & hi_mask
        result["lo"] = 0
    else:
        low_bits = prefix_len - 64
        if low_bits == 64:
            lo_mask = np.uint64(0xFFFFFFFFFFFFFFFF)
        else:
            lo_mask = np.uint64(((1 << low_bits) - 1) << (64 - low_bits))
        result["lo"] = result["lo"] & lo_mask
    return np.unique(result)


class DailyObservations:
    """One day's worth of observed addresses, with optional hit counts.

    Addresses are stored sorted and deduplicated; hit counts, when given,
    are summed per unique address and kept in a parallel array.
    """

    def __init__(
        self,
        day: int,
        addresses: Iterable[int],
        hits: Optional[Iterable[int]] = None,
    ) -> None:
        self.day = int(day)
        raw = _raw_from_ints(addresses)
        if hits is None:
            self.addresses = np.unique(raw)
            self.hits = None
        else:
            hit_list = np.asarray(list(hits), dtype=np.uint64)
            if hit_list.shape[0] != raw.shape[0]:
                raise ValueError("hits must parallel addresses")
            unique, inverse = np.unique(raw, return_inverse=True)
            summed = np.zeros(unique.shape[0], dtype=np.uint64)
            np.add.at(summed, inverse, hit_list)
            self.addresses = unique
            self.hits = summed

    @classmethod
    def from_array(cls, day: int, array: np.ndarray) -> "DailyObservations":
        """Wrap a prebuilt (sorted, unique) address array without copying."""
        instance = cls.__new__(cls)
        instance.day = int(day)
        instance.addresses = array
        instance.hits = None
        return instance

    @classmethod
    def from_halves(
        cls,
        day: int,
        hi: np.ndarray,
        lo: np.ndarray,
        hits: "Optional[np.ndarray]" = None,
        merged: bool = False,
    ) -> "DailyObservations":
        """Build a day directly from columnar uint64 halves.

        This is the zero-copy-ish entry point of the fast ingestion
        pipeline: the batch parser and the day-log cache both produce
        ``(hi, lo[, hits])`` columns.  With ``merged=True`` the columns
        are trusted to be sorted and duplicate-free already (the cache
        stores them that way) and are wrapped without re-deduplication.
        """
        instance = cls.__new__(cls)
        instance.day = int(day)
        if merged:
            array = np.empty(np.shape(hi)[0], dtype=ADDRESS_DTYPE)
            array["hi"] = hi
            array["lo"] = lo
            instance.addresses = array
            instance.hits = (
                None if hits is None else np.asarray(hits, dtype=np.uint64)
            )
            return instance
        raw = np.empty(np.shape(hi)[0], dtype=ADDRESS_DTYPE)
        raw["hi"] = hi
        raw["lo"] = lo
        if hits is None:
            instance.addresses = np.unique(raw)
            instance.hits = None
            return instance
        hit_array = np.asarray(hits, dtype=np.uint64)
        if hit_array.shape[0] != raw.shape[0]:
            raise ValueError("hits must parallel addresses")
        unique, inverse = np.unique(raw, return_inverse=True)
        summed = np.zeros(unique.shape[0], dtype=np.uint64)
        np.add.at(summed, inverse, hit_array)
        instance.addresses = unique
        instance.hits = summed
        return instance

    def __len__(self) -> int:
        return array_size(self.addresses)

    def as_ints(self) -> List[int]:
        """The day's addresses as 128-bit integers."""
        return from_array(self.addresses)

    def truncated(self, prefix_len: int) -> "DailyObservations":
        """This day's observations reduced to distinct /prefix_len networks."""
        return DailyObservations.from_array(
            self.day, truncate_array(self.addresses, prefix_len)
        )


class ObservationStore:
    """A day-indexed collection of :class:`DailyObservations`.

    The unit the temporal classifier consumes.  Also supports deriving a
    prefix-level store (e.g. /64s) and unions over day ranges.
    """

    def __init__(self) -> None:
        self._days: Dict[int, DailyObservations] = {}

    def add_day(
        self,
        day: int,
        addresses: Iterable[int],
        hits: Optional[Iterable[int]] = None,
    ) -> DailyObservations:
        """Insert (or replace) one day of observations."""
        observations = DailyObservations(day, addresses, hits)
        self._days[observations.day] = observations
        return observations

    def add_observations(self, observations: DailyObservations) -> None:
        """Insert a prebuilt day of observations."""
        self._days[observations.day] = observations

    def days(self) -> List[int]:
        """Sorted list of days present in the store."""
        return sorted(self._days)

    def __contains__(self, day: int) -> bool:
        return int(day) in self._days

    def __len__(self) -> int:
        return len(self._days)

    def get(self, day: int) -> Optional[DailyObservations]:
        """The observations for ``day``, or None when absent."""
        return self._days.get(int(day))

    def array(self, day: int) -> np.ndarray:
        """The sorted address array for ``day`` (empty when absent)."""
        observations = self._days.get(int(day))
        if observations is None:
            return np.empty(0, dtype=ADDRESS_DTYPE)
        return observations.addresses

    def union_over(self, days: Iterable[int]) -> np.ndarray:
        """Union of the address sets of the given days."""
        return union_many([self.array(day) for day in days])

    def truncated(self, prefix_len: int) -> "ObservationStore":
        """Derive a store whose members are /prefix_len networks."""
        derived = ObservationStore()
        for day, observations in self._days.items():
            derived.add_observations(observations.truncated(prefix_len))
        return derived

    def iter_days(self) -> Iterator[DailyObservations]:
        """Iterate the days in chronological order."""
        for day in self.days():
            yield self._days[day]

    def save(self, path: str) -> None:
        """Persist the store to an ``.npz`` file."""
        payload: Dict[str, np.ndarray] = {}
        for day, observations in self._days.items():
            payload[f"hi_{day}"] = observations.addresses["hi"]
            payload[f"lo_{day}"] = observations.addresses["lo"]
            if observations.hits is not None:
                payload[f"hits_{day}"] = observations.hits
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "ObservationStore":
        """Load a store saved with :meth:`save`."""
        store = cls()
        with np.load(path) as data:
            days = sorted(
                int(name[3:]) for name in data.files if name.startswith("hi_")
            )
            for day in days:
                hi = data[f"hi_{day}"]
                lo = data[f"lo_{day}"]
                array = np.empty(hi.shape[0], dtype=ADDRESS_DTYPE)
                array["hi"] = hi
                array["lo"] = lo
                observations = DailyObservations.from_array(day, array)
                hits_key = f"hits_{day}"
                if hits_key in data.files:
                    observations.hits = data[hits_key]
                store.add_observations(observations)
        return store
