"""repro-lint: codebase-invariant static analysis for the array engines.

The array-native engines (:mod:`repro.core.sweep`, :mod:`repro.core.spatial`,
the ingestion pipeline) rest on invariants the paper's methods silently
assume — canonically sorted/deduplicated ``(hi, lo)`` address arrays,
exact-integer density thresholds, fork-safe ``jobs=N`` fan-out, unsigned
64-bit column arithmetic.  Each invariant in this package's rule set was
violated at least once in this repository's history and patched
reactively; the linter turns those implicit invariants into explicit,
machine-checked rules so refactors cannot silently reintroduce the bug
classes already fixed.

Rules (see ``repro-lint --explain RXXX`` or DESIGN.md for the history):

* **R001** — float-arithmetic threshold comparisons against integer
  counts (the aguri ``0.07 * 100 == 7.000000000000001`` bug class).
* **R002** — per-element Python loops over structured address arrays in
  ``core/`` hot paths (the pattern the sweep/spatial engines eliminated).
* **R003** — public ``core/`` functions that accept address arrays but
  bypass the ``_as_address_array`` canonical guard.
* **R004** — unseeded ``random`` / ``numpy.random`` use in ``sim/``.
* **R005** — fork-unsafety: threads, locks, or open mmap/file handles
  created before a fork-based ``jobs=`` fan-out.
* **R006** — dtype discipline: bare Python int literals mixed into
  ``hi``/``lo`` uint64 column arithmetic.

Suppress a finding with ``# repro-lint: ignore[RXXX]`` on the flagged
line (or a bare ``# repro-lint: ignore`` to suppress every rule there).
"""

from repro.lint.engine import (
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.rules import RULES, get_rule

__all__ = [
    "Finding",
    "RULES",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
]
