"""``repro-lint`` console entry point.

Usage::

    repro-lint [PATHS...]          # lint (default: src/), exit 1 on findings
    repro-lint --explain R001      # print a rule's rationale and history
    repro-lint --list              # one-line summary of every rule
    repro-lint --github PATHS...   # also emit GitHub Actions annotations
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.rules import RULES, get_rule


def _default_paths() -> List[str]:
    return ["src"] if os.path.isdir("src") else ["."]


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-lint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Codebase-invariant static analysis for the repro array "
            "engines: each rule guards an invariant whose violation "
            "already caused a real bug here once."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--explain",
        metavar="RXXX",
        help="print the rule's rationale and the historical bug it guards against",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list every rule with a one-line summary",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="emit GitHub Actions ::error annotations alongside plain output",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the classified process exit code.

    0 = clean, 1 = findings, 2 = usage error, 3 = unreadable input,
    5 = internal fault (see :mod:`repro.runtime.exitcodes`).
    """
    from repro.runtime.exitcodes import EXIT_INPUT, EXIT_INTERNAL

    try:
        return _run(argv)
    except BrokenPipeError:
        # ``repro-lint --explain R005 | head`` should not traceback: a
        # closed pipe is the downstream consumer saying "enough".
        try:
            sys.stdout.close()
        except Exception:  # repro-lint: ignore[R007]
            pass
        return 0
    except SystemExit:
        raise
    except OSError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_INPUT
    except Exception as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"repro-lint: internal fault: {exc!r}", file=sys.stderr)
        return EXIT_INTERNAL


def _run(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)

    if args.explain:
        try:
            rule = get_rule(args.explain)
        except KeyError:
            known = ", ".join(r.rule_id for r in RULES)
            print(
                f"unknown rule {args.explain!r}; known rules: {known}",
                file=sys.stderr,
            )
            return 2
        print(f"{rule.rule_id}: {rule.title}")
        print()
        print(rule.rationale.rstrip())
        return 0

    if args.list_rules:
        for rule in RULES:
            scope = "/".join(rule.scope) + "/ only" if rule.scope else "all files"
            print(f"{rule.rule_id}  {rule.title}  [{scope}]")
        return 0

    findings = lint_paths(args.paths or _default_paths())
    for finding in findings:
        print(finding.format())
        if args.github:
            print(finding.format_github())
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s); "
            "run `repro-lint --explain RXXX` for the rationale",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
