"""repro-lint engine: file walking, suppression handling, rule dispatch.

The engine is deliberately dependency-free (stdlib ``ast`` only): it
parses each file once, asks every applicable rule for raw findings, then
filters findings suppressed by ``# repro-lint: ignore[...]`` comments.

Suppression grammar::

    x = addresses  # repro-lint: ignore[R003]          one rule
    x = addresses  # repro-lint: ignore[R003,R006]     several rules
    x = addresses  # repro-lint: ignore                every rule

The comment suppresses findings reported on its own line; a line that
consists *only* of a suppression comment suppresses the line below it
(useful before multi-line statements).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.lint.rules import RULES, Rule

#: Sentinel suppression set meaning "every rule".
_ALL_RULES: FrozenSet[str] = frozenset(rule.rule_id for rule in RULES)

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, ready for CI annotation."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """``path:line:col: RXXX message`` — the canonical output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def format_github(self) -> str:
        """GitHub Actions workflow-command annotation form."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title=repro-lint {self.rule_id}::{self.message}"
        )


def _suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids suppressed on that line."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        rules = (
            _ALL_RULES
            if ids is None
            else frozenset(part.strip().upper() for part in ids.split(",") if part.strip())
        )
        suppressed[number] = suppressed.get(number, frozenset()) | rules
        # A line that is only a suppression comment covers the next line.
        if text.strip().startswith("#"):
            suppressed[number + 1] = suppressed.get(number + 1, frozenset()) | rules
    return suppressed


def _path_parts(path: str) -> Sequence[str]:
    return PurePosixPath(path.replace(os.sep, "/")).parts


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source text; ``path`` drives rule scoping."""
    active = RULES if rules is None else tuple(rules)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="E000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    parts = _path_parts(path)
    suppressed = _suppressions(source)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(parts):
            continue
        for raw in rule.check(tree):
            if rule.rule_id in suppressed.get(raw.line, frozenset()):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=raw.line,
                    col=raw.col,
                    rule_id=rule.rule_id,
                    message=raw.message,
                )
            )
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def lint_file(path: str, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def _python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, names in os.walk(path):
        dirs[:] = sorted(d for d in dirs if not d.startswith("."))
        for name in sorted(names):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def lint_paths(
    paths: Iterable[Union[str, "os.PathLike[str]"]],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under the given files/directories."""
    findings: List[Finding] = []
    for path in paths:
        for file_path in _python_files(os.fspath(path)):
            findings.extend(lint_file(file_path, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
