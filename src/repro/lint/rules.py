"""The repro-lint rule set: one rule per historically violated invariant.

Each rule is an :class:`ast`-based checker carrying its own rationale —
the invariant, the real bug in this repository's history that motivated
it, and how to suppress a false positive.  ``repro-lint --explain RXXX``
prints the rationale, so a CI failure is self-documenting.

Rules are deliberately narrow: they pattern-match the *specific* shapes
that caused past bugs rather than attempting general program analysis,
which keeps the false-positive rate near zero on this codebase.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class RawFinding:
    """A rule hit before path/suppression handling: (line, col, message)."""

    line: int
    col: int
    message: str


class Rule:
    """Base class: subclasses set the id/title/rationale and implement check."""

    rule_id: str = ""
    title: str = ""
    #: Path components that scope the rule (empty = applies everywhere).
    scope: Tuple[str, ...] = ()
    rationale: str = ""

    def applies_to(self, parts: Sequence[str]) -> bool:
        """Whether the rule runs on a file with the given path components."""
        if not self.scope:
            return True
        return any(part in parts for part in self.scope)

    def check(self, tree: ast.AST) -> List[RawFinding]:
        """Return the raw findings for one parsed module."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Shared AST helpers.
# ---------------------------------------------------------------------------

#: Identifiers that denote integer counts (sizes of address sets, hit
#: tallies, day tallies) in this codebase's naming convention.
_COUNT_NAME = re.compile(
    r"(?:^|_)(count|counts|total|totals|size|sizes|num|hits|n)(?:_|$)",
    re.IGNORECASE,
)

#: Identifiers that denote float-valued scale factors.
_FLOATY_NAME = re.compile(
    r"(?:^|_)(fraction|frac|threshold|share|ratio|pct|percent|density|rate)(?:_|$)",
    re.IGNORECASE,
)

#: Identifiers that denote structured address arrays (or views of them).
_ADDRESSISH_NAME = re.compile(
    r"(?:^|_)(array|arrays|address|addresses|addrs|active)(?:_|$)",
    re.IGNORECASE,
)

#: Bare names bound to ``hi``/``lo`` uint64 column arrays by convention.
_COLUMN_NAMES = frozenset(
    {"hi", "lo", "shi", "slo", "xor_hi", "xor_lo", "hi_col", "lo_col", "eui_lo"}
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute expression, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None for other shapes)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_column_expr(node: ast.AST) -> bool:
    """Whether an expression denotes a ``hi``/``lo`` uint64 column array.

    Matches bare conventional names (``hi``, ``xor_lo``, ...) and
    subscript chains that bottom out in a ``["hi"]``/``["lo"]`` field
    access (``array["hi"]``, ``array["hi"][1:]``).
    """
    while isinstance(node, ast.Subscript):
        if isinstance(node.slice, ast.Constant) and node.slice.value in ("hi", "lo"):
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id in _COLUMN_NAMES


def _contains_column_subscript(node: ast.AST) -> bool:
    """Whether any sub-expression subscripts a ``"hi"``/``"lo"`` column."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.slice, ast.Constant)
            and sub.slice.value in ("hi", "lo")
        ):
            return True
    return False


def _comprehension_iters(node: ast.AST) -> List[ast.expr]:
    """The iterable expressions of a comprehension node."""
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
        return [generator.iter for generator in node.generators]
    return []


# ---------------------------------------------------------------------------
# R001 — float-arithmetic threshold comparisons against integer counts.
# ---------------------------------------------------------------------------


class FloatThresholdRule(Rule):
    """R001: float-scaled threshold compared against an integer count."""

    rule_id = "R001"
    title = "float-scaled threshold compared against an integer count"
    rationale = """\
Invariant: thresholds applied to integer counts (address-set sizes, hit
tallies, subtree counts) must be computed exactly over integers, never
as float products.

Historical bug: the aguri-style aggregation compared a node's integer
count against ``fraction * total`` — but ``0.07 * 100`` is
``7.000000000000001`` in binary floating point, so a node holding
exactly the threshold share (count 7 of 100) was misclassified and
folded into its parent.  The fix (repro.trie.aguri.aguri_aggregate)
reads the fraction as the decimal it was written as and compares
``count * denominator < numerator * total`` in exact integers.

Fix: restate the comparison over integers — e.g. for ``count <
fraction * total`` with ``fraction = a/b``, compare ``count * b < a *
total``; for density thresholds use ceiling-integer shift arithmetic as
in repro.trie.aguri.density_threshold.

Suppress with ``# repro-lint: ignore[R001]`` when both sides are
genuinely real-valued (no integer count involved).
"""

    def check(self, tree: ast.AST) -> List[RawFinding]:
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops
            ):
                continue
            operands = [node.left] + list(node.comparators)
            countish = [o for o in operands if self._is_countish(o)]
            scaled = [o for o in operands if self._is_float_scaled(o)]
            if countish and scaled:
                name = _terminal_name(countish[0]) or "count"
                findings.append(
                    RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"integer count '{name}' compared against a "
                        "float-scaled threshold; compute the threshold "
                        "exactly over integers (the aguri 0.07*100 == "
                        "7.000000000000001 bug class)",
                    )
                )
        return findings

    @staticmethod
    def _is_countish(node: ast.AST) -> bool:
        name = _terminal_name(node)
        return name is not None and bool(_COUNT_NAME.search(name))

    @staticmethod
    def _is_float_scaled(node: ast.AST) -> bool:
        if not isinstance(node, ast.BinOp) or not isinstance(
            node.op, (ast.Mult, ast.Div)
        ):
            return False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if isinstance(sub, (ast.Name, ast.Attribute)):
                name = _terminal_name(sub)
                if name and _FLOATY_NAME.search(name):
                    return True
        return False


# ---------------------------------------------------------------------------
# R002 — per-element Python loops over address arrays in core/.
# ---------------------------------------------------------------------------


class ElementLoopRule(Rule):
    """R002: per-element Python loop over address arrays in core/."""

    rule_id = "R002"
    title = "per-element Python loop over structured address arrays in core/"
    scope = ("core",)
    rationale = """\
Invariant: core/ hot paths operate on whole (hi, lo) address columns
with vectorized numpy passes; Python-level iteration over address
elements is the complexity class the sweep and spatial engines exist to
eliminate.

Historical bug: the tree-based spatial classifier materialized one
Python object per address (per-element loops everywhere), which could
not densify a year-scale store in reasonable time; the temporal
classifier rescanned each day array once per overlapping window.  Both
were rebuilt as array engines (repro.core.sweep, repro.core.spatial) —
an ~80x speedup on 1M-address densify — and a single stray per-element
loop silently reintroduces the old complexity class.

Fix: replace the loop with column operations (searchsorted, cumsum,
lexsort, bincount); to materialize Python ints at an API boundary, use
the vectorized repro.net.batchparse.halves_to_ints /
repro.data.store.from_array helpers.

Suppress with ``# repro-lint: ignore[R002]`` on loops that are provably
output-bounded (iterating a handful of report rows, not addresses).
"""

    def check(self, tree: ast.AST) -> List[RawFinding]:
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            else:
                iters = _comprehension_iters(node)
            for iterable in iters:
                if self._iterates_elements(iterable):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            "per-element Python loop over structured "
                            "address-array data; use vectorized column "
                            "operations instead",
                        )
                    )
                    break
        return findings

    @staticmethod
    def _iterates_elements(iterable: ast.expr) -> bool:
        # Direct (or zip/enumerate-wrapped) iteration of hi/lo columns.
        candidates: List[ast.expr] = [iterable]
        if isinstance(iterable, ast.Call):
            callee = _terminal_name(iterable.func)
            if callee in ("zip", "enumerate"):
                candidates = list(iterable.args)
            elif callee == "range":
                # range(len(array)) / range(array.shape[0]) index loops.
                for arg in iterable.args:
                    if ElementLoopRule._is_array_extent(arg):
                        return True
                return False
            else:
                return False
        return any(_contains_column_subscript(c) for c in candidates)

    @staticmethod
    def _is_array_extent(node: ast.expr) -> bool:
        if (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) == "len"
            and node.args
        ):
            name = _terminal_name(node.args[0])
            return name is not None and bool(_ADDRESSISH_NAME.search(name))
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "shape"
        ):
            name = _terminal_name(node.value.value)
            return name is not None and bool(_ADDRESSISH_NAME.search(name))
        return False


# ---------------------------------------------------------------------------
# R003 — public core/ entry points bypassing the canonical guard.
# ---------------------------------------------------------------------------

#: Calls that canonicalize arbitrary address input (sorted + unique).
_GUARD_CALLS = frozenset({"_as_address_array", "to_array"})

#: Parameter names that, by convention, carry *unvalidated* address input.
_UNVALIDATED_PARAMS = frozenset({"addresses", "addrs"})


class UnguardedEntryRule(Rule):
    """R003: public core/ entry point bypassing _as_address_array."""

    rule_id = "R003"
    title = "public core/ function uses an address parameter without the canonical guard"
    scope = ("core",)
    rationale = """\
Invariant: every public core/ entry point that accepts addresses (the
``addresses`` parameter convention: structured arrays OR iterables of
ints, unvalidated) must route the input through
repro.core.mra._as_address_array before treating it as a canonical
array.  The engines read structure off *adjacent* elements, so they are
only correct on sorted, deduplicated input.

Historical bug: trusting arbitrary structured-array input returned
wrong MRA aggregate counts for unsorted arrays and double-counted
duplicated addresses in the dense-prefix and population accounting; the
guard (with its cheap ascending-order fast path) was added reactively
in the spatial-engine PR after the miscounts were observed.

Fix: rebind the parameter through the guard —
``array = _as_address_array(addresses)`` — before any subscripting,
attribute access, aliasing, or iteration.  Forwarding the parameter to
another guarded function is fine.

Suppress with ``# repro-lint: ignore[R003]`` on the offending line when
the function's contract genuinely accepts non-canonical input (rare;
document why).
"""

    def check(self, tree: ast.AST) -> List[RawFinding]:
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            params = self._address_params(node)
            if not params:
                continue
            for param in params:
                finding = self._check_param(node, param)
                if finding is not None:
                    findings.append(finding)
        return findings

    @staticmethod
    def _address_params(node: ast.AST) -> List[str]:
        args = node.args  # type: ignore[attr-defined]
        every = args.posonlyargs + args.args + args.kwonlyargs
        return [
            a.arg
            for a in every
            if a.arg in _UNVALIDATED_PARAMS
            and not UnguardedEntryRule._is_scalar_annotation(a.annotation)
        ]

    @staticmethod
    def _is_scalar_annotation(annotation: Optional[ast.expr]) -> bool:
        """Whether the annotation declares a plain int container.

        Scalar reference variants (``addresses: Iterable[int]``) iterate
        Python ints by contract and never see structured arrays, so the
        canonical-array guard does not apply to them.  Annotations that
        mention arrays (``np.ndarray``, ``ArrayOrAddresses``) — or no
        annotation at all — stay in scope.
        """
        if annotation is None:
            return False
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            text = annotation.value
        else:
            text = ast.unparse(annotation)
        if "ndarray" in text or "ArrayOrAddresses" in text:
            return False
        return "int]" in text

    def _check_param(
        self, func: ast.AST, param: str
    ) -> Optional[RawFinding]:
        body = func.body  # type: ignore[attr-defined]
        guarded = False
        alias: Optional[ast.AST] = None
        raw_use: Optional[ast.AST] = None
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    callee = _terminal_name(node.func)
                    if (
                        callee in _GUARD_CALLS
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id == param
                    ):
                        guarded = True
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                    if node.value.id == param and alias is None:
                        alias = node
                if isinstance(node, ast.Subscript) or isinstance(node, ast.Attribute):
                    base = node.value
                    if isinstance(base, ast.Name) and base.id == param:
                        if raw_use is None:
                            raw_use = node
                if isinstance(node, ast.For):
                    if isinstance(node.iter, ast.Name) and node.iter.id == param:
                        if raw_use is None:
                            raw_use = node
                for iterable in _comprehension_iters(node):
                    if isinstance(iterable, ast.Name) and iterable.id == param:
                        if raw_use is None:
                            raw_use = node
        # A bare alias lets the raw input escape the guard even when the
        # guard is also called on another control-flow path (the exact
        # shape of the census bug); direct raw use is bad only unguarded.
        offender = alias if alias is not None else (None if guarded else raw_use)
        if offender is None:
            return None
        return RawFinding(
            offender.lineno,
            offender.col_offset,
            f"parameter '{param}' is used as a canonical address array "
            "without routing through _as_address_array(); unsorted or "
            "duplicated input silently miscounts",
        )


# ---------------------------------------------------------------------------
# R004 — unseeded randomness in sim/.
# ---------------------------------------------------------------------------

_STDLIB_GLOBAL_RANDOM = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
    }
)

_NUMPY_LEGACY_RANDOM = frozenset(
    {
        "choice",
        "normal",
        "permutation",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "shuffle",
        "uniform",
    }
)


class UnseededRandomRule(Rule):
    """R004: unseeded or global-stream randomness in sim/."""

    rule_id = "R004"
    title = "unseeded or global-stream randomness in sim/"
    scope = ("sim",)
    rationale = """\
Invariant: every simulated quantity must be reproducible bit-for-bit
from one root seed, and independent components must not share streams —
otherwise adding a subscriber to one network perturbs another and no
golden test can pin simulator output.

Historical bug: the simulator's golden Table 2 tests (multi-epoch
scenario runs) are only meaningful because all draws flow through
repro.sim.rng's hash-derived substreams; during development, draws that
touched the interpreter-global `random` module made scenario output
depend on import order and on unrelated test execution.

Fix: derive a stream with repro.sim.rng.substream(seed, *keys) /
numpy_substream(seed, *keys), or construct random.Random(seed) /
np.random.default_rng(seed) with an explicit seed.  Never call
module-level random.* / np.random.* functions (they share hidden global
state), and never construct a generator without a seed.

Suppress with ``# repro-lint: ignore[R004]`` only in code explicitly
documented as non-reproducible (none exists today).
"""

    def check(self, tree: ast.AST) -> List[RawFinding]:
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            message = self._classify(dotted, node)
            if message is not None:
                findings.append(
                    RawFinding(node.lineno, node.col_offset, message)
                )
        return findings

    @staticmethod
    def _classify(dotted: str, node: ast.Call) -> Optional[str]:
        parts = dotted.split(".")
        last = parts[-1]
        unseeded = not node.args and not node.keywords
        if len(parts) >= 2 and parts[-2] == "random":
            if parts[0] in ("np", "numpy") or (
                len(parts) >= 3 and parts[-3] in ("np", "numpy")
            ):
                if last in _NUMPY_LEGACY_RANDOM:
                    return (
                        f"numpy legacy global random function '{dotted}'; "
                        "use repro.sim.rng.numpy_substream or a seeded "
                        "np.random.default_rng"
                    )
            elif parts[0] == "random" and last in _STDLIB_GLOBAL_RANDOM:
                return (
                    f"module-level random stream '{dotted}'; use "
                    "repro.sim.rng.substream or a seeded random.Random"
                )
        if last == "default_rng" and unseeded:
            return (
                "np.random.default_rng() without a seed; derive one with "
                "repro.sim.rng.numpy_substream"
            )
        if last == "Random" and unseeded:
            return (
                "random.Random() without a seed; derive one with "
                "repro.sim.rng.substream"
            )
        return None


# ---------------------------------------------------------------------------
# R005 — fork-unsafety around jobs=N fan-out.
# ---------------------------------------------------------------------------

_THREAD_FACTORIES = frozenset(
    {
        "Barrier",
        "BoundedSemaphore",
        "Condition",
        "Event",
        "Lock",
        "RLock",
        "Semaphore",
        "Thread",
        "ThreadPoolExecutor",
        "Timer",
    }
)

_HANDLE_FACTORIES = frozenset({"open", "mmap"})


class ForkSafetyRule(Rule):
    """R005: threads, locks, or open handles mixed with fork fan-out."""

    rule_id = "R005"
    title = "threads, locks, or open handles mixed with fork-based fan-out"
    rationale = """\
Invariant: modules that fan work out over fork-based worker pools
(sweep/spatial ``jobs=N``, parallel ingestion) must not create threads
or thread locks, and the pool-creating function must not hold open file
or mmap handles at fork time.  fork() clones only the calling thread —
a lock held by any other thread stays locked forever in the child — and
duplicated handles share file offsets with the parent, so reads in
workers corrupt each other's positions.

Historical bug: the engines deliberately pass worker inputs through a
module-global store (_WORKER_STORES) set immediately before the pool is
created, precisely so nothing else — handles, locks, executors — is
alive across the fork; the mmap-backed day cache loads happen *inside*
workers for the same reason.  This rule pins that discipline in place.

Fix: open handles inside the worker function (after the fork), never in
the fan-out function before the pool; replace threads with processes or
create them only in code that never coexists with a fork pool.

Suppress with ``# repro-lint: ignore[R005]`` when a handle provably
never crosses the fork (e.g. opened and closed before the pool in a
``with`` block) — or restructure so the question does not arise.
"""

    def check(self, tree: ast.AST) -> List[RawFinding]:
        pool_lines = self._fork_sites(tree)
        if not pool_lines:
            return []
        findings: List[RawFinding] = []
        # Threads/locks anywhere in a forking module are unsafe: their
        # lifetime cannot be proven disjoint from the pool's.
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = _terminal_name(node.func)
                if callee in _THREAD_FACTORIES:
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"'{callee}' created in a module that forks "
                            "worker pools; fork() clones only the calling "
                            "thread, so locks held elsewhere deadlock the "
                            "children",
                        )
                    )
        # Open file/mmap handles created in the pool-creating function
        # before the fork are inherited with shared offsets.
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_pools = [
                line for line in pool_lines if self._contains_line(func, line)
            ]
            if not local_pools:
                continue
            first_pool = min(local_pools)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call) or node.lineno >= first_pool:
                    continue
                callee = _terminal_name(node.func)
                if callee in _HANDLE_FACTORIES or self._is_mmap_load(node):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"'{callee}' opened before the fork-based pool "
                            f"on line {first_pool}; handles inherited "
                            "across fork share file offsets — open inside "
                            "the worker instead",
                        )
                    )
        return findings

    @staticmethod
    def _fork_sites(tree: ast.AST) -> List[int]:
        lines: List[int] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _terminal_name(node.func)
            if callee in ("Pool", "ProcessPoolExecutor"):
                lines.append(node.lineno)
            elif callee == "get_context" and any(
                isinstance(arg, ast.Constant) and arg.value == "fork"
                for arg in node.args
            ):
                lines.append(node.lineno)
        return lines

    @staticmethod
    def _contains_line(func: ast.AST, line: int) -> bool:
        end = getattr(func, "end_lineno", None)
        return func.lineno <= line and (end is None or line <= end)

    @staticmethod
    def _is_mmap_load(node: ast.Call) -> bool:
        return _terminal_name(node.func) == "load" and any(
            keyword.arg == "mmap_mode" for keyword in node.keywords
        )


# ---------------------------------------------------------------------------
# R006 — dtype discipline in hi/lo column arithmetic.
# ---------------------------------------------------------------------------


class DtypeMixRule(Rule):
    """R006: bare int literal mixed into uint64 hi/lo arithmetic."""

    rule_id = "R006"
    title = "bare Python int literal mixed into uint64 hi/lo arithmetic"
    rationale = """\
Invariant: arithmetic on the ``hi``/``lo`` uint64 address columns wraps
integer literals in ``np.uint64(...)`` so every operand is explicitly
unsigned 64-bit.

Historical bug: numpy's promotion rules make mixed signed/unsigned
64-bit arithmetic either raise or silently promote — classically,
``uint64 + int64`` yields *float64*, which cannot represent every
128-bit address half exactly (floats above 2**53 lose low bits), and
NEP 50 changed the rules for Python-int operands between numpy 1.x and
2.x.  The batch parser and census masks were written with explicit
``np.uint64`` wrapping after address-bit corruption of exactly this
kind surfaced in development; this rule keeps new column arithmetic
honest.

Fix: wrap the literal — ``lo >> np.uint64(24)``, ``hi &
np.uint64(0xFFFF)`` — or hoist it into a module-level ``np.uint64``
constant.

Suppress with ``# repro-lint: ignore[R006]`` when the expression is
provably not uint64 column math (e.g. a same-named local that holds a
Python int).
"""

    _OPS = (
        ast.LShift,
        ast.RShift,
        ast.BitAnd,
        ast.BitOr,
        ast.BitXor,
        ast.Add,
        ast.Sub,
        ast.Mult,
        ast.FloorDiv,
        ast.Mod,
    )

    def check(self, tree: ast.AST) -> List[RawFinding]:
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp) or not isinstance(node.op, self._OPS):
                continue
            sides = (node.left, node.right)
            for column, literal in (sides, sides[::-1]):
                if (
                    _is_column_expr(column)
                    and isinstance(literal, ast.Constant)
                    and type(literal.value) is int
                ):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            "bare int literal in hi/lo uint64 arithmetic; "
                            "wrap it in np.uint64(...) to pin the dtype",
                        )
                    )
                    break
        return findings


# ---------------------------------------------------------------------------
# R007 — swallowed faults: bare/blanket excepts that silence the
# resilience layer.
# ---------------------------------------------------------------------------

_BLANKET_EXCEPTIONS = frozenset({"Exception", "BaseException"})


class SwallowedFaultRule(Rule):
    """R007: bare ``except:`` or blanket ``except Exception: pass``."""

    rule_id = "R007"
    title = "bare or blanket except handler that swallows faults silently"
    rationale = """\
Invariant: no fault in this pipeline may vanish.  The resilience layer
(:mod:`repro.runtime`) exists so every failure is *classified* — a
quarantine record, a pool retry, a checkpoint resume, a nonzero exit
code.  A bare ``except:`` (which also eats SystemExit and
KeyboardInterrupt) or an ``except Exception: pass`` pre-empts all of
that: the fault is gone, the output is silently wrong, and the
operator pages nobody.

Historical bug: a blanket handler around cache-meta parsing turned a
half-written ``.meta.json`` into "cache always misses, silently" for
weeks of warm runs — parsing faults must instead be *reported* (the
quarantine's ``cache-rebuilt`` info records) so the rebuild rate is
visible.  This rule pins that lesson: handle the exceptions you can
name, and route the rest to the classifier.

Fix: name the exception types the code can actually recover from
(``except (OSError, ValueError):``), or re-raise / record the fault
before continuing.  Narrow handlers with real recovery bodies are
fine; so is a blanket handler that logs, reports, or re-raises.

Suppress with ``# repro-lint: ignore[R007]`` only where swallowing is
the contract — e.g. best-effort stdout cleanup in a BrokenPipeError
path, where the process is already exiting.
"""

    def check(self, tree: ast.AST) -> List[RawFinding]:
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    RawFinding(
                        node.lineno,
                        node.col_offset,
                        "bare 'except:' swallows every fault (including "
                        "SystemExit); name the exceptions this code can "
                        "recover from",
                    )
                )
                continue
            blanket = self._blanket_names(node.type)
            if blanket and self._is_silent_body(node.body):
                findings.append(
                    RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"'except {'/'.join(sorted(blanket))}: pass' "
                        "silences faults the resilience layer should "
                        "classify; narrow the type or record the fault",
                    )
                )
        return findings

    @staticmethod
    def _blanket_names(type_node: ast.expr) -> List[str]:
        """Blanket exception names caught by this handler's type."""
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        return [
            _terminal_name(item)
            for item in candidates
            if _terminal_name(item) in _BLANKET_EXCEPTIONS
        ]

    @staticmethod
    def _is_silent_body(body: List[ast.stmt]) -> bool:
        """True when the handler does nothing observable with the fault."""
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue  # docstring / Ellipsis placeholder
            return False
        return True


#: Every rule, in id order.
RULES: Tuple[Rule, ...] = (
    FloatThresholdRule(),
    ElementLoopRule(),
    UnguardedEntryRule(),
    UnseededRandomRule(),
    ForkSafetyRule(),
    DtypeMixRule(),
    SwallowedFaultRule(),
)

_RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}


def get_rule(rule_id: str) -> Rule:
    """Look a rule up by id (case-insensitive); raises KeyError when unknown."""
    return _RULES_BY_ID[rule_id.upper()]
