"""IPv6 address machinery.

This module provides the :class:`IPv6Address` value type used throughout the
library.  Addresses are represented internally as 128-bit Python integers,
which makes prefix arithmetic (shifts, masks) and sorting cheap and exact.

The parser accepts the full RFC 4291 presentation syntax, including ``::``
compression and embedded dotted-quad IPv4 (e.g. ``::ffff:192.0.2.1``).  The
formatter emits the canonical RFC 5952 form (lower-case, longest zero run
compressed, no leading zeros in a group).

Only the pieces of address manipulation the paper's classifiers need are
implemented here; everything is pure Python with no dependency on the
standard-library ``ipaddress`` module (the substrate is built from scratch),
though conversion helpers to and from it are provided for interoperability.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

#: Number of bits in an IPv6 address.
ADDRESS_BITS = 128

#: Number of bits in the canonical interface identifier (IID).
IID_BITS = 64

#: Largest valid address value, i.e. ``2**128 - 1``.
MAX_ADDRESS = (1 << ADDRESS_BITS) - 1

#: Mask covering the canonical 64-bit interface-identifier portion.
IID_MASK = (1 << IID_BITS) - 1

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


class AddressError(ValueError):
    """Raised when an IPv6 address cannot be parsed or is out of range."""


def _parse_ipv4_tail(text: str) -> int:
    """Parse a dotted-quad IPv4 string into a 32-bit integer.

    Used for the embedded-IPv4 tail of mixed-notation addresses such as
    ``64:ff9b::192.0.2.33``.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"invalid embedded IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"invalid embedded IPv4 octet: {part!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"embedded IPv4 octet out of range: {part!r}")
        value = (value << 8) | octet
    return value


def parse(text: str) -> int:
    """Parse an IPv6 address in presentation format into a 128-bit integer.

    Accepts RFC 4291 syntax: eight colon-separated 16-bit hexadecimal
    groups, optional ``::`` zero compression, and an optional trailing
    embedded dotted-quad IPv4 address.

    Raises:
        AddressError: if ``text`` is not a valid IPv6 address.
    """
    if not isinstance(text, str):
        raise AddressError(f"expected str, got {type(text).__name__}")
    text = text.strip()
    if not text:
        raise AddressError("empty address")
    if "%" in text:  # zone identifiers are not meaningful for global analysis
        raise AddressError(f"zone identifier not supported: {text!r}")

    # Split off an embedded IPv4 tail, if present, and convert it to the
    # equivalent final two hex groups.
    ipv4_groups: List[str] = []
    if "." in text:
        head, _, tail = text.rpartition(":")
        if not head:
            raise AddressError(f"invalid mixed-notation address: {text!r}")
        ipv4 = _parse_ipv4_tail(tail)
        ipv4_groups = [f"{ipv4 >> 16:x}", f"{ipv4 & 0xFFFF:x}"]
        # `head` keeps everything before the final colon.  When the IPv4
        # tail directly followed a "::" (e.g. "64:ff9b::1.2.3.4"), head
        # ends with one colon of that pair; restore the full "::" so the
        # compression logic below sees it.
        text = head + ":" if head.endswith(":") else head

    if text == "::":
        groups_text = [""]
        compressed = True
        left_part, right_part = "", ""
    else:
        compressed = "::" in text
        if text.count("::") > 1:
            raise AddressError(f"multiple '::' in address: {text!r}")
        if compressed:
            left_part, _, right_part = text.partition("::")
        else:
            left_part, right_part = text, ""
        groups_text: List[str] = []

    def split_groups(part: str) -> List[str]:
        if not part:
            return []
        groups = part.split(":")
        if any(group == "" for group in groups):
            raise AddressError(f"empty group in address: {text!r}")
        return groups

    if compressed:
        left = split_groups(left_part)
        right = split_groups(right_part) + ipv4_groups
        missing = 8 - (len(left) + len(right))
        if missing < 1:
            raise AddressError(f"'::' must replace at least one group: {text!r}")
        groups = left + ["0"] * missing + right
    else:
        groups = split_groups(text) + ipv4_groups

    if len(groups) != 8:
        raise AddressError(f"expected 8 groups, got {len(groups)}: {text!r}")

    value = 0
    for group in groups:
        if not group or len(group) > 4 or any(c not in _HEX_DIGITS for c in group):
            raise AddressError(f"invalid group {group!r} in address {text!r}")
        value = (value << 16) | int(group, 16)
    return value


def format_address(value: int) -> str:
    """Format a 128-bit integer as a canonical RFC 5952 IPv6 string.

    The longest run of two or more zero groups is compressed with ``::``
    (leftmost run on a tie), groups are lower-case with no leading zeros.

    Raises:
        AddressError: if ``value`` is out of the 128-bit range.
    """
    check_address(value)
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -1, -16)]

    # Find the longest run of zero groups (length >= 2), leftmost on ties.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_len == 0:
                run_start = index
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_len = 0
    if best_len < 2:
        best_start, best_len = -1, 0

    parts: List[str] = []
    index = 0
    while index < 8:
        if index == best_start:
            parts.append("")
            if index == 0:
                parts.insert(0, "")
            index += best_len
            if index == 8:
                parts.append("")
        else:
            parts.append(f"{groups[index]:x}")
            index += 1
    return ":".join(parts)


def format_full(value: int) -> str:
    """Format an address as 32 hex characters in 8 fixed-width groups.

    This is the "fixed-width" form the paper's appendix trick uses
    (``sort | cut -c1-$((p/4)) | uniq -c``); it sorts lexicographically in
    the same order as numerically.
    """
    check_address(value)
    return ":".join(f"{(value >> shift) & 0xFFFF:04x}" for shift in range(112, -1, -16))


def format_hex32(value: int) -> str:
    """Format an address as a bare 32-character hex string (no colons)."""
    check_address(value)
    return f"{value:032x}"


def check_address(value: int) -> int:
    """Validate that ``value`` is an in-range 128-bit address integer.

    Returns the value unchanged so it can be used inline.

    Raises:
        AddressError: if out of range or not an integer.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise AddressError(f"expected int address, got {type(value).__name__}")
    if value < 0 or value > MAX_ADDRESS:
        raise AddressError(f"address out of 128-bit range: {value:#x}")
    return value


def high64(value: int) -> int:
    """Return the high (network identifier) 64 bits of an address."""
    return check_address(value) >> IID_BITS


def low64(value: int) -> int:
    """Return the low (interface identifier) 64 bits of an address."""
    return check_address(value) & IID_MASK


def from_halves(high: int, low: int) -> int:
    """Assemble an address from 64-bit network-identifier and IID halves."""
    if not 0 <= high <= IID_MASK:
        raise AddressError(f"high half out of range: {high:#x}")
    if not 0 <= low <= IID_MASK:
        raise AddressError(f"low half out of range: {low:#x}")
    return (high << IID_BITS) | low


def bit(value: int, position: int) -> int:
    """Return bit ``position`` of an address, numbered 0 (MSB) to 127 (LSB).

    This matches the paper's convention, where "the 65th bit" is the first
    bit of the interface identifier (position 64 here) and "the 71st bit"
    (position 70) is the EUI-64 ``u`` bit.
    """
    check_address(value)
    if not 0 <= position < ADDRESS_BITS:
        raise AddressError(f"bit position out of range: {position}")
    return (value >> (ADDRESS_BITS - 1 - position)) & 1


def nybble(value: int, index: int) -> int:
    """Return the 4-bit nybble at ``index``, numbered 0 (MSB) to 31 (LSB).

    Nybble ``i`` covers bits ``4*i`` through ``4*i + 3``; nybble 8 is the
    first hex character after the first colon-separated group boundary
    (bit 32), which is where the paper inspects operator subnetting.
    """
    check_address(value)
    if not 0 <= index < 32:
        raise AddressError(f"nybble index out of range: {index}")
    return (value >> (124 - 4 * index)) & 0xF


def segment16(value: int, index: int) -> int:
    """Return the 16-bit colon-delimited segment at ``index`` (0..7)."""
    check_address(value)
    if not 0 <= index < 8:
        raise AddressError(f"segment index out of range: {index}")
    return (value >> (112 - 16 * index)) & 0xFFFF


def truncate(value: int, prefix_len: int) -> int:
    """Zero all bits of ``value`` below the first ``prefix_len`` bits."""
    check_address(value)
    if not 0 <= prefix_len <= ADDRESS_BITS:
        raise AddressError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    mask = MAX_ADDRESS ^ ((1 << (ADDRESS_BITS - prefix_len)) - 1)
    return value & mask


def prefix_bits(value: int, prefix_len: int) -> int:
    """Return the first ``prefix_len`` bits of ``value``, right-aligned."""
    check_address(value)
    if not 0 <= prefix_len <= ADDRESS_BITS:
        raise AddressError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    return value >> (ADDRESS_BITS - prefix_len)


def common_prefix_len(a: int, b: int) -> int:
    """Return the length of the longest common prefix of two addresses."""
    check_address(a)
    check_address(b)
    diff = a ^ b
    if diff == 0:
        return ADDRESS_BITS
    return ADDRESS_BITS - diff.bit_length()


class IPv6Address:
    """An immutable IPv6 address.

    Wraps a 128-bit integer with parsing, formatting, ordering, hashing and
    the segment accessors the classifiers use.  Instances are interned-free
    and cheap; hot paths in the library work directly on integers and only
    construct :class:`IPv6Address` objects at API boundaries.
    """

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | IPv6Address") -> None:
        if isinstance(value, IPv6Address):
            self._value = value._value
        elif isinstance(value, str):
            self._value = parse(value)
        else:
            self._value = check_address(value)

    @property
    def value(self) -> int:
        """The address as a 128-bit integer."""
        return self._value

    @property
    def high(self) -> int:
        """The high (network identifier) 64 bits."""
        return self._value >> IID_BITS

    @property
    def low(self) -> int:
        """The low (interface identifier) 64 bits."""
        return self._value & IID_MASK

    @property
    def iid(self) -> int:
        """Alias for :attr:`low`: the canonical 64-bit interface identifier."""
        return self._value & IID_MASK

    def bit(self, position: int) -> int:
        """Bit at ``position`` (0 = most significant)."""
        return bit(self._value, position)

    def nybble(self, index: int) -> int:
        """4-bit nybble at ``index`` (0 = most significant)."""
        return nybble(self._value, index)

    def segment16(self, index: int) -> int:
        """16-bit colon-delimited segment at ``index`` (0..7)."""
        return segment16(self._value, index)

    def truncate(self, prefix_len: int) -> "IPv6Address":
        """Return the address with all bits past ``prefix_len`` zeroed."""
        return IPv6Address(truncate(self._value, prefix_len))

    def __str__(self) -> str:
        return format_address(self._value)

    def __repr__(self) -> str:
        return f"IPv6Address({format_address(self._value)!r})"

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv6Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "IPv6Address") -> bool:
        if isinstance(other, IPv6Address):
            return self._value < other._value
        if isinstance(other, int):
            return self._value < other
        return NotImplemented

    def __le__(self, other: "IPv6Address") -> bool:
        if isinstance(other, IPv6Address):
            return self._value <= other._value
        if isinstance(other, int):
            return self._value <= other
        return NotImplemented

    def __gt__(self, other: "IPv6Address") -> bool:
        result = self.__le__(other)
        return NotImplemented if result is NotImplemented else not result

    def __ge__(self, other: "IPv6Address") -> bool:
        result = self.__lt__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self._value)


def addresses_to_ints(addresses: Iterable["IPv6Address | int | str"]) -> List[int]:
    """Normalize a mixed iterable of addresses into a list of integers.

    Accepts :class:`IPv6Address` instances, raw integers, and presentation
    strings.  This is the canonical input adapter used by the analysis
    functions, so callers can pass whatever they have.
    """
    values: List[int] = []
    for address in addresses:
        if isinstance(address, IPv6Address):
            values.append(address.value)
        elif isinstance(address, str):
            values.append(parse(address))
        else:
            values.append(check_address(address))
    return values


def iter_formatted(values: Iterable[int]) -> Iterator[str]:
    """Yield canonical presentation strings for an iterable of int addresses."""
    for value in values:
        yield format_address(value)


def split_halves(values: Iterable[int]) -> Tuple[List[int], List[int]]:
    """Split int addresses into parallel (high64, low64) lists."""
    highs: List[int] = []
    lows: List[int] = []
    for value in values:
        check_address(value)
        highs.append(value >> IID_BITS)
        lows.append(value & IID_MASK)
    return highs, lows
