"""ip6.arpa reverse-DNS name construction and parsing.

The paper's §6.2.3 experiment issues PTR queries for millions of
addresses; this module provides the RFC 3596 name machinery: an IPv6
address maps to 32 reversed nybble labels under ``ip6.arpa.``, and a
prefix of nybble-aligned length maps to a zone cut.

Example:

    >>> from repro.net.addr import parse
    >>> to_arpa(parse("2001:db8::1"))
    '1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6.arpa'
"""

from __future__ import annotations

from typing import Tuple

from repro.net import addr
from repro.net.prefix import Prefix, PrefixError

ARPA_SUFFIX = "ip6.arpa"


def to_arpa(value: int) -> str:
    """The full PTR name for one address: 32 reversed nybbles."""
    addr.check_address(value)
    nybbles = [f"{(value >> shift) & 0xF:x}" for shift in range(0, 128, 4)]
    return ".".join(nybbles) + "." + ARPA_SUFFIX


def from_arpa(name: str) -> int:
    """Parse a full ip6.arpa PTR name back into an address.

    Raises:
        ValueError: if the name is not a complete 32-nybble ip6.arpa name.
    """
    normalized = name.strip().rstrip(".").lower()
    if not normalized.endswith("." + ARPA_SUFFIX):
        raise ValueError(f"not an ip6.arpa name: {name!r}")
    labels = normalized[: -(len(ARPA_SUFFIX) + 1)].split(".")
    if len(labels) != 32:
        raise ValueError(
            f"expected 32 nybble labels, got {len(labels)}: {name!r}"
        )
    value = 0
    for position, label in enumerate(labels):
        if len(label) != 1 or label not in "0123456789abcdef":
            raise ValueError(f"bad nybble label {label!r} in {name!r}")
        value |= int(label, 16) << (4 * position)
    return value


def zone_for_prefix(prefix: Prefix) -> str:
    """The ip6.arpa zone cut delegating a nybble-aligned prefix.

    Raises:
        PrefixError: if the prefix length is not a multiple of 4.
    """
    if prefix.length % 4 != 0:
        raise PrefixError(
            f"reverse zones cut at nybble boundaries, not /{prefix.length}"
        )
    count = prefix.length // 4
    nybbles = [
        f"{(prefix.network >> (124 - 4 * index)) & 0xF:x}" for index in range(count)
    ]
    nybbles.reverse()
    if not nybbles:
        return ARPA_SUFFIX
    return ".".join(nybbles) + "." + ARPA_SUFFIX


def prefix_for_zone(zone: str) -> Prefix:
    """Inverse of :func:`zone_for_prefix`."""
    normalized = zone.strip().rstrip(".").lower()
    if normalized == ARPA_SUFFIX:
        return Prefix(0, 0)
    if not normalized.endswith("." + ARPA_SUFFIX):
        raise ValueError(f"not an ip6.arpa zone: {zone!r}")
    labels = normalized[: -(len(ARPA_SUFFIX) + 1)].split(".")
    if len(labels) > 32:
        raise ValueError(f"too many labels in zone: {zone!r}")
    network = 0
    for position, label in enumerate(reversed(labels)):
        if len(label) != 1 or label not in "0123456789abcdef":
            raise ValueError(f"bad nybble label {label!r} in {zone!r}")
        network |= int(label, 16) << (124 - 4 * position)
    return Prefix(network, 4 * len(labels))


def split_name(name: str) -> Tuple[int, str]:
    """Split a PTR owner name into (address, trailing suffix).

    Convenience for walking zone files: accepts the full 32-label form
    only, returning the parsed address and the constant suffix.
    """
    return from_arpa(name), ARPA_SUFFIX
