"""Vectorized batch parsing and formatting of IPv6 addresses.

:mod:`repro.net.addr` parses one presentation string at a time in pure
Python, which is exact but interpreter-bound: ingesting a day of a few
hundred thousand logged client addresses spends nearly all of its time
inside ``addr.parse``.  This module provides the columnar counterpart:
whole columns of strings are converted to ``(hi, lo)`` uint64 numpy
arrays at once, and back.

The fast path handles every colon-separated hexadecimal form — canonical
RFC 5952 output, fixed-width ``format_full`` output, and any mix of
upper/lower case, leading zeros and a single ``::`` compression — with a
handful of vectorized passes over an ``(n, width)`` byte matrix:

1. encode the column into a fixed-width byte matrix (one C-level copy);
2. classify every byte (hex digit value / colon / padding) with a LUT;
3. validate structure per row (colon counts, run lengths, ``::`` rules)
   into a *fast-path eligibility mask*;
4. for eligible rows, compute each hex digit's group index (accounting
   for the groups elided by ``::``) and its significance within the
   group, scatter digits into an ``(n, 32)`` nibble matrix, and combine
   nibbles into the two 64-bit halves.

Rows that are not eligible — embedded dotted-quad IPv4, surrounding
whitespace, zone identifiers, non-ASCII text, or anything malformed —
fall back to the scalar :func:`repro.net.addr.parse`, which either
handles the exotic notation or raises the same :class:`AddressError` a
scalar caller would see.  The batch functions are therefore bit-for-bit
consistent with their scalar counterparts on both accepted and rejected
inputs.

:func:`format_batch` is the vectorized inverse: it emits canonical
RFC 5952 strings (longest zero run compressed, leftmost on ties,
lower-case, no leading zeros) by computing per-row character offsets for
each group and scattering hex digits and colons into an output byte
matrix.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.net import addr
from repro.net.addr import AddressError

#: Hex-digit value per byte; 0xFF marks "not a hex digit".
_HEXVAL = np.full(256, 0xFF, dtype=np.uint8)
for _ch in "0123456789":
    _HEXVAL[ord(_ch)] = int(_ch)
for _i, _ch in enumerate("abcdef"):
    _HEXVAL[ord(_ch)] = 10 + _i
    _HEXVAL[ord(_ch.upper())] = 10 + _i

_COLON = ord(":")
_HEXCHARS = np.frombuffer(b"0123456789abcdef", dtype=np.uint8)

#: Longest string the matrix fast path will consider.  Valid presentation
#: forms are at most 45 characters; anything longer is exotic by
#: definition and goes through the scalar parser.
_MAX_WIDTH = 48

_LOW64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _as_text_list(strings: "Iterable[str]") -> List[str]:
    if isinstance(strings, list):
        return strings
    if isinstance(strings, np.ndarray):
        return [str(s) for s in strings.tolist()]
    return list(strings)


def _scalar_fill(
    texts: Sequence[str], indices: np.ndarray, hi: np.ndarray, lo: np.ndarray
) -> None:
    """Parse the rows in ``indices`` with the scalar parser."""
    parse = addr.parse
    for i in indices:
        value = parse(texts[i])
        hi[i] = value >> 64
        lo[i] = value & addr.IID_MASK


def _byte_matrix(texts: Sequence[str]) -> "np.ndarray | None":
    """Encode a list of ASCII strings into an (n, width) uint8 matrix.

    Returns None when the column cannot be represented (non-str entries,
    non-ASCII characters, or absurdly long strings), in which case every
    row takes the scalar path.
    """
    if not all(type(t) is str for t in texts):
        return None
    try:
        raw = np.array(texts, dtype=np.bytes_)
    except (UnicodeEncodeError, ValueError):
        return None
    width = raw.dtype.itemsize
    if width == 0 or width > _MAX_WIDTH:
        return None
    return raw.view(np.uint8).reshape(len(texts), width)


def _analyze(texts: Sequence[str]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized core over a list of strings: returns (hi, lo, fast_mask).

    Rows where ``fast_mask`` is False are untouched (left zero) and must
    be handled by the scalar parser.
    """
    n = len(texts)
    if n == 0:
        empty = np.zeros(0, dtype=np.uint64)
        return empty, empty.copy(), np.zeros(0, dtype=bool)
    matrix = _byte_matrix(texts)
    if matrix is None:
        zeros = np.zeros(n, dtype=np.uint64)
        return zeros, zeros.copy(), np.zeros(n, dtype=bool)
    return parse_matrix(matrix)


def parse_matrix(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized parse of an ``(n, width)`` uint8 matrix of address bytes.

    Each row holds one NUL-padded ASCII presentation string.  Returns
    ``(hi, lo, fast_mask)``; rows where ``fast_mask`` is False were not
    parsed (left zero) and must be handled by the scalar parser — this
    is the building block :func:`parse_batch` and the day-log reader
    share, letting file ingestion feed raw bytes straight in.
    """
    n, width = matrix.shape
    hi = np.zeros(n, dtype=np.uint64)
    lo = np.zeros(n, dtype=np.uint64)
    if n == 0 or width == 0 or width > _MAX_WIDTH:
        return hi, lo, np.zeros(n, dtype=bool)

    hexval = _HEXVAL[matrix]
    is_colon = matrix == _COLON
    is_hex = hexval != 0xFF
    is_pad = matrix == 0

    # Padding (NUL bytes) must form a contiguous suffix; an embedded NUL
    # means the Python string itself contained one.
    if width > 1:
        pad_suffix = np.all(is_pad[:, :-1] <= is_pad[:, 1:], axis=1)
    else:
        pad_suffix = np.ones(n, dtype=bool)
    strlen = width - is_pad.sum(axis=1)
    chars_ok = np.all(is_hex | is_colon | is_pad, axis=1)

    k = is_colon.sum(axis=1)
    if width > 1:
        adjacent = is_colon[:, :-1] & is_colon[:, 1:]
        n_adjacent = adjacent.sum(axis=1)
    else:
        adjacent = np.zeros((n, 0), dtype=bool)
        n_adjacent = np.zeros(n, dtype=np.intp)

    # A hex run of five or more digits can never be a 16-bit group.
    if width >= 5:
        run5 = is_hex[:, : width - 4].copy()
        for offset in range(1, 5):
            run5 &= is_hex[:, offset : width - 4 + offset]
        too_long = run5.any(axis=1)
    else:
        too_long = np.zeros(n, dtype=bool)

    rows = np.arange(n)
    nonempty = strlen > 0
    safe_len = np.maximum(strlen, 1)
    last_colon = matrix[rows, safe_len - 1] == _COLON
    prev_colon = matrix[rows, np.maximum(safe_len - 2, 0)] == _COLON
    trail_ok = ~last_colon | ((strlen >= 2) & prev_colon)
    if width > 1:
        lead_ok = ~is_colon[:, 0] | is_colon[:, 1]
    else:
        lead_ok = ~is_colon[:, 0]

    # Number of hex runs = number of groups actually present.
    run_start = is_hex.copy()
    if width > 1:
        run_start[:, 1:] &= ~is_hex[:, :-1]
    runs = run_start.sum(axis=1)

    compressed = n_adjacent == 1
    uncompressed = n_adjacent == 0
    fast = (
        chars_ok
        & pad_suffix
        & ~too_long
        & lead_ok
        & trail_ok
        & nonempty
        & (
            (uncompressed & (k == 7) & (runs == 8))
            | (compressed & (runs <= 7))
        )
    )
    if not fast.any():
        return hi, lo, fast

    # Exclusive running colon count: for each character, how many colons
    # lie strictly before it.  This is the "naive" group index.
    colon_before = np.cumsum(is_colon, axis=1, dtype=np.int16)
    colon_before -= is_colon

    # Characters after the '::' belong to right-aligned groups: shift
    # their group index up by the number of elided groups.  For a row
    # with k colons in total, that shift is 7 - k.  (Values on rows that
    # fail the fast mask may be nonsense; they are never scattered.)
    gidx = colon_before
    if width > 1:
        pair_pos = np.argmax(adjacent, axis=1)
        colons_before_pair = colon_before[rows, pair_pos]
        after_pair = colon_before >= (colons_before_pair + 2)[:, None]
        after_pair &= compressed[:, None]
        shift = (7 - k).astype(np.int16)
        gidx = gidx + np.where(after_pair, shift[:, None], np.int16(0))

    # Distance from each hex digit to the end of its run gives its
    # significance: the last digit of a group has distance 1.  Computed
    # with the cumsum-minus-running-max trick on the reversed matrix so
    # every pass is along the contiguous axis.
    rev = is_hex[:, ::-1]
    csum = np.cumsum(rev, axis=1, dtype=np.int16)
    resets = np.where(rev, np.int16(0), csum)
    np.maximum.accumulate(resets, axis=1, out=resets)
    dist = (csum - resets)[:, ::-1]

    nib = gidx * np.int16(4) + np.int16(4) - dist
    select = is_hex & fast[:, None]
    out_of_range = select & ((nib < 0) | (nib > 31))
    if out_of_range.any():  # defensive: demote any surprises to scalar
        fast = fast & ~out_of_range.any(axis=1)
        select = is_hex & fast[:, None]

    nibbles = np.zeros((n, 32), dtype=np.uint8)
    row_of = np.broadcast_to(rows[:, None], select.shape)
    nibbles[row_of[select], nib[select]] = hexval[select]

    # Pack nibble pairs into bytes, then reinterpret each row's 16 bytes
    # as two big-endian uint64 halves.
    packed = (nibbles[:, 0::2] << 4) | nibbles[:, 1::2]
    halves = np.ascontiguousarray(packed).view(">u8")
    hi = halves[:, 0].astype(np.uint64)
    lo = halves[:, 1].astype(np.uint64)
    hi[~fast] = 0
    lo[~fast] = 0
    return hi, lo, fast


def fastpath_mask(strings: "Iterable[str]") -> np.ndarray:
    """Which rows of a column the vectorized fast path would handle.

    Exposed for tests and benchmarks: a canonical-form corpus should be
    (nearly) all-True here, otherwise parsing silently degrades to the
    scalar fallback.
    """
    _hi, _lo, fast = _analyze(_as_text_list(strings))
    return fast


def parse_batch(strings: "Iterable[str]") -> Tuple[np.ndarray, np.ndarray]:
    """Parse a column of IPv6 presentation strings into uint64 halves.

    Returns ``(hi, lo)`` arrays of dtype uint64, bit-for-bit consistent
    with calling :func:`repro.net.addr.parse` per element.

    Raises:
        AddressError: if any element is invalid (same errors as the
            scalar parser; the first offending element wins).
    """
    texts = _as_text_list(strings)
    hi, lo, fast = _analyze(texts)
    if not fast.all():
        _scalar_fill(texts, np.nonzero(~fast)[0], hi, lo)
    return hi, lo


def parse_batch_ints(strings: "Iterable[str]") -> List[int]:
    """Parse a column of presentation strings into 128-bit Python ints."""
    hi, lo = parse_batch(strings)
    if hi.shape[0] == 0:
        return []
    return (hi.astype(object) * (1 << 64) + lo.astype(object)).tolist()


def _halves(
    hi: "np.ndarray | Sequence[int]", lo: "np.ndarray | Sequence[int]"
) -> Tuple[np.ndarray, np.ndarray]:
    hi = np.ascontiguousarray(hi, dtype=np.uint64)
    lo = np.ascontiguousarray(lo, dtype=np.uint64)
    if hi.shape != lo.shape or hi.ndim != 1:
        raise AddressError("hi and lo must be parallel 1-d arrays")
    return hi, lo


def format_batch(
    hi: "np.ndarray | Sequence[int]", lo: "np.ndarray | Sequence[int]"
) -> np.ndarray:
    """Format uint64 halves as canonical RFC 5952 strings, vectorized.

    The output is a numpy unicode array whose elements equal
    ``addr.format_address((hi << 64) | lo)`` exactly: longest zero run
    (length >= 2) compressed with ``::``, leftmost on ties, lower-case,
    no leading zeros.
    """
    hi, lo = _halves(hi, lo)
    n = hi.shape[0]
    if n == 0:
        return np.empty(0, dtype="U39")

    groups = np.empty((n, 8), dtype=np.uint16)
    for i in range(4):
        groups[:, i] = (hi >> np.uint64(48 - 16 * i)) & np.uint64(0xFFFF)
        groups[:, 4 + i] = (lo >> np.uint64(48 - 16 * i)) & np.uint64(0xFFFF)

    zero = groups == 0
    # Zero-run length starting at each position, computed right-to-left.
    runlen = np.zeros((n, 9), dtype=np.int64)
    for j in range(7, -1, -1):
        runlen[:, j] = np.where(zero[:, j], runlen[:, j + 1] + 1, 0)
    runlen = runlen[:, :8]
    best_len = runlen.max(axis=1)
    best_start = runlen.argmax(axis=1)  # argmax returns the leftmost max
    compress = best_len >= 2
    best_len = np.where(compress, best_len, 0)

    digits = (
        1
        + (groups >= 0x10).astype(np.int64)
        + (groups >= 0x100)
        + (groups >= 0x1000)
    )
    position = np.arange(8)
    in_run = (
        compress[:, None]
        & (position >= best_start[:, None])
        & (position < (best_start + best_len)[:, None])
    )
    printed = ~in_run
    widths = np.where(printed, digits, 0)

    width_before = np.cumsum(widths, axis=1) - widths
    printed_before = np.cumsum(printed, axis=1) - printed
    # Colons preceding each group's digits: one per earlier printed
    # group, plus (for groups right of the '::') the pair itself minus
    # the separator a left block would have contributed.
    right_of_run = compress[:, None] & (
        position >= (best_start + best_len)[:, None]
    )
    extra = np.where(right_of_run, np.where(best_start[:, None] > 0, 1, 2), 0)
    offsets = width_before + printed_before + extra

    out = np.zeros((n, 39), dtype=np.uint8)
    rows = np.arange(n)

    # The '::' of compressed rows sits immediately after the left block.
    left_len = width_before[rows, best_start] + np.maximum(best_start - 1, 0)
    c_rows = np.nonzero(compress)[0]
    out[c_rows, left_len[c_rows]] = _COLON
    out[c_rows, left_len[c_rows] + 1] = _COLON

    # One separator colon immediately before every printed group except
    # the row's first (re-writing the second ':' of '::' is harmless).
    sep = printed & (printed_before > 0)
    sep_rows, sep_cols = np.nonzero(sep)
    out[sep_rows, offsets[sep_rows, sep_cols] - 1] = _COLON

    # Scatter hex digits: nibble k4 of a group is printed when it falls
    # within the group's significant digits.
    for k4 in range(4):
        value = (groups >> (4 * (3 - k4))).astype(np.int64) & 0xF
        digit_pos = k4 - (4 - digits)
        write = printed & (digit_pos >= 0)
        w_rows, w_cols = np.nonzero(write)
        out[w_rows, offsets[w_rows, w_cols] + digit_pos[w_rows, w_cols]] = (
            _HEXCHARS[value[w_rows, w_cols]]
        )

    return out.view("S39").ravel().astype("U39")


def format_batch_list(
    hi: "np.ndarray | Sequence[int]", lo: "np.ndarray | Sequence[int]"
) -> List[str]:
    """Like :func:`format_batch` but returning a plain list of str."""
    return format_batch(hi, lo).tolist()


def format_full_batch(
    hi: "np.ndarray | Sequence[int]", lo: "np.ndarray | Sequence[int]"
) -> np.ndarray:
    """Vectorized :func:`repro.net.addr.format_full` (fixed-width form)."""
    hi, lo = _halves(hi, lo)
    n = hi.shape[0]
    out = np.full((n, 39), _COLON, dtype=np.uint8)
    for group in range(8):
        half, shift = (hi, 48 - 16 * group) if group < 4 else (lo, 112 - 16 * group)
        value = (half >> np.uint64(shift)).astype(np.int64) & 0xFFFF
        base = 5 * group
        for k4 in range(4):
            out[:, base + k4] = _HEXCHARS[(value >> (4 * (3 - k4))) & 0xF]
    return out.view("S39").ravel().astype("U39")


def ints_to_halves(values: "Iterable[int]") -> Tuple[np.ndarray, np.ndarray]:
    """Convert 128-bit Python ints to (hi, lo) uint64 arrays in bulk.

    The per-element work is a single C-level ``int.to_bytes`` call; the
    split into halves is one vectorized reinterpretation of the joined
    buffer.  Raises :class:`AddressError` on out-of-range or non-int
    elements, like :func:`repro.net.addr.check_address`.
    """
    values = values if isinstance(values, list) else list(values)
    n = len(values)
    if n == 0:
        empty = np.empty(0, dtype=np.uint64)
        return empty, empty.copy()
    try:
        packed = b"".join(v.to_bytes(16, "big") for v in values)
    except (AttributeError, TypeError, OverflowError):
        for v in values:  # re-run scalar checks for a precise error
            addr.check_address(v)
        raise AddressError("unrepresentable address values")
    flat = np.frombuffer(packed, dtype=">u8").reshape(n, 2)
    return flat[:, 0].astype(np.uint64), flat[:, 1].astype(np.uint64)


def halves_to_ints(
    hi: "np.ndarray | Sequence[int]", lo: "np.ndarray | Sequence[int]"
) -> List[int]:
    """Combine (hi, lo) uint64 arrays into 128-bit Python ints in bulk."""
    hi, lo = _halves(hi, lo)
    if hi.shape[0] == 0:
        return []
    return (hi.astype(object) * (1 << 64) + lo.astype(object)).tolist()
