"""Interface-identifier generation schemes beyond EUI-64 and RFC 4941.

The paper's §3 footnote lists the other standards-defined ways hosts
derive interface identifiers; this module implements them so the
simulator can model their populations and the classifiers can be
evaluated against them:

* **RFC 7217 stable privacy addresses** ("semantically opaque" IIDs):
  ``F(prefix, net_iface, network_id, dad_counter, secret_key)`` — the
  IID is *stable for a given prefix* but changes when the host moves to
  another network.  Temporally these behave like EUI-64 (stable in
  place) while spatially they look random — exactly the case the
  paper's temporal classifier handles and content-only classification
  cannot.
* **Cryptographically Generated Addresses** (CGA, RFC 3972): the IID is
  a hash of a public key and modifier; the 3-bit ``sec`` parameter is
  encoded in the IID's leading bits and the u/g bits are zeroed.

Both use SHA-256 here (RFC 7217 recommends it; RFC 3972 specifies SHA-1
but the structural properties under study — stability and apparent
randomness — are hash-agnostic, and this library is not generating
addresses for live SEND deployments).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.net import addr

#: u and g bits of the IID (bits 6 and 7 from the IID's MSB).
_UG_MASK = (1 << 57) | (1 << 56)


def rfc7217_iid(
    prefix: int,
    interface_name: str,
    secret_key: bytes,
    dad_counter: int = 0,
    network_id: str = "",
) -> int:
    """Generate an RFC 7217 stable, semantically opaque IID.

    ``prefix`` is the 64-bit network identifier (the high half of the
    address).  The same inputs always produce the same IID; changing the
    prefix (moving networks) produces an unrelated one.
    """
    if not 0 <= prefix < (1 << 64):
        raise ValueError(f"prefix out of 64-bit range: {prefix:#x}")
    if dad_counter < 0:
        raise ValueError(f"dad_counter must be non-negative: {dad_counter}")
    hasher = hashlib.sha256()
    hasher.update(prefix.to_bytes(8, "big"))
    hasher.update(interface_name.encode())
    hasher.update(network_id.encode())
    hasher.update(dad_counter.to_bytes(4, "big"))
    hasher.update(secret_key)
    return int.from_bytes(hasher.digest()[:8], "big")


def rfc7217_address(
    network: int, interface_name: str, secret_key: bytes, dad_counter: int = 0
) -> int:
    """Full address from a 64-bit network identifier and RFC 7217 IID."""
    iid = rfc7217_iid(network, interface_name, secret_key, dad_counter)
    return addr.from_halves(network, iid)


def cga_iid(public_key: bytes, modifier: int = 0, sec: int = 0) -> int:
    """Generate a CGA-style interface identifier (RFC 3972 structure).

    The IID is derived from a hash of (modifier, public key); the 3-bit
    ``sec`` parameter lands in the IID's three leading bits and the u/g
    bits are forced to zero, as the RFC requires.
    """
    if not 0 <= sec <= 7:
        raise ValueError(f"sec must be 0..7: {sec}")
    if modifier < 0:
        raise ValueError(f"modifier must be non-negative: {modifier}")
    hasher = hashlib.sha256()
    hasher.update(modifier.to_bytes(16, "big"))
    hasher.update(public_key)
    digest = int.from_bytes(hasher.digest()[:8], "big")
    iid = digest & ~(0b111 << 61)  # clear the sec field position
    iid |= sec << 61
    iid &= ~_UG_MASK  # u and g must be zero
    return iid


def cga_sec(iid: int) -> int:
    """Extract the 3-bit sec parameter from a CGA-structured IID."""
    if not 0 <= iid < (1 << 64):
        raise ValueError(f"IID out of 64-bit range: {iid:#x}")
    return (iid >> 61) & 0b111


def looks_like_cga(iid: int) -> bool:
    """Weak structural test: u/g bits zero (necessary, not sufficient).

    CGAs are indistinguishable from random IIDs by content beyond the
    zeroed u/g bits — one more address family that only temporal
    analysis separates, per the paper's argument.
    """
    if not 0 <= iid < (1 << 64):
        raise ValueError(f"IID out of 64-bit range: {iid:#x}")
    return (iid & _UG_MASK) == 0
