"""MAC addresses and EUI-64 interface identifiers.

SLAAC hosts that do not use privacy extensions historically derived their
64-bit interface identifier from the interface's 48-bit Ethernet MAC address
using the Modified EUI-64 procedure (RFC 4291 Appendix A):

* the MAC is split into its 24-bit OUI and 24-bit NIC-specific halves,
* the 16-bit constant ``0xFFFE`` is inserted between them, and
* the universal/local ("u") bit — bit 6 of the first MAC octet, counted
  from the MSB — is inverted.

Because the ``ff:fe`` marker is easy to spot, EUI-64 addresses are the one
address family the paper can classify purely by content, and their embedded
MAC gives a persistent host identity that §6.1.1 and §6.2.1 exploit.  This
module implements the conversion in both directions plus the u/g bit
helpers.
"""

from __future__ import annotations

from typing import Optional

#: Inserted between OUI and NIC halves by the EUI-64 expansion.
EUI64_MARKER = 0xFFFE

#: Position of the universal/local bit within the IID, from the MSB (bit 0).
#: In the full 128-bit address this is "the 71st bit" per the paper.
U_BIT_IN_IID = 6

_MAX_MAC = (1 << 48) - 1
_MAX_IID = (1 << 64) - 1


class MacError(ValueError):
    """Raised for malformed MAC addresses or non-EUI-64 identifiers."""


def check_mac(value: int) -> int:
    """Validate a 48-bit MAC address integer, returning it unchanged."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise MacError(f"expected int MAC, got {type(value).__name__}")
    if not 0 <= value <= _MAX_MAC:
        raise MacError(f"MAC out of 48-bit range: {value:#x}")
    return value


def parse_mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` (or ``-`` separated) into a 48-bit int."""
    if not isinstance(text, str):
        raise MacError(f"expected str, got {type(text).__name__}")
    normalized = text.strip().lower().replace("-", ":")
    parts = normalized.split(":")
    if len(parts) != 6:
        raise MacError(f"expected 6 octets in MAC: {text!r}")
    value = 0
    for part in parts:
        if len(part) != 2:
            raise MacError(f"bad MAC octet {part!r} in {text!r}")
        try:
            octet = int(part, 16)
        except ValueError as exc:
            raise MacError(f"bad MAC octet {part!r} in {text!r}") from exc
        value = (value << 8) | octet
    return value


def format_mac(value: int) -> str:
    """Format a 48-bit integer as ``aa:bb:cc:dd:ee:ff``."""
    check_mac(value)
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in range(40, -1, -8))


def oui(mac: int) -> int:
    """Return the 24-bit Organizationally Unique Identifier of a MAC."""
    return check_mac(mac) >> 24


def is_locally_administered(mac: int) -> bool:
    """True if the MAC's u/l bit marks it locally administered."""
    return bool((check_mac(mac) >> 41) & 1)


def is_group(mac: int) -> bool:
    """True if the MAC's i/g bit marks it a group (multicast) address."""
    return bool((check_mac(mac) >> 40) & 1)


def mac_to_eui64(mac: int) -> int:
    """Expand a 48-bit MAC into a 64-bit Modified EUI-64 IID.

    Inserts ``ff:fe`` between the OUI and NIC halves and flips the u bit,
    exactly as SLAAC does (RFC 4291 Appendix A).
    """
    check_mac(mac)
    high24 = mac >> 24
    low24 = mac & 0xFFFFFF
    iid = (high24 << 40) | (EUI64_MARKER << 24) | low24
    return iid ^ (1 << (63 - U_BIT_IN_IID))


def eui64_to_mac(iid: int) -> int:
    """Recover the 48-bit MAC embedded in a Modified EUI-64 IID.

    Raises:
        MacError: if the IID does not carry the ``ff:fe`` marker.
    """
    if not is_eui64_iid(iid):
        raise MacError(f"IID is not Modified EUI-64: {iid:#018x}")
    unflipped = iid ^ (1 << (63 - U_BIT_IN_IID))
    high24 = unflipped >> 40
    low24 = unflipped & 0xFFFFFF
    return (high24 << 24) | low24


def is_eui64_iid(iid: int) -> bool:
    """True if a 64-bit IID carries the ``ff:fe`` EUI-64 marker.

    The marker occupies IID bits 24..39 counted from the LSB (i.e. address
    bits 88..103).  This is a *content* test: some addresses match by
    coincidence, which the paper acknowledges as rare false positives.
    """
    if not isinstance(iid, int) or isinstance(iid, bool):
        raise MacError(f"expected int IID, got {type(iid).__name__}")
    if not 0 <= iid <= _MAX_IID:
        raise MacError(f"IID out of 64-bit range: {iid:#x}")
    return (iid >> 24) & 0xFFFF == EUI64_MARKER


def iid_u_bit(iid: int) -> int:
    """Return the universal/local bit of a 64-bit IID.

    1 means "universally administered" (typical for genuine EUI-64 derived
    from a factory MAC); RFC 4941 privacy IIDs set it to 0, which produces
    the characteristic MRA ratio drop at address bit 70 in Figure 2a.
    """
    if not 0 <= iid <= _MAX_IID:
        raise MacError(f"IID out of 64-bit range: {iid:#x}")
    return (iid >> (63 - U_BIT_IN_IID)) & 1


def eui64_mac_or_none(iid: int) -> Optional[int]:
    """Return the embedded MAC if ``iid`` looks like EUI-64, else ``None``."""
    if is_eui64_iid(iid):
        return eui64_to_mac(iid)
    return None
