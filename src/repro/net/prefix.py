"""IPv6 prefix (CIDR block) machinery.

A :class:`Prefix` is an immutable (network, length) pair over the 128-bit
address space.  Prefixes are the unit of the paper's spatial analysis: BGP
prefixes, /64 network identifiers, and the *n@/p-dense* blocks are all
instances of this type.

The module also provides free functions operating directly on
``(int, int)`` pairs for hot paths that avoid object construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.net import addr
from repro.net.addr import ADDRESS_BITS, AddressError, MAX_ADDRESS


class PrefixError(ValueError):
    """Raised when a prefix is malformed (bad length, host bits set, syntax)."""


def check_length(length: int) -> int:
    """Validate a prefix length (0..128), returning it unchanged."""
    if not isinstance(length, int) or isinstance(length, bool):
        raise PrefixError(f"expected int prefix length, got {type(length).__name__}")
    if not 0 <= length <= ADDRESS_BITS:
        raise PrefixError(f"prefix length out of range: {length}")
    return length


def mask_for(length: int) -> int:
    """Return the 128-bit network mask for a prefix length."""
    check_length(length)
    if length == 0:
        return 0
    return MAX_ADDRESS ^ ((1 << (ADDRESS_BITS - length)) - 1)


def span(length: int) -> int:
    """Return the number of addresses covered by a prefix of this length."""
    check_length(length)
    return 1 << (ADDRESS_BITS - length)


class Prefix:
    """An immutable IPv6 prefix (CIDR block).

    The network address must have all host bits zero; use
    :meth:`Prefix.containing` to derive the prefix covering an arbitrary
    address.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, network: "int | str | addr.IPv6Address", length: int = None) -> None:
        if isinstance(network, str) and length is None:
            network, length = _parse_cidr(network)
        elif isinstance(network, str):
            network = addr.parse(network)
        elif isinstance(network, addr.IPv6Address):
            network = network.value
        if length is None:
            raise PrefixError("prefix length required")
        check_length(length)
        addr.check_address(network)
        if network & ~mask_for(length) & MAX_ADDRESS:
            raise PrefixError(
                f"host bits set in network {addr.format_address(network)}/{length}"
            )
        self._network = network
        self._length = length

    @classmethod
    def containing(cls, address: "int | str | addr.IPv6Address", length: int) -> "Prefix":
        """Return the length-``length`` prefix containing ``address``."""
        if isinstance(address, str):
            address = addr.parse(address)
        elif isinstance(address, addr.IPv6Address):
            address = address.value
        return cls(addr.truncate(address, length), length)

    @property
    def network(self) -> int:
        """The network address as a 128-bit integer (host bits zero)."""
        return self._network

    @property
    def length(self) -> int:
        """The prefix length in bits (0..128)."""
        return self._length

    @property
    def first(self) -> int:
        """The numerically lowest address in the block."""
        return self._network

    @property
    def last(self) -> int:
        """The numerically highest address in the block."""
        return self._network | (~mask_for(self._length) & MAX_ADDRESS)

    @property
    def num_addresses(self) -> int:
        """Number of addresses spanned by this prefix (``2**(128-length)``)."""
        return span(self._length)

    @property
    def key(self) -> Tuple[int, int]:
        """A hashable ``(network, length)`` tuple."""
        return (self._network, self._length)

    def contains(self, item: "int | str | addr.IPv6Address | Prefix") -> bool:
        """True if an address or a more-specific prefix lies inside this block."""
        if isinstance(item, Prefix):
            if item._length < self._length:
                return False
            return addr.truncate(item._network, self._length) == self._network
        if isinstance(item, str):
            item = addr.parse(item)
        elif isinstance(item, addr.IPv6Address):
            item = item.value
        addr.check_address(item)
        return addr.truncate(item, self._length) == self._network

    def __contains__(self, item: "int | str | addr.IPv6Address | Prefix") -> bool:
        return self.contains(item)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two blocks share any address."""
        shorter, longer = (self, other) if self._length <= other._length else (other, self)
        return addr.truncate(longer._network, shorter._length) == shorter._network

    def supernet(self, new_length: int = None) -> "Prefix":
        """Return the enclosing prefix of ``new_length`` (default: one bit shorter)."""
        if new_length is None:
            new_length = self._length - 1
        check_length(new_length)
        if new_length > self._length:
            raise PrefixError(
                f"supernet length {new_length} longer than prefix length {self._length}"
            )
        return Prefix(addr.truncate(self._network, new_length), new_length)

    def subnets(self, new_length: int = None) -> Iterator["Prefix"]:
        """Yield the subnets of ``new_length`` (default: one bit longer).

        The number of subnets is ``2**(new_length - length)``; callers are
        responsible for not asking for astronomically many.
        """
        if new_length is None:
            new_length = self._length + 1
        check_length(new_length)
        if new_length < self._length:
            raise PrefixError(
                f"subnet length {new_length} shorter than prefix length {self._length}"
            )
        step = span(new_length)
        count = 1 << (new_length - self._length)
        for index in range(count):
            yield Prefix(self._network + index * step, new_length)

    def addresses(self) -> Iterator[int]:
        """Yield every address in the block as an integer (use with care)."""
        return iter(range(self._network, self.last + 1))

    def child_bit(self, address: int) -> int:
        """Return the first bit of ``address`` past this prefix (0 or 1).

        Useful for radix-tree descent.  Requires ``length < 128``.
        """
        if self._length >= ADDRESS_BITS:
            raise PrefixError("no child bit beyond a /128")
        return (address >> (ADDRESS_BITS - 1 - self._length)) & 1

    def __str__(self) -> str:
        return f"{addr.format_address(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self._network == other._network and self._length == other._length
        return NotImplemented

    def __lt__(self, other: "Prefix") -> bool:
        if isinstance(other, Prefix):
            return (self._network, self._length) < (other._network, other._length)
        return NotImplemented

    def __le__(self, other: "Prefix") -> bool:
        if isinstance(other, Prefix):
            return (self._network, self._length) <= (other._network, other._length)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network, self._length))


def _parse_cidr(text: str) -> Tuple[int, int]:
    """Parse ``"2001:db8::/32"`` into a (network, length) pair."""
    network_text, slash, length_text = text.partition("/")
    if not slash:
        raise PrefixError(f"missing '/' in prefix: {text!r}")
    try:
        network = addr.parse(network_text)
    except AddressError as exc:
        raise PrefixError(f"bad network in prefix {text!r}: {exc}") from exc
    if not length_text.isdigit():
        raise PrefixError(f"bad length in prefix: {text!r}")
    return network, int(length_text)


def parse_prefix(text: str) -> Prefix:
    """Parse a prefix in CIDR notation, e.g. ``"2001:db8::/32"``."""
    network, length = _parse_cidr(text)
    return Prefix(network, length)


def common_prefix(a: Prefix, b: Prefix) -> Prefix:
    """Return the longest prefix containing both ``a`` and ``b``."""
    shared = addr.common_prefix_len(a.network, b.network)
    length = min(shared, a.length, b.length)
    return Prefix(addr.truncate(a.network, length), length)


def covering_prefixes(
    addresses: Iterable[int], length: int
) -> List[Tuple[int, int]]:
    """Return the sorted, distinct length-``length`` networks covering addresses.

    This is the "active aggregate" set from Kohler et al.: the smallest set
    of /p prefixes that contains all of the given addresses.  Networks are
    returned as raw integers paired with the length, ready to wrap in
    :class:`Prefix` if object form is needed.
    """
    check_length(length)
    networks = sorted({addr.truncate(value, length) for value in addresses})
    return [(network, length) for network in networks]


def aggregate(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """Collapse a set of prefixes to the minimal non-overlapping cover.

    Removes prefixes contained in others and merges sibling pairs into their
    parent, repeating to a fixed point — the classic CIDR aggregation used
    when reporting dense-prefix sets.
    """
    work = sorted(set(prefixes))
    # Drop prefixes covered by an earlier (shorter-or-equal, sorted-first) one.
    kept: List[Prefix] = []
    for prefix in work:
        if kept and kept[-1].contains(prefix):
            continue
        kept.append(prefix)
    # Merge sibling pairs to a fixed point.
    merged = True
    while merged:
        merged = False
        result: List[Prefix] = []
        index = 0
        while index < len(kept):
            current = kept[index]
            if index + 1 < len(kept):
                sibling = kept[index + 1]
                if (
                    current.length == sibling.length
                    and current.length > 0
                    and addr.truncate(current.network, current.length - 1)
                    == addr.truncate(sibling.network, sibling.length - 1)
                    and current.network != sibling.network
                ):
                    result.append(current.supernet())
                    index += 2
                    merged = True
                    continue
            result.append(current)
            index += 1
        kept = result
    return kept
