"""Special-use IPv6 prefixes and transition-mechanism address tests.

The paper culls addresses belonging to the early transition mechanisms —
Teredo (RFC 4380), 6to4 (RFC 3056/3068), and ISATAP (RFC 5214) — before
running its classifiers, because these mechanisms embed IPv4 addresses and
would otherwise skew the temporal and spatial results.  This module holds
the special-use prefix registry and fast integer predicates for those
tests, plus extraction of embedded IPv4 addresses.

Bit conventions: addresses are 128-bit integers; "bits 16..48" in the 6to4
description means the 32 bits immediately after the ``2002::/16`` prefix,
matching the paper's Figure 5d.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net import addr
from repro.net.prefix import Prefix, parse_prefix

#: 6to4: ``2002::/16`` with the client's IPv4 address in bits 16..47.
SIXTO4_PREFIX = parse_prefix("2002::/16")

#: Teredo: ``2001::/32`` with server IPv4, flags, obfuscated port/client IPv4.
TEREDO_PREFIX = parse_prefix("2001::/32")

#: Documentation prefix (RFC 3849), used throughout tests and examples.
DOCUMENTATION_PREFIX = parse_prefix("2001:db8::/32")

#: Unique Local Addresses (RFC 4193).
ULA_PREFIX = parse_prefix("fc00::/7")

#: Link-local unicast (RFC 4291).
LINK_LOCAL_PREFIX = parse_prefix("fe80::/10")

#: Multicast (RFC 4291).
MULTICAST_PREFIX = parse_prefix("ff00::/8")

#: The global unicast space from which all production addresses come.
GLOBAL_UNICAST_PREFIX = parse_prefix("2000::/3")

#: IPv4-mapped (``::ffff:0:0/96``).
IPV4_MAPPED_PREFIX = parse_prefix("::ffff:0:0/96")

#: NAT64 well-known prefix (RFC 6052), used by 464XLAT's stateless leg.
NAT64_WELL_KNOWN_PREFIX = parse_prefix("64:ff9b::/96")

#: Named registry of the special-use prefixes above, for reporting.
SPECIAL_PREFIXES: Dict[str, Prefix] = {
    "6to4": SIXTO4_PREFIX,
    "teredo": TEREDO_PREFIX,
    "documentation": DOCUMENTATION_PREFIX,
    "ula": ULA_PREFIX,
    "link-local": LINK_LOCAL_PREFIX,
    "multicast": MULTICAST_PREFIX,
    "ipv4-mapped": IPV4_MAPPED_PREFIX,
    "nat64": NAT64_WELL_KNOWN_PREFIX,
}

#: ISATAP IID patterns: ``::0000:5efe:a.b.c.d`` or ``::0200:5efe:a.b.c.d``
#: (the u bit may be set for universally administered IPv4 addresses).
_ISATAP_MARKERS = (0x00005EFE, 0x02005EFE)


def is_6to4(value: int) -> bool:
    """True if the address lies in the 6to4 ``2002::/16`` prefix."""
    addr.check_address(value)
    return (value >> 112) == 0x2002


def is_teredo(value: int) -> bool:
    """True if the address lies in the Teredo ``2001::/32`` prefix."""
    addr.check_address(value)
    return (value >> 96) == 0x20010000


def is_isatap(value: int) -> bool:
    """True if the IID matches the ISATAP ``...:5efe:a.b.c.d`` pattern."""
    addr.check_address(value)
    marker = (value >> 32) & 0xFFFFFFFF
    return marker in _ISATAP_MARKERS


def is_global_unicast(value: int) -> bool:
    """True if the address lies in the ``2000::/3`` global unicast space."""
    addr.check_address(value)
    return (value >> 125) == 0b001


def is_link_local(value: int) -> bool:
    """True if the address is link-local (``fe80::/10``)."""
    addr.check_address(value)
    return (value >> 118) == 0x3FA


def is_multicast(value: int) -> bool:
    """True if the address is multicast (``ff00::/8``)."""
    addr.check_address(value)
    return (value >> 120) == 0xFF


def is_ula(value: int) -> bool:
    """True if the address is a Unique Local Address (``fc00::/7``)."""
    addr.check_address(value)
    return (value >> 121) == 0b1111110


def embedded_ipv4_6to4(value: int) -> Optional[int]:
    """Extract the IPv4 address embedded in a 6to4 address, if any.

    6to4 places the client's public IPv4 address in bits 16..47.
    """
    if not is_6to4(value):
        return None
    return (value >> 80) & 0xFFFFFFFF


def embedded_ipv4_teredo(value: int) -> Optional[int]:
    """Extract the obfuscated client IPv4 from a Teredo address, if any.

    Teredo stores the client's public IPv4 in the final 32 bits, XORed
    with all-ones (RFC 4380 §4).
    """
    if not is_teredo(value):
        return None
    return (value & 0xFFFFFFFF) ^ 0xFFFFFFFF


def embedded_ipv4_isatap(value: int) -> Optional[int]:
    """Extract the IPv4 address from an ISATAP IID, if present."""
    if not is_isatap(value):
        return None
    return value & 0xFFFFFFFF


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as a dotted quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise addr.AddressError(f"IPv4 value out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def special_class(value: int) -> Optional[str]:
    """Return the special-use registry name covering an address, or None.

    Checks the most specific entries first (Teredo is inside 2000::/3, and
    the documentation prefix is inside global unicast), so classification
    is deterministic.
    """
    addr.check_address(value)
    if is_teredo(value):
        return "teredo"
    if is_6to4(value):
        return "6to4"
    if (value >> 96) == 0x20010DB8:
        return "documentation"
    if (value >> 32) == 0x64FF9B << 64:
        return "nat64"
    if (value >> 32) == 0xFFFF:
        return "ipv4-mapped"
    if is_ula(value):
        return "ula"
    if is_link_local(value):
        return "link-local"
    if is_multicast(value):
        return "multicast"
    return None
