"""Resilience layer for long-running pipeline paths.

Every multi-day, multi-process path in the pipeline routes through this
package so that partial failure degrades gracefully instead of aborting
or hanging:

* :mod:`repro.runtime.quarantine` — bounded, reported diversion of
  malformed inputs (``errors="quarantine"`` ingestion mode);
* :mod:`repro.runtime.pool` — supervised fork-based worker pools with
  timeouts, retry/backoff, crash detection, and serial fallback;
* :mod:`repro.runtime.checkpoint` — atomic, hash-validated sweep
  checkpoints enabling kill-and-resume with bit-identical output;
* :mod:`repro.runtime.exitcodes` — the classified CLI exit-code map.

The deterministic fault-injection harness that exercises all of the
above lives in :mod:`repro.sim.faults` (it reuses the simulator's
seeded substreams) and is driven by the ``repro-faultcheck`` CLI.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    KILL_AFTER_CHECKPOINTS_ENV,
    SweepCheckpoint,
    sweep_signature,
)
from repro.runtime.exitcodes import (
    EXIT_FINDINGS,
    EXIT_INPUT,
    EXIT_INTERNAL,
    EXIT_OK,
    EXIT_QUARANTINE,
    EXIT_USAGE,
    InputError,
    classify_exception,
)
from repro.runtime.pool import (
    PoolConfig,
    PoolTaskError,
    RunReport,
    TaskAttempt,
    backoff_delay,
    resolve_jobs,
    run_supervised,
    supervised_map,
)
from repro.runtime.quarantine import (
    ERRORS_QUARANTINE,
    ERRORS_STRICT,
    QuarantinePolicy,
    QuarantineRecord,
    QuarantineReport,
    QuarantineThresholdError,
    check_errors_mode,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "KILL_AFTER_CHECKPOINTS_ENV",
    "SweepCheckpoint",
    "sweep_signature",
    "EXIT_FINDINGS",
    "EXIT_INPUT",
    "EXIT_INTERNAL",
    "EXIT_OK",
    "EXIT_QUARANTINE",
    "EXIT_USAGE",
    "InputError",
    "classify_exception",
    "PoolConfig",
    "PoolTaskError",
    "RunReport",
    "TaskAttempt",
    "backoff_delay",
    "resolve_jobs",
    "run_supervised",
    "supervised_map",
    "ERRORS_QUARANTINE",
    "ERRORS_STRICT",
    "QuarantinePolicy",
    "QuarantineRecord",
    "QuarantineReport",
    "QuarantineThresholdError",
    "check_errors_mode",
]
