"""Atomic, content-hash-validated checkpointing for the sweep engine.

A multi-month temporal sweep is chunked into bounded day spans
(:data:`repro.core.sweep.DEFAULT_CHUNK_DAYS`); each chunk's result — the
per-day gap arrays — is a pure function of the store and the window
parameters.  That makes chunks the natural checkpoint unit: persist
each completed chunk as it lands, and a killed sweep resumes by loading
every completed chunk and recomputing only the rest, bit-identical to
an uninterrupted run.

Layout — one pair of files per completed ``(store key, chunk index)``::

    <dir>/chunk-<key>-<index>.npz        # one int64 gaps array per ref day
    <dir>/chunk-<key>-<index>.meta.json  # {"version", "signature", "sha256",
                                         #  "store_key", "chunk_index", "days"}

Safety properties, mirroring the day-log cache's design:

* **Atomicity** — payload and meta are written via temp file +
  ``os.replace``; a SIGKILL mid-write leaves either the previous state
  or a temp file that is never read.  Meta lands after the payload, so
  a reader that sees the meta can trust the payload it points at.
* **Content validation** — the meta records the SHA-256 of the payload
  bytes; a truncated or corrupted payload fails the hash check, and
  the chunk is silently recomputed.
* **Run signature** — every entry embeds a digest of the sweep's
  parameters and a fingerprint of its input stores (per-day sizes and
  boundary addresses).  Changing the logs, the window, or the chunking
  invalidates old entries wholesale; stale resume cannot occur.

The fault-injection harness can arm ``REPRO_FAULT_KILL_AFTER_CHECKPOINTS``
to SIGKILL the process after the N-th checkpoint write — the
deterministic "power cut mid-sweep" the resume test recovers from.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import signal
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Bump when the on-disk layout changes; mismatched entries are ignored.
CHECKPOINT_VERSION = 1

#: Environment variable: SIGKILL the process after this many checkpoint
#: writes (deterministic fault injection; see repro.sim.faults).
KILL_AFTER_CHECKPOINTS_ENV = "REPRO_FAULT_KILL_AFTER_CHECKPOINTS"


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def sweep_signature(
    stores: "Dict[int, object]",
    ref_days: Sequence[int],
    window_before: int,
    window_after: int,
    chunk_days: int,
) -> str:
    """Digest of a sweep's parameters plus a fingerprint of its inputs.

    The store fingerprint hashes, per store key and day: the day number,
    the array size, and the first/last (hi, lo) address — cheap to
    compute (no full-content hashing of millions of addresses) yet
    sensitive to any re-ingestion that changed a day's membership at
    the boundaries or its cardinality, which is what re-parsed or
    quarantined inputs actually perturb.
    """
    hasher = hashlib.sha256()
    header = {
        "version": CHECKPOINT_VERSION,
        "ref_days": [int(day) for day in ref_days],
        "window_before": int(window_before),
        "window_after": int(window_after),
        "chunk_days": int(chunk_days),
    }
    hasher.update(json.dumps(header, sort_keys=True).encode("utf-8"))
    for key in sorted(stores):
        store = stores[key]
        hasher.update(f"|store={int(key)}".encode())
        for day in store.days():  # type: ignore[attr-defined]
            array = store.array(day)  # type: ignore[attr-defined]
            n = int(array.shape[0])
            hasher.update(f"|{int(day)}:{n}".encode())
            if n:
                hasher.update(
                    f":{int(array['hi'][0])}:{int(array['lo'][0])}"
                    f":{int(array['hi'][-1])}:{int(array['lo'][-1])}".encode()
                )
    return hasher.hexdigest()


class SweepCheckpoint:
    """Checkpoint store for one sweep run, bound to its run signature."""

    def __init__(self, directory: str, signature: str) -> None:
        self.directory = os.fspath(directory)
        self.signature = signature
        self._writes = 0
        os.makedirs(self.directory, exist_ok=True)

    def chunk_paths(self, store_key: int, chunk_index: int) -> Tuple[str, str]:
        """The (payload, meta) paths for one chunk entry."""
        stem = os.path.join(
            self.directory, f"chunk-{int(store_key)}-{int(chunk_index)}"
        )
        return f"{stem}.npz", f"{stem}.meta.json"

    def save_chunk(
        self,
        store_key: int,
        chunk_index: int,
        pairs: Sequence[Tuple[int, np.ndarray]],
    ) -> None:
        """Persist one completed chunk's (day, gaps) results atomically."""
        npz_path, meta_path = self.chunk_paths(store_key, chunk_index)
        buffer = io.BytesIO()
        arrays = {
            f"g{position}": np.ascontiguousarray(gaps, dtype=np.int64)
            for position, (_day, gaps) in enumerate(pairs)
        }
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()
        _atomic_write_bytes(npz_path, payload)
        meta = {
            "version": CHECKPOINT_VERSION,
            "signature": self.signature,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "store_key": int(store_key),
            "chunk_index": int(chunk_index),
            "days": [int(day) for day, _gaps in pairs],
        }
        _atomic_write_bytes(
            meta_path, json.dumps(meta, sort_keys=True).encode("utf-8")
        )
        self._writes += 1
        self._maybe_fault_kill()

    def load_chunk(
        self, store_key: int, chunk_index: int, expected_days: Sequence[int]
    ) -> Optional[List[Tuple[int, np.ndarray]]]:
        """Load one chunk if present and valid; ``None`` means recompute.

        Validation is strict: version, signature, day list, payload
        hash, and array dtypes must all match, else the entry is
        treated as absent (never trusted, never fatal).
        """
        npz_path, meta_path = self.chunk_paths(store_key, chunk_index)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if not isinstance(meta, dict):
                return None
            if meta.get("version") != CHECKPOINT_VERSION:
                return None
            if meta.get("signature") != self.signature:
                return None
            days = meta.get("days")
            if not isinstance(days, list) or days != [
                int(day) for day in expected_days
            ]:
                return None
            recorded = meta.get("sha256")
            if not isinstance(recorded, str):
                return None
            with open(npz_path, "rb") as handle:
                payload = handle.read()
            if hashlib.sha256(payload).hexdigest() != recorded:
                return None
            pairs: List[Tuple[int, np.ndarray]] = []
            with np.load(io.BytesIO(payload), allow_pickle=False) as data:
                for position, day in enumerate(days):
                    gaps = data[f"g{position}"]
                    if gaps.dtype != np.int64 or gaps.ndim != 1:
                        return None
                    pairs.append((int(day), gaps))
            return pairs
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            return None

    def completed_chunks(self) -> int:
        """Number of valid-looking chunk entries on disk (for reporting)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(
            1 for name in names if name.startswith("chunk-") and name.endswith(".npz")
        )

    def _maybe_fault_kill(self) -> None:
        """Deterministic fault hook: die by SIGKILL after N writes."""
        value = os.environ.get(KILL_AFTER_CHECKPOINTS_ENV)
        if not value:
            return
        try:
            threshold = int(value)
        except ValueError:
            return
        if threshold > 0 and self._writes >= threshold:
            os.kill(os.getpid(), signal.SIGKILL)
