"""Classified process exit codes shared by every repro CLI.

A year-long measurement pipeline is driven by shell scripts and CI jobs
that must distinguish "the input was bad" (fix the data and rerun) from
"the pipeline itself faulted" (page someone) from "data loss exceeded
the quarantine budget" (investigate before trusting any output).  One
flat exit code 1 cannot carry that; these constants give every repro
tool the same map:

======  ==========================================================
code    meaning
======  ==========================================================
0       success
1       lint findings (``repro-lint`` only: the gate tripped)
2       usage error (bad flags/arguments; argparse's convention)
3       input error (unreadable/malformed logs, bad day data)
4       quarantine threshold abort (too much data diverted)
5       internal fault (worker pool failure, unexpected exception)
======  ==========================================================

:func:`classify_exception` maps an exception to its code so the CLI
wrapper in :mod:`repro.cli` stays a one-liner per tool.
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INPUT = 3
EXIT_QUARANTINE = 4
EXIT_INTERNAL = 5


class InputError(ValueError):
    """A problem with the user's inputs (files, day data, parameters).

    Raised by CLI helpers instead of ``SystemExit`` so the classified
    exit-code wrapper can map it to :data:`EXIT_INPUT` uniformly.
    """


def classify_exception(exc: BaseException) -> int:
    """Map an exception to its classified exit code.

    Import-light by design: the quarantine and pool exception types are
    resolved lazily so this module can be imported from anywhere without
    dragging the whole runtime layer in.
    """
    from repro.runtime.pool import PoolTaskError
    from repro.runtime.quarantine import QuarantineThresholdError

    if isinstance(exc, QuarantineThresholdError):
        return EXIT_QUARANTINE
    if isinstance(exc, PoolTaskError):
        return EXIT_INTERNAL
    if isinstance(exc, (InputError, ValueError, OSError)):
        return EXIT_INPUT
    return EXIT_INTERNAL
