"""Supervised fork-based worker pools for the pipeline's fan-out paths.

The bare ``multiprocessing.Pool``/``ProcessPoolExecutor`` fan-outs the
engines used before this module had three failure modes a year-long run
cannot afford: a worker killed by the OOM killer poisons or hangs the
whole map, a wedged worker stalls it forever, and a transient fault
(NFS hiccup, cache race) aborts instead of retrying.  ``run_supervised``
replaces them with one supervisor that provides:

* **per-task isolation** — every task attempt runs in its own forked
  child, so killing a misbehaving attempt cannot disturb its siblings;
* **crashed-worker detection** — a child that dies without reporting
  (nonzero exit, lost pipe) is detected and the task retried;
* **per-task timeouts** — a child exceeding ``timeout`` seconds is
  killed and the task retried;
* **bounded retry with exponential backoff + jitter** — deterministic
  jitter derived from :mod:`repro.sim.rng` substreams, so two
  supervisors retrying the same task never thunder in lockstep and a
  rerun with the same seed schedules identically;
* **serial re-execution fallback** — a poison task that exhausts its
  retries is re-run inline in the parent, where a genuine exception
  surfaces with its real traceback instead of a pickled shadow;
* **a structured** :class:`RunReport` of every attempt, retry,
  timeout, crash, and fallback, so "it worked" and "it worked after
  recovering from three dead workers" are distinguishable.

Workers inherit parent state by fork (copy-on-write), exactly like the
engines' previous pools: callers set their module-level worker globals
before calling ``run_supervised`` and clear them after.  Where fork is
unavailable the supervisor degrades to serial in-process execution —
slower, never wrong.

Results are returned in task order regardless of completion order; the
optional ``on_result`` callback fires in *completion* order and is the
checkpoint layer's hook.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

#: Outcomes a task attempt can end in.
OUTCOME_OK = "ok"
OUTCOME_CRASH = "crash"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_ERROR = "error"
OUTCOME_SERIAL_OK = "serial-ok"
OUTCOME_SERIAL_FAIL = "serial-fail"

_WORKER_OUTCOMES = (OUTCOME_CRASH, OUTCOME_TIMEOUT, OUTCOME_ERROR)


@dataclass(frozen=True)
class PoolConfig:
    """Supervision parameters for one ``run_supervised`` call.

    ``retries`` bounds *additional* worker attempts after the first;
    once exhausted, the task falls back to serial in-parent execution
    (unless ``fallback`` is False, in which case a
    :class:`PoolTaskError` is raised).  ``timeout`` is per attempt, in
    seconds; ``None`` disables it.  Backoff before retry ``k`` is
    ``min(max_delay, base_delay * 2**k)`` scaled by deterministic
    jitter in [0.5, 1.5) derived from ``(seed, label, task, k)``.
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int = 0
    label: str = "pool"
    fallback: bool = True


@dataclass(frozen=True)
class TaskAttempt:
    """One attempt at one task: which, how it ended, and how long it took."""

    index: int
    attempt: int
    outcome: str
    detail: str = ""
    elapsed: float = 0.0


@dataclass
class RunReport:
    """Structured account of a supervised run's attempts and recoveries."""

    label: str
    tasks: int
    attempts: List[TaskAttempt] = field(default_factory=list)

    def _count(self, *outcomes: str) -> int:
        return sum(1 for a in self.attempts if a.outcome in outcomes)

    @property
    def crashes(self) -> int:
        """Worker attempts that died without reporting a result."""
        return self._count(OUTCOME_CRASH)

    @property
    def timeouts(self) -> int:
        """Worker attempts killed for exceeding the per-task timeout."""
        return self._count(OUTCOME_TIMEOUT)

    @property
    def errors(self) -> int:
        """Worker attempts that raised and reported an exception."""
        return self._count(OUTCOME_ERROR)

    @property
    def retries(self) -> int:
        """Worker attempts beyond each task's first."""
        worker_outcomes = (OUTCOME_OK,) + _WORKER_OUTCOMES
        return sum(
            1 for a in self.attempts if a.attempt > 0 and a.outcome in worker_outcomes
        )

    @property
    def fallbacks(self) -> int:
        """Tasks that were re-executed serially in the parent."""
        return self._count(OUTCOME_SERIAL_OK, OUTCOME_SERIAL_FAIL)

    @property
    def clean(self) -> bool:
        """True when every task succeeded on its first worker attempt."""
        return all(a.outcome == OUTCOME_OK and a.attempt == 0 for a in self.attempts)

    def summary(self) -> str:
        """One-line human-readable account of the run."""
        return (
            f"{self.label}: {self.tasks} task(s), "
            f"{len(self.attempts)} attempt(s) — "
            f"{self.crashes} crash(es), {self.timeouts} timeout(s), "
            f"{self.errors} error(s), {self.fallbacks} serial fallback(s)"
        )


class PoolTaskError(RuntimeError):
    """A task failed every worker attempt and serial fallback was disabled."""

    def __init__(self, label: str, index: int, detail: str) -> None:
        super().__init__(
            f"{label}: task {index} failed all worker attempts: {detail}"
        )
        self.index = index
        self.detail = detail


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None``/1 -> serial; 0 -> all CPUs; N -> N workers."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0: {jobs}")
    return jobs


def backoff_delay(config: PoolConfig, index: int, attempt: int) -> float:
    """Deterministic backoff-with-jitter before retry ``attempt``."""
    from repro.sim.rng import stable_uniform

    delay = min(config.max_delay, config.base_delay * (2.0 ** max(attempt - 1, 0)))
    jitter = 0.5 + stable_uniform(config.seed, config.label, "backoff", index, attempt)
    return delay * jitter


def _child_main(
    func: Callable[[Any], Any],
    task: Any,
    index: int,
    attempt: int,
    label: str,
    conn: Any,
) -> None:
    """Forked child body: run one task attempt, report through the pipe.

    Exits via ``os._exit`` so the parent's inherited atexit handlers and
    buffered streams are never run twice.  Fault-injection hooks (see
    :mod:`repro.sim.faults`) are applied first, so a deterministic
    "kill this worker" plan lands before any real work.
    """
    code = 0
    try:
        if os.environ.get("REPRO_FAULTS"):
            from repro.sim.faults import apply_worker_faults

            apply_worker_faults(label, index, attempt)
        result = func(task)
        conn.send((OUTCOME_OK, result))
    except BaseException:  # noqa: BLE001 - the pipe is the error channel
        code = 1
        try:
            conn.send((OUTCOME_ERROR, traceback.format_exc()))
        except (OSError, ValueError):
            code = 2
    try:
        conn.close()
    finally:
        os._exit(code)


@dataclass
class _Running:
    process: Any
    index: int
    attempt: int
    deadline: Optional[float]
    started: float


def run_supervised(
    func: Callable[[Any], Any],
    tasks: Sequence[Any],
    config: PoolConfig,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> Tuple[List[Any], RunReport]:
    """Run ``func`` over ``tasks`` under supervision; see module docstring.

    Returns ``(results, report)`` with ``results[i] = func(tasks[i])``
    in task order.  Serial execution (``jobs <= 1``, a single task, or
    no fork support) runs everything inline with no supervision
    overhead — exceptions propagate unchanged, exactly like a plain
    loop.
    """
    task_list = list(tasks)
    report = RunReport(label=config.label, tasks=len(task_list))
    results: List[Any] = [None] * len(task_list)
    if not task_list:
        return results, report
    use_fork = (
        config.jobs > 1
        and len(task_list) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if not use_fork:
        for index, task in enumerate(task_list):
            started = time.monotonic()
            results[index] = func(task)
            report.attempts.append(
                TaskAttempt(
                    index, 0, OUTCOME_OK, elapsed=time.monotonic() - started
                )
            )
            if on_result is not None:
                on_result(index, results[index])
        return results, report

    context = multiprocessing.get_context("fork")
    pending: Deque[Tuple[int, int]] = deque(
        (index, 0) for index in range(len(task_list))
    )
    #: (ready_time, index, attempt) — tasks sleeping out a backoff.
    waiting: List[Tuple[float, int, int]] = []
    running: Dict[Any, _Running] = {}
    done = 0

    def finish(index: int, value: Any) -> None:
        nonlocal done
        results[index] = value
        done += 1
        if on_result is not None:
            on_result(index, value)

    def kill(process: Any) -> None:
        try:
            process.kill()
        except (OSError, ValueError):
            pass
        process.join()

    def handle_failure(index: int, attempt: int, outcome: str, detail: str) -> None:
        """Schedule a retry, fall back to serial, or raise."""
        if attempt < config.retries:
            ready = time.monotonic() + backoff_delay(config, index, attempt + 1)
            waiting.append((ready, index, attempt + 1))
            return
        if not config.fallback:
            raise PoolTaskError(config.label, index, detail)
        started = time.monotonic()
        try:
            value = func(task_list[index])
        except BaseException:
            report.attempts.append(
                TaskAttempt(
                    index,
                    attempt + 1,
                    OUTCOME_SERIAL_FAIL,
                    detail=detail,
                    elapsed=time.monotonic() - started,
                )
            )
            raise
        report.attempts.append(
            TaskAttempt(
                index,
                attempt + 1,
                OUTCOME_SERIAL_OK,
                detail=detail,
                elapsed=time.monotonic() - started,
            )
        )
        finish(index, value)

    try:
        while done < len(task_list):
            now = time.monotonic()
            if waiting:
                still: List[Tuple[float, int, int]] = []
                for ready, index, attempt in waiting:
                    if ready <= now:
                        pending.append((index, attempt))
                    else:
                        still.append((ready, index, attempt))
                waiting[:] = still
            while pending and len(running) < config.jobs:
                index, attempt = pending.popleft()
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_child_main,
                    args=(func, task_list[index], index, attempt, config.label, sender),
                    daemon=True,
                )
                process.start()
                sender.close()
                started = time.monotonic()
                deadline = (
                    None if config.timeout is None else started + config.timeout
                )
                running[receiver] = _Running(process, index, attempt, deadline, started)
            if not running:
                if waiting:
                    time.sleep(max(0.0, min(r for r, _i, _a in waiting) - now))
                    continue
                break  # pragma: no cover - supervisor invariant

            poll: Optional[float] = None
            bounds = [
                entry.deadline for entry in running.values() if entry.deadline
            ] + [ready for ready, _i, _a in waiting]
            if bounds:
                poll = max(0.01, min(bounds) - time.monotonic())
            ready_connections = connection_wait(list(running), timeout=poll)

            for connection in ready_connections:
                entry = running.pop(connection)
                try:
                    kind, payload = connection.recv()
                except (EOFError, OSError):
                    kind, payload = OUTCOME_CRASH, ""
                connection.close()
                entry.process.join()
                elapsed = time.monotonic() - entry.started
                if kind == OUTCOME_OK:
                    report.attempts.append(
                        TaskAttempt(entry.index, entry.attempt, OUTCOME_OK, elapsed=elapsed)
                    )
                    finish(entry.index, payload)
                elif kind == OUTCOME_CRASH:
                    detail = (
                        f"worker pid {entry.process.pid} died "
                        f"(exitcode {entry.process.exitcode})"
                    )
                    report.attempts.append(
                        TaskAttempt(
                            entry.index,
                            entry.attempt,
                            OUTCOME_CRASH,
                            detail=detail,
                            elapsed=elapsed,
                        )
                    )
                    handle_failure(entry.index, entry.attempt, OUTCOME_CRASH, detail)
                else:
                    report.attempts.append(
                        TaskAttempt(
                            entry.index,
                            entry.attempt,
                            OUTCOME_ERROR,
                            detail=str(payload),
                            elapsed=elapsed,
                        )
                    )
                    handle_failure(
                        entry.index, entry.attempt, OUTCOME_ERROR, str(payload)
                    )

            now = time.monotonic()
            for connection, entry in list(running.items()):
                if entry.deadline is not None and now > entry.deadline:
                    running.pop(connection)
                    kill(entry.process)
                    connection.close()
                    detail = (
                        f"worker pid {entry.process.pid} exceeded "
                        f"{config.timeout}s timeout"
                    )
                    report.attempts.append(
                        TaskAttempt(
                            entry.index,
                            entry.attempt,
                            OUTCOME_TIMEOUT,
                            detail=detail,
                            elapsed=now - entry.started,
                        )
                    )
                    handle_failure(entry.index, entry.attempt, OUTCOME_TIMEOUT, detail)
    finally:
        for connection, entry in running.items():
            kill(entry.process)
            try:
                connection.close()
            except (OSError, ValueError):
                pass
    return results, report


def supervised_map(
    func: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
    config: Optional[PoolConfig] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    report_sink: Optional[List[RunReport]] = None,
) -> List[Any]:
    """Convenience wrapper: resolve ``jobs``, run, collect the report.

    ``report_sink`` (when given) receives the :class:`RunReport`, so
    callers that only sometimes care about supervision detail can get
    it without threading tuples everywhere.
    """
    base = config if config is not None else PoolConfig()
    workers = min(resolve_jobs(jobs if jobs is not None else base.jobs), max(len(tasks), 1))
    results, report = run_supervised(
        func, tasks, replace(base, jobs=workers), on_result=on_result
    )
    if report_sink is not None:
        report_sink.append(report)
    return results
