"""Quarantine accounting for dirty daily inputs.

The paper's pipeline ran for a year against operational CDN logs; real
daily inputs arrive malformed, truncated, or missing.  A single bad log
line must not abort a multi-month ``load_store`` — but silently dropping
data is worse, because every downstream table would quietly shrink.
The quarantine layer is the middle path: in ``errors="quarantine"``
mode, readers divert each fault into a structured
:class:`QuarantineReport` (file, line, rule, excerpt, count) and keep
going, while :class:`QuarantinePolicy` thresholds bound how much loss
is tolerated before the run aborts with a
:class:`QuarantineThresholdError` — so data loss is always *bounded and
reported*, never silent.

Three fault granularities are tracked separately:

* **line faults** — one log entry diverted (bad address, bad hit
  count, wrong token count).  Counted against the per-day line budget.
* **day faults** — a whole day lost (unreadable file, dropped file).
  Counted against the per-run day budget.  The day becomes an explicit
  gap: absent from the store, classified as such by the sweep engine.
* **info records** — recovered faults with no data loss (a corrupt
  cache entry rebuilt from its text source, a duplicate day replaced).
  Reported but never counted against a budget.

``errors="strict"`` (the default everywhere) bypasses this module
entirely: readers raise on the first fault, bit-for-bit identical to
the pre-quarantine behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: The two ingestion error modes.
ERRORS_STRICT = "strict"
ERRORS_QUARANTINE = "quarantine"

#: Cap on stored excerpt records per (source, rule); counts stay exact.
MAX_RECORDS_PER_RULE = 25

#: Excerpts are truncated to this many characters.
MAX_EXCERPT_CHARS = 80


def check_errors_mode(errors: str) -> str:
    """Validate an ``errors=`` argument; returns it normalized."""
    if errors not in (ERRORS_STRICT, ERRORS_QUARANTINE):
        raise ValueError(
            f"errors must be {ERRORS_STRICT!r} or {ERRORS_QUARANTINE!r}: "
            f"{errors!r}"
        )
    return errors


def clip_excerpt(text: str) -> str:
    """Truncate an excerpt for storage (full content never matters)."""
    if len(text) <= MAX_EXCERPT_CHARS:
        return text
    return text[: MAX_EXCERPT_CHARS - 1] + "…"


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined fault: where, what rule tripped, and an excerpt."""

    source: str
    rule: str
    line: Optional[int] = None
    excerpt: str = ""
    count: int = 1

    def format(self) -> str:
        """``source[:line]: rule excerpt`` — the canonical report line."""
        location = self.source if self.line is None else f"{self.source}:{self.line}"
        suffix = f" {self.excerpt!r}" if self.excerpt else ""
        times = f" (x{self.count})" if self.count > 1 else ""
        return f"{location}: {self.rule}{suffix}{times}"


@dataclass(frozen=True)
class QuarantinePolicy:
    """Loss budgets: how much quarantine a run tolerates before aborting.

    ``max_line_fraction`` bounds per-day loss: a day whose quarantined
    entry-line fraction exceeds it aborts the run — but only once more
    than ``line_grace`` lines are quarantined, so a three-line test file
    with one typo is not fatal while a million-line day losing 1% is.
    ``max_day_fraction``/``day_grace`` bound whole-day loss per run the
    same way.
    """

    max_line_fraction: float = 0.01
    line_grace: int = 8
    max_day_fraction: float = 0.5
    day_grace: int = 1


class QuarantineThresholdError(RuntimeError):
    """Quarantined loss exceeded the policy budget; the run must abort."""

    def __init__(self, message: str, report: "Optional[QuarantineReport]" = None):
        super().__init__(message)
        self.report = report


class QuarantineReport:
    """Structured account of every fault diverted during a run.

    Mergeable (worker processes each build a delta report that the
    parent folds in) and cheap: per-(source, rule) excerpt records are
    capped at :data:`MAX_RECORDS_PER_RULE` while counts stay exact.
    """

    def __init__(self) -> None:
        self.records: List[QuarantineRecord] = []
        #: (source, rule) -> exact fault count (records may be capped).
        self.counts: Dict[Tuple[str, str], int] = {}
        #: source -> total entry lines seen (the per-day denominator).
        self.line_totals: Dict[str, int] = {}
        #: source -> entry lines quarantined.
        self.line_faults: Dict[str, int] = {}
        #: sources lost entirely (unreadable/dropped days).
        self.day_faults: List[str] = []

    # -- recording ---------------------------------------------------------

    def _record(
        self, source: str, rule: str, line: Optional[int], excerpt: str, count: int
    ) -> None:
        key = (source, rule)
        seen = self.counts.get(key, 0)
        self.counts[key] = seen + count
        if seen < MAX_RECORDS_PER_RULE:
            self.records.append(
                QuarantineRecord(source, rule, line, clip_excerpt(excerpt), count)
            )

    def line_fault(
        self, source: str, line: int, rule: str, excerpt: str = ""
    ) -> None:
        """Record one quarantined log entry (counts against the day budget)."""
        self._record(source, rule, line, excerpt, 1)
        self.line_faults[source] = self.line_faults.get(source, 0) + 1

    def day_fault(self, source: str, rule: str, excerpt: str = "") -> None:
        """Record a whole day lost (counts against the run budget)."""
        self._record(source, rule, None, excerpt, 1)
        self.day_faults.append(source)

    def info(self, source: str, rule: str, excerpt: str = "") -> None:
        """Record a recovered fault (reported, never counted as loss)."""
        self._record(source, rule, None, excerpt, 1)

    def note_lines(self, source: str, total: int) -> None:
        """Record a source's entry-line count (the threshold denominator)."""
        self.line_totals[source] = self.line_totals.get(source, 0) + int(total)

    def merge(self, other: "QuarantineReport") -> None:
        """Fold a worker's delta report into this one."""
        for record in other.records:
            key = (record.source, record.rule)
            if self.counts.get(key, 0) < MAX_RECORDS_PER_RULE:
                self.records.append(record)
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count
        for source, total in other.line_totals.items():
            self.note_lines(source, total)
        for source, count in other.line_faults.items():
            self.line_faults[source] = self.line_faults.get(source, 0) + count
        self.day_faults.extend(other.day_faults)

    # -- interrogation -----------------------------------------------------

    @property
    def total_line_faults(self) -> int:
        """Total quarantined entry lines across all sources."""
        return sum(self.line_faults.values())

    @property
    def total_day_faults(self) -> int:
        """Total whole days lost across the run."""
        return len(self.day_faults)

    def is_empty(self) -> bool:
        """True when nothing at all was quarantined or noted as a fault."""
        return not self.counts

    def by_rule(self) -> Dict[str, int]:
        """Fault counts aggregated per rule."""
        totals: Dict[str, int] = {}
        for (_source, rule), count in self.counts.items():
            totals[rule] = totals.get(rule, 0) + count
        return totals

    def summary(self) -> str:
        """Human-readable multi-line summary of the quarantine."""
        if self.is_empty():
            return "quarantine: clean (no faults diverted)"
        lines = [
            "quarantine: "
            f"{self.total_line_faults} line fault(s), "
            f"{self.total_day_faults} day fault(s)"
        ]
        for rule, count in sorted(self.by_rule().items()):
            lines.append(f"  {rule}: {count}")
        for record in self.records[:20]:
            lines.append(f"  - {record.format()}")
        hidden = len(self.records) - 20
        if hidden > 0:
            lines.append(f"  ... and {hidden} more record(s)")
        return "\n".join(lines)

    # -- thresholds --------------------------------------------------------

    def enforce_day(self, source: str, policy: QuarantinePolicy) -> None:
        """Abort if a day's quarantined line fraction exceeds the budget."""
        faults = self.line_faults.get(source, 0)
        if faults <= policy.line_grace:
            return
        total = self.line_totals.get(source, 0)
        denominator = max(total, 1)
        fraction = faults / denominator
        if fraction > policy.max_line_fraction:
            raise QuarantineThresholdError(
                f"{source}: {faults} of {total} entry lines quarantined "
                f"({fraction:.1%} > {policy.max_line_fraction:.1%} budget)",
                report=self,
            )

    def enforce_run(self, policy: QuarantinePolicy, total_days: int) -> None:
        """Abort if too many whole days were lost across the run."""
        lost = self.total_day_faults
        if lost <= policy.day_grace:
            return
        fraction = lost / max(int(total_days), 1)
        if fraction > policy.max_day_fraction:
            raise QuarantineThresholdError(
                f"{lost} of {total_days} days lost "
                f"({fraction:.1%} > {policy.max_day_fraction:.1%} budget): "
                + ", ".join(self.day_faults[:5]),
                report=self,
            )
