"""The CDN log simulator: daily aggregated client-address logs.

This is the stand-in for the paper's proprietary data source (§4.1):
aggregated logs with hit counts per client IPv6 address over 24-hour
periods.  A :class:`SimulatedInternet` holds a set of networks — each an
ASN allocation, an addressing plan and a subscriber population — plus the
transition-mechanism clients, and can produce the set of active addresses
for any day, together with ground-truth labels.

Two fidelity details from §4.1 are modelled:

* **hit counts** per address follow a heavy-tailed distribution (most
  clients few hits, some many);
* **timestamp slew** — the aggregation pipeline finishes "roughly by the
  end of the subsequent day", so with probability ``slew_probability``
  an address's activity is attributed to the following day.  The paper's
  sliding-window stability heuristic absorbs this, which a test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.data.store import DailyObservations, ObservationStore
from repro.sim import rng
from repro.sim.plans import AddressingPlan, Device, GroundTruth
from repro.sim.registry import AddressRegistry, AsnAllocation
from repro.sim.subscribers import Population
from repro.sim.transition import TransitionConfig, generate_transition_day


@dataclass
class Network:
    """One simulated network: allocation + plan + population."""

    allocation: AsnAllocation
    plan: AddressingPlan
    population: Population

    @property
    def name(self) -> str:
        """The network's label (matches the plan and population keys)."""
        return self.plan.name


@dataclass
class Observation:
    """One simulated log entry: an address, its day, hits, and the truth."""

    address: int
    day: int
    hits: int
    truth: GroundTruth


class SimulatedInternet:
    """All simulated networks plus transition mechanisms, over time."""

    def __init__(
        self,
        seed: int = 0,
        registry: Optional[AddressRegistry] = None,
        transition: Optional[TransitionConfig] = None,
        slew_probability: float = 0.1,
    ) -> None:
        self.seed = seed
        self.registry = registry if registry is not None else AddressRegistry(seed)
        self.networks: List[Network] = []
        self.transition = transition or TransitionConfig()
        self.slew_probability = slew_probability

    def add_network(self, network: Network) -> None:
        """Register a network with the simulation."""
        self.networks.append(network)

    def _hits_for(self, address: int, day: int) -> int:
        """Heavy-tailed per-address daily hit count (Zipf-ish)."""
        uniform = rng.stable_uniform(self.seed, "hits", address, day)
        return max(1, int((1.0 / max(uniform, 1e-9)) ** 0.6))

    def observations_for_day(
        self, day: int, carryover_probability: float = 0.3
    ) -> Iterator[Observation]:
        """Yield every native observation generated on ``day`` (pre-slew).

        Privacy devices on stable network identifiers additionally emit
        *yesterday's* address with ``carryover_probability``: an RFC 4941
        temporary address stays valid for 24 hours, so its traffic often
        straddles two log days.  This produces the large one-day overlap
        step of Figure 4 without making such addresses 3d-stable.
        """
        for network in self.networks:
            population = network.population
            plan = network.plan
            for subscriber_id in population.active_subscribers(day):
                for device in population.devices(subscriber_id):
                    if not population.device_is_active(device, day):
                        continue
                    produced = plan.daily_addresses(device, day)
                    for address, truth in produced:
                        yield Observation(
                            address=address,
                            day=day,
                            hits=self._hits_for(address, day),
                            truth=truth,
                        )
                    address, truth = produced[0]
                    if (
                        truth.is_privacy
                        and plan.network_is_stable()
                        and rng.stable_uniform(self.seed, "carryover", address)
                        < carryover_probability
                    ):
                        previous, truth_prev = plan.address(device, day - 1)
                        yield Observation(
                            address=previous,
                            day=day,
                            hits=self._hits_for(previous, day),
                            truth=truth_prev,
                        )

    def day_addresses(self, day: int, include_transition: bool = True) -> List[int]:
        """The distinct active addresses attributed to ``day``.

        Applies timestamp slew: each observation generated on day ``d``
        is attributed to ``d`` or, with ``slew_probability``, to ``d+1``.
        (Attribution of day-``d-1`` stragglers is included by also
        drawing yesterday's observations.)
        """
        attributed: List[int] = []
        for generated_day in (day - 1, day):
            for observation in self.observations_for_day(generated_day):
                slewed = (
                    rng.stable_uniform(
                        self.seed, "slew", observation.address, generated_day
                    )
                    < self.slew_probability
                )
                target = generated_day + 1 if slewed else generated_day
                if target == day:
                    attributed.append(observation.address)
        if include_transition:
            attributed.extend(
                generate_transition_day(self.seed, self.transition, day)
            )
        return sorted(set(attributed))

    def build_store(
        self,
        days: Iterable[int],
        include_transition: bool = True,
    ) -> ObservationStore:
        """Generate daily logs for many days into an observation store."""
        store = ObservationStore()
        for day in days:
            store.add_day(day, self.day_addresses(day, include_transition))
        return store

    def ground_truth_for_day(self, day: int) -> Dict[int, GroundTruth]:
        """Address → truth mapping for the observations generated on a day.

        Slew does not alter the truth labels, so benchmarks evaluating
        classifiers can join on address; where one address is produced by
        multiple devices (shared fixed IIDs on reused /64s), the last
        writer wins, which is adequate for label purposes (such collisions
        share policy labels by construction).
        """
        return {
            observation.address: observation.truth
            for observation in self.observations_for_day(day)
        }

    def labelled_privacy_sample(
        self, day: int, limit: Optional[int] = None
    ) -> List[Tuple[int, bool]]:
        """(address, is_privacy) pairs for baseline evaluation."""
        pairs: List[Tuple[int, bool]] = []
        for observation in self.observations_for_day(day):
            pairs.append((observation.address, observation.truth.is_privacy))
            if limit is not None and len(pairs) >= limit:
                break
        return pairs

    def device_census(self, day: int) -> Dict[str, int]:
        """Ground truth: distinct active devices and subscribers per day.

        The §7.1 comparison baseline — what /64 counts are trying to
        estimate.
        """
        devices = 0
        subscribers = 0
        for network in self.networks:
            population = network.population
            for subscriber_id in population.active_subscribers(day):
                subscribers += 1
                for device in population.devices(subscriber_id):
                    if population.device_is_active(device, day):
                        devices += 1
        return {"devices": devices, "subscribers": subscribers}
