"""Reverse DNS (ip6.arpa PTR) simulation: the §6.2.3 yield experiment.

The paper queried PTR records for the 2.12 million possible addresses of
the 3@/120-dense class and harvested 47 thousand *more* domain names than
querying only the active WWW client addresses — because operators
populate reverse zones for whole assignment ranges, not just the hosts
that happen to be active clients of one CDN.

The simulator reproduces that mechanism: PTR records exist for

* every *allocated* router interface (active as a probe responder or
  not), with names carrying POP/location hints as §6.2.3 notes real
  router names do;
* whole DHCP lease ranges of statically numbered hosts (the
  ``dhcpv6-NNN`` names the paper found for the university department);

while privacy-addressed clients have no PTR records at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net import addr
from repro.sim.routers import RouterCorpus

#: Location tokens embedded in router PTR names (geolocation hints).
_POP_CITIES = ("nyc", "fra", "tyo", "lon", "sjc", "ams", "sin", "syd")


@dataclass
class ReverseDns:
    """A simulated ip6.arpa zone: address → PTR name."""

    records: Dict[int, str] = field(default_factory=dict)

    def add(self, address: int, name: str) -> None:
        """Install one PTR record."""
        addr.check_address(address)
        self.records[address] = name

    def query(self, address: int) -> Optional[str]:
        """Resolve one PTR query (None models NXDOMAIN)."""
        return self.records.get(addr.check_address(address))

    def scan(self, addresses: Iterable[int]) -> Dict[int, str]:
        """Query many addresses; return only the ones with records."""
        found: Dict[int, str] = {}
        for address in addresses:
            name = self.records.get(address)
            if name is not None:
                found[address] = name
        return found

    def __len__(self) -> int:
        return len(self.records)


def zone_from_routers(corpus: RouterCorpus) -> ReverseDns:
    """Build the reverse zone covering a router corpus.

    Every allocated interface gets a name of the form
    ``<role><n>.<city>.<isp>.example`` — including the ICMP-unresponsive
    interfaces that probing alone can never observe, which is exactly the
    population the dense-prefix PTR scan harvests.
    """
    zone = ReverseDns()
    for index, interface in enumerate(corpus.interfaces):
        isp, _, rest = interface.router_id.partition("-")
        # Use a process-independent hash: Python's hash() is salted.
        city = _POP_CITIES[sum(rest.encode()) % len(_POP_CITIES)]
        zone.add(
            interface.address,
            f"{interface.role}{index}.{city}.{isp}.example",
        )
    return zone


def add_dhcp_range(
    zone: ReverseDns,
    network_high: int,
    iid_base: int,
    count: int,
    name_prefix: str = "dhcpv6-",
    domain: str = "dept.example-university.example",
) -> None:
    """Name a contiguous DHCP lease range, active hosts or not.

    Models the paper's finding that 92 of the department's ~100 host
    names began with ``dhcpv6-``: the university populated the reverse
    zone for the whole pool.
    """
    for offset in range(count):
        address = addr.from_halves(network_high, iid_base + offset)
        zone.add(address, f"{name_prefix}{offset}.{domain}")


@dataclass
class PtrYield:
    """Result of the §6.2.3 comparison.

    Attributes:
        active_names: names found by querying only active addresses.
        scan_names: names found by scanning every address of the dense
            prefixes.
        extra_names: how many scan names were not already found via the
            active-address queries.
    """

    active_names: int
    scan_names: int
    extra_names: int


def ptr_yield(
    zone: ReverseDns,
    active_addresses: Sequence[int],
    dense_prefixes: Sequence[Tuple[int, int, int]],
) -> PtrYield:
    """Compare PTR yield: active-only queries versus dense-prefix scans.

    ``dense_prefixes`` is a (network, length, count) list as produced by
    the density classifier; the scan enumerates every possible address of
    each prefix (callers pick classes small enough to enumerate, as the
    paper did with 3@/120).
    """
    active_found = zone.scan(active_addresses)
    scan_found: Dict[int, str] = {}
    for network, length, _count in dense_prefixes:
        span = 1 << (128 - length)
        scan_found.update(zone.scan(range(network, network + span)))
    extra = len(set(scan_found) - set(active_found))
    return PtrYield(
        active_names=len(active_found),
        scan_names=len(scan_found),
        extra_names=extra,
    )
