"""Deterministic fault injection for the resilience layer.

The quarantine, supervision, and checkpoint machinery in
:mod:`repro.runtime` is only trustworthy if every failure mode it
claims to handle is actually exercised — repeatably.  This module is
the fault side of that contract: a seeded :class:`FaultPlan` that
damages a pipeline's inputs and environment in exactly the ways a
year-long operational run encounters, with every decision drawn from
:mod:`repro.sim.rng` substreams so the same seed injects the same
faults in every run and on every machine:

* **corrupt log bytes** — entry lines rewritten into the malformed
  shapes seen in the wild (garbled address, non-digit or negative hit
  count, truncated line);
* **truncated cache entries** — binary day-cache payloads cut short,
  exercising hash-validation and rebuild;
* **dropped days** — whole day files made unreadable, exercising
  explicit-gap classification;
* **killed / delayed workers** — pool children SIGKILLed or stalled on
  their first attempt, exercising crash detection, timeout, retry, and
  serial fallback.  Worker faults cross the fork boundary through the
  ``REPRO_FAULTS`` environment variable (children are separate
  processes; the environment is the only channel that needs no
  plumbing), applied by :func:`apply_worker_faults` at child startup.

The ``repro-faultcheck`` CLI (:func:`repro.cli.main_faultcheck`) drives
a full gauntlet of these faults against a synthetic store and verifies
that each one ends in a classified report, a successful retry, or a
clean resume — never a hang, never a silently wrong table.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim import rng as rng_mod

#: Environment variable carrying worker-fault parameters across fork.
FAULT_ENV = "REPRO_FAULTS"

#: Re-exported here so the harness has one import for all fault hooks.
KILL_AFTER_CHECKPOINTS_ENV = "REPRO_FAULT_KILL_AFTER_CHECKPOINTS"

#: The corruption shapes a log line can be rewritten into.
_LINE_MUTATIONS = ("garble-address", "bad-hit-count", "negative-hits", "drop-token")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what was done to which target."""

    kind: str
    target: str
    detail: str = ""

    def format(self) -> str:
        """``kind: target (detail)`` — the canonical one-line form."""
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}: {self.target}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded plan of faults to inject; every method is deterministic.

    Rates are per-candidate probabilities evaluated on independent
    substreams keyed by the target's basename, so injecting cache
    faults never perturbs which log lines get corrupted, and adding a
    day to the campaign never reshuffles earlier days' faults.
    """

    seed: int = 0
    corrupt_line_rate: float = 0.0
    truncate_cache_rate: float = 0.0
    drop_day_rate: float = 0.0
    kill_worker_rate: float = 0.0
    delay_worker_rate: float = 0.0
    delay_seconds: float = 0.0
    poison_tasks: Tuple[int, ...] = ()

    # -- input faults ------------------------------------------------------

    def corrupt_logs(self, paths: Sequence[str]) -> List[FaultEvent]:
        """Rewrite a deterministic subset of entry lines as malformed.

        Comment and blank lines are never touched (the faults modeled
        are per-entry aggregator glitches, not header loss).  Returns
        one event per corrupted line so a harness can assert that the
        quarantine accounted for every injected fault.
        """
        events: List[FaultEvent] = []
        for path in paths:
            name = os.path.basename(path)
            stream = rng_mod.substream(self.seed, "faults", "corrupt", name)
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
            changed = False
            for index, line in enumerate(lines):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                if stream.random() >= self.corrupt_line_rate:
                    continue
                mutation = stream.choice(_LINE_MUTATIONS)
                lines[index] = self._mutate_line(stripped, mutation) + "\n"
                changed = True
                events.append(
                    FaultEvent("corrupt-line", path, f"line {index + 1}: {mutation}")
                )
            if changed:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.writelines(lines)
        return events

    @staticmethod
    def _mutate_line(line: str, mutation: str) -> str:
        parts = line.split()
        address = parts[0]
        hits = parts[1] if len(parts) > 1 else "1"
        if mutation == "garble-address":
            return f"zz{address}zz {hits}"
        if mutation == "bad-hit-count":
            return f"{address} x{hits}"
        if mutation == "negative-hits":
            return f"{address} -{hits}"
        return address  # drop-token: hit count lost entirely

    def truncate_cache(self, cache_dir: str) -> List[FaultEvent]:
        """Cut a deterministic subset of cache payloads short."""
        events: List[FaultEvent] = []
        try:
            names = sorted(os.listdir(cache_dir))
        except OSError:
            return events
        for name in names:
            if not (name.startswith("day-") and name.endswith(".npy")):
                continue
            if (
                rng_mod.stable_uniform(self.seed, "faults", "truncate", name)
                >= self.truncate_cache_rate
            ):
                continue
            path = os.path.join(cache_dir, name)
            size = os.path.getsize(path)
            keep = size // 2
            with open(path, "r+b") as handle:
                handle.truncate(keep)
            events.append(
                FaultEvent("truncate-cache", path, f"{size} -> {keep} bytes")
            )
        return events

    def drop_days(self, paths: Sequence[str]) -> List[FaultEvent]:
        """Make a deterministic subset of day files unreadable.

        Files are renamed aside (``<path>.dropped``) rather than
        deleted, so a harness can restore them; loading the original
        path list then fails with file-not-found, the "day never
        arrived" failure mode.
        """
        events: List[FaultEvent] = []
        for path in paths:
            name = os.path.basename(path)
            if (
                rng_mod.stable_uniform(self.seed, "faults", "drop", name)
                >= self.drop_day_rate
            ):
                continue
            os.replace(path, path + ".dropped")
            events.append(FaultEvent("drop-day", path))
        return events

    @staticmethod
    def restore_days(events: Sequence[FaultEvent]) -> None:
        """Undo :meth:`drop_days` (for harness cleanup)."""
        for event in events:
            if event.kind != "drop-day":
                continue
            try:
                os.replace(event.target + ".dropped", event.target)
            except OSError:
                pass  # best-effort cleanup; the file may already be back

    # -- worker faults (cross the fork via the environment) ----------------

    def worker_env(self) -> Dict[str, str]:
        """The ``REPRO_FAULTS`` environment carrying this plan's worker
        faults to forked pool children."""
        fields = [
            f"seed={int(self.seed)}",
            f"kill={self.kill_worker_rate!r}",
            f"delay={self.delay_worker_rate!r}",
            f"delay_seconds={self.delay_seconds!r}",
        ]
        if self.poison_tasks:
            fields.append("poison=" + "|".join(str(i) for i in self.poison_tasks))
        return {FAULT_ENV: ",".join(fields)}


def parse_fault_env(text: str) -> Dict[str, object]:
    """Parse a ``REPRO_FAULTS`` value into its typed fields."""
    spec: Dict[str, object] = {
        "seed": 0,
        "kill": 0.0,
        "delay": 0.0,
        "delay_seconds": 0.0,
        "poison": frozenset(),
    }
    for part in text.split(","):
        part = part.strip()
        if not part or "=" not in part:
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "seed":
                spec[key] = int(value)
            elif key in ("kill", "delay", "delay_seconds"):
                spec[key] = float(value)
            elif key == "poison":
                spec[key] = frozenset(
                    int(item) for item in value.split("|") if item
                )
        except ValueError:
            continue
    return spec


def apply_worker_faults(
    label: str, index: int, attempt: int, env: Optional[str] = None
) -> None:
    """Apply the environment's worker-fault plan inside a forked child.

    Called by the supervised pool's child bootstrap before the real
    task runs.  Kill and delay faults fire only on a task's *first*
    attempt (so retry recovers), drawn deterministically from the task
    identity; poison tasks die on *every* worker attempt, forcing the
    supervisor's serial fallback.  The parent process never applies
    faults — serial fallback is the designed escape hatch.
    """
    text = env if env is not None else os.environ.get(FAULT_ENV)
    if not text:
        return
    spec = parse_fault_env(text)
    seed = int(spec["seed"])  # type: ignore[arg-type]
    if index in spec["poison"]:  # type: ignore[operator]
        os.kill(os.getpid(), signal.SIGKILL)
    if attempt == 0:
        kill_rate = float(spec["kill"])  # type: ignore[arg-type]
        if (
            kill_rate > 0.0
            and rng_mod.stable_uniform(seed, "faults", "kill", label, index) < kill_rate
        ):
            os.kill(os.getpid(), signal.SIGKILL)
        delay_rate = float(spec["delay"])  # type: ignore[arg-type]
        if (
            delay_rate > 0.0
            and rng_mod.stable_uniform(seed, "faults", "delay", label, index)
            < delay_rate
        ):
            time.sleep(float(spec["delay_seconds"]))  # type: ignore[arg-type]
