"""Addressing plans and IID policies: how simulated networks assign addresses.

Every behaviour the paper reverse-engineers from MRA plots is modelled
here as an explicit *addressing plan* (how a subscriber gets a network
identifier) combined with *IID policies* (how that subscriber's devices
pick interface identifiers):

* :class:`StaticIspPlan` — each subscriber owns a fixed /48 (or /56, /64)
  forever; the JP ISP of Figure 5h, whose /48s carry one constant 16-bit
  subnet value.
* :class:`DynamicPoolPlan` — each association draws a fresh /64 from
  pools under the carrier's many /44s; the US mobile carrier of Figure
  5e, whose 44–64 bit segment saturates within a week and whose /64s are
  reused by other subscribers within days.
* :class:`PseudorandomNetidPlan` — a pseudorandom 15-bit number at bits
  41–55 of the network identifier, rotated on demand; the EU ISP of
  Figure 5f (the Deutsche Telekom-style "privacy button").
* :class:`UniversityPlan` — a /32 with only a few active subnet values
  at the first nybble past bit 32 and sparse /64s; Figure 2a.
* :class:`DenseDhcpPlan` — one /64 shared by ~100 DHCPv6 hosts packed
  into the low 16 bits; the EU university department of Figure 5g.
* :class:`TelcoStructuredPlan` — statically addressed hosts in
  tightly-packed /112 blocks next to a privacy-addressed population;
  the JP telco of Figure 2b.

IID policies cover RFC 4941 privacy (fresh pseudorandom IID each day,
"u" bit cleared), EUI-64 (fixed, derived from the device MAC), fixed
shared IIDs (the mobile-carrier oddity of §4.1's footnote), sequential
DHCP-style low IIDs, and structured static values.

Every generated address carries a :class:`GroundTruth` record, which is
what lets the benchmarks score the classifiers (e.g. the Malone baseline's
~73% recall, or the §7.1 subscriber-miscount factors) against reality.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net import addr, mac
from repro.net.prefix import Prefix
from repro.sim import rng

#: Mask clearing the "u" bit (address bit 70 == IID bit 6 from the MSB).
_U_BIT = 1 << 57


@dataclass(frozen=True)
class Device:
    """One subscriber device: a host interface with a factory MAC."""

    subscriber_id: int
    device_index: int
    mac: int


@dataclass(frozen=True)
class GroundTruth:
    """Truth labels attached to every simulated observation.

    Attributes:
        network: name of the generating network.
        plan: the addressing plan's class tag.
        subscriber_id: the subscriber the address belongs to.
        device_index: which of the subscriber's devices produced it.
        iid_policy: tag of the IID policy used.
        is_privacy: True when the IID is an RFC 4941 privacy identifier.
        is_stable_assignment: True when this (subscriber, device) pair
            would produce the same address on any other day — the
            temporal classifier's ground truth.
    """

    network: str
    plan: str
    subscriber_id: int
    device_index: int
    iid_policy: str
    is_privacy: bool
    is_stable_assignment: bool


class IidPolicy(abc.ABC):
    """How a device chooses the interface-identifier half of its address."""

    name: str = "abstract"
    is_privacy: bool = False
    is_stable: bool = True

    @abc.abstractmethod
    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        """Return the 64-bit IID for (device, day)."""


class PrivacyIid(IidPolicy):
    """RFC 4941 privacy extensions: a fresh pseudorandom IID each day.

    The default valid lifetime is 24 hours, so modelling one IID per
    device per day matches the paper's expectation that most "not
    3d-stable" addresses are privacy addresses.  The "u" bit is cleared,
    producing the bit-70 MRA signature of Figure 2a.
    """

    name = "privacy"
    is_privacy = True
    is_stable = False

    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        value = rng.stable_u64(
            seed, "privacy", network, device.subscriber_id, device.device_index, day
        )
        return value & ~_U_BIT


class StablePrivacyIid(IidPolicy):
    """RFC 7217 stable, semantically opaque IIDs.

    Stable for a given network identifier, unrelated across networks:
    temporally these behave like EUI-64 hosts (the paper's stability
    classes catch them) while their content is indistinguishable from
    RFC 4941 privacy addresses — the population that defeats content-only
    classification entirely.
    """

    name = "stable-privacy"
    is_privacy = False
    is_stable = True

    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        from repro.net.iidgen import rfc7217_iid

        # The plan passes the day only for churning policies; RFC 7217
        # keys on the device's (simulated) secret and its current
        # network identifier, which the plan supplies via `network` name
        # scoping plus the device identity here.  Stability across days
        # within one network is the property under test.
        secret = rng.stable_u64(
            seed, "7217-secret", device.subscriber_id, device.device_index
        ).to_bytes(8, "big")
        return rfc7217_iid(0, f"{network}", secret)


class Eui64Iid(IidPolicy):
    """SLAAC Modified EUI-64: the IID embeds the device's MAC forever."""

    name = "eui64"

    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        return mac.mac_to_eui64(device.mac)


class FixedIid(IidPolicy):
    """A constant IID shared by many devices.

    Models the mobile-carrier behaviour of §4.1's footnote: many devices
    simultaneously using one fixed interface identifier (the prevalent
    bogus MAC ``00:11:22:33:44:56`` expands to one EUI-64 value), so the
    full address's identity rides entirely on the network identifier.
    """

    def __init__(self, value: int, name: str = "fixed") -> None:
        if not 0 <= value < (1 << 64):
            raise ValueError(f"IID out of range: {value:#x}")
        self._value = value
        self.name = name

    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        return self._value


class SequentialIid(IidPolicy):
    """DHCPv6-style low IIDs: base + a small per-device offset."""

    name = "sequential"

    def __init__(self, base: int = 0x100) -> None:
        self._base = base

    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        return self._base + device.subscriber_id * 4 + device.device_index


class StructuredIid(IidPolicy):
    """Structured static IIDs like ``::10:901``: a tag and a host number.

    The tag occupies IID bits 16..31 (the second-to-last 16-bit segment),
    the host number the final 16 bits — the "(ii)" sample of Figure 1.
    """

    name = "structured"

    def __init__(self, tag: int = 0x10, hosts_per_tag: int = 4096) -> None:
        self._tag = tag
        self._hosts_per_tag = hosts_per_tag

    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        host = (
            device.subscriber_id * 4 + device.device_index
        ) % self._hosts_per_tag + 0x100
        return (self._tag << 16) | host


class AddressingPlan(abc.ABC):
    """How a network maps (subscriber, device, day) to a full address."""

    tag: str = "abstract"

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self.seed = seed

    @abc.abstractmethod
    def network_identifier(self, subscriber_id: int, day: int) -> int:
        """The high 64 bits (the /64) hosting the subscriber on ``day``."""

    @abc.abstractmethod
    def iid_policy(self, device: Device) -> IidPolicy:
        """The IID policy this device uses (stable per device)."""

    def network_is_stable(self) -> bool:
        """True when subscribers keep the same network identifier daily."""
        return True

    def daily_addresses(self, device: Device, day: int) -> List[Tuple[int, GroundTruth]]:
        """All addresses the device uses during one day.

        Most plans produce exactly one; plans with intra-day network-id
        churn (mobile reassociation) override this to produce several.
        """
        return [self.address(device, day)]

    def address(self, device: Device, day: int) -> Tuple[int, GroundTruth]:
        """Generate the device's address for one day, with truth labels."""
        policy = self.iid_policy(device)
        high = self.network_identifier(device.subscriber_id, day)
        low = policy.iid(self.seed, self.name, device, day)
        value = addr.from_halves(high, low)
        truth = GroundTruth(
            network=self.name,
            plan=self.tag,
            subscriber_id=device.subscriber_id,
            device_index=device.device_index,
            iid_policy=policy.name,
            is_privacy=policy.is_privacy,
            is_stable_assignment=policy.is_stable and self.network_is_stable(),
        )
        return value, truth

    def _pick_policy(
        self,
        device: Device,
        policies: Sequence[IidPolicy],
        weights: Sequence[float],
    ) -> IidPolicy:
        """Deterministically assign a policy to a device by weight."""
        draw = rng.stable_uniform(
            self.seed, "policy", self.name, device.subscriber_id, device.device_index
        )
        cumulative = 0.0
        for policy, weight in zip(policies, weights):
            cumulative += weight
            if draw < cumulative:
                return policy
        return policies[-1]


class StaticIspPlan(AddressingPlan):
    """Fixed per-subscriber delegation, the JP-ISP shape (Figure 5h).

    Subscriber ``i`` owns the i-th /``delegation_len`` of the BGP prefix
    forever and uses a single /64 inside it whose subnet field is a
    constant derived from the subscriber — so all of a /48's addresses
    share one 16-bit value at bits 48..63, producing no aggregation in
    that segment, and active /64 counts approximate subscribers.
    """

    tag = "static-isp"

    def __init__(
        self,
        name: str,
        seed: int,
        prefix: Prefix,
        delegation_len: int = 48,
        privacy_share: float = 0.97,
        business_share: float = 0.08,
    ) -> None:
        super().__init__(name, seed)
        if not prefix.length <= delegation_len <= 64:
            raise ValueError(f"bad delegation length: {delegation_len}")
        self.prefix = prefix
        self.delegation_len = delegation_len
        self.business_share = business_share
        # The non-privacy remainder splits between legacy EUI-64 hosts
        # and modern RFC 7217 stable-privacy hosts (stable in place,
        # random-looking in content).
        remainder = 1.0 - privacy_share
        self._policies: Tuple[IidPolicy, ...] = (
            PrivacyIid(),
            Eui64Iid(),
            StablePrivacyIid(),
        )
        self._weights = (privacy_share, remainder * 0.6, remainder * 0.4)
        self._business_policy = SequentialIid(base=0x10)

    def _is_business(self, subscriber_id: int) -> bool:
        """Business subscribers number hosts statically and sequentially.

        These populations give the 112-128 MRA segment its aggregating
        minority across BGP prefixes (Figure 5b).
        """
        return (
            rng.stable_uniform(self.seed, "business", self.name, subscriber_id)
            < self.business_share
        )

    def network_identifier(self, subscriber_id: int, day: int) -> int:
        delegation_count = 1 << (self.delegation_len - self.prefix.length)
        slot = subscriber_id % delegation_count
        delegation = self.prefix.network >> 64
        delegation |= slot << (64 - self.delegation_len)
        subnet_bits = 64 - self.delegation_len
        if subnet_bits:
            subnet = rng.stable_u64(self.seed, "subnet", self.name, subscriber_id)
            delegation |= subnet % (1 << subnet_bits)
        return delegation

    def iid_policy(self, device: Device) -> IidPolicy:
        if self._is_business(device.subscriber_id):
            return self._business_policy
        return self._pick_policy(device, self._policies, self._weights)


class DynamicPoolPlan(AddressingPlan):
    """Per-association /64s from dynamic pools, the US-mobile shape (5e).

    Each active day the subscriber's gateway hands out a /64 drawn from
    the pool under one of the carrier's /``pool_prefix_len`` BGP prefixes
    (the paper's carrier advertises over 400 /44s).  ``pool_bits``
    controls how much of the 44–64 bit segment a pool spans; with enough
    associations the segment saturates, as in the paper's weekly plot.
    /64 reuse by different subscribers follows naturally from the draws.
    """

    tag = "dynamic-pool"

    def __init__(
        self,
        name: str,
        seed: int,
        prefixes: Sequence[Prefix],
        pool_bits: Optional[int] = None,
        fixed_one_share: float = 0.08,
        shared_mac_share: float = 0.04,
        eui64_share: float = 0.03,
    ) -> None:
        super().__init__(name, seed)
        if not prefixes:
            raise ValueError("at least one pool prefix required")
        self.prefixes = list(prefixes)
        self.pool_bits = pool_bits  # None: the full span down to /64
        # Most UEs run privacy extensions; a minority use fixed IIDs —
        # the ::1 convention or the bogus shared MAC the paper's footnote
        # calls out — which is what makes "stable" addresses appear in a
        # network with dynamic network identifiers (§6.1.1); few use a
        # genuine per-device EUI-64.
        shared_iid = mac.mac_to_eui64(mac.parse_mac("00:11:22:33:44:56"))
        self._policies: Tuple[IidPolicy, ...] = (
            FixedIid(1, name="fixed-one"),
            FixedIid(shared_iid, name="fixed-shared-mac"),
            Eui64Iid(),
            PrivacyIid(),
        )
        self._weights = (
            fixed_one_share,
            shared_mac_share,
            eui64_share,
            max(0.0, 1.0 - fixed_one_share - shared_mac_share - eui64_share),
        )

    def network_is_stable(self) -> bool:
        return False

    def associations(self, subscriber_id: int, day: int) -> int:
        """How many times the subscriber's UE associates on one day.

        Mobile devices reassociate as they move between gateways and
        wake from idle — each association draws a fresh /64, which is
        why weekly active /64 counts overcount mobile subscribers
        (§7.1) even while individual /64s are reused within days.
        """
        return 1 + rng.stable_u64(
            self.seed, "assoc", self.name, subscriber_id, day
        ) % 4

    def network_identifier(
        self, subscriber_id: int, day: int, association: int = 0
    ) -> int:
        pool_index = rng.stable_u64(
            self.seed, "pool-pick", self.name, subscriber_id, day, association
        ) % len(self.prefixes)
        pool = self.prefixes[pool_index]
        available_bits = 64 - pool.length
        bits = available_bits if self.pool_bits is None else min(
            self.pool_bits, available_bits
        )
        draw = rng.stable_u64(
            self.seed, "pool-draw", self.name, subscriber_id, day, association
        )
        slot = draw % (1 << bits)
        return (pool.network >> 64) | slot

    def daily_addresses(self, device: Device, day: int) -> List[Tuple[int, GroundTruth]]:
        policy = self.iid_policy(device)
        results: List[Tuple[int, GroundTruth]] = []
        for association in range(self.associations(device.subscriber_id, day)):
            high = self.network_identifier(device.subscriber_id, day, association)
            low = policy.iid(self.seed, self.name, device, day)
            truth = GroundTruth(
                network=self.name,
                plan=self.tag,
                subscriber_id=device.subscriber_id,
                device_index=device.device_index,
                iid_policy=policy.name,
                is_privacy=policy.is_privacy,
                is_stable_assignment=False,
            )
            results.append((addr.from_halves(high, low), truth))
        return results

    def iid_policy(self, device: Device) -> IidPolicy:
        return self._pick_policy(device, self._policies, self._weights)


class PseudorandomNetidPlan(AddressingPlan):
    """Pseudorandom network identifiers, the EU-ISP shape (Figure 5f).

    The /64 is: BGP /32 bits, then a constant 0 at bit 40, a 15-bit
    pseudorandom number at bits 41..55 that the subscriber can rotate
    (modelled as changing every ``rotate_days``), and an 8-bit value at
    bits 56..63 drawn from a skewed distribution favouring 0x00/0x01 —
    exactly the structure the paper posits before the operator confirms
    it.
    """

    tag = "pseudorandom-netid"

    def __init__(
        self,
        name: str,
        seed: int,
        prefix: Prefix,
        rotate_days: int = 7,
        privacy_share: float = 0.97,
    ) -> None:
        super().__init__(name, seed)
        if prefix.length > 40:
            raise ValueError("plan needs at least the 40..64 bit span")
        self.prefix = prefix
        self.rotate_days = max(1, rotate_days)
        self._policies: Tuple[IidPolicy, ...] = (PrivacyIid(), Eui64Iid())
        self._weights = (privacy_share, 1.0 - privacy_share)

    def network_is_stable(self) -> bool:
        return False

    def _subnet_octet(self, subscriber_id: int) -> int:
        """The bits-56..63 value: all 256 seen, but most often 0 or 1."""
        draw = rng.stable_uniform(self.seed, "octet", self.name, subscriber_id)
        if draw < 0.45:
            return 0x00
        if draw < 0.80:
            return 0x01
        return rng.stable_u64(self.seed, "octet-tail", self.name, subscriber_id) % 256

    def network_identifier(self, subscriber_id: int, day: int) -> int:
        period = day // self.rotate_days
        # Stagger rotation so all subscribers don't change the same day.
        stagger = rng.stable_u64(self.seed, "stagger", self.name, subscriber_id) % (
            self.rotate_days
        )
        period = (day + stagger) // self.rotate_days
        random15 = rng.stable_u64(
            self.seed, "netid", self.name, subscriber_id, period
        ) % (1 << 15)
        high = self.prefix.network >> 64
        high |= random15 << 8  # bits 41..55 (bit 40 stays 0)
        high |= self._subnet_octet(subscriber_id)  # bits 56..63
        return high

    def iid_policy(self, device: Device) -> IidPolicy:
        return self._pick_policy(device, self._policies, self._weights)


class UniversityPlan(AddressingPlan):
    """A /32 with few active subnet values, the US-university shape (2a).

    Only ``subnet_values`` (3 by default, per the operator's confirmed
    address plan) appear at the first nybble past bit 32; below that a
    modest number of /64s exist, each holding a handful of
    privacy-addressed hosts.
    """

    tag = "university"

    def __init__(
        self,
        name: str,
        seed: int,
        prefix: Prefix,
        subnet_values: Sequence[int] = (0x1, 0x2, 0x8),
        lans_per_subnet: int = 64,
        privacy_share: float = 0.95,
    ) -> None:
        super().__init__(name, seed)
        if prefix.length != 32:
            raise ValueError("UniversityPlan expects a /32")
        self.prefix = prefix
        self.subnet_values = tuple(subnet_values)
        self.lans_per_subnet = lans_per_subnet
        self._policies: Tuple[IidPolicy, ...] = (PrivacyIid(), Eui64Iid())
        self._weights = (privacy_share, 1.0 - privacy_share)

    def network_identifier(self, subscriber_id: int, day: int) -> int:
        pick = rng.stable_u64(self.seed, "subnet", self.name, subscriber_id)
        subnet = self.subnet_values[pick % len(self.subnet_values)]
        lan = (pick >> 8) % self.lans_per_subnet
        high = self.prefix.network >> 64
        high |= subnet << 28  # nybble at address bits 32..35
        high |= lan << 20  # LAN number at address bits 36..43
        return high

    def iid_policy(self, device: Device) -> IidPolicy:
        return self._pick_policy(device, self._policies, self._weights)


class DenseDhcpPlan(AddressingPlan):
    """~100 hosts DHCP-packed into one /64, the EU-department shape (5g).

    All hosts live in a single /64; a few subnet tags at address bits
    72..79 partition them; host numbers are sequential in the final 16
    bits.  Addresses are static day over day, and multiple 2@/112-dense
    prefixes result.
    """

    tag = "dense-dhcp"

    def __init__(
        self,
        name: str,
        seed: int,
        prefix: Prefix,
        subnet_tags: Sequence[int] = (0x1D, 0x2D),
        host_base: int = 0x1000,
    ) -> None:
        super().__init__(name, seed)
        if prefix.length != 64:
            raise ValueError("DenseDhcpPlan expects a /64")
        self.prefix = prefix
        self.subnet_tags = tuple(subnet_tags)
        self.host_base = host_base
        self._policy = _DenseDhcpIid(self.subnet_tags, host_base)

    def network_identifier(self, subscriber_id: int, day: int) -> int:
        return self.prefix.network >> 64

    def iid_policy(self, device: Device) -> IidPolicy:
        return self._policy


class _DenseDhcpIid(IidPolicy):
    """Sequential host numbers under a small set of high-bit tags."""

    name = "dhcpv6"

    def __init__(self, subnet_tags: Sequence[int], host_base: int) -> None:
        self._tags = tuple(subnet_tags)
        self._host_base = host_base

    def iid(self, seed: int, network: str, device: Device, day: int) -> int:
        tag = self._tags[device.subscriber_id % len(self._tags)]
        host = self._host_base + device.subscriber_id * 2 + device.device_index
        # Tag at IID bits 48..55 (address bits 72..79), host in the low 16.
        return (tag << 48) | (host & 0xFFFF)


class TelcoStructuredPlan(AddressingPlan):
    """Static structured hosts plus privacy clients, the JP-telco shape (2b).

    A fraction of subscribers are statically addressed servers/CPE with
    structured IIDs packed into shared /64s (producing the dense 112–128
    prominence); the rest are ordinary privacy-addressed clients on their
    own /64s.
    """

    tag = "telco-structured"

    def __init__(
        self,
        name: str,
        seed: int,
        prefix: Prefix,
        static_share: float = 0.8,
        static_lans: int = 16,
    ) -> None:
        super().__init__(name, seed)
        self.prefix = prefix
        self.static_share = static_share
        self.static_lans = static_lans
        self._privacy = PrivacyIid()
        self._structured = StructuredIid(tag=0x10)

    def _is_static(self, subscriber_id: int) -> bool:
        return (
            rng.stable_uniform(self.seed, "static", self.name, subscriber_id)
            < self.static_share
        )

    def network_identifier(self, subscriber_id: int, day: int) -> int:
        high = self.prefix.network >> 64
        if self._is_static(subscriber_id):
            lan = subscriber_id % self.static_lans
            return high | (0x10 << 16) | (lan << 4) | 0x8
        draw = rng.stable_u64(self.seed, "lan", self.name, subscriber_id)
        span_bits = max(1, 64 - self.prefix.length - 16)
        return high | (0x20 << 16) | (draw % (1 << span_bits))

    def iid_policy(self, device: Device) -> IidPolicy:
        if self._is_static(device.subscriber_id):
            return self._structured
        return self._privacy


def make_device(seed: int, network: str, subscriber_id: int, device_index: int) -> Device:
    """Create a device with a deterministic factory MAC address.

    MACs come from a handful of simulated vendor OUIs with the u/l bit
    clear (universally administered), so genuine EUI-64 IIDs show u=1
    after the SLAAC flip.
    """
    ouis = (0x001EC2, 0x3C0754, 0xA45E60, 0xD0E140, 0x28CFE9)
    pick = rng.stable_u64(seed, "mac", network, subscriber_id, device_index)
    oui = ouis[pick % len(ouis)]
    nic = (pick >> 16) & 0xFFFFFF
    return Device(
        subscriber_id=subscriber_id,
        device_index=device_index,
        mac=(oui << 24) | nic,
    )
