"""TTL-limited probe simulation: the §6.1.1 target-selection experiment.

The paper tests the hypothesis that 3d-stable client addresses are good
traceroute targets for discovering router infrastructure, finding 129%
more router addresses than an IPv4-style heuristic (recursive DNS servers
plus randomly selected WWW client addresses).

Why stable targets win, mechanically: a probe only elicits Time Exceeded
responses from routers *on the forwarding path inside the target's own
network*, so router discovery scales with how many different networks —
and how many distinct POPs within them — the target list reaches.
Random active client addresses concentrate in the few largest consumer
networks (mobile carriers and big privacy-addressed ISPs) and so resurvey
the same paths; 3d-stable addresses are disproportionately the statically
numbered hosts spread across many networks, so their probes fan out over
far more infrastructure.

The simulator models per-ISP topologies derived from the router corpus:
probes toward an ISP's space traverse that ISP's core, the POP serving
the target's /48, and the edge interface of the target's /64 — the edge
responding only when the /64 is currently active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net import addr
from repro.net.prefix import Prefix
from repro.sim import rng
from repro.sim.routers import RouterCorpus, RouterInterface


@dataclass
class IspPaths:
    """One ISP's probe-visible structure."""

    name: str
    core: List[RouterInterface]
    pop_interfaces: List[RouterInterface]
    edge_pool: List[RouterInterface]


@dataclass
class ProbeTopology:
    """Per-ISP path structure derived from a router corpus.

    Attributes:
        isps: per-ISP core/POP/edge strata.
        isp_prefixes: BGP prefix spans used to route a target to its ISP
            (sorted (first, last, isp) tuples).
        active_64s: the currently assigned /64 networks (high 64 bits);
            probes only elicit an edge response inside these.
    """

    isps: Dict[str, IspPaths]
    isp_prefixes: List[Tuple[int, int, str]]
    active_64s: Set[int]
    live_addresses: Set[int] = None  # targets that still exist at probe time

    def isp_for(self, value: int) -> Optional[str]:
        """Which ISP's space contains an address (binary search)."""
        low, high = 0, len(self.isp_prefixes) - 1
        while low <= high:
            mid = (low + high) // 2
            first, last, name = self.isp_prefixes[mid]
            if value < first:
                high = mid - 1
            elif value > last:
                low = mid + 1
            else:
                return name
        return None


def build_topology(
    seed: int,
    corpus: RouterCorpus,
    active_64s: Iterable[int],
    isp_prefixes: Optional[Dict[str, Prefix]] = None,
    live_addresses: Optional[Iterable[int]] = None,
) -> ProbeTopology:
    """Assemble the per-ISP probe topology.

    ``active_64s`` are the high-64-bit networks currently assigned.
    ``isp_prefixes`` maps ISP name to its BGP prefix; when omitted, it is
    reconstructed from the corpus interfaces' /32s.  ``live_addresses``
    is the set of client addresses that still exist at probe time: a
    probe toward a live target elicits one extra response from the
    target's own gateway (CPE), the deepest hop — probes to vanished
    privacy addresses die at the BNG instead.
    """
    by_isp: Dict[str, IspPaths] = {}
    for interface in corpus.interfaces:
        paths = by_isp.get(interface.isp)
        if paths is None:
            paths = IspPaths(
                name=interface.isp, core=[], pop_interfaces=[], edge_pool=[]
            )
            by_isp[interface.isp] = paths
        if interface.role == "loopback":
            paths.core.append(interface)
        elif interface.role == "p2p":
            paths.pop_interfaces.append(interface)
        else:
            paths.edge_pool.append(interface)

    spans: List[Tuple[int, int, str]] = []
    if isp_prefixes:
        for name, prefix in isp_prefixes.items():
            spans.append((prefix.first, prefix.last, name))
    else:
        # Approximate each ISP's space by the /32s its interfaces touch.
        seen: Set[Tuple[int, str]] = set()
        for interface in corpus.interfaces:
            network = addr.truncate(interface.address, 32)
            key = (network, interface.isp)
            if key not in seen:
                seen.add(key)
                spans.append((network, network + (1 << 96) - 1, interface.isp))
    spans.sort()

    return ProbeTopology(
        isps=by_isp,
        isp_prefixes=spans,
        active_64s=set(active_64s),
        live_addresses=set(live_addresses) if live_addresses is not None else set(),
    )


def probe(
    seed: int, topology: ProbeTopology, target: int, core_hops: int = 2
) -> List[int]:
    """TTL-limited probe toward one target; returns responding addresses.

    The response path, when the target's network is known:

    * ``core_hops`` interfaces of the ISP's core (loopbacks/backbone),
      selected deterministically by the target's /40 (routing);
    * the POP interface serving the target's /48;
    * the edge (BNG) interface serving the target's /44 region — only if
      the target's /64 is currently active (assigned), which is what
      penalizes stale targets.

    Probes into unknown space get no response (filtered, unrouted).
    """
    addr.check_address(target)
    isp_name = topology.isp_for(target)
    if isp_name is None:
        return []
    paths = topology.isps.get(isp_name)
    if paths is None:
        return []
    responses: List[int] = []
    if paths.core:
        route_key = target >> 88  # /40 granularity routing
        for hop in range(core_hops):
            pick = rng.stable_u64(seed, "corehop", route_key, hop) % len(paths.core)
            responses.append(paths.core[pick].address)
    if paths.pop_interfaces:
        slash48 = target >> 80
        pick = rng.stable_u64(seed, "pop", slash48) % len(paths.pop_interfaces)
        responses.append(paths.pop_interfaces[pick].address)
    if paths.edge_pool and (target >> 64) in topology.active_64s:
        # The edge (BNG/PE) serves an aggregation region, not one /64:
        # key the pick by the target's /44 so edge discovery saturates
        # per region rather than growing with every probed /64.
        region = target >> 84
        pick = rng.stable_u64(seed, "edge44", region) % len(paths.edge_pool)
        responses.append(paths.edge_pool[pick].address)
        if target in topology.live_addresses:
            # The deepest hop: the live target's own gateway answers
            # (its WAN interface, a distinct router address per /64).
            responses.append(((target >> 64) << 64) | 0xFFFE)
    return responses


@dataclass
class ProbeCampaign:
    """Result of probing a target list: the distinct routers discovered."""

    strategy: str
    targets_probed: int
    discovered: Set[int]

    @property
    def discovered_count(self) -> int:
        """Distinct responding router interface addresses."""
        return len(self.discovered)


def run_campaign(
    seed: int,
    topology: ProbeTopology,
    targets: Sequence[int],
    corpus: RouterCorpus,
    strategy: str,
) -> ProbeCampaign:
    """Probe every target and collect responsive router addresses.

    Responsiveness filtering applies here: interfaces flagged
    unresponsive in the corpus never appear in results.
    """
    discovered: Set[int] = set()
    for target in targets:
        for response in probe(seed, topology, target):
            if corpus.responsive.get(response, True):
                discovered.add(response)
    return ProbeCampaign(
        strategy=strategy, targets_probed=len(targets), discovered=discovered
    )


def improvement(
    stable_campaign: ProbeCampaign, baseline_campaign: ProbeCampaign
) -> float:
    """Relative gain of the stable-target strategy over the baseline.

    The paper reports this as "+129%" (i.e. 2.29x): computed as
    ``(stable - baseline) / baseline``.
    """
    baseline = baseline_campaign.discovered_count
    if baseline == 0:
        return float("inf") if stable_campaign.discovered_count else 0.0
    return (stable_campaign.discovered_count - baseline) / baseline
