"""Synthetic address registry: RIR allocations, ASNs and BGP prefixes.

The paper attributes addresses to autonomous systems through BGP origin
data (6,872 prefixes from 4,420 ASNs in March 2015).  Offline, we model
the allocation hierarchy ourselves:

* five RIR super-blocks inside ``2000::/3``, mirroring the real registry
  split (ARIN, RIPE, APNIC, LACNIC, AFRINIC), each handing out
  provider-sized blocks sequentially with realistic gaps;
* per-ASN allocations of one or more BGP prefixes whose lengths follow
  operator practice (/32 for typical ISPs, swarms of /44s or /40s for the
  mobile carriers of Figure 5e, /48s for enterprises);
* longest-prefix-match origin lookup, which is all the analysis needs.

The registry is the ground truth the per-ASN figures (5a, 5b) group by.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net import addr
from repro.net.prefix import Prefix
from repro.sim import rng


@dataclass(frozen=True)
class RirBlock:
    """One regional registry's super-block."""

    name: str
    prefix: Prefix


#: The five RIR super-blocks (shapes follow IANA's real unicast splits).
RIR_BLOCKS: Tuple[RirBlock, ...] = (
    RirBlock("ARIN", Prefix(addr.parse("2600::"), 12)),
    RirBlock("RIPE", Prefix(addr.parse("2a00::"), 12)),
    RirBlock("APNIC", Prefix(addr.parse("2400::"), 12)),
    RirBlock("LACNIC", Prefix(addr.parse("2800::"), 12)),
    RirBlock("AFRINIC", Prefix(addr.parse("2c00::"), 12)),
)

_RIR_BY_NAME: Dict[str, RirBlock] = {block.name: block for block in RIR_BLOCKS}

#: Map of simulated countries to their RIR (a small representative set).
COUNTRY_RIR: Dict[str, str] = {
    "US": "ARIN",
    "CA": "ARIN",
    "DE": "RIPE",
    "FR": "RIPE",
    "GB": "RIPE",
    "NL": "RIPE",
    "JP": "APNIC",
    "KR": "APNIC",
    "AU": "APNIC",
    "BR": "LACNIC",
    "AR": "LACNIC",
    "ZA": "AFRINIC",
}


@dataclass
class AsnAllocation:
    """One autonomous system and the BGP prefixes it originates.

    Attributes:
        asn: the autonomous system number.
        name: operator label (for reports).
        country: ISO-ish country code (drives RIR selection).
        kind: coarse operator category ("mobile", "isp", "university",
            "telco", "hosting"), used by scenario builders.
        prefixes: the originated BGP prefixes.
    """

    asn: int
    name: str
    country: str
    kind: str
    prefixes: List[Prefix] = field(default_factory=list)


class AddressRegistry:
    """Allocates BGP prefixes to ASNs and answers origin lookups."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.allocations: List[AsnAllocation] = []
        self._cursor: Dict[str, int] = {block.name: 0 for block in RIR_BLOCKS}
        # Origin lookup: sorted list of (first, last, allocation index) spans.
        self._spans: List[Tuple[int, int, int]] = []
        self._spans_dirty = False

    def allocate(
        self,
        name: str,
        country: str,
        kind: str,
        prefix_lengths: Iterable[int],
        asn: Optional[int] = None,
    ) -> AsnAllocation:
        """Allocate BGP prefixes of the given lengths to a new ASN.

        Blocks come sequentially from the country's RIR super-block, with
        a small deterministic gap after each allocation so the space shows
        the fragmentation real registries have.
        """
        rir_name = COUNTRY_RIR.get(country, "ARIN")
        block = _RIR_BY_NAME[rir_name]
        if asn is None:
            asn = 64512 + len(self.allocations)
        allocation = AsnAllocation(asn=asn, name=name, country=country, kind=kind)
        stream = rng.substream(self.seed, "registry", name, country)
        for length in prefix_lengths:
            if not block.prefix.length <= length <= 64:
                raise ValueError(f"unreasonable BGP prefix length: {length}")
            prefix = self._carve(block, length, stream)
            allocation.prefixes.append(prefix)
        self.allocations.append(allocation)
        self._spans_dirty = True
        return allocation

    def _carve(
        self, block: RirBlock, length: int, stream: "random.Random"
    ) -> Prefix:
        """Take the next length-``length`` block from an RIR super-block."""
        unit = 1 << (128 - length)
        base = block.prefix.network
        cursor = self._cursor[block.name]
        # Align the cursor up to the requested size.
        offset = -(-cursor // unit) * unit
        network = base + offset
        if network + unit - 1 > block.prefix.last:
            raise RuntimeError(f"RIR block {block.name} exhausted")
        # Leave a deterministic gap of 0-3 units before the next allocation.
        gap = stream.randrange(4) * unit
        self._cursor[block.name] = offset + unit + gap
        return Prefix(network, length)

    def _rebuild_spans(self) -> None:
        """Rebuild the sorted span table used by origin lookups."""
        spans: List[Tuple[int, int, int]] = []
        for index, allocation in enumerate(self.allocations):
            for prefix in allocation.prefixes:
                spans.append((prefix.first, prefix.last, index))
        spans.sort()
        self._spans = spans
        self._spans_dirty = False

    def origin(self, value: int) -> Optional[AsnAllocation]:
        """Longest-prefix-match origin lookup for one address.

        Allocations never overlap (each is carved from fresh space), so a
        binary search over the sorted spans suffices.
        """
        addr.check_address(value)
        if self._spans_dirty:
            self._rebuild_spans()
        spans = self._spans
        low, high = 0, len(spans) - 1
        while low <= high:
            mid = (low + high) // 2
            first, last, index = spans[mid]
            if value < first:
                high = mid - 1
            elif value > last:
                low = mid + 1
            else:
                return self.allocations[index]
        return None

    def origin_prefix(self, value: int) -> Optional[Prefix]:
        """The BGP prefix covering an address, or None."""
        allocation = self.origin(value)
        if allocation is None:
            return None
        for prefix in allocation.prefixes:
            if prefix.contains(value):
                return prefix
        return None

    @property
    def num_asns(self) -> int:
        """Number of ASNs allocated so far."""
        return len(self.allocations)

    @property
    def num_prefixes(self) -> int:
        """Number of BGP prefixes originated across all ASNs."""
        return sum(len(allocation.prefixes) for allocation in self.allocations)

    def group_by_asn(
        self, addresses: Iterable[int]
    ) -> Dict[int, List[int]]:
        """Partition addresses by originating ASN (unrouted ones dropped)."""
        groups: Dict[int, List[int]] = {}
        for value in addresses:
            allocation = self.origin(value)
            if allocation is None:
                continue
            groups.setdefault(allocation.asn, []).append(value)
        return groups

    def group_by_prefix(
        self, addresses: Iterable[int]
    ) -> Dict[Prefix, List[int]]:
        """Partition addresses by covering BGP prefix (unrouted dropped)."""
        groups: Dict[Prefix, List[int]] = {}
        for value in addresses:
            prefix = self.origin_prefix(value)
            if prefix is None:
                continue
            groups.setdefault(prefix, []).append(value)
        return groups
