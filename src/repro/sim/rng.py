"""Deterministic random-stream derivation for the simulator.

Every simulated quantity must be reproducible bit-for-bit from one seed,
and independent components must not share streams (or adding a subscriber
to one network would perturb another).  This module derives independent
substreams from a root seed and a key path, by hashing the path into the
seed material — the standard trick for hierarchical deterministic
simulation.

Use :func:`substream` for Python's :class:`random.Random` (convenient for
choices and shuffles) and :func:`numpy_substream` where vectorized draws
are needed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Tuple, Union

import numpy as np

Key = Union[int, str]


def _digest(seed: int, keys: Tuple[Key, ...]) -> bytes:
    """Hash a root seed plus a key path into 32 bytes of seed material."""
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode())
    for key in keys:
        hasher.update(b"/")
        hasher.update(str(key).encode())
    return hasher.digest()


def substream(seed: int, *keys: Key) -> random.Random:
    """Return a :class:`random.Random` unique to (seed, keys)."""
    return random.Random(_digest(seed, keys))


def numpy_substream(seed: int, *keys: Key) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` unique to (seed, keys)."""
    material = _digest(seed, keys)
    return np.random.default_rng(np.frombuffer(material, dtype=np.uint64))


def stable_u64(seed: int, *keys: Key) -> int:
    """A deterministic 64-bit value derived from (seed, keys).

    Used for quantities that are random but *permanent*, such as a
    device's MAC address or a subscriber's static subnet id — the same
    inputs always give the same value, with no stream state to advance.
    """
    return int.from_bytes(_digest(seed, keys)[:8], "big")


def stable_uniform(seed: int, *keys: Key) -> float:
    """A deterministic float in [0, 1) derived from (seed, keys)."""
    return stable_u64(seed, *keys) / float(1 << 64)
