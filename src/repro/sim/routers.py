"""Router-interface address corpus (the §4.2 dataset, Table 3's input).

The paper's second dataset is 3.2 million addresses that answered
TTL-limited probes with ICMP Time Exceeded — router interfaces.  Router
addressing differs sharply from client addressing, which is why Table 3's
dense-prefix search works so well on it: operators number infrastructure
by hand into tightly packed low-IID blocks —

* point-to-point link addresses on /127s (RFC 6164), allocated pairwise
  and sequentially out of small aggregation blocks;
* loopbacks numbered ::1, ::2, ... inside one /120-ish block per POP;
* customer-edge gateway interfaces spread thinly over delegated space.

The simulator emits one corpus per ISP, each with these three strata, and
keeps the full allocation map so the reverse-DNS simulator can name even
the interfaces that never answered a probe (the §6.2.3 yield experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net import addr
from repro.net.prefix import Prefix
from repro.sim import rng


@dataclass
class RouterInterface:
    """One router interface: its address, owning router, ISP and role."""

    address: int
    router_id: str
    role: str  # "p2p", "loopback", or "edge"
    isp: str = ""


@dataclass
class RouterCorpus:
    """All simulated router interfaces, with probe-responsiveness flags.

    ``interfaces`` holds every *allocated* interface; ``responsive``
    flags the subset that would actually answer a TTL-limited probe
    (some interfaces filter ICMP), so "observed router addresses" is the
    responsive subset — the unresponsive remainder is only discoverable
    via DNS, which drives the §6.2.3 extra-names result.
    """

    interfaces: List[RouterInterface] = field(default_factory=list)
    responsive: Dict[int, bool] = field(default_factory=dict)

    def addresses(self) -> List[int]:
        """All allocated interface addresses."""
        return [interface.address for interface in self.interfaces]

    def observed_addresses(self) -> List[int]:
        """The probe-responsive interface addresses (the §4.2 dataset)."""
        return [
            interface.address
            for interface in self.interfaces
            if self.responsive.get(interface.address, False)
        ]

    def by_address(self) -> Dict[int, RouterInterface]:
        """Index the corpus by address."""
        return {interface.address: interface for interface in self.interfaces}


def build_isp_routers(
    seed: int,
    isp_name: str,
    bgp_prefix: Prefix,
    pops: int = 4,
    p2p_links_per_pop: int = 48,
    loopbacks_per_pop: int = 24,
    edge_routers: int = 64,
    responsiveness: float = 0.8,
) -> RouterCorpus:
    """Build one ISP's router infrastructure inside its BGP prefix.

    Infrastructure lives in the first /48 of the prefix, as operators
    commonly reserve their initial block for themselves.
    """
    corpus = RouterCorpus()
    infra48 = addr.truncate(bgp_prefix.network, 48)

    def add(address: int, router_id: str, role: str) -> None:
        corpus.interfaces.append(
            RouterInterface(
                address=address, router_id=router_id, role=role, isp=isp_name
            )
        )
        draw = rng.stable_uniform(seed, "resp", isp_name, address)
        corpus.responsive[address] = draw < responsiveness

    # Heterogeneity: each POP's size varies around the nominal counts
    # (real operators have hub POPs and tiny ones), and each ISP's
    # numbering discipline differs in how tightly it packs link blocks —
    # that variety is what gives Table 3 its spread of densities.
    for pop in range(pops):
        size_draw = rng.stable_u64(seed, "popsize", isp_name, pop)
        size_factor = 0.25 + (size_draw % 1000) / 1000 * 2.5  # 0.25x..2.75x
        links = max(2, int(p2p_links_per_pop * size_factor))
        loops = max(2, int(loopbacks_per_pop * size_factor))
        # Packing stride: 1 = perfectly sequential /127 pairs, larger =
        # gaps left for growth (sparser /124s).
        stride = 1 << (rng.stable_u64(seed, "stride", isp_name, pop) % 3)

        # One /64 per POP for p2p links; /127 pairs at the chosen stride.
        p2p_base = infra48 | (pop << 68) | (0xE << 64)
        for link in range(links):
            low = link * 2 * stride
            add(p2p_base | low, f"{isp_name}-p{pop}-r{link // 4}", "p2p")
            add(p2p_base | (low + 1), f"{isp_name}-p{pop}-r{link // 4 + 1}", "p2p")
        # One /120-ish loopback block per POP, numbered from ::1.
        loop_base = infra48 | (pop << 68) | (0xF << 64)
        for index in range(loops):
            add(loop_base | (index + 1), f"{isp_name}-p{pop}-lo{index}", "loopback")

    # Customer-edge gateways: one low-IID interface in spread-out /64s.
    for edge in range(edge_routers):
        spread = rng.stable_u64(seed, "edge", isp_name, edge) % (1 << 14)
        network = (bgp_prefix.network >> 64) | (0x100 + spread)
        add(
            addr.from_halves(network, 1),
            f"{isp_name}-edge{edge}",
            "edge",
        )
    return corpus


def build_router_corpus(
    seed: int,
    isps: Sequence[Tuple[str, Prefix]],
    scale: float = 1.0,
    responsiveness: float = 0.8,
) -> RouterCorpus:
    """Build the combined router corpus for many ISPs.

    ``scale`` multiplies the per-ISP interface counts so benchmarks can
    trade runtime for volume.
    """
    combined = RouterCorpus()
    for isp_name, prefix in isps:
        # ISPs come in very different sizes; draw a per-ISP footprint.
        footprint = 0.3 + (rng.stable_u64(seed, "isp-size", isp_name) % 1000) / 400
        corpus = build_isp_routers(
            seed,
            isp_name,
            prefix,
            pops=max(1, int(4 * scale * footprint)),
            p2p_links_per_pop=max(4, int(48 * scale * footprint)),
            loopbacks_per_pop=max(2, int(24 * scale * footprint)),
            edge_routers=max(4, int(64 * scale * footprint)),
            responsiveness=responsiveness,
        )
        combined.interfaces.extend(corpus.interfaces)
        combined.responsive.update(corpus.responsive)
    return combined
