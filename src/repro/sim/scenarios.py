"""Canned simulation scenarios matching the paper's figures and epochs.

This module wires registries, plans, populations and transition clients
into ready-made :class:`~repro.sim.cdn.SimulatedInternet` instances:

* :func:`build_internet` — the full mixture the paper measures: two US
  mobile carriers (dynamic /64 pools), a European ISP (pseudorandom
  network ids), a Japanese ISP (static /48s), a US university, a European
  university department, a Japanese telco, plus a Zipf-sized tail of
  generic ISPs across countries, and the 6to4/Teredo/ISATAP client
  populations.  Top-heavy by construction, as the paper's top-5-ASN
  concentration demands.
* per-figure builders (:func:`us_university`, :func:`jp_telco`, ...)
  producing a single network whose weekly MRA plot reproduces one panel
  of Figure 2 or Figure 5.

The three measurement epochs are day numbers for 2014-03-17, 2014-09-17
and 2015-03-17 under :func:`repro.data.store.day_number`'s epoch, and
populations grow linearly so that daily address counts roughly double
across the year, as in Table 1.

``scale`` multiplies all population sizes; the default of 1.0 yields
roughly 20-30 thousand native addresses per day — the paper's shapes at
1/10000th of its volume (documented per experiment in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.store import ObservationStore, day_number
from repro.net.prefix import Prefix
from repro.sim.cdn import Network, SimulatedInternet
from repro.sim.plans import (
    DenseDhcpPlan,
    DynamicPoolPlan,
    PseudorandomNetidPlan,
    StaticIspPlan,
    TelcoStructuredPlan,
    UniversityPlan,
)
from repro.sim.registry import AddressRegistry
from repro.sim.subscribers import Population
from repro.sim.transition import TransitionConfig

#: The paper's three measurement epochs (reference days).
EPOCH_2014_03 = day_number("2014-03-17")
EPOCH_2014_09 = day_number("2014-09-17")
EPOCH_2015_03 = day_number("2015-03-17")

EPOCHS: Tuple[int, int, int] = (EPOCH_2014_03, EPOCH_2014_09, EPOCH_2015_03)

#: Population growth: fraction of subscribers already joined on day 0,
#: chosen so daily counts roughly double from March 2014 to March 2015.
GROWTH_START_FRACTION = 0.37
GROWTH_END_DAY = EPOCH_2015_03

#: Countries cycled through for the generic-ISP tail.
_TAIL_COUNTRIES = ("US", "DE", "JP", "FR", "GB", "NL", "KR", "BR", "CA", "AU")


def _population(name: str, seed: int, size: int) -> Population:
    """A population with the standard growth span."""
    return Population(
        network=name,
        seed=seed,
        size=max(4, size),
        start_day=0,
        end_day=GROWTH_END_DAY,
        start_fraction=GROWTH_START_FRACTION,
    )


def _pool_bits_for(subscribers: int, num_pools: int) -> int:
    """Size dynamic pools to gateway *connection capacity*, as confirmed
    by the paper's operator (§6.2.3): "/64s [assigned] e.g. by least
    recently used, from a pool sized according to the connection capacity
    of a gateway. Thus the /64s are reused by other subscribers ... in
    just days."

    A pool ~1.5x the daily per-pool association count reproduces all
    three observations at once: the 44-64 bit segment is nearly fully
    utilized over a week (Figure 5e), the /64s are reused — and hence
    3d-stable — within days (Table 2b), and the minority of fixed-IID
    devices on reused /64s yields "stable" full addresses in a network
    with dynamic network identifiers (§6.1.1).
    """
    # Each active subscriber's UE associates ~2.5 times a day, drawing a
    # fresh /64 each time; pools hold about twice one day's draws, so a
    # given /64 is reassigned to another subscriber within a day or two
    # (the reuse the operator confirmed) while the weekly touched-slot
    # count lands a few times above the subscriber count (the §7.1
    # overcount).
    daily_draws = max(1, int(subscribers * 0.55 * 2.5))
    per_pool = max(8, (daily_draws * 2) // max(1, num_pools))
    return max(6, min(20, int(math.log2(per_pool))))


def us_mobile(
    registry: AddressRegistry,
    seed: int,
    subscribers: int,
    name: str = "us-mobile-1",
    pool_prefix_len: int = 44,
    num_pools: int = 8,
) -> Network:
    """A US mobile carrier: dynamic /64s from pools under many /44s (5e)."""
    allocation = registry.allocate(
        name, "US", "mobile", [pool_prefix_len] * num_pools
    )
    plan = DynamicPoolPlan(
        name,
        seed,
        allocation.prefixes,
        pool_bits=_pool_bits_for(subscribers, num_pools),
    )
    return Network(allocation, plan, _population(name, seed, subscribers))


def eu_isp(
    registry: AddressRegistry, seed: int, subscribers: int, name: str = "eu-isp"
) -> Network:
    """A European ISP with on-demand pseudorandom network ids (5f)."""
    allocation = registry.allocate(name, "DE", "isp", [32])
    plan = PseudorandomNetidPlan(name, seed, allocation.prefixes[0], rotate_days=7)
    return Network(allocation, plan, _population(name, seed, subscribers))


def jp_isp(
    registry: AddressRegistry, seed: int, subscribers: int, name: str = "jp-isp"
) -> Network:
    """A Japanese ISP with static /48 delegations (5h)."""
    allocation = registry.allocate(name, "JP", "isp", [32])
    plan = StaticIspPlan(
        name, seed, allocation.prefixes[0], delegation_len=48, privacy_share=0.97
    )
    return Network(allocation, plan, _population(name, seed, subscribers))


def us_university(
    registry: AddressRegistry, seed: int, hosts: int, name: str = "us-university"
) -> Network:
    """A US university /32 with three active subnet values (2a)."""
    allocation = registry.allocate(name, "US", "university", [32])
    plan = UniversityPlan(name, seed, allocation.prefixes[0])
    return Network(allocation, plan, _population(name, seed, hosts))


def eu_univ_dept(
    registry: AddressRegistry, seed: int, hosts: int, name: str = "eu-univ-dept"
) -> Network:
    """A European department: ~100 DHCP hosts in one /64 (5g)."""
    allocation = registry.allocate(name, "NL", "university", [32])
    dept_64 = Prefix(allocation.prefixes[0].network | (0x101 << 64), 64)
    plan = DenseDhcpPlan(name, seed, dept_64)
    population = _population(name, seed, hosts)
    population.max_devices = 1  # one address per host, DHCP-style
    return Network(allocation, plan, population)


def jp_telco(
    registry: AddressRegistry, seed: int, subscribers: int, name: str = "jp-telco"
) -> Network:
    """A Japanese telco mixing dense static blocks and privacy hosts (2b)."""
    allocation = registry.allocate(name, "JP", "telco", [32])
    plan = TelcoStructuredPlan(name, seed, allocation.prefixes[0])
    return Network(allocation, plan, _population(name, seed, subscribers))


def hosting_asn(
    registry: AddressRegistry,
    seed: int,
    index: int,
    servers: int,
) -> Network:
    """A hosting/enterprise ASN: statically numbered server blocks.

    Clients here are proxies, VPN egresses and servers packed into small
    blocks — the populations behind Figure 5b's aggregating minority in
    the 112-128 bit segment and many of Table 3's dense client prefixes.
    """
    country = _TAIL_COUNTRIES[(index * 3 + 1) % len(_TAIL_COUNTRIES)]
    name = f"hosting-{country.lower()}-{index}"
    allocation = registry.allocate(name, country, "hosting", [32])
    plan = TelcoStructuredPlan(
        name,
        seed,
        allocation.prefixes[0],
        static_share=0.92,
        static_lans=4 + index % 8,
    )
    return Network(allocation, plan, _population(name, seed, servers))


def generic_isp(
    registry: AddressRegistry,
    seed: int,
    index: int,
    subscribers: int,
) -> Network:
    """One tail ISP: static delegations with a varying privacy share."""
    country = _TAIL_COUNTRIES[index % len(_TAIL_COUNTRIES)]
    name = f"isp-{country.lower()}-{index}"
    delegation = (48, 56, 60, 64)[index % 4]
    allocation = registry.allocate(name, country, "isp", [32])
    plan = StaticIspPlan(
        name,
        seed,
        allocation.prefixes[0],
        delegation_len=delegation,
        privacy_share=0.94 + 0.01 * (index % 5),
        business_share=(0.0, 0.05, 0.12, 0.25)[index % 4],
    )
    return Network(allocation, plan, _population(name, seed, subscribers))


@dataclass
class InternetConfig:
    """Size knobs for :func:`build_internet` (all scaled by ``scale``)."""

    scale: float = 1.0
    mobile1_subscribers: int = 6000
    mobile2_subscribers: int = 3500
    eu_isp_subscribers: int = 4000
    jp_isp_subscribers: int = 3000
    jp_telco_subscribers: int = 800
    university_hosts: int = 400
    dept_hosts: int = 48
    tail_asns: int = 60
    tail_base_subscribers: int = 420
    hosting_asns: int = 14
    hosting_base_servers: int = 160
    sixto4_clients: int = 1600
    teredo_clients: int = 30
    isatap_clients: int = 60

    def scaled(self, value: int) -> int:
        """Apply the scale factor with a sane floor."""
        return max(2, int(value * self.scale))


def build_internet(
    seed: int = 0, config: Optional[InternetConfig] = None
) -> SimulatedInternet:
    """Build the full simulated internet the paper-scale benches use."""
    if config is None:
        config = InternetConfig()
    registry = AddressRegistry(seed)
    transition = TransitionConfig(
        sixto4_clients=config.scaled(config.sixto4_clients),
        teredo_clients=config.scaled(config.teredo_clients),
        isatap_clients=config.scaled(config.isatap_clients),
    )
    internet = SimulatedInternet(seed=seed, registry=registry, transition=transition)

    internet.add_network(
        us_mobile(
            registry,
            seed,
            config.scaled(config.mobile1_subscribers),
            name="us-mobile-1",
            pool_prefix_len=44,
            num_pools=8,
        )
    )
    internet.add_network(
        us_mobile(
            registry,
            seed,
            config.scaled(config.mobile2_subscribers),
            name="us-mobile-2",
            pool_prefix_len=40,
            num_pools=4,
        )
    )
    internet.add_network(
        eu_isp(registry, seed, config.scaled(config.eu_isp_subscribers))
    )
    internet.add_network(
        jp_isp(registry, seed, config.scaled(config.jp_isp_subscribers))
    )
    internet.add_network(
        jp_telco(registry, seed, config.scaled(config.jp_telco_subscribers))
    )
    internet.add_network(
        us_university(registry, seed, config.scaled(config.university_hosts))
    )
    internet.add_network(
        # The department keeps a realistic absolute size (~100 hosts in
        # one /64, as in Figure 5g) rather than scaling to nothing.
        eu_univ_dept(registry, seed, max(40, config.scaled(config.dept_hosts)))
    )

    for index in range(config.tail_asns):
        # Zipf-ish tail: later ASNs are smaller.
        size = config.scaled(
            max(8, int(config.tail_base_subscribers / (index + 2) ** 0.9))
        )
        internet.add_network(generic_isp(registry, seed, index, size))
    for index in range(config.hosting_asns):
        servers = config.scaled(
            max(20, int(config.hosting_base_servers / (index + 1) ** 0.5))
        )
        internet.add_network(hosting_asn(registry, seed, index, servers))
    return internet


def epoch_days(reference_day: int, window: int = 7, week_length: int = 7) -> List[int]:
    """The days one epoch's analysis needs: window + week + trailing window."""
    return list(
        range(reference_day - window - 1, reference_day + week_length + window)
    )


def build_epoch_store(
    internet: SimulatedInternet,
    reference_day: int,
    include_transition: bool = True,
) -> ObservationStore:
    """Generate the daily logs one epoch's analysis consumes."""
    return internet.build_store(
        epoch_days(reference_day), include_transition=include_transition
    )


def single_network_store(
    network: Network,
    days: Sequence[int],
    seed: int = 0,
) -> ObservationStore:
    """Daily logs for one network in isolation (figure-panel scenarios)."""
    internet = SimulatedInternet(seed=seed, registry=None, transition=None)
    # A fresh registry would re-allocate space; reuse the network as-is.
    internet.networks = [network]
    return internet.build_store(days, include_transition=False)
