"""Subscriber populations and their daily activity model.

The paper's vantage point sees a client address only when the client
actually fetches CDN-hosted content that day, so observed stability is
bounded by visit frequency (§5.1: "even a long-lived client address ...
may appear to be ephemeral").  The activity model therefore matters as
much as the addressing plans: it is what produces the stepwise decay of
Figure 4 and the daily-versus-weekly gaps of Table 1.

Subscribers belong to *visit cohorts* — daily, frequent, occasional and
rare — each with its own per-day visit probability.  Population growth
between the paper's three epochs (March 2014 → March 2015 roughly doubled
address counts) is modelled by giving each subscriber a deterministic
join day, linearly spread, so later days simply see more subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.sim import rng
from repro.sim.plans import Device, make_device

#: Visit cohorts: (label, share of subscribers, per-day visit probability).
DEFAULT_COHORTS: Tuple[Tuple[str, float, float], ...] = (
    ("daily", 0.45, 0.92),
    ("frequent", 0.30, 0.45),
    ("occasional", 0.17, 0.15),
    ("rare", 0.08, 0.03),
)


@dataclass
class Population:
    """The subscriber population of one simulated network.

    Attributes:
        network: the owning network's name (keys random substreams).
        seed: root simulation seed.
        size: total subscribers ever (the population at ``end_day``).
        start_day / end_day: the growth span; at ``start_day`` a
            ``start_fraction`` share has joined, reaching 100% by
            ``end_day``.
        max_devices: upper bound on devices per subscriber.
        cohorts: visit cohorts (label, share, daily visit probability).
    """

    network: str
    seed: int
    size: int
    start_day: int = 0
    end_day: int = 365
    start_fraction: float = 0.5
    max_devices: int = 4
    cohorts: Tuple[Tuple[str, float, float], ...] = DEFAULT_COHORTS

    def __post_init__(self) -> None:
        # Per-subscriber facts are immutable, so memoize them: the daily
        # generation loop asks for each subscriber's cohort and devices on
        # every simulated day.
        self._cohort_cache: dict = {}
        self._device_cache: dict = {}

    def joined_count(self, day: int) -> int:
        """Number of subscribers that have joined by ``day``."""
        if day >= self.end_day:
            return self.size
        span = max(1, self.end_day - self.start_day)
        fraction = self.start_fraction + (1.0 - self.start_fraction) * (
            (day - self.start_day) / span
        )
        fraction = min(1.0, max(0.0, fraction))
        return int(round(self.size * fraction))

    def cohort(self, subscriber_id: int) -> Tuple[str, float]:
        """The (label, daily visit probability) of one subscriber."""
        cached = self._cohort_cache.get(subscriber_id)
        if cached is not None:
            return cached
        draw = rng.stable_uniform(self.seed, "cohort", self.network, subscriber_id)
        cumulative = 0.0
        result = None
        for label, share, probability in self.cohorts:
            cumulative += share
            if draw < cumulative:
                result = (label, probability)
                break
        if result is None:
            label, _share, probability = self.cohorts[-1]
            result = (label, probability)
        self._cohort_cache[subscriber_id] = result
        return result

    def device_count(self, subscriber_id: int) -> int:
        """How many devices this subscriber owns (1..max_devices)."""
        draw = rng.stable_u64(self.seed, "devices", self.network, subscriber_id)
        return 1 + draw % self.max_devices

    def devices(self, subscriber_id: int) -> List[Device]:
        """The subscriber's devices, with deterministic MACs."""
        cached = self._device_cache.get(subscriber_id)
        if cached is not None:
            return cached
        result = [
            make_device(self.seed, self.network, subscriber_id, index)
            for index in range(self.device_count(subscriber_id))
        ]
        self._device_cache[subscriber_id] = result
        return result

    def is_active(self, subscriber_id: int, day: int) -> bool:
        """Did this subscriber visit the CDN on ``day``?"""
        if subscriber_id >= self.joined_count(day):
            return False
        _label, probability = self.cohort(subscriber_id)
        draw = rng.stable_uniform(
            self.seed, "visit", self.network, subscriber_id, day
        )
        return draw < probability

    def active_subscribers(self, day: int) -> Iterator[int]:
        """Yield the ids of subscribers active on ``day``."""
        for subscriber_id in range(self.joined_count(day)):
            if self.is_active(subscriber_id, day):
                yield subscriber_id

    def device_is_active(self, device: Device, day: int) -> bool:
        """Did this particular device generate traffic on ``day``?

        The subscriber's first device always does (someone triggered the
        visit); extra devices each join with probability 0.75.
        """
        if device.device_index == 0:
            return True
        draw = rng.stable_uniform(
            self.seed,
            "device-visit",
            self.network,
            device.subscriber_id,
            device.device_index,
            day,
        )
        return draw < 0.75
