"""Transition-mechanism client populations: 6to4, Teredo, ISATAP.

Table 1 reports these three mechanisms separately before culling them,
and Figure 5d shows the 6to4 MRA plot whose 16–48 bit segment is the
embedded IPv4 address — "essentially that which Kohler et al. studied
years ago".  To reproduce those shapes we synthesize:

* **6to4** (``2002:V4::/48``): the client's IPv4 address lands in bits
  16..47.  IPv4 addresses are drawn from a clustered allocation model
  (a set of /8-to-/16-sized ISP blocks with dense low halves) so the
  embedded segment shows IPv4-like aggregation structure.
* **Teredo** (``2001:0:S:F:P:C``): server IPv4 from a handful of public
  relays, flags, obfuscated port and client IPv4 (XOR ~).
* **ISATAP**: an enterprise /64 with IID ``[02]00:5efe:V4``, where the
  IPv4 is usually RFC1918 space.

Volumes relative to native traffic are set by the scenario configs to
follow Table 1's shares (6to4 a few percent and shrinking, Teredo and
ISATAP negligible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.net import addr
from repro.sim import rng

#: Simulated IPv4 ISP blocks feeding 6to4: (base, prefix length).
IPV4_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (0x18000000, 8),   # 24.0.0.0/8   cable
    (0x3E000000, 9),   # 62.0.0.0/9   eu isp
    (0x50800000, 10),  # 80.128.0.0/10
    (0x5BC00000, 12),  # 91.192.0.0/12
    (0x7B400000, 11),  # 123.64.0.0/11 apnic
    (0xB9000000, 13),  # 185.0.0.0/13
)

#: Well-known Teredo server IPv4 addresses (a small set, as in practice).
TEREDO_SERVERS: Tuple[int, ...] = (
    0x41C06006,  # 65.192.96.6
    0x53EF0C35,  # 83.239.12.53
    0xD945AB0C,  # 217.69.171.12
)


def _clustered_ipv4(seed: int, key: str, index: int) -> int:
    """Draw an IPv4 address clustered into the simulated ISP blocks.

    Low bits are biased dense (many hosts share block low halves), giving
    the embedded-IPv4 segment of Figure 5d its aggregation profile.
    """
    pick = rng.stable_u64(seed, "v4block", key, index)
    base, length = IPV4_BLOCKS[pick % len(IPV4_BLOCKS)]
    host_bits = 32 - length
    # Square a uniform draw to bias toward the low end of the block.
    uniform = rng.stable_uniform(seed, "v4host", key, index)
    offset = int((uniform * uniform) * ((1 << host_bits) - 1))
    return base | offset


@dataclass
class TransitionConfig:
    """Population sizes for the three transition mechanisms."""

    sixto4_clients: int = 0
    teredo_clients: int = 0
    isatap_clients: int = 0
    name: str = "transition"


def sixto4_address(seed: int, client_index: int, day: int) -> int:
    """One 6to4 client's address for a day.

    40% of clients sit behind dynamically assigned IPv4 (a fresh address,
    hence a fresh 6to4 /48, each day — why the paper sees weekly 6to4
    counts several times the daily ones); the rest keep a fixed IPv4.
    The IID mimics a home-router population: mostly low IIDs (the 6to4
    router itself) with some privacy hosts regenerating daily.
    """
    dynamic_v4 = rng.stable_uniform(seed, "6to4-dyn", client_index) < 0.4
    v4_key = client_index * 1000 + day if dynamic_v4 else client_index
    ipv4 = _clustered_ipv4(seed, "6to4", v4_key)
    high = (0x2002 << 48) | (ipv4 << 16)  # subnet 0 within the /48
    style = rng.stable_u64(seed, "6to4-style", client_index) % 10
    if style < 6:
        low = 1  # conventional router address 2002:V4::1
    elif style < 8:
        low = 0x0200 << 48 | ipv4  # IPv4-derived IID convention
    else:
        low = rng.stable_u64(seed, "6to4-priv", client_index, day) & ~(1 << 57)
    return addr.from_halves(high, low)


def teredo_address(seed: int, client_index: int, day: int) -> int:
    """One Teredo client's address for a day (RFC 4380 layout).

    NAT mappings churn, so the obfuscated port varies per day.
    """
    server = TEREDO_SERVERS[
        rng.stable_u64(seed, "teredo-server", client_index) % len(TEREDO_SERVERS)
    ]
    client_v4 = _clustered_ipv4(seed, "teredo", client_index)
    port = 1024 + rng.stable_u64(seed, "teredo-port", client_index, day) % 60000
    flags = 0x8000  # cone NAT
    high = (0x20010000 << 32) | server
    low = (flags << 48) | ((port ^ 0xFFFF) << 32) | (client_v4 ^ 0xFFFFFFFF)
    return addr.from_halves(high, low)


def isatap_address(seed: int, client_index: int, day: int) -> int:
    """One ISATAP host address (enterprise /64 + ``5efe`` IID)."""
    site = rng.stable_u64(seed, "isatap-site", client_index) % 64
    high = (addr.parse("2001:db8:100::") >> 64) | site
    # RFC1918 10.0.0.0/8 host address embedded in the IID.
    ipv4 = 0x0A000000 | rng.stable_u64(seed, "isatap-v4", client_index) % (1 << 24)
    low = (0x0000_5EFE << 32) | ipv4
    return addr.from_halves(high, low)


def generate_transition_day(
    seed: int, config: TransitionConfig, day: int, activity: float = 0.5
) -> List[int]:
    """All transition-mechanism client addresses active on one day.

    Each client independently appears with probability ``activity``,
    keyed deterministically, so days overlap realistically.
    """
    addresses: List[int] = []
    populations = (
        ("6to4", config.sixto4_clients, sixto4_address),
        ("teredo", config.teredo_clients, teredo_address),
        ("isatap", config.isatap_clients, isatap_address),
    )
    for label, count, generator in populations:
        for index in range(count):
            draw = rng.stable_uniform(seed, "transition-act", label, index, day)
            if draw < activity:
                addresses.append(generator(seed, index, day))
    return addresses
