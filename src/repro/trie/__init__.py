"""Patricia/radix tree substrate and aguri-style aggregation operations."""

from repro.trie.aguri import (
    aguri_aggregate,
    addresses_in_dense_prefixes,
    build_tree,
    compute_dense_prefixes,
    compute_dense_prefixes_tree,
    dense_prefixes,
    dense_prefixes_fixed,
    densify,
    density_threshold,
    profile,
    widen_dense_prefixes,
)
from repro.trie.radix import RadixNode, RadixTree
from repro.trie.render import render_dense, render_tree

__all__ = [
    "RadixNode",
    "RadixTree",
    "addresses_in_dense_prefixes",
    "aguri_aggregate",
    "build_tree",
    "compute_dense_prefixes",
    "compute_dense_prefixes_tree",
    "dense_prefixes",
    "dense_prefixes_fixed",
    "densify",
    "density_threshold",
    "profile",
    "widen_dense_prefixes",
    "render_dense",
    "render_tree",
]
