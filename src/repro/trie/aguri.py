"""Aguri-style aggregation and the paper's *densify* operation.

Two aggregation policies run over the :class:`~repro.trie.radix.RadixTree`:

* :func:`aguri_aggregate` — Cho et al.'s original traffic-profiler rule:
  a node keeps its count only if it meets a *percentage of the total*;
  otherwise the count is pushed up to its parent.  The paper cites this as
  the inspiration for its spatial method.

* :func:`densify` — the paper's new rule (§5.2.3): children are folded into
  a node when the combined count makes the node's prefix meet a desired
  minimum *density* ``n / 2**(128 - p)``.  After densification, the
  least-specific dense prefixes are nodes of the tree, and the sparse
  remainder sits unaggregated at the leaves.

A fixed-length fast path (:func:`dense_prefixes_fixed`) implements the
paper's step-1/step-3 shortcut ("add each address with a /p and skip to
step 3"), which needs no tree at all.
"""

from __future__ import annotations

import decimal
from collections import Counter
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net import addr
from repro.net.addr import ADDRESS_BITS
from repro.net.prefix import Prefix, check_length
from repro.trie.radix import RadixNode, RadixTree


def build_tree(addresses: Iterable[int]) -> RadixTree:
    """Populate a radix tree with addresses, each a /128 with count 1.

    Duplicate addresses accumulate on the same node; callers who want
    distinct-address semantics should deduplicate first.
    """
    tree = RadixTree()
    for value in addresses:
        tree.add_address(value)
    return tree


def density_threshold(n: int, p: int, length: int) -> int:
    """Minimum count for a length-``length`` prefix to meet n@/p density.

    The desired minimum density is ``n / 2**(128 - p)``.  A length-``q``
    prefix spans ``2**(128 - q)`` addresses, so it meets the density when
    its count is at least ``n * 2**(p - q)`` — which for ``q > p`` is a
    fraction, i.e. any single observation suffices.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    check_length(p)
    check_length(length)
    if length >= p:
        shift = length - p
        # ceil(n / 2**shift), never below 1.
        return max(1, (n + (1 << shift) - 1) >> shift)
    return n << (p - length)


def densify(tree: RadixTree, n: int, p: int, max_length: int = 127) -> None:
    """Aggregate the tree in place so dense prefixes become single nodes.

    Implements the paper's densify post-order traversal: when visiting a
    node that has children and whose subtree count meets the density
    ``n / 2**(128 - p)`` for the node's own prefix length, the children are
    folded into the node.  Nodes longer than ``max_length`` (127 per the
    paper, so a lone /128 never reports as a "prefix") always fold upward
    when their parent qualifies.
    """
    check_length(max_length)
    for node in tree.nodes_postorder():
        if node.is_leaf:
            continue
        if node.length > max_length:
            tree.absorb_children(node)
            continue
        combined = node.subtree_count
        if combined >= density_threshold(n, p, node.length):
            tree.absorb_children(node)


def dense_prefixes(
    tree: RadixTree, n: int, min_length: int = 0, max_length: int = 127
) -> List[Tuple[int, int, int]]:
    """Report (network, length, count) for densified nodes with count >= n.

    Run after :func:`densify`; performs the paper's step 3.  Sparse
    addresses remain as low-count nodes and are skipped.  ``min_length``
    optionally filters out prefixes shorter than the requested class;
    ``max_length`` defaults to 127 per the paper, so a lone /128 address
    never reports as a dense *prefix*.
    """
    results: List[Tuple[int, int, int]] = []
    for network, length, count in tree.counted_prefixes():
        if count >= n and min_length <= length <= max_length:
            results.append((network, length, count))
    results.sort()
    return results


def widen_dense_prefixes(
    found: Iterable[Tuple[int, int, int]], p: int
) -> List[Tuple[int, int, int]]:
    """Widen reported prefixes longer than ``p`` to exactly /p and merge.

    Prefixes longer than ``p`` are truncated to /p, and clusters landing
    on the same /p have their counts summed.  Prefixes already shorter
    than (or equal to) ``p`` are kept as-is — and because widening only
    *shortens* lengths down to ``p``, a widened /p can come to sit inside
    a kept shorter prefix when the input list contains nested prefixes
    (e.g. tree reports built with :meth:`RadixTree.add_prefix`, or dense
    lists merged across days).  Such nested entries are dropped after
    widening: a containing prefix's count already includes the addresses
    of everything below it, so keeping both would double-count.  The
    result is guaranteed non-overlapping whenever containing prefixes
    carry subtree-total counts (as all densify reports do).
    """
    check_length(p)
    merged: Dict[Tuple[int, int], int] = {}
    for network, length, count in found:
        if length > p:
            network, length = addr.truncate(network, p), p
        key = (network, length)
        merged[key] = merged.get(key, 0) + count
    result: List[Tuple[int, int, int]] = []
    # Sorted by (network, length), a nested prefix immediately follows a
    # prefix that contains it or is disjoint from every kept one, so a
    # single look-back at the last kept entry suffices.
    for (network, length), count in sorted(merged.items()):
        if result:
            kept_network, kept_length, _kept_count = result[-1]
            if kept_length <= length and addr.truncate(network, kept_length) == kept_network:
                continue
        result.append((network, length, count))
    return result


def compute_dense_prefixes_tree(
    addresses: Iterable[int], n: int, p: int, widen: bool = False
) -> List[Tuple[int, int, int]]:
    """Tree-based general densify: build tree, densify, report.

    The reference implementation — one :class:`RadixNode` per address,
    then the paper's post-order fold.  Kept for verification: the
    array-native engine (:func:`repro.core.spatial.general_dense_prefixes`)
    is asserted bit-identical to this path in the tests and in
    ``benchmarks/bench_spatial.py``.
    """
    tree = build_tree(set(addresses))
    densify(tree, n, p)
    found = dense_prefixes(tree, n)
    if not widen:
        return found
    return widen_dense_prefixes(found, p)


def compute_dense_prefixes(
    addresses: Iterable[int], n: int, p: int, widen: bool = False
) -> List[Tuple[int, int, int]]:
    """End-to-end general densify of an address set.

    Returns the least-specific non-overlapping prefixes meeting density
    ``n / 2**(128 - p)`` that contain at least ``n`` observed addresses,
    as (network, length, count) tuples sorted by network.

    Dense aggregates form at Patricia branch points, so a cluster whose
    addresses share, say, 125 leading bits reports as a /125 even when the
    requested density class is 2@/112.  With ``widen=True``, any reported
    prefix longer than ``p`` is widened to exactly /p via
    :func:`widen_dense_prefixes` (merging clusters that share a /p and
    deduplicating nested prefixes), which is the useful form when
    generating /p-sized scan targets.

    Routed through the array-native spatial engine
    (:func:`repro.core.spatial.general_dense_prefixes`), which computes
    the identical report from the sorted address columns;
    :func:`compute_dense_prefixes_tree` remains as the reference.
    """
    from repro.core.spatial import general_dense_prefixes

    return general_dense_prefixes(addresses, n, p, widen=widen)


def dense_prefixes_fixed(
    addresses: Iterable[int], n: int, p: int
) -> List[Tuple[int, int, int]]:
    """Fixed-length dense-prefix computation (the paper's shortcut).

    Equivalent to adding every address with a /p and reporting nodes with
    count >= n: no tree required, just counting distinct addresses per
    truncated /p network.  Returns (network, p, count) tuples sorted by
    network.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    check_length(p)
    counts: Counter[int] = Counter()
    for value in set(addresses):
        counts[addr.truncate(value, p)] += 1
    return sorted(
        (network, p, count) for network, count in counts.items() if count >= n
    )


def addresses_in_dense_prefixes(
    addresses: Iterable[int], dense: List[Tuple[int, int, int]]
) -> List[int]:
    """Return the subset of addresses contained in any dense prefix.

    ``dense`` is a (network, length, count) list as returned by the dense
    prefix functions; because the prefixes are non-overlapping and sorted,
    a merge scan over sorted addresses runs in linear time.
    """
    if not dense:
        return []
    spans = [
        (network, network | ((1 << (ADDRESS_BITS - length)) - 1))
        for network, length, _count in dense
    ]
    result: List[int] = []
    index = 0
    for value in sorted(set(addresses)):
        while index < len(spans) and spans[index][1] < value:
            index += 1
        if index == len(spans):
            break
        if spans[index][0] <= value <= spans[index][1]:
            result.append(value)
    return result


def aguri_aggregate(tree: RadixTree, fraction: float) -> None:
    """Cho et al.'s percentage-of-total aggregation, in place.

    Every node whose count is below ``fraction`` of the tree's total count
    has its count pushed up to its nearest ancestor; the root absorbs
    whatever reaches it.  Afterwards, zero-count leaves are pruned and
    pass-through branch nodes compacted, yielding the aguri "profile":
    the prefixes that each account for at least the given share.

    A node whose count equals the threshold exactly is kept: "at least
    the given share" is a closed bound.  The comparison is made in exact
    integers — ``fraction`` is read as the decimal it was written as
    (e.g. ``0.07`` means 7/100) — because the float ``fraction * total``
    product can land a hair above the true threshold (``0.07 * 100`` is
    ``7.000000000000001``) and misclassify a boundary count.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1]: {fraction}")
    total = tree.total_count
    if total == 0:
        return
    ratio = Fraction(decimal.Decimal(repr(float(fraction))))
    numerator, denominator = ratio.numerator, ratio.denominator

    # Post-order walk with explicit parent tracking, pushing small counts up.
    parents: Dict[int, Optional[RadixNode]] = {id(tree.root): None}
    order: List[RadixNode] = []
    stack: List[RadixNode] = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        for child in (node.left, node.right):
            if child is not None:
                parents[id(child)] = node
                stack.append(child)
    for node in reversed(order):  # children before parents
        parent = parents[id(node)]
        if parent is None:
            continue
        # count < fraction * total, evaluated exactly over integers.
        if node.count * denominator < numerator * total:
            parent.count += node.count
            node.count = 0

    _prune_zero_leaves(tree)
    tree.compact()


def _prune_zero_leaves(tree: RadixTree) -> None:
    """Remove zero-count leaf nodes (repeatedly, as removals expose more)."""
    changed = True
    while changed:
        changed = False
        stack: List[Tuple[Optional[RadixNode], RadixNode]] = [(None, tree.root)]
        while stack:
            parent, node = stack.pop()
            if node.is_leaf and node.count == 0 and parent is not None:
                if parent.left is node:
                    parent.left = None
                else:
                    parent.right = None
                tree._node_count -= 1
                changed = True
                continue
            if node.left is not None:
                stack.append((node, node.left))
            if node.right is not None:
                stack.append((node, node.right))


def profile(tree: RadixTree) -> List[Tuple[Prefix, int]]:
    """Return the (prefix, count) profile of a tree after aggregation.

    Nodes with zero count (structural branch points, possibly the root)
    are omitted; output is sorted by (network, length).
    """
    entries = [
        (Prefix(network, length), count)
        for network, length, count in tree.counted_prefixes()
    ]
    entries.sort(key=lambda item: item[0].key)
    return entries
