"""Binary Patricia (radix) tree over the 128-bit IPv6 address space.

This is the data structure underlying aguri-style aggregation (Cho et al.)
and the paper's new *densify* operation (§5.2.3).  Each node corresponds to
a prefix (network, length); internal nodes are created only at branch
points, Patricia-style, so the tree stays proportional to the number of
inserted items rather than to the address-space depth.

Each node carries a ``count``, the number of observations attributed to
exactly that node (not including descendants); :attr:`RadixNode.subtree_count`
gives the inclusive total.  Aggregation operations move counts from
children onto ancestors and delete the children — the "pruning" the paper
describes.

The implementation is deliberately iterative (explicit stacks) so that very
deep, degenerate insert orders cannot hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.net import addr
from repro.net.addr import ADDRESS_BITS
from repro.net.prefix import Prefix, check_length


class RadixNode:
    """A node of the Patricia tree: a prefix with a local count.

    Attributes:
        network: the node's network address (host bits zero).
        length: the node's prefix length.
        count: observations attributed to this exact prefix.
        left: child whose next bit is 0, or None.
        right: child whose next bit is 1, or None.
    """

    __slots__ = ("network", "length", "count", "left", "right")

    def __init__(self, network: int, length: int, count: int = 0) -> None:
        self.network = network
        self.length = length
        self.count = count
        self.left: Optional[RadixNode] = None
        self.right: Optional[RadixNode] = None

    @property
    def prefix(self) -> Prefix:
        """The node's prefix as a :class:`Prefix` object."""
        return Prefix(self.network, self.length)

    @property
    def is_leaf(self) -> bool:
        """True if the node has no children."""
        return self.left is None and self.right is None

    @property
    def subtree_count(self) -> int:
        """Total count of this node plus all descendants."""
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += node.count
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total

    def children(self) -> Tuple[Optional["RadixNode"], Optional["RadixNode"]]:
        """Return the (left, right) child pair."""
        return self.left, self.right

    def __repr__(self) -> str:
        return (
            f"RadixNode({addr.format_address(self.network)}/{self.length}, "
            f"count={self.count})"
        )


def _branch_bit(value: int, length: int) -> int:
    """Return the bit of ``value`` immediately after a length-``length`` prefix."""
    return (value >> (ADDRESS_BITS - 1 - length)) & 1


class RadixTree:
    """Patricia tree keyed by (network, prefix length) with counts.

    Supports insertion of addresses (as /128s) or arbitrary prefixes,
    longest-prefix match, and the traversals that aggregation needs.
    """

    def __init__(self) -> None:
        self.root = RadixNode(0, 0)
        self._node_count = 1

    def __len__(self) -> int:
        """Number of nodes currently in the tree (including the root)."""
        return self._node_count

    @property
    def total_count(self) -> int:
        """Sum of all node counts in the tree."""
        return self.root.subtree_count

    def add_address(self, value: int, count: int = 1) -> RadixNode:
        """Insert an address as a /128 with the given count."""
        return self.add_prefix(value, ADDRESS_BITS, count)

    def add_prefix(self, network: int, length: int, count: int = 1) -> RadixNode:
        """Insert (or update) a prefix node, adding ``count`` to it.

        Creates intermediate branch nodes as needed; returns the node for
        the inserted prefix.
        """
        addr.check_address(network)
        check_length(length)
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        network = addr.truncate(network, length)

        parent: Optional[RadixNode] = None
        node = self.root
        while True:
            shared = addr.common_prefix_len(network, node.network)
            shared = min(shared, node.length, length)

            if shared < node.length:
                # The new prefix diverges inside this node's edge: split by
                # inserting a branch node for the shared prefix.
                branch = RadixNode(addr.truncate(network, shared), shared)
                self._node_count += 1
                self._replace_child(parent, node, branch)
                self._attach(branch, node)
                if shared == length:
                    # New prefix IS the branch point.
                    branch.count += count
                    return branch
                leaf = RadixNode(network, length, count)
                self._node_count += 1
                self._attach(branch, leaf)
                return leaf

            if node.length == length:
                # Exact node already exists.
                node.count += count
                return node

            # Descend: node.length < length and the prefixes agree so far.
            bit = _branch_bit(network, node.length)
            child = node.right if bit else node.left
            if child is None:
                leaf = RadixNode(network, length, count)
                self._node_count += 1
                self._attach(node, leaf)
                return leaf
            parent = node
            node = child

    def _attach(self, parent: RadixNode, child: RadixNode) -> None:
        """Attach ``child`` under ``parent`` on the side its next bit selects."""
        if _branch_bit(child.network, parent.length):
            parent.right = child
        else:
            parent.left = child

    def _replace_child(
        self, parent: Optional[RadixNode], old: RadixNode, new: RadixNode
    ) -> None:
        """Swap ``old`` for ``new`` under ``parent`` (or at the root)."""
        if parent is None:
            self.root = new
        elif parent.left is old:
            parent.left = new
        else:
            parent.right = new

    def lookup(self, value: int) -> Optional[RadixNode]:
        """Longest-prefix match: deepest node whose prefix contains ``value``.

        Only nodes with a positive count qualify; returns None when no
        counted prefix covers the address.
        """
        addr.check_address(value)
        best: Optional[RadixNode] = None
        node: Optional[RadixNode] = self.root
        while node is not None:
            if addr.truncate(value, node.length) != node.network:
                break
            if node.count > 0:
                best = node
            if node.length == ADDRESS_BITS:
                break
            bit = _branch_bit(value, node.length)
            node = node.right if bit else node.left
        return best

    def find(self, network: int, length: int) -> Optional[RadixNode]:
        """Return the exact node for (network, length), or None."""
        addr.check_address(network)
        check_length(length)
        network = addr.truncate(network, length)
        node: Optional[RadixNode] = self.root
        while node is not None:
            if node.length > length:
                return None
            if addr.truncate(network, node.length) != node.network:
                return None
            if node.length == length:
                return node if node.network == network else None
            bit = _branch_bit(network, node.length)
            node = node.right if bit else node.left
        return None

    def nodes_preorder(self) -> Iterator[RadixNode]:
        """Yield nodes in pre-order (parent before children, left first).

        For prefixes this is also in-order by (network, length): a parent's
        network is never greater than its children's.
        """
        stack: List[RadixNode] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def nodes_postorder(self) -> Iterator[RadixNode]:
        """Yield nodes in post-order (children before parent).

        This is the traversal the densify operation uses: by the time a
        node is visited, its children's counts are final.
        """
        stack: List[Tuple[RadixNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            if node.right is not None:
                stack.append((node.right, False))
            if node.left is not None:
                stack.append((node.left, False))

    def counted_prefixes(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (network, length, count) for every node with count > 0."""
        for node in self.nodes_preorder():
            if node.count > 0:
                yield node.network, node.length, node.count

    def absorb_children(self, node: RadixNode) -> None:
        """Fold the entire subtree below ``node`` into its own count.

        This is aguri "pruning": the node takes on its descendants' counts
        and the descendants are removed.
        """
        if node.is_leaf:
            return
        absorbed = node.subtree_count - node.count
        removed = self._count_nodes(node) - 1
        node.count += absorbed
        node.left = None
        node.right = None
        self._node_count -= removed

    @staticmethod
    def _count_nodes(node: RadixNode) -> int:
        """Return the number of nodes in the subtree rooted at ``node``."""
        total = 0
        stack = [node]
        while stack:
            current = stack.pop()
            total += 1
            if current.left is not None:
                stack.append(current.left)
            if current.right is not None:
                stack.append(current.right)
        return total

    def compact(self) -> None:
        """Remove zero-count pass-through branch nodes with a single child.

        Splitting and aggregation can leave chains of structural nodes; this
        restores the Patricia invariant that internal zero-count nodes have
        two children.  The root is always kept.
        """
        # Iterative rebuild: walk with parent links, splicing as we go.
        changed = True
        while changed:
            changed = False
            stack: List[Tuple[Optional[RadixNode], RadixNode]] = [(None, self.root)]
            while stack:
                parent, node = stack.pop()
                only_child = None
                if node.count == 0 and parent is not None:
                    if node.left is not None and node.right is None:
                        only_child = node.left
                    elif node.right is not None and node.left is None:
                        only_child = node.right
                if only_child is not None:
                    self._replace_child(parent, node, only_child)
                    self._node_count -= 1
                    changed = True
                    stack.append((parent, only_child))
                    continue
                if node.left is not None:
                    stack.append((node, node.left))
                if node.right is not None:
                    stack.append((node, node.right))
