"""Aguri-style text rendering of aggregation trees.

The original aguri tool prints its profile as an indented tree: each
kept prefix on one line, indented by its depth under the previously
printed ancestor, with its count and share of the total.  This module
reproduces that output for :class:`~repro.trie.radix.RadixTree`
instances after :func:`~repro.trie.aguri.aguri_aggregate` or
:func:`~repro.trie.aguri.densify`, e.g.::

    %total  count  prefix
     100.0%   200  ::/0
      45.0%    90    2001:db8::/32
      30.0%    60      2001:db8:1::/48
      25.0%    50    2a00:100::/32

Useful for eyeballing aggregation results and for diffing profiles in
tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net import addr
from repro.trie.radix import RadixNode, RadixTree


def render_tree(
    tree: RadixTree,
    min_count: int = 1,
    show_share: bool = True,
) -> str:
    """Render the counted nodes of a tree as an aguri-style profile.

    Nodes with counts below ``min_count`` are skipped (their counts were
    either aggregated away or they are sparse leaves the caller does not
    care about); indentation reflects prefix nesting among the *printed*
    nodes, as in aguri.
    """
    total = tree.total_count
    lines: List[str] = []
    header = "%total   count  prefix" if show_share else "  count  prefix"
    lines.append(header)

    # Pre-order traversal tracking the stack of printed ancestors.
    stack: List[Tuple[RadixNode, int]] = [(tree.root, 0)]
    printed_ancestors: List[Tuple[int, int, int]] = []  # (network, length, depth)
    entries: List[Tuple[RadixNode, int]] = []

    def depth_for(node: RadixNode) -> int:
        while printed_ancestors:
            network, length, depth = printed_ancestors[-1]
            if (
                length <= node.length
                and addr.truncate(node.network, length) == network
                and not (network == node.network and length == node.length)
            ):
                return depth + 1
            printed_ancestors.pop()
        return 0

    # Collect nodes in pre-order (sorted traversal: left before right).
    order: List[RadixNode] = []
    walk: List[RadixNode] = [tree.root]
    while walk:
        node = walk.pop()
        order.append(node)
        if node.right is not None:
            walk.append(node.right)
        if node.left is not None:
            walk.append(node.left)

    for node in order:
        if node.count < min_count:
            continue
        depth = depth_for(node)
        printed_ancestors.append((node.network, node.length, depth))
        prefix_text = f"{addr.format_address(node.network)}/{node.length}"
        indent = "  " * depth
        if show_share:
            share = node.count / total if total else 0.0
            lines.append(f"{share:6.1%}  {node.count:6d}  {indent}{prefix_text}")
        else:
            lines.append(f"{node.count:7d}  {indent}{prefix_text}")
    return "\n".join(lines)


def render_dense(
    dense: List[Tuple[int, int, int]], title: Optional[str] = None
) -> str:
    """Render a dense-prefix list as plain sorted lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for network, length, count in sorted(dense):
        lines.append(
            f"  {addr.format_address(network)}/{length}  ({count} addrs)"
        )
    if not dense:
        lines.append("  (none)")
    return "\n".join(lines)
