"""Visualization: MRA plots, CCDFs and box summaries as data + ASCII."""

from repro.viz.ascii import AsciiChart, Series
from repro.viz.boxplot import BoxStats, render_ascii as render_boxplot, segment_box_stats
from repro.viz.ccdf import CcdfPlot, ccdf_points, per_asn_counts
from repro.viz.export import (
    read_series_csv,
    write_boxstats_csv,
    write_ccdf_csv,
    write_mra_csv,
    write_series_csv,
)
from repro.viz.mra_plot import MraPlot, mra_plot

__all__ = [
    "AsciiChart",
    "BoxStats",
    "CcdfPlot",
    "MraPlot",
    "Series",
    "ccdf_points",
    "mra_plot",
    "per_asn_counts",
    "read_series_csv",
    "render_boxplot",
    "segment_box_stats",
    "write_boxstats_csv",
    "write_ccdf_csv",
    "write_mra_csv",
    "write_series_csv",
]
