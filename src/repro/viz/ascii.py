"""Minimal ASCII chart rendering for terminal-friendly figures.

The benchmarks regenerate every figure of the paper as *data series*; this
module renders those series as text so the shapes are inspectable without
a plotting stack (matplotlib is not available offline).  Log scales are
supported on both axes, since every figure in the paper uses at least one.

The renderer is intentionally small: plot points onto a character grid,
one marker per series, with axis annotations.  The benchmark output files
embed these charts next to the numeric rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: Markers assigned to successive series.
MARKERS = "*o+x#@%"


@dataclass
class Series:
    """One plottable series: a label and its (x, y) points."""

    label: str
    points: List[Tuple[float, float]]


@dataclass
class AsciiChart:
    """A character-grid chart with optional log axes.

    Attributes:
        width / height: interior plot size in characters.
        log_x / log_y: use logarithmic scaling on that axis.
        title: printed above the grid.
    """

    width: int = 72
    height: int = 20
    log_x: bool = False
    log_y: bool = False
    title: str = ""
    series: List[Series] = field(default_factory=list)

    def add_series(self, label: str, points: Sequence[Tuple[float, float]]) -> None:
        """Add one series (points with non-positive values on a log axis
        are dropped at render time)."""
        self.series.append(Series(label=label, points=list(points)))

    def _transform(self, value: float, log_scale: bool) -> Optional[float]:
        if log_scale:
            if value <= 0:
                return None
            return math.log10(value)
        return value

    def _bounds(self) -> Optional[Tuple[float, float, float, float]]:
        xs: List[float] = []
        ys: List[float] = []
        for series in self.series:
            for x, y in series.points:
                tx = self._transform(x, self.log_x)
                ty = self._transform(y, self.log_y)
                if tx is not None and ty is not None:
                    xs.append(tx)
                    ys.append(ty)
        if not xs:
            return None
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        if max_x == min_x:
            max_x = min_x + 1.0
        if max_y == min_y:
            max_y = min_y + 1.0
        return min_x, max_x, min_y, max_y

    def render(self) -> str:
        """Render the chart to a multi-line string."""
        bounds = self._bounds()
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        if bounds is None:
            lines.append("(no data)")
            return "\n".join(lines)
        min_x, max_x, min_y, max_y = bounds
        grid = [[" "] * self.width for _ in range(self.height)]

        for index, series in enumerate(self.series):
            marker = MARKERS[index % len(MARKERS)]
            for x, y in series.points:
                tx = self._transform(x, self.log_x)
                ty = self._transform(y, self.log_y)
                if tx is None or ty is None:
                    continue
                column = int((tx - min_x) / (max_x - min_x) * (self.width - 1))
                row = int((ty - min_y) / (max_y - min_y) * (self.height - 1))
                grid[self.height - 1 - row][column] = marker

        def axis_label(value: float, log_scale: bool) -> str:
            real = 10**value if log_scale else value
            if real != 0 and (abs(real) >= 1e5 or abs(real) < 1e-3):
                return f"{real:.1e}"
            return f"{real:g}"

        top_label = axis_label(max_y, self.log_y)
        bottom_label = axis_label(min_y, self.log_y)
        margin = max(len(top_label), len(bottom_label)) + 1
        for row_index, row in enumerate(grid):
            if row_index == 0:
                prefix = top_label.rjust(margin)
            elif row_index == self.height - 1:
                prefix = bottom_label.rjust(margin)
            else:
                prefix = " " * margin
            lines.append(f"{prefix}|{''.join(row)}")
        lines.append(" " * margin + "+" + "-" * self.width)
        left = axis_label(min_x, self.log_x)
        right = axis_label(max_x, self.log_x)
        padding = self.width - len(left) - len(right)
        lines.append(" " * (margin + 1) + left + " " * max(1, padding) + right)
        legend = "   ".join(
            f"{MARKERS[index % len(MARKERS)]} {series.label}"
            for index, series in enumerate(self.series)
        )
        lines.append(" " * (margin + 1) + legend)
        return "\n".join(lines)
