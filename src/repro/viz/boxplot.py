"""Box-plot statistics for Figure 5b.

Figure 5b shows, for each of the eight 16-bit segments, the distribution
of that segment's MRA count ratio across all active BGP prefixes — an
unusual box plot marking the median, middle 50%, middle 90% and the
absolute maximum.  This module computes those five-number-plus summaries
and renders them as ASCII columns on the paper's log-2 axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """The paper's box summary for one segment's ratio distribution."""

    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStats":
        """Compute the summary from raw ratios (must be non-empty)."""
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise ValueError("cannot summarize an empty distribution")
        p5, p25, median, p75, p95 = np.percentile(array, [5, 25, 50, 75, 95])
        return cls(
            p5=float(p5),
            p25=float(p25),
            median=float(median),
            p75=float(p75),
            p95=float(p95),
            maximum=float(array.max()),
        )


def segment_box_stats(matrix: np.ndarray) -> List[BoxStats]:
    """Per-segment box summaries from a (prefixes x 8) ratio matrix.

    ``matrix`` comes from :func:`repro.core.mra.segment_ratio_matrix`;
    column j covers bits 16j..16j+15.
    """
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D ratio matrix")
    return [BoxStats.from_values(matrix[:, column]) for column in range(matrix.shape[1])]


def render_ascii(stats: List[BoxStats], height: int = 20) -> str:
    """Render segment box plots as ASCII columns on a log-2 y axis.

    Glyphs: ``=`` spans the middle 50%, ``|`` the middle 90%, ``-`` the
    median, and ``^`` the maximum — a textual rendition of Figure 5b.
    """
    max_exp = 16.0  # log2(65536)

    def row_for(value: float) -> int:
        clamped = max(1.0, min(value, 65536.0))
        return int(round(math.log2(clamped) / max_exp * (height - 1)))

    columns: List[List[str]] = []
    for box in stats:
        column = [" "] * height
        for row in range(row_for(box.p5), row_for(box.p95) + 1):
            column[row] = "|"
        for row in range(row_for(box.p25), row_for(box.p75) + 1):
            column[row] = "="
        column[row_for(box.median)] = "-"
        column[row_for(box.maximum)] = "^"
        columns.append(column)

    width_per = 8
    lines: List[str] = []
    for row in range(height - 1, -1, -1):
        label = f"{2 ** (row / (height - 1) * max_exp):>9.0f}" if row in (
            0,
            height - 1,
            (height - 1) // 2,
        ) else " " * 9
        cells = "".join(col[row].center(width_per) for col in columns)
        lines.append(f"{label}|{cells}")
    lines.append(" " * 9 + "+" + "-" * (width_per * len(columns)))
    segment_labels = "".join(
        f"{16 * index}-{16 * (index + 1)}".center(width_per)
        for index in range(len(columns))
    )
    lines.append(" " * 10 + segment_labels)
    return "\n".join(lines)
