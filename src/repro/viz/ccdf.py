"""CCDF plotting helpers for Figures 3 and 5a.

Both figures plot complementary CDFs on log-log axes: Figure 3 over
aggregate populations, Figure 5a over per-ASN counts.  This module builds
the step series from raw counts and renders multi-series ASCII panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.viz.ascii import AsciiChart


def ccdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Build CCDF step points P(X >= x) from raw values.

    One point per distinct value: (value, fraction of samples >= value).
    """
    if len(values) == 0:
        return []
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    total = ordered.shape[0]
    unique, first_index = np.unique(ordered, return_index=True)
    return [
        (float(value), float(total - start) / total)
        for value, start in zip(unique, first_index)
    ]


@dataclass
class CcdfPlot:
    """A multi-series CCDF panel (log-log)."""

    title: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def add(self, label: str, values: Sequence[float]) -> None:
        """Add one series from raw values."""
        self.series[label] = ccdf_points(values)

    def add_points(self, label: str, points: List[Tuple[float, float]]) -> None:
        """Add one series from precomputed (x, ccdf) points."""
        self.series[label] = points

    def proportion_at_least(self, label: str, x: float) -> float:
        """Read P(X >= x) off one series (0 when x beyond the tail)."""
        best = 0.0
        for value, proportion in self.series.get(label, []):
            if value <= x:
                best = proportion
            else:
                break
        # Points are (value, P(X >= value)); for x between points the
        # proportion is that of the next point at or above x.
        result = 0.0
        for value, proportion in self.series.get(label, []):
            if value >= x:
                result = proportion
                break
        return result if result else best if x <= 1 else 0.0

    def render_ascii(self, width: int = 72, height: int = 18) -> str:
        """Render all series on one log-log ASCII chart."""
        chart = AsciiChart(
            width=width, height=height, log_x=True, log_y=True, title=self.title
        )
        for label, points in self.series.items():
            chart.add_series(label, points)
        return chart.render()


def per_asn_counts(groups: Dict[int, List[int]]) -> List[float]:
    """Turn an ASN → addresses mapping into per-ASN counts for Figure 5a."""
    return [float(len(addresses)) for addresses in groups.values()]
