"""CSV export of figure data for external plotting stacks.

The ASCII renderings are self-contained, but anyone regenerating the
paper's figures in matplotlib/gnuplot wants the raw series.  Every plot
object in :mod:`repro.viz` exports here to a simple CSV (no quoting
needed: all fields are numbers or bare labels).
"""

from __future__ import annotations

import csv
from typing import Iterable, List, Sequence, Tuple

from repro.viz.boxplot import BoxStats
from repro.viz.ccdf import CcdfPlot
from repro.viz.mra_plot import MraPlot


def write_mra_csv(plot: MraPlot, path: str) -> None:
    """Write an MRA plot's three series: p, ratio16, ratio4, ratio1.

    The 16- and 4-bit values repeat across their segments (step form),
    matching :meth:`MraPlot.rows`.
    """
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(["prefix_len", "ratio_16bit", "ratio_4bit", "ratio_1bit"])
        for p, r16, r4, r1 in plot.rows():
            writer.writerow([p, f"{r16:.6g}", f"{r4:.6g}", f"{r1:.6g}"])


def write_ccdf_csv(plot: CcdfPlot, path: str) -> None:
    """Write a CCDF plot's series as (series, x, proportion) rows."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "x", "ccdf"])
        for label, points in plot.series.items():
            for x, proportion in points:
                writer.writerow([label, f"{x:.6g}", f"{proportion:.6g}"])


def write_boxstats_csv(stats: Sequence[BoxStats], path: str) -> None:
    """Write Figure-5b-style box summaries, one row per 16-bit segment."""
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["segment_start", "p5", "p25", "median", "p75", "p95", "max"]
        )
        for index, box in enumerate(stats):
            writer.writerow(
                [
                    16 * index,
                    f"{box.p5:.6g}",
                    f"{box.p25:.6g}",
                    f"{box.median:.6g}",
                    f"{box.p75:.6g}",
                    f"{box.p95:.6g}",
                    f"{box.maximum:.6g}",
                ]
            )


def write_series_csv(
    path: str,
    header: Sequence[str],
    rows: Iterable[Sequence],
) -> None:
    """Generic numeric-series writer for ad hoc exports."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(list(row))


def read_series_csv(path: str) -> Tuple[List[str], List[List[str]]]:
    """Read back a CSV written by the functions above (header, rows)."""
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        return [], []
    return rows[0], rows[1:]
