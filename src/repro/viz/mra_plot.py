"""MRA plot construction: the paper's signature visualization.

An MRA plot shows, for one address set, the aggregate count ratio at each
prefix length for three resolutions — 16-bit segments, 4-bit segments
(nybbles) and single bits — on a log-2 y axis from 1 to 65536.  "The
height indicates how much that segment of the address is relevant to
grouping a set of addresses into areas of the address space."

This module turns an :class:`~repro.core.mra.MraProfile` into the three
plotted series, renders them as ASCII, and extracts the *signature
features* the paper reads off the plots (and that the figure benchmarks
assert):

* the privacy-addressing plateau: single-bit ratios near 2 just past bit
  64, with the dip to ~1 at bit 70 (the cleared "u" bit);
* the dense-block prominence: elevated ratios in the 112–128 segment;
* the dynamic-pool saturation: 16-bit ratio near 65536 at bits 48–64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.mra import ArrayOrAddresses, MraProfile
from repro.viz.ascii import AsciiChart


@dataclass
class MraPlot:
    """The data behind one MRA plot panel."""

    title: str
    profile: MraProfile

    def series(self) -> Dict[str, List[Tuple[int, float]]]:
        """The three canonical series keyed by their legend labels."""
        return {
            "16-bit segments": self.profile.series(16),
            "4-bit segments": self.profile.series(4),
            "single bits": self.profile.series(1),
        }

    def render_ascii(self, width: int = 72, height: int = 18) -> str:
        """Render the panel as an ASCII chart (log-2-style y axis)."""
        chart = AsciiChart(
            width=width,
            height=height,
            log_x=False,
            log_y=True,
            title=f"{self.title}  (N={self.profile.size})",
        )
        for label, points in self.series().items():
            chart.add_series(label, [(float(p), value) for p, value in points])
        return chart.render()

    def rows(self) -> List[Tuple[int, float, float, float]]:
        """(p, γ¹⁶, γ⁴, γ¹) rows at nybble positions, for tabular export.

        The 16-bit value is repeated across its segment (None-like 0.0 is
        avoided by carrying the segment's value), matching how the eye
        reads the stepped dashed line in the paper's plots.
        """
        by16 = dict(self.profile.series(16))
        by4 = dict(self.profile.series(4))
        by1 = dict(self.profile.series(1))
        rows: List[Tuple[int, float, float, float]] = []
        for p in range(0, 128, 4):
            rows.append(
                (
                    p,
                    by16.get((p // 16) * 16, 1.0),
                    by4.get(p, 1.0),
                    by1.get(p, 1.0),
                )
            )
        return rows

    # ---- signature features -------------------------------------------

    def privacy_plateau(self) -> float:
        """Mean single-bit ratio over bits 65..69 (should approach 2)."""
        values = [self.profile.ratio(p, 1) for p in range(65, 70)]
        return sum(values) / len(values)

    def u_bit_dip(self) -> float:
        """Single-bit ratio at bit position 70 (the "u" bit).

        RFC 4941 clears this bit, so a privacy-dominated /64 shows a
        ratio near 1 here while neighbours sit near 2 — the annotated
        feature of Figure 2a.
        """
        return self.profile.ratio(70, 1)

    def dense_tail_prominence(self) -> float:
        """Mean 4-bit ratio over the 112–128 segment.

        Near 1 for privacy-style sparse tails; elevated when addresses
        pack into small blocks (Figures 2b and 5g).
        """
        values = [self.profile.ratio(p, 4) for p in range(112, 128, 4)]
        return sum(values) / len(values)

    def pool_saturation(self) -> float:
        """The 16-bit ratio at bits 48..64, normalized to [0, 1].

        Approaches 1 when a dynamic-pool carrier's weekly /64 draws
        saturate the segment (Figure 5e's "nearly 100% utilized").
        """
        return self.profile.ratio(48, 16) / 65536.0

    def iid_flatline_start(self) -> int:
        """First bit past 64 where the single-bit ratio stays ~1.

        In a privacy-dominated set the ratio declines from 2 and
        flatlines at 1 once every prefix holds a single address (around
        bit 80 in Figure 2a, for that set's size).
        """
        for p in range(64, 128):
            if all(
                self.profile.ratio(q, 1) < 1.05 for q in range(p, min(p + 8, 128))
            ):
                return p
        return 128


def mra_plot(addresses: ArrayOrAddresses, title: str = "") -> MraPlot:
    """Convenience constructor from any address collection."""
    from repro.core.mra import profile as mra_profile

    return MraPlot(title=title, profile=mra_profile(addresses))
