"""Unit tests for repro.net.addr: parsing, formatting, accessors."""

import pytest

from repro.net import addr
from repro.net.addr import AddressError, IPv6Address


class TestParse:
    def test_full_form(self):
        value = addr.parse("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert value == 0x20010DB8000000000000000000000001

    def test_compressed_middle(self):
        assert addr.parse("2001:db8::1") == 0x20010DB8000000000000000000000001

    def test_compressed_leading(self):
        assert addr.parse("::1") == 1

    def test_compressed_trailing(self):
        assert addr.parse("1::") == 1 << 112

    def test_all_zeros(self):
        assert addr.parse("::") == 0

    def test_embedded_ipv4(self):
        assert addr.parse("::ffff:192.0.2.1") == (0xFFFF << 32) | 0xC0000201

    def test_embedded_ipv4_with_groups(self):
        value = addr.parse("64:ff9b::192.0.2.33")
        assert value & 0xFFFFFFFF == 0xC0000221
        assert value >> 96 == 0x0064FF9B

    def test_case_insensitive(self):
        assert addr.parse("2001:DB8::A") == addr.parse("2001:db8::a")

    def test_whitespace_stripped(self):
        assert addr.parse("  2001:db8::1  ") == addr.parse("2001:db8::1")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":::",
            "2001:db8",
            "2001:db8::1::2",
            "2001:db8:0:0:0:0:0:0:1",
            "g001:db8::1",
            "2001:db8::12345",
            "2001:db8::1%eth0",
            "1.2.3.4",
            "::192.0.2.256",
            "::192.0.2",
            "2001:db8:::1",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            addr.parse(bad)

    def test_rejects_non_string(self):
        with pytest.raises(AddressError):
            addr.parse(12345)  # type: ignore[arg-type]

    def test_double_colon_must_compress_something(self):
        # All 8 groups present plus "::" is invalid.
        with pytest.raises(AddressError):
            addr.parse("1:2:3:4::5:6:7:8")


class TestFormat:
    def test_canonical_compression(self):
        assert addr.format_address(0x20010DB8000000000000000000000001) == "2001:db8::1"

    def test_no_compression_of_single_zero_group(self):
        value = addr.parse("2001:db8:0:1:1:1:1:1")
        assert addr.format_address(value) == "2001:db8:0:1:1:1:1:1"

    def test_leftmost_longest_run_wins(self):
        value = addr.parse("2001:0:0:1:0:0:0:1")
        assert addr.format_address(value) == "2001:0:0:1::1"

    def test_tie_breaks_left(self):
        value = addr.parse("2001:0:0:1:1:0:0:1")
        assert addr.format_address(value) == "2001::1:1:0:0:1"

    def test_all_zero(self):
        assert addr.format_address(0) == "::"

    def test_trailing_zeros(self):
        assert addr.format_address(0x20010DB8 << 96) == "2001:db8::"

    def test_lowercase(self):
        formatted = addr.format_address(addr.parse("2001:DB8::ABCD"))
        assert formatted == formatted.lower()

    def test_format_full_fixed_width(self):
        full = addr.format_full(addr.parse("2001:db8::1"))
        assert full == "2001:0db8:0000:0000:0000:0000:0000:0001"

    def test_format_hex32(self):
        assert addr.format_hex32(1) == "0" * 31 + "1"
        assert len(addr.format_hex32(addr.MAX_ADDRESS)) == 32

    def test_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            addr.format_address(1 << 128)
        with pytest.raises(AddressError):
            addr.format_address(-1)


class TestAccessors:
    def test_halves(self):
        value = addr.parse("2001:db8:1:2:3:4:5:6")
        assert addr.high64(value) == 0x2001_0DB8_0001_0002
        assert addr.low64(value) == 0x0003_0004_0005_0006
        assert addr.from_halves(addr.high64(value), addr.low64(value)) == value

    def test_from_halves_range_checks(self):
        with pytest.raises(AddressError):
            addr.from_halves(1 << 64, 0)
        with pytest.raises(AddressError):
            addr.from_halves(0, -1)

    def test_bit_numbering_msb_first(self):
        value = addr.parse("8000::")
        assert addr.bit(value, 0) == 1
        assert addr.bit(value, 1) == 0
        assert addr.bit(addr.parse("::1"), 127) == 1

    def test_u_bit_position(self):
        # Bit 70 of the address is IID bit 6: set it and check.
        value = 1 << (127 - 70)
        assert addr.bit(value, 70) == 1

    def test_nybble(self):
        value = addr.parse("2001:db8::")
        assert addr.nybble(value, 0) == 0x2
        assert addr.nybble(value, 3) == 0x1
        assert addr.nybble(value, 4) == 0x0
        assert addr.nybble(value, 5) == 0xD

    def test_segment16(self):
        value = addr.parse("2001:db8:aaaa:bbbb:cccc:dddd:eeee:ffff")
        assert addr.segment16(value, 0) == 0x2001
        assert addr.segment16(value, 7) == 0xFFFF

    def test_truncate(self):
        value = addr.parse("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff")
        assert addr.truncate(value, 32) == addr.parse("2001:db8::")
        assert addr.truncate(value, 0) == 0
        assert addr.truncate(value, 128) == value

    def test_prefix_bits(self):
        value = addr.parse("2001:db8::")
        assert addr.prefix_bits(value, 16) == 0x2001
        assert addr.prefix_bits(value, 0) == 0

    def test_common_prefix_len(self):
        a = addr.parse("2001:db8::1")
        b = addr.parse("2001:db8::2")
        assert addr.common_prefix_len(a, b) == 126
        assert addr.common_prefix_len(a, a) == 128
        assert addr.common_prefix_len(0, 1 << 127) == 0


class TestIPv6AddressClass:
    def test_construct_from_string_int_and_copy(self):
        a = IPv6Address("2001:db8::1")
        b = IPv6Address(a.value)
        c = IPv6Address(a)
        assert a == b == c

    def test_str_and_repr(self):
        a = IPv6Address("2001:db8::1")
        assert str(a) == "2001:db8::1"
        assert "2001:db8::1" in repr(a)

    def test_ordering_matches_numeric(self):
        low = IPv6Address("2001:db8::1")
        high = IPv6Address("2001:db8::2")
        assert low < high <= high
        assert high > low >= low

    def test_compare_with_int(self):
        assert IPv6Address("::1") == 1
        assert IPv6Address("::1") < 2

    def test_hashable_and_usable_in_sets(self):
        s = {IPv6Address("::1"), IPv6Address("::1"), IPv6Address("::2")}
        assert len(s) == 2

    def test_int_conversion(self):
        assert int(IPv6Address("::ff")) == 255
        assert hex(IPv6Address("::ff")) == "0xff"  # __index__

    def test_iid_accessors(self):
        a = IPv6Address("2001:db8::dead:beef")
        assert a.iid == 0xDEADBEEF
        assert a.low == a.iid
        assert a.high == 0x20010DB8_0000_0000

    def test_truncate_returns_new_address(self):
        a = IPv6Address("2001:db8::1")
        t = a.truncate(32)
        assert str(t) == "2001:db8::"
        assert str(a) == "2001:db8::1"


class TestAdapters:
    def test_addresses_to_ints_mixed(self):
        values = addr.addresses_to_ints(["::1", 2, IPv6Address("::3")])
        assert values == [1, 2, 3]

    def test_iter_formatted(self):
        assert list(addr.iter_formatted([1, 2])) == ["::1", "::2"]

    def test_split_halves(self):
        highs, lows = addr.split_halves([addr.parse("2001:db8::5")])
        assert highs == [0x20010DB8 << 32]
        assert lows == [5]
