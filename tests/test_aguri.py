"""Unit tests for repro.trie.aguri: densify and aguri aggregation."""

import pytest

from repro.net import addr
from repro.trie import (
    addresses_in_dense_prefixes,
    aguri_aggregate,
    build_tree,
    compute_dense_prefixes,
    dense_prefixes_fixed,
    density_threshold,
    profile,
)


def p(text: str) -> int:
    return addr.parse(text)


class TestDensityThreshold:
    def test_at_target_length(self):
        assert density_threshold(2, 112, 112) == 2

    def test_shorter_prefix_needs_more(self):
        # A /104 spans 256x the addresses of a /112.
        assert density_threshold(2, 112, 104) == 2 * 256

    def test_longer_prefix_needs_fewer_but_at_least_one(self):
        assert density_threshold(2, 112, 120) == 1
        assert density_threshold(64, 112, 117) == 2  # ceil(64/32)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            density_threshold(0, 112, 112)


class TestPaperExample:
    """§5.2.2's worked example: 2001:db8::1 and 2001:db8::4 active."""

    ADDRS = [p("2001:db8::1"), p("2001:db8::4")]

    def test_sole_dense_112_fixed(self):
        dense = dense_prefixes_fixed(self.ADDRS, 2, 112)
        assert dense == [(p("2001:db8::"), 112, 2)]

    def test_sole_dense_125(self):
        dense = dense_prefixes_fixed(self.ADDRS, 2, 125)
        assert dense == [(p("2001:db8::"), 125, 2)]

    def test_no_dense_126(self):
        assert dense_prefixes_fixed(self.ADDRS, 2, 126) == []

    def test_general_densify_finds_branch_point(self):
        dense = compute_dense_prefixes(self.ADDRS, 2, 112)
        assert dense == [(p("2001:db8::"), 125, 2)]

    def test_widen_to_class_length(self):
        dense = compute_dense_prefixes(self.ADDRS, 2, 112, widen=True)
        assert dense == [(p("2001:db8::"), 112, 2)]


class TestDensify:
    def test_sparse_addresses_not_reported(self):
        spread = [p("2001:db8::1"), p("2a00:1::1"), p("2400:2::1")]
        assert compute_dense_prefixes(spread, 2, 112) == []

    def test_duplicates_do_not_inflate_density(self):
        values = [p("2001:db8::1")] * 5
        assert compute_dense_prefixes(values, 2, 112) == []

    def test_mixed_dense_and_sparse(self):
        dense_block = [p("2001:db8::") + i for i in range(8)]
        sparse = [p("2a00::1"), p("2400::9")]
        found = compute_dense_prefixes(dense_block + sparse, 2, 112)
        assert len(found) == 1
        network, length, count = found[0]
        assert network == p("2001:db8::")
        assert count == 8

    def test_least_specific_wins(self):
        # Two addresses in each of the 256 /112 blocks of one /104: the
        # fixed-length query reports 256 dense /112s, but the general
        # densify aggregates all the way up, because the /104 itself
        # meets the 2@/112 density (512 addresses >= 2 * 256), and
        # reports the single least-specific prefix.
        values = []
        for block in range(256):
            base = p("2001:db8::") + (block << 16)
            values.extend([base, base + 1])
        assert len(dense_prefixes_fixed(values, 2, 112)) == 256
        general = compute_dense_prefixes(values, 2, 112)
        assert len(general) == 1
        _network, length, count = general[0]
        assert length <= 104
        assert count == 512

    def test_non_overlapping_output(self):
        values = [p("2001:db8::") + i for i in range(64)]
        found = compute_dense_prefixes(values, 2, 112)
        spans = [
            (network, network + (1 << (128 - length)) - 1)
            for network, length, _count in found
        ]
        spans.sort()
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end < b_start

    def test_max_length_127_excludes_lone_128s(self):
        # With n=1 every address alone would qualify; a /128 must still
        # never be reported as a dense *prefix*.
        found = compute_dense_prefixes([p("2001:db8::1")], 1, 128)
        assert all(length <= 127 for _n, length, _c in found)


class TestFixedPath:
    def test_count_is_distinct_addresses(self):
        values = [p("2001:db8::1"), p("2001:db8::1"), p("2001:db8::2")]
        dense = dense_prefixes_fixed(values, 2, 112)
        assert dense[0][2] == 2

    def test_matches_general_path_when_widened(self):
        values = [p("2001:db8::") + i * 3 for i in range(50)]
        values += [p("2a00:5:6:7::") + i for i in range(10)]
        fixed = dense_prefixes_fixed(values, 4, 112)
        general = compute_dense_prefixes(values, 4, 112, widen=True)
        assert {(n, l) for n, l, _ in fixed} == {(n, l) for n, l, _ in general}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            dense_prefixes_fixed([], 0, 112)


class TestAddressesInDense:
    def test_membership_scan(self):
        values = [p("2001:db8::") + i for i in range(4)] + [p("2a00::1")]
        dense = dense_prefixes_fixed(values, 2, 112)
        inside = addresses_in_dense_prefixes(values, dense)
        assert len(inside) == 4
        assert p("2a00::1") not in inside

    def test_empty_dense_list(self):
        assert addresses_in_dense_prefixes([1, 2, 3], []) == []


class TestAguriAggregate:
    def test_small_counts_roll_up(self):
        tree = build_tree([p("2001:db8::") + i for i in range(10)])
        # Each leaf holds 10% of the total; with a 30% threshold all the
        # /128s roll upward and only aggregates carrying >= 30% (or the
        # root remainder) survive.
        aguri_aggregate(tree, 0.3)
        entries = profile(tree)
        assert 1 <= len(entries) < 10
        root_network = tree.root.network
        for prefix, count in entries:
            if (prefix.network, prefix.length) != (root_network, tree.root.length):
                assert count >= 3

    def test_heavy_prefix_survives(self):
        heavy = [p("2001:db8::1")] * 80
        light = [p("2a00::") + i for i in range(20)]
        tree = build_tree(heavy + light)
        aguri_aggregate(tree, 0.5)
        entries = profile(tree)
        survivors = {str(prefix): count for prefix, count in entries}
        assert "2001:db8::1/128" in survivors
        assert survivors["2001:db8::1/128"] == 80

    def test_total_count_preserved(self):
        tree = build_tree([p("2001:db8::") + i for i in range(37)])
        aguri_aggregate(tree, 0.1)
        assert tree.total_count == 37

    def test_rejects_bad_fraction(self):
        tree = build_tree([1])
        with pytest.raises(ValueError):
            aguri_aggregate(tree, 0.0)
        with pytest.raises(ValueError):
            aguri_aggregate(tree, 1.5)

    def test_empty_tree_noop(self):
        tree = build_tree([])
        aguri_aggregate(tree, 0.5)
        assert tree.total_count == 0


class TestWidenDedup:
    """Regression: widen=True could emit overlapping prefixes.

    A reported prefix longer than p is widened to /p, but a dense prefix
    already shorter than p is kept as-is — so a widened /p could come to
    sit nested inside a kept shorter prefix, double-counting its
    addresses.  Nested entries are now dropped after widening.
    """

    def test_nested_after_widening_dropped(self):
        from repro.trie import widen_dense_prefixes

        container = (p("2001:db8::"), 104, 512)  # subtree total: includes below
        nested = (p("2001:db8::be00"), 120, 2)  # widens to /112 inside the /104
        result = widen_dense_prefixes([container, nested], 112)
        assert result == [container]

    def test_widened_prefixes_never_overlap(self):
        import random

        from repro.net.addr import ADDRESS_BITS
        from repro.trie import widen_dense_prefixes

        rng = random.Random(11)
        for _ in range(50):
            found = []
            base = rng.getrandbits(128)
            for _ in range(rng.randint(1, 8)):
                length = rng.choice([96, 104, 108, 112, 116, 120, 124])
                network = addr.truncate(
                    base ^ rng.getrandbits(32), length
                )
                found.append((network, length, rng.randint(1, 100)))
            result = widen_dense_prefixes(sorted(set(found)), 112)
            spans = sorted(
                (network, network | ((1 << (ADDRESS_BITS - length)) - 1))
                for network, length, _count in result
            )
            for (_, first_end), (second_start, _) in zip(spans, spans[1:]):
                assert first_end < second_start

    def test_disjoint_prefixes_kept(self):
        from repro.trie import widen_dense_prefixes

        disjoint = [(p("2001:db8::"), 112, 5), (p("2a00::"), 104, 9)]
        assert widen_dense_prefixes(disjoint, 112) == disjoint

    def test_same_slash_p_merged(self):
        from repro.trie import widen_dense_prefixes

        result = widen_dense_prefixes(
            [(p("2001:db8::1000"), 120, 2), (p("2001:db8::2000"), 120, 3)], 112
        )
        assert result == [(p("2001:db8::"), 112, 5)]


class TestAguriBoundary:
    """Regression: the float fraction*total threshold misclassified exact
    boundary counts (0.07 * 100 == 7.000000000000001), pushing up a node
    that holds exactly the required share."""

    def test_exact_share_kept(self):
        heavy = [p("2001:db8::1")] * 7
        light = [p("2a00::") + (i << 64) for i in range(93)]
        tree = build_tree(heavy + light)
        aguri_aggregate(tree, 0.07)
        survivors = {str(prefix): count for prefix, count in profile(tree)}
        assert survivors.get("2001:db8::1/128") == 7

    def test_one_below_share_pushed_up(self):
        heavy = [p("2001:db8::1")] * 6
        light = [p("2a00::") + (i << 64) for i in range(94)]
        tree = build_tree(heavy + light)
        aguri_aggregate(tree, 0.07)
        survivors = {str(prefix): count for prefix, count in profile(tree)}
        assert "2001:db8::1/128" not in survivors

    def test_tenth_of_ten(self):
        # fraction=0.1, total=10, count=1: exactly the share, kept.
        values = [p("2001:db8::1")] + [p("2a00::") + (i << 64) for i in range(9)]
        tree = build_tree(values)
        aguri_aggregate(tree, 0.1)
        survivors = {str(prefix): count for prefix, count in profile(tree)}
        assert survivors.get("2001:db8::1/128") == 1
