"""Unit tests for repro.net.arpa and repro.net.iidgen."""

import pytest

from repro.net import addr, arpa, iidgen, mac
from repro.net.prefix import Prefix, PrefixError


class TestArpaNames:
    def test_to_arpa_known_value(self):
        name = arpa.to_arpa(addr.parse("2001:db8::1"))
        assert name.endswith(".ip6.arpa")
        assert name.startswith("1.0.0.0.")
        assert name.count(".") == 33

    def test_roundtrip(self):
        for text in ("::", "2001:db8::1", "ff02::1", "2002:c000:204::1"):
            value = addr.parse(text)
            assert arpa.from_arpa(arpa.to_arpa(value)) == value

    def test_from_arpa_accepts_trailing_dot_and_case(self):
        name = arpa.to_arpa(addr.parse("2001:db8::1")).upper() + "."
        assert arpa.from_arpa(name) == addr.parse("2001:db8::1")

    @pytest.mark.parametrize(
        "bad",
        [
            "example.com",
            "1.2.ip6.arpa",  # too few labels
            "x." * 32 + "ip6.arpa",  # bad nybbles
            "10." + "0." * 31 + "ip6.arpa",  # multi-char label
        ],
    )
    def test_from_arpa_rejects(self, bad):
        with pytest.raises(ValueError):
            arpa.from_arpa(bad)


class TestArpaZones:
    def test_zone_for_prefix(self):
        zone = arpa.zone_for_prefix(Prefix("2001:db8::/32"))
        assert zone == "8.b.d.0.1.0.0.2.ip6.arpa"

    def test_zone_roundtrip(self):
        for text in ("2001:db8::/32", "2a00::/12", "::/0", "2001:db8::/64"):
            prefix = Prefix(text)
            assert arpa.prefix_for_zone(arpa.zone_for_prefix(prefix)) == prefix

    def test_root_zone(self):
        assert arpa.zone_for_prefix(Prefix(0, 0)) == "ip6.arpa"

    def test_non_nybble_prefix_rejected(self):
        with pytest.raises(PrefixError):
            arpa.zone_for_prefix(Prefix("2001:db8::/33"))

    def test_bad_zone_rejected(self):
        with pytest.raises(ValueError):
            arpa.prefix_for_zone("example.com")


class TestRfc7217:
    KEY = b"secret-key-material"

    def test_stable_for_fixed_inputs(self):
        a = iidgen.rfc7217_iid(0x20010DB800000000, "eth0", self.KEY)
        b = iidgen.rfc7217_iid(0x20010DB800000000, "eth0", self.KEY)
        assert a == b

    def test_changes_with_prefix(self):
        a = iidgen.rfc7217_iid(0x20010DB800000000, "eth0", self.KEY)
        b = iidgen.rfc7217_iid(0x20010DB800000001, "eth0", self.KEY)
        assert a != b

    def test_changes_with_interface_and_counter(self):
        base = iidgen.rfc7217_iid(1, "eth0", self.KEY)
        assert base != iidgen.rfc7217_iid(1, "eth1", self.KEY)
        assert base != iidgen.rfc7217_iid(1, "eth0", self.KEY, dad_counter=1)

    def test_full_address_helper(self):
        network = addr.parse("2001:db8::") >> 64
        value = iidgen.rfc7217_address(network, "eth0", self.KEY)
        assert value >> 64 == network

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            iidgen.rfc7217_iid(1 << 64, "eth0", self.KEY)
        with pytest.raises(ValueError):
            iidgen.rfc7217_iid(0, "eth0", self.KEY, dad_counter=-1)

    def test_looks_random_to_content_classifier(self):
        # RFC 7217 IIDs are opaque: the Malone-style detector flags a
        # large share of them as privacy — the misclassification the
        # temporal approach corrects.
        from repro.core.baseline import is_privacy_address

        hits = 0
        for index in range(300):
            network = (addr.parse("2001:db8::") >> 64) + index
            value = iidgen.rfc7217_address(network, "eth0", self.KEY)
            hits += is_privacy_address(value)
        assert hits > 100  # content-wise indistinguishable from random


class TestCga:
    KEY = b"-----BEGIN PUBLIC KEY----- fake"

    def test_deterministic(self):
        assert iidgen.cga_iid(self.KEY, 5, 1) == iidgen.cga_iid(self.KEY, 5, 1)

    def test_sec_encoded_in_leading_bits(self):
        for sec in range(8):
            iid = iidgen.cga_iid(self.KEY, 0, sec)
            assert iidgen.cga_sec(iid) == sec

    def test_u_g_bits_zero(self):
        for modifier in range(20):
            iid = iidgen.cga_iid(self.KEY, modifier, 2)
            assert iidgen.looks_like_cga(iid)
            assert mac.iid_u_bit(iid) == 0

    def test_rejects_bad_sec(self):
        with pytest.raises(ValueError):
            iidgen.cga_iid(self.KEY, 0, 8)

    def test_not_eui64(self):
        # CGA IIDs should essentially never carry the ff:fe marker.
        hits = sum(
            mac.is_eui64_iid(iidgen.cga_iid(self.KEY, modifier))
            for modifier in range(200)
        )
        assert hits == 0
