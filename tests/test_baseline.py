"""Unit tests for repro.core.baseline: the Malone-style content detector."""

import random

import pytest

from repro.core.baseline import (
    classify_privacy,
    evaluate,
    is_privacy_address,
    nybble_histogram,
)
from repro.net import addr, mac


def p(text: str) -> int:
    return addr.parse(text)


def random_privacy_address(rng: random.Random) -> int:
    """A synthetic RFC 4941 address: random IID with the u bit cleared."""
    iid = rng.getrandbits(64) & ~(1 << 57)
    return addr.from_halves(p("2001:db8::") >> 64, iid)


class TestVerdicts:
    def test_eui64_never_privacy(self):
        iid = mac.mac_to_eui64(mac.parse_mac("00:1e:c2:01:02:03"))
        verdict = classify_privacy(addr.from_halves(p("2a00::") >> 64, iid))
        assert not verdict.is_privacy
        assert verdict.reason == "eui64"

    def test_low_never_privacy(self):
        verdict = classify_privacy(p("2001:db8::103"))
        assert not verdict.is_privacy
        assert verdict.reason == "low"

    def test_isatap_never_privacy(self):
        verdict = classify_privacy(p("2001:db8::5efe:c000:204"))
        assert verdict.reason == "isatap"

    def test_embedded_ipv4_never_privacy(self):
        verdict = classify_privacy(p("2001:db8::c000:204"))
        assert verdict.reason == "embedded-ipv4"

    def test_u_bit_set_never_privacy(self):
        # High-entropy IID but with the u bit set: RFC 4941 forbids it.
        iid = 0x3231F3FDBBDD2C2A | (1 << 57)
        verdict = classify_privacy(addr.from_halves(p("2a00::") >> 64, iid))
        assert verdict.reason == "u-bit-set"

    def test_structured_never_privacy(self):
        verdict = classify_privacy(p("2001:db8:167:1109::10:901"))
        assert not verdict.is_privacy

    def test_high_entropy_is_privacy(self):
        verdict = classify_privacy(p("2001:db8:4137:9e76:453c:9e17:bd82:f60a"))
        assert verdict.is_privacy
        assert verdict.reason == "random"

    def test_figure1_sample_is_a_designed_miss(self):
        # The paper's Figure-1 privacy sample has 9 distinct nybbles and
        # slips past the conservative entropy test — the ~27% miss rate
        # the paper cites is made of addresses like this one.
        verdict = classify_privacy(p("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a"))
        assert not verdict.is_privacy


class TestCalibration:
    def test_recall_on_random_iids_near_73_percent(self):
        """The paper cites Malone's detector at ~73% of privacy addresses."""
        rng = random.Random(7)
        sample = [random_privacy_address(rng) for _ in range(5000)]
        hits = sum(is_privacy_address(value) for value in sample)
        recall = hits / len(sample)
        assert 0.65 < recall < 0.80

    def test_low_false_positive_rate_on_structured(self):
        structured = [
            addr.from_halves(p("2001:db8::") >> 64, (0x10 << 16) | host)
            for host in range(500)
        ]
        false_positives = sum(is_privacy_address(value) for value in structured)
        assert false_positives == 0

    def test_no_false_positives_on_eui64(self):
        values = [
            addr.from_halves(
                p("2a00::") >> 64, mac.mac_to_eui64(0x001EC2000000 + i)
            )
            for i in range(500)
        ]
        assert sum(is_privacy_address(value) for value in values) == 0


class TestNybbleHistogram:
    def test_uniform(self):
        distinct, repeat = nybble_histogram(0x0123456789ABCDEF)
        assert distinct == 16
        assert repeat == 1

    def test_constant(self):
        distinct, repeat = nybble_histogram(0)
        assert distinct == 1
        assert repeat == 16


class TestEvaluate:
    def test_confusion_counts(self):
        rng = random.Random(11)
        privacy = [(random_privacy_address(rng), True) for _ in range(200)]
        stable = [(p("2001:db8::") + i, False) for i in range(1, 201)]
        scores = evaluate(privacy + stable)
        total = sum(
            scores[key]
            for key in (
                "true_positive",
                "false_positive",
                "true_negative",
                "false_negative",
            )
        )
        assert total == 400
        assert scores["true_negative"] == 200  # low IIDs never flagged
        assert 0.6 < scores["recall"] < 0.85
        assert scores["precision"] == 1.0

    def test_empty_input(self):
        scores = evaluate([])
        assert scores["recall"] == 0.0
        assert scores["accuracy"] == 0.0
