"""Tests for the vectorized batch address parser/formatter.

The contract under test: :mod:`repro.net.batchparse` must be bit-for-bit
consistent with the scalar :mod:`repro.net.addr` reference — same values
on every accepted input, an :class:`~repro.net.addr.AddressError` on
every rejected one — regardless of whether a given string takes the
vectorized fast path or the scalar fallback.
"""

import random

import numpy as np
import pytest

from repro.net import addr, batchparse
from repro.net.addr import AddressError

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False


# The full scalar-parser corpus: every presentation form the scalar
# parser accepts, including ones the fast path must hand back to it.
VALID_CASES = [
    "2001:0db8:0000:0000:0000:0000:0000:0001",
    "2001:db8::1",
    "::1",
    "::",
    "1::",
    "2001:db8::",
    "fe80::1:2:3:4",
    "1:2:3:4:5:6:7:8",
    "0:0:0:0:0:0:0:0",
    "2001:DB8::A",          # mixed case
    "2001:Db8:A0b::C",
    "::ffff:192.0.2.1",     # embedded IPv4
    "64:ff9b::192.0.2.33",
    "1:2:3:4:5:6:7.8.9.10",
    "::13.1.68.3",
    "2001:db8:0:0:1::1",
    "ff02::2",
    "a:b:c:d:e:f:1:2",
]

MALFORMED_CASES = [
    "",
    ":::",
    "2001:db8",
    "2001:db8::1::2",
    "2001:db8:0:0:0:0:0:0:1",
    "g001:db8::1",
    "2001:db8::12345",
    "2001:db8::1%eth0",
    "1.2.3.4",
    "::192.0.2.256",
    "::192.0.2",
    "2001:db8:::1",
    "1:2:3:4::5:6:7:8",
    "2001 db8::1",
    ":",
    ":1:2:3:4:5:6:7",
    "1:2:3:4:5:6:7:",
    "٣::1",            # non-ASCII digit
]

EDGE_VALUES = [
    0,
    1,
    2**64 - 1,
    2**64,
    2**128 - 1,
    0x20010DB8 << 96,
    0xFE80 << 112,
    (2**128 - 1) ^ (0xFFFF << 64),
    0x0000_0000_0000_0001_0000_0000_0000_0000,
]


def _rand_values(count, seed=1234):
    rng = random.Random(seed)
    return [rng.getrandbits(128) for _ in range(count)]


class TestAgainstScalarReference:
    def test_valid_corpus_matches_scalar(self):
        expected = [addr.parse(text) for text in VALID_CASES]
        assert batchparse.parse_batch_ints(VALID_CASES) == expected

    @pytest.mark.parametrize("bad", MALFORMED_CASES)
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            batchparse.parse_batch([bad])

    def test_malformed_rejected_inside_batch(self):
        # A bad row must fail even when surrounded by good rows.
        for bad in MALFORMED_CASES:
            with pytest.raises(AddressError):
                batchparse.parse_batch(["2001:db8::1", bad, "::2"])

    def test_non_string_rejected(self):
        with pytest.raises(AddressError):
            batchparse.parse_batch(["::1", 12345])
        with pytest.raises(AddressError):
            batchparse.parse_batch([b"2001:db8::1"])

    def test_whitespace_stripped_like_scalar(self):
        # The scalar parser strips surrounding whitespace; batch agrees.
        texts = [" 2001:db8::1", "2001:db8::1 ", "\t::1\n"]
        assert batchparse.parse_batch_ints(texts) == [addr.parse(t) for t in texts]

    def test_fast_and_scalar_agree_on_edge_cases(self):
        texts = [addr.format_address(v) for v in EDGE_VALUES]
        texts += [addr.format_full(v) for v in EDGE_VALUES]
        texts += [t.upper() for t in texts]
        expected = [addr.parse(t) for t in texts]
        assert batchparse.parse_batch_ints(texts) == expected

    def test_scalar_fallback_rows_match(self):
        # Embedded-IPv4 rows are not fast-path eligible; their results
        # must still match the scalar parser exactly.
        texts = ["::ffff:192.0.2.1", "2001:db8::1", "64:ff9b::0.0.0.1"]
        mask = batchparse.fastpath_mask(texts)
        assert not mask[0] and not mask[2]
        assert batchparse.parse_batch_ints(texts) == [addr.parse(t) for t in texts]

    def test_fastpath_covers_canonical_and_full_forms(self):
        values = _rand_values(256)
        canonical = [addr.format_address(v) for v in values]
        full = [addr.format_full(v) for v in values]
        assert batchparse.fastpath_mask(canonical).all()
        assert batchparse.fastpath_mask(full).all()


class TestRoundTrip:
    def test_random_round_trip(self):
        values = _rand_values(2048)
        hi, lo = batchparse.ints_to_halves(values)
        texts = batchparse.format_batch_list(hi, lo)
        assert texts == [addr.format_address(v) for v in values]
        assert batchparse.parse_batch_ints(texts) == values

    def test_full_form_round_trip(self):
        values = _rand_values(512, seed=99) + EDGE_VALUES
        hi, lo = batchparse.ints_to_halves(values)
        texts = [str(t) for t in batchparse.format_full_batch(hi, lo)]
        assert texts == [addr.format_full(v) for v in values]
        assert batchparse.parse_batch_ints(texts) == values

    def test_halves_conversion_round_trip(self):
        values = EDGE_VALUES + _rand_values(64)
        hi, lo = batchparse.ints_to_halves(values)
        assert hi.dtype == np.uint64 and lo.dtype == np.uint64
        assert batchparse.halves_to_ints(hi, lo) == values

    def test_empty_batch(self):
        hi, lo = batchparse.parse_batch([])
        assert hi.shape == (0,) and lo.shape == (0,)
        assert batchparse.format_batch_list(hi, lo) == []


if HAVE_HYPOTHESIS:

    class TestPropertyBased:
        @settings(max_examples=300, deadline=None)
        @given(st.lists(st.integers(min_value=0, max_value=2**128 - 1), max_size=64))
        def test_format_parse_identity(self, values):
            hi, lo = batchparse.ints_to_halves(values)
            texts = batchparse.format_batch_list(hi, lo)
            assert batchparse.parse_batch_ints(texts) == values
            assert texts == [addr.format_address(v) for v in values]

        @settings(max_examples=200, deadline=None)
        @given(st.integers(min_value=0, max_value=2**128 - 1))
        def test_single_value_matches_scalar_everywhere(self, value):
            for text in (addr.format_address(value), addr.format_full(value)):
                assert batchparse.parse_batch_ints([text]) == [addr.parse(text)]
