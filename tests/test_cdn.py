"""Unit tests for repro.sim.cdn and repro.sim.transition."""

import pytest

from repro.core.format import TransitionKind, transition_kind
from repro.net import addr, special
from repro.net.prefix import Prefix
from repro.sim.cdn import Network, SimulatedInternet
from repro.sim.plans import StaticIspPlan, DynamicPoolPlan
from repro.sim.registry import AddressRegistry
from repro.sim.subscribers import Population
from repro.sim.transition import (
    TransitionConfig,
    generate_transition_day,
    isatap_address,
    sixto4_address,
    teredo_address,
)


def tiny_internet(seed=1, slew=0.0):
    registry = AddressRegistry(seed)
    internet = SimulatedInternet(
        seed=seed, registry=registry,
        transition=TransitionConfig(sixto4_clients=5, teredo_clients=2,
                                    isatap_clients=2),
        slew_probability=slew,
    )
    allocation = registry.allocate("isp", "US", "isp", [32])
    plan = StaticIspPlan("isp", seed, allocation.prefixes[0])
    population = Population(network="isp", seed=seed, size=40,
                            start_day=0, end_day=10, start_fraction=1.0)
    internet.add_network(Network(allocation, plan, population))
    return internet


class TestTransitionGenerators:
    def test_6to4_format(self):
        for index in range(20):
            value = sixto4_address(1, index, 0)
            assert special.is_6to4(value)
            assert special.embedded_ipv4_6to4(value) is not None

    def test_teredo_format(self):
        for index in range(10):
            value = teredo_address(1, index, 0)
            assert special.is_teredo(value)
            client = special.embedded_ipv4_teredo(value)
            assert client is not None and client > 0

    def test_isatap_format(self):
        for index in range(10):
            value = isatap_address(1, index, 0)
            assert special.is_isatap(value)
            embedded = special.embedded_ipv4_isatap(value)
            assert (embedded >> 24) == 10  # RFC1918 10/8

    def test_teredo_port_churns_daily(self):
        assert teredo_address(1, 0, 0) != teredo_address(1, 0, 1)

    def test_day_generation_respects_counts(self):
        config = TransitionConfig(sixto4_clients=50, teredo_clients=10,
                                  isatap_clients=10)
        values = generate_transition_day(1, config, day=0, activity=1.0)
        kinds = [transition_kind(v) for v in values]
        assert kinds.count(TransitionKind.SIXTO4) == 50
        assert kinds.count(TransitionKind.TEREDO) == 10
        assert kinds.count(TransitionKind.ISATAP) == 10

    def test_activity_thins_population(self):
        config = TransitionConfig(sixto4_clients=200)
        some = generate_transition_day(1, config, day=0, activity=0.5)
        assert 50 < len(some) < 150


class TestSimulatedInternet:
    def test_day_addresses_deterministic(self):
        a = tiny_internet().day_addresses(5)
        b = tiny_internet().day_addresses(5)
        assert a == b

    def test_day_addresses_sorted_unique(self):
        values = tiny_internet().day_addresses(5)
        assert values == sorted(set(values))

    def test_different_days_differ(self):
        internet = tiny_internet()
        assert internet.day_addresses(5) != internet.day_addresses(6)

    def test_include_transition_flag(self):
        internet = tiny_internet()
        with_transition = internet.day_addresses(5, include_transition=True)
        without = internet.day_addresses(5, include_transition=False)
        assert len(without) < len(with_transition)
        assert all(
            transition_kind(v) is TransitionKind.OTHER for v in without
        )

    def test_slew_moves_observations_to_next_day(self):
        # Slew shifts *which* generation day a log day reflects, not how
        # much: with 90% slew, the set attributed to day 5 is mostly the
        # activity generated on day 4.
        no_slew = tiny_internet(slew=0.0)
        heavy_slew = tiny_internet(slew=0.9)
        generated_day4 = set(no_slew.day_addresses(4, include_transition=False))
        generated_day5 = set(no_slew.day_addresses(5, include_transition=False))
        attributed_day5 = set(heavy_slew.day_addresses(5, include_transition=False))
        from_day4 = len(attributed_day5 & generated_day4)
        from_day5 = len(attributed_day5 & (generated_day5 - generated_day4))
        assert from_day4 > from_day5

    def test_build_store(self):
        internet = tiny_internet()
        store = internet.build_store(range(3, 6))
        assert store.days() == [3, 4, 5]
        assert len(store.get(4)) > 0

    def test_ground_truth_labels_addresses(self):
        internet = tiny_internet()
        truth = internet.ground_truth_for_day(5)
        assert truth
        for address, label in truth.items():
            assert label.network == "isp"
            assert label.plan == "static-isp"

    def test_labelled_privacy_sample(self):
        internet = tiny_internet()
        pairs = internet.labelled_privacy_sample(5)
        assert pairs
        assert any(flag for _addr, flag in pairs)

    def test_device_census_counts(self):
        internet = tiny_internet()
        counts = internet.device_census(5)
        assert counts["devices"] >= counts["subscribers"] > 0

    def test_carryover_creates_day_overlap(self):
        internet = tiny_internet()
        day5 = set(internet.day_addresses(5, include_transition=False))
        day6 = set(internet.day_addresses(6, include_transition=False))
        overlap = day5 & day6
        # Static-plan EUI-64 devices plus privacy carryover both persist.
        assert overlap


class TestDynamicPoolNetwork:
    def test_pool_network_64s_churn(self):
        seed = 3
        registry = AddressRegistry(seed)
        internet = SimulatedInternet(seed=seed, registry=registry,
                                     transition=TransitionConfig())
        allocation = registry.allocate("mob", "US", "mobile", [44] * 4)
        plan = DynamicPoolPlan("mob", seed, allocation.prefixes, pool_bits=10)
        population = Population(network="mob", seed=seed, size=60,
                                start_day=0, end_day=10, start_fraction=1.0)
        internet.add_network(Network(allocation, plan, population))
        day5 = {v >> 64 for v in internet.day_addresses(5, include_transition=False)}
        day6 = {v >> 64 for v in internet.day_addresses(6, include_transition=False)}
        # The /64s in use change nearly completely between days.
        assert len(day5 & day6) < len(day5) * 0.5
