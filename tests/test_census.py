"""Unit tests for repro.core.census: Table-1 characteristics."""

import random

import pytest

from repro.core.census import census, census_day, census_week, cull_other
from repro.core.format import TransitionKind, transition_kind
from repro.data.store import ObservationStore
from repro.net import addr, mac


def p(text: str) -> int:
    return addr.parse(text)


SAMPLE = [
    p("2002:c000:204::1"),          # 6to4
    p("2002:c000:205::1"),          # 6to4
    p("2001:0:1::1"),               # teredo
    p("2001:db8::5efe:c000:204"),   # isatap
    p("2a00::1"),                   # other, low IID
    p("2a00::2"),                   # other, same /64
    p("2a00:0:0:1:21e:c2ff:fe01:203"),  # other, EUI-64
]


class TestCensusRow:
    def test_bucket_counts(self):
        row = census(SAMPLE, "sample")
        assert row.total == 7
        assert row.sixto4 == 2
        assert row.teredo == 1
        assert row.isatap == 1
        assert row.other == 3

    def test_shares_sum_to_one(self):
        row = census(SAMPLE)
        total_share = (
            row.teredo_share + row.isatap_share + row.sixto4_share + row.other_share
        )
        assert total_share == pytest.approx(1.0)

    def test_other_64s_and_average(self):
        row = census(SAMPLE)
        assert row.other_64s == 2  # 2a00::/64 and 2a00:0:0:1::/64
        assert row.avg_addrs_per_64 == pytest.approx(1.5)

    def test_eui64_stats(self):
        row = census(SAMPLE)
        assert row.eui64_not_6to4 == 1
        assert row.eui64_distinct_macs == 1

    def test_eui64_excludes_6to4(self):
        eui = mac.mac_to_eui64(mac.parse_mac("00:1e:c2:01:02:03"))
        values = [addr.from_halves(p("2002:c000:204::") >> 64, eui)]
        row = census(values)
        assert row.eui64_not_6to4 == 0

    def test_empty(self):
        row = census([])
        assert row.total == 0
        assert row.other_share == 0.0
        assert row.avg_addrs_per_64 == 0.0

    def test_matches_scalar_classifier(self):
        rng = random.Random(13)
        values = []
        for _ in range(500):
            kind = rng.randrange(4)
            if kind == 0:
                values.append((0x2002 << 112) | rng.getrandbits(100))
            elif kind == 1:
                values.append((0x20010000 << 96) | rng.getrandbits(96))
            elif kind == 2:
                high = (0x2A00 << 112) >> 64 | rng.getrandbits(16)
                values.append((high << 64) | 0x00005EFE << 32 | rng.getrandbits(32))
            else:
                values.append((0x2A00 << 112) | rng.getrandbits(64))
        row = census(values)
        expected = {kind: 0 for kind in TransitionKind}
        for value in set(values):
            expected[transition_kind(value)] += 1
        assert row.sixto4 == expected[TransitionKind.SIXTO4]
        assert row.teredo == expected[TransitionKind.TEREDO]
        assert row.isatap == expected[TransitionKind.ISATAP]
        assert row.other == expected[TransitionKind.OTHER]


class TestStoreHelpers:
    def test_census_day_and_week(self):
        store = ObservationStore()
        store.add_day(0, SAMPLE[:4])
        store.add_day(1, SAMPLE[3:])
        daily = census_day(store, 0)
        weekly = census_week(store, [0, 1])
        assert daily.total == 4
        assert weekly.total == 7  # the isatap address overlaps

    def test_cull_other(self):
        kept = cull_other(SAMPLE)
        assert len(kept) == 3
        assert all(transition_kind(v) is TransitionKind.OTHER for v in kept)


class TestCanonicalizesArrayInput:
    """Regression: census() must canonicalize structured-array input.

    It previously trusted any ndarray with ADDRESS_DTYPE verbatim, so a
    duplicated or unsorted array inflated every Table 1 count (found by
    repro-lint rule R003).
    """

    def test_duplicated_array_counts_distinct_addresses(self):
        import numpy as np

        from repro.data import store as obstore

        once = obstore.to_array(SAMPLE)
        doubled = np.concatenate([once, once])
        assert doubled.dtype == obstore.ADDRESS_DTYPE
        row = census(doubled)
        assert row.total == len(SAMPLE)
        assert row.other == 3
        assert row.other_64s == 2

    def test_unsorted_array_matches_sorted(self):
        import numpy as np

        from repro.data import store as obstore

        array = obstore.to_array(SAMPLE)
        shuffled = array[::-1].copy()
        assert not np.array_equal(shuffled, array)
        row = census(shuffled)
        baseline = census(array)
        assert row.total == baseline.total
        assert row.eui64_distinct_macs == baseline.eui64_distinct_macs
