"""Unit tests for change detection and plan-aware estimation."""

import random

import pytest

from repro.core.changes import (
    ChangeEvent,
    detect_changes,
    detect_renumbering,
    turnover_series,
)
from repro.core.estimate import estimate_subscribers, estimation_error
from repro.data.store import ObservationStore
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


def privacy_iid(rng):
    return rng.getrandbits(64) & ~(1 << 57)


class TestTurnover:
    def test_stable_network_high_retention(self):
        store = ObservationStore()
        highs = [(p("2a00:1::") >> 64) + i for i in range(20)]
        rng = random.Random(1)
        for day in range(5):
            store.add_day(day, [(h << 64) | privacy_iid(rng) for h in highs])
        series = turnover_series(store, range(5), prefix_len=64)
        assert all(point.retention == 1.0 for point in series)
        assert all(point.jaccard == 1.0 for point in series)

    def test_addresses_churn_but_64s_do_not(self):
        store = ObservationStore()
        highs = [(p("2a00:1::") >> 64) + i for i in range(20)]
        rng = random.Random(2)
        for day in range(4):
            store.add_day(day, [(h << 64) | privacy_iid(rng) for h in highs])
        addr_series = turnover_series(store, range(4), prefix_len=128)
        p64_series = turnover_series(store, range(4), prefix_len=64)
        assert all(point.retention == 0.0 for point in addr_series)
        assert all(point.retention == 1.0 for point in p64_series)

    def test_empty_days(self):
        store = ObservationStore()
        store.add_day(1, [1])
        series = turnover_series(store, [0, 1, 2], prefix_len=64)
        assert series[0].retention == 0.0  # day 0 empty
        assert series[1].retention == 0.0  # day 2 empty vs day 1


class TestChangeDetection:
    @staticmethod
    def renumbering_store(switch_day=6, num_days=12, subscribers=30, seed=3):
        """A static-/64 network that migrates to a new prefix mid-series."""
        rng = random.Random(seed)
        store = ObservationStore()
        old = p("2a00:1::") >> 64
        new = p("2a00:ffff::") >> 64
        for day in range(num_days):
            base = new if day >= switch_day else old
            addresses = [
                ((base + sub) << 64) | privacy_iid(rng)
                for sub in range(subscribers)
            ]
            store.add_day(day, addresses)
        return store

    def test_detects_renumbering_day(self):
        store = self.renumbering_store(switch_day=6)
        events = detect_renumbering(store, range(12))
        assert len(events) == 1
        assert events[0].day == 6
        assert events[0].retention == 0.0
        assert events[0].severity > 0.9

    def test_no_false_positive_on_steady_network(self):
        store = self.renumbering_store(switch_day=99)  # never switches
        events = detect_renumbering(store, range(12))
        assert events == []

    def test_pool_churn_not_flagged(self):
        # A dynamic pool reuses its slots daily: /64 retention stays
        # high and no change fires, even though addresses churn.
        rng = random.Random(4)
        store = ObservationStore()
        base = p("2600:1::") >> 64
        for day in range(10):
            slots = rng.sample(range(64), 48)
            store.add_day(day, [((base + slot) << 64) | 1 for slot in slots])
        events = detect_renumbering(store, range(10))
        assert events == []

    def test_baseline_resets_after_event(self):
        # Two renumberings, both detected.
        rng = random.Random(5)
        store = ObservationStore()
        bases = [p("2a00:1::") >> 64, p("2a00:2::") >> 64, p("2a00:3::") >> 64]
        for day in range(18):
            base = bases[min(2, day // 6)]
            store.add_day(
                day,
                [((base + sub) << 64) | privacy_iid(rng) for sub in range(20)],
            )
        events = detect_renumbering(store, range(18))
        assert [event.day for event in events] == [6, 12]

    def test_min_baseline_days_respected(self):
        series = turnover_series(self.renumbering_store(switch_day=2), range(12))
        events = detect_changes(series, min_baseline_days=3)
        # The switch happens before a baseline exists: nothing fires at
        # day 2; the new regime simply becomes the baseline.
        assert all(event.day != 2 for event in events)


class TestEstimation:
    def test_static_network_estimate(self):
        rng = random.Random(7)
        store = ObservationStore()
        highs = [(p("2a00:1::") >> 64) + i for i in range(40)]
        for day in range(0, 14):
            # ~70% of subscribers visit daily.
            active = [h for h in highs if rng.random() < 0.7]
            store.add_day(day, [(h << 64) | privacy_iid(rng) for h in active])
        result = estimate_subscribers(store, range(14))
        assert result.method == "stable-64s"
        assert result.boundary == 64
        assert estimation_error(result.estimate, 40) < 0.35

    def test_shared_64_counts_addresses(self):
        store = ObservationStore()
        high = p("2a00:300:0:101::") >> 64
        hosts = [(high << 64) | (0x1000 + i) for i in range(30)]
        for day in range(0, 14, 2):
            store.add_day(day, hosts)
        result = estimate_subscribers(store, range(0, 14, 2))
        assert result.method == "stable-addresses"
        assert result.naive_64s == 1
        assert estimation_error(result.estimate, 30) < 0.1

    def test_empty_store_falls_back(self):
        result = estimate_subscribers(ObservationStore(), range(5))
        assert result.method == "naive-fallback"
        assert result.estimate == 0

    def test_error_metric(self):
        assert estimation_error(100, 100) == 0.0
        assert estimation_error(200, 100) == pytest.approx(1.0)
        assert estimation_error(50, 100) == pytest.approx(1.0)
        assert estimation_error(0, 100) == float("inf")
