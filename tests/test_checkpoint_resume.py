"""Checkpoint/resume for the sweep engine: atomicity, validation, and
bit-identical recovery from a SIGKILL mid-run.

The core guarantee under test: a sweep killed partway through (the
deterministic ``REPRO_FAULT_KILL_AFTER_CHECKPOINTS`` power cut) and then
resumed from its checkpoint directory produces results bit-identical to
an uninterrupted run — and stale or corrupted checkpoint entries are
never trusted, only silently recomputed.
"""

import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core import sweep as sweep_mod
from repro.data.logfile import load_store, save_store
from repro.data.store import DailyObservations, ObservationStore
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    KILL_AFTER_CHECKPOINTS_ENV,
    SweepCheckpoint,
    sweep_signature,
)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _make_store(n_days=8):
    store = ObservationStore()
    hi_value = np.uint64(0x20010DB8 << 32)
    for day in range(n_days):
        count = 5 + day
        lo = np.arange(1, count + 1, dtype=np.uint64) + np.uint64(day * 3)
        hi = np.full(count, hi_value, dtype=np.uint64)
        hits = np.ones(count, dtype=np.uint64)
        store.add_observations(
            DailyObservations.from_halves(day, hi, lo, hits, merged=True)
        )
    return store


def _pairs(days=(0, 1, 2)):
    return [(day, np.arange(day + 2, dtype=np.int64)) for day in days]


class TestSweepSignature:
    def test_deterministic(self):
        store = _make_store()
        days = store.days()
        a = sweep_signature({0: store}, days, 3, 3, 4)
        b = sweep_signature({0: store}, days, 3, 3, 4)
        assert a == b

    def test_sensitive_to_every_parameter(self):
        store = _make_store()
        days = store.days()
        base = sweep_signature({0: store}, days, 3, 3, 4)
        assert sweep_signature({0: store}, days, 2, 3, 4) != base
        assert sweep_signature({0: store}, days, 3, 2, 4) != base
        assert sweep_signature({0: store}, days, 3, 3, 5) != base
        assert sweep_signature({0: store}, days[:-1], 3, 3, 4) != base

    def test_sensitive_to_store_content(self):
        store, other = _make_store(), _make_store()
        days = store.days()
        base = sweep_signature({0: store}, days, 3, 3, 4)
        # Re-ingesting day 0 with one more address must invalidate.
        hi = np.full(3, np.uint64(0x20010DB8 << 32), dtype=np.uint64)
        lo = np.arange(1, 4, dtype=np.uint64)
        other.add_observations(DailyObservations.from_halves(0, hi, lo, merged=True))
        assert sweep_signature({0: other}, days, 3, 3, 4) != base

    def test_sensitive_to_store_key(self):
        store = _make_store()
        days = store.days()
        assert sweep_signature({0: store}, days, 3, 3, 4) != sweep_signature(
            {64: store}, days, 3, 3, 4
        )


class TestSweepCheckpointStore:
    def test_roundtrip(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        pairs = _pairs()
        checkpoint.save_chunk(128, 0, pairs)
        loaded = checkpoint.load_chunk(128, 0, [0, 1, 2])
        assert loaded is not None
        for (day, gaps), (expected_day, expected_gaps) in zip(loaded, pairs):
            assert day == expected_day
            np.testing.assert_array_equal(gaps, expected_gaps)
        assert checkpoint.completed_chunks() == 1

    def test_absent_chunk_is_none(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        assert checkpoint.load_chunk(128, 0, [0, 1, 2]) is None

    def test_signature_mismatch_rejected(self, tmp_path):
        SweepCheckpoint(str(tmp_path), "old-run").save_chunk(128, 0, _pairs())
        fresh = SweepCheckpoint(str(tmp_path), "new-run")
        assert fresh.load_chunk(128, 0, [0, 1, 2]) is None

    def test_day_list_mismatch_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        checkpoint.save_chunk(128, 0, _pairs())
        assert checkpoint.load_chunk(128, 0, [0, 1, 9]) is None

    def test_truncated_payload_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        checkpoint.save_chunk(128, 0, _pairs())
        npz_path, _meta_path = checkpoint.chunk_paths(128, 0)
        with open(npz_path, "rb") as handle:
            payload = handle.read()
        with open(npz_path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert checkpoint.load_chunk(128, 0, [0, 1, 2]) is None

    def test_version_bump_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        checkpoint.save_chunk(128, 0, _pairs())
        _npz_path, meta_path = checkpoint.chunk_paths(128, 0)
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["version"] = CHECKPOINT_VERSION + 1
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        assert checkpoint.load_chunk(128, 0, [0, 1, 2]) is None

    def test_garbage_meta_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        checkpoint.save_chunk(128, 0, _pairs())
        _npz_path, meta_path = checkpoint.chunk_paths(128, 0)
        with open(meta_path, "w", encoding="utf-8") as handle:
            handle.write("not json {")
        assert checkpoint.load_chunk(128, 0, [0, 1, 2]) is None

    def test_missing_payload_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        checkpoint.save_chunk(128, 0, _pairs())
        npz_path, _meta_path = checkpoint.chunk_paths(128, 0)
        os.unlink(npz_path)
        assert checkpoint.load_chunk(128, 0, [0, 1, 2]) is None


def _results_equal(a, b):
    return len(a) == len(b) and all(
        x.reference_day == y.reference_day
        and np.array_equal(x.active, y.active)
        and np.array_equal(x.gaps, y.gaps)
        for x, y in zip(a, b)
    )


class TestSweepWithCheckpoints:
    def test_checkpointed_sweep_matches_plain(self, tmp_path):
        store = _make_store()
        plain = sweep_mod.sweep_days(store, window_before=3, window_after=3)
        checkpointed = sweep_mod.sweep_days(
            store,
            window_before=3,
            window_after=3,
            chunk_days=3,
            checkpoint_dir=str(tmp_path),
        )
        assert _results_equal(plain, checkpointed)
        assert os.listdir(tmp_path)  # chunks landed on disk

    def test_second_run_is_fully_cached(self, tmp_path):
        store = _make_store()
        sweep_mod.sweep_days(
            store, window_before=3, window_after=3, chunk_days=3,
            checkpoint_dir=str(tmp_path),
        )
        sink = []
        again = sweep_mod.sweep_days(
            store, window_before=3, window_after=3, chunk_days=3,
            checkpoint_dir=str(tmp_path), report_sink=sink,
        )
        assert sink and sink[0].tasks == 0  # every chunk came from disk
        plain = sweep_mod.sweep_days(store, window_before=3, window_after=3)
        assert _results_equal(again, plain)

    def test_parameter_change_invalidates_cache(self, tmp_path):
        store = _make_store()
        sweep_mod.sweep_days(
            store, window_before=3, window_after=3, chunk_days=3,
            checkpoint_dir=str(tmp_path),
        )
        sink = []
        widened = sweep_mod.sweep_days(
            store, window_before=4, window_after=3, chunk_days=3,
            checkpoint_dir=str(tmp_path), report_sink=sink,
        )
        assert sink and sink[0].tasks > 0  # stale entries were not trusted
        plain = sweep_mod.sweep_days(store, window_before=4, window_after=3)
        assert _results_equal(widened, plain)

    def test_parallel_checkpointed_matches_serial(self, tmp_path):
        store = _make_store()
        parallel = sweep_mod.sweep_days(
            store, window_before=3, window_after=3, jobs=4, chunk_days=2,
            checkpoint_dir=str(tmp_path / "ck"),
        )
        serial = sweep_mod.sweep_days(store, window_before=3, window_after=3)
        assert _results_equal(parallel, serial)


class TestKillAndResume:
    """The headline guarantee: SIGKILL mid-sweep, resume bit-identically."""

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        store = _make_store(n_days=10)
        log_dir = tmp_path / "logs"
        ck_dir = tmp_path / "checkpoints"
        log_dir.mkdir()
        save_store(store, str(log_dir))

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env[KILL_AFTER_CHECKPOINTS_ENV] = "1"
        env.pop("REPRO_FAULTS", None)
        child = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "faultcheck",
                "--child-sweep",
                str(log_dir),
                str(ck_dir),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        chunks = [n for n in os.listdir(ck_dir) if n.endswith(".npz")]
        assert len(chunks) >= 1  # died after its first checkpoint write

        # Resume in-process with the same parameters the child used
        # (window 3/3, chunk 3 — pinned in repro.cli for this hook).
        reloaded = load_store(
            sorted(
                (str(p) for p in log_dir.glob("log-*.txt")),
                key=lambda p: int(os.path.basename(p)[4:-4]),
            )
        )
        resumed = sweep_mod.sweep_days(
            reloaded,
            window_before=3,
            window_after=3,
            jobs=2,
            chunk_days=3,
            checkpoint_dir=str(ck_dir),
        )
        uninterrupted = sweep_mod.sweep_days(
            reloaded, window_before=3, window_after=3, chunk_days=3
        )
        assert _results_equal(resumed, uninterrupted)

    def test_kill_env_threshold_zero_is_inert(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KILL_AFTER_CHECKPOINTS_ENV, "0")
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        checkpoint.save_chunk(128, 0, _pairs())  # must not kill us
        assert checkpoint.completed_chunks() == 1

    def test_kill_env_garbage_is_inert(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KILL_AFTER_CHECKPOINTS_ENV, "soon")
        checkpoint = SweepCheckpoint(str(tmp_path), "sig")
        checkpoint.save_chunk(128, 0, _pairs())
        assert checkpoint.completed_chunks() == 1
