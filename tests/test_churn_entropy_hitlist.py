"""Unit tests for churn analysis, entropy profiles, and hitlist I/O."""

import gzip
import random

import numpy as np
import pytest

from repro.core.churn import (
    daily_churn,
    lifetime_histogram,
    observation_spans,
    survival_curve,
)
from repro.core.entropy import compare_positions, entropy_profile, render_profile
from repro.core.mra import profile as mra_profile
from repro.data.hitlist import (
    read_hitlist,
    sample_hitlist,
    store_from_snapshots,
    write_hitlist,
)
from repro.data.store import ObservationStore
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


class TestObservationSpans:
    def make_store(self):
        store = ObservationStore()
        store.add_day(0, [1, 2])
        store.add_day(1, [1])
        store.add_day(4, [1, 3])
        return store

    def test_spans_and_day_counts(self):
        table = observation_spans(self.make_store(), [0, 1, 4])
        by_address = {
            (int(a["hi"]) << 64) | int(a["lo"]): (int(f), int(l), int(d))
            for a, f, l, d in zip(
                table.addresses, table.first, table.last, table.days_seen
            )
        }
        assert by_address[1] == (0, 4, 3)
        assert by_address[2] == (0, 0, 1)
        assert by_address[3] == (4, 4, 1)
        assert sorted(table.spans.tolist()) == [0, 0, 4]

    def test_empty(self):
        table = observation_spans(ObservationStore(), [])
        assert len(table) == 0

    def test_lifetime_histogram(self):
        histogram = lifetime_histogram(self.make_store(), [0, 1, 4])
        assert histogram == {0: 2, 4: 1}


class TestSurvival:
    def test_curve_values(self):
        store = ObservationStore()
        store.add_day(0, [1, 2, 3, 4])
        store.add_day(1, [1, 2])
        store.add_day(2, [1])
        curve = survival_curve(store, 0, max_distance=3)
        assert curve == [(1, 0.5), (2, 0.25), (3, 0.0)]

    def test_empty_reference(self):
        store = ObservationStore()
        store.add_day(1, [1])
        assert survival_curve(store, 0, 2) == [(1, 0.0), (2, 0.0)]

    def test_privacy_population_decays_fast(self):
        rng = random.Random(1)
        store = ObservationStore()
        stable = [p("2001:db8::1"), p("2001:db8::2")]
        for day in range(5):
            ephemeral = [
                p("2a00::") + rng.getrandbits(48) for _ in range(50)
            ]
            store.add_day(day, stable + ephemeral)
        curve = dict(survival_curve(store, 0, 4))
        assert curve[1] < 0.2  # only the stable pair survives
        assert curve[1] == pytest.approx(curve[4], abs=0.05)


class TestChurn:
    def test_born_died_retained(self):
        store = ObservationStore()
        store.add_day(0, [1, 2, 3])
        store.add_day(1, [2, 3, 4, 5])
        results = daily_churn(store, [0, 1])
        assert len(results) == 1
        day = results[0]
        assert day.retained == 2
        assert day.born == 2
        assert day.died == 1

    def test_conservation(self):
        store = ObservationStore()
        store.add_day(0, list(range(10)))
        store.add_day(1, list(range(5, 20)))
        day = daily_churn(store, [0, 1])[0]
        assert day.retained + day.born == 15  # today's count
        assert day.retained + day.died == 10  # yesterday's count


class TestEntropyProfile:
    def test_constant_set(self):
        profile = entropy_profile([p("2001:db8::1")] * 3)
        assert profile.size == 1
        assert profile.entropies.max() == 0.0
        assert len(profile.constant_positions()) == 32

    def test_random_tail(self):
        rng = random.Random(2)
        values = [
            addr.from_halves(
                p("2001:db8::") >> 64, rng.getrandbits(64) & ~(1 << 57)
            )
            for _ in range(4000)
        ]
        profile = entropy_profile(values)
        # Network half constant, IID half near-uniform — except nybble 17
        # (address bits 68-71), whose u bit is pinned to 0 by RFC 4941,
        # capping that position at ~3 bits. Entropy profiling makes the
        # fixed bit visible the same way the MRA dip does.
        assert profile.segment_mean(0, 64) == 0.0
        assert profile.segment_mean(64, 128) > 3.5
        variable = set(profile.variable_positions())
        assert variable >= set(range(18, 32)) | {16}
        assert 17 not in variable
        assert 2.9 < profile.nybble(17) < 3.1

    def test_sequential_hosts_have_low_entropy_except_tail(self):
        values = [p("2001:db8::") + i for i in range(256)]
        profile = entropy_profile(values)
        assert profile.nybble(31) == pytest.approx(4.0, abs=0.01)
        assert profile.nybble(30) == pytest.approx(4.0, abs=0.01)
        assert profile.nybble(29) == 0.0

    def test_range_checks(self):
        profile = entropy_profile([1])
        with pytest.raises(ValueError):
            profile.nybble(32)
        with pytest.raises(ValueError):
            profile.segment_mean(3, 64)

    def test_render(self):
        output = render_profile(entropy_profile([1, 2, 3]), title="demo")
        assert "demo" in output
        assert "nybble entropy" in output

    def test_compare_with_mra(self):
        # Sequential hosts: last nybbles have high entropy AND high MRA
        # ratio; a shuffled-but-dense set keeps entropy while MRA sees
        # the same aggregation (ratios measure coverage, not order).
        values = [p("2001:db8::") + i for i in range(256)]
        profile = entropy_profile(values)
        rows = compare_positions(profile, mra_profile(values).series(4))
        by_position = {position: (e, r) for position, e, r in rows}
        entropy_last, log_ratio_last = by_position[124]
        assert entropy_last > 3.9
        assert log_ratio_last > 3.9  # ratio 16 -> log2 = 4


class TestHitlist:
    def test_roundtrip_plain(self, tmp_path):
        path = str(tmp_path / "list.txt")
        values = [p("2001:db8::1"), p("2a00::2")]
        assert write_hitlist(path, values) == 2
        report = read_hitlist(path)
        assert report.addresses == sorted(values)
        assert report.parsed == 2
        assert report.bad_lines == []

    def test_roundtrip_gzip(self, tmp_path):
        path = str(tmp_path / "list.txt.gz")
        values = [p("2001:db8::1"), p("2a00::2")]
        write_hitlist(path, values)
        with gzip.open(path, "rt") as handle:
            assert "2001:db8::1" in handle.read()
        assert read_hitlist(path).addresses == sorted(values)

    def test_messy_input(self, tmp_path):
        path = tmp_path / "messy.txt"
        path.write_text(
            "# a comment\n"
            "\n"
            "2001:DB8::1   annotation ignored\n"
            "2001:db8::1\n"
            "not-an-address\n"
            "2a00::2\n"
        )
        report = read_hitlist(str(path))
        assert report.addresses == [p("2001:db8::1"), p("2a00::2")]
        assert report.duplicates == 1
        assert report.skipped == 2
        assert len(report.bad_lines) == 1
        assert report.bad_lines[0][0] == 5

    def test_strict_mode(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("junk\n")
        with pytest.raises(addr.AddressError):
            read_hitlist(str(path), strict=True)

    def test_snapshots_to_store(self, tmp_path):
        paths = []
        for index, values in enumerate(([1, 2], [2, 3])):
            path = str(tmp_path / f"snap-{index}.txt")
            write_hitlist(path, values)
            paths.append(path)
        store, reports = store_from_snapshots(paths, start_day=10)
        assert store.days() == [10, 11]
        assert len(reports) == 2
        from repro.data.store import from_array

        assert from_array(store.array(11)) == [2, 3]

    def test_sample(self):
        values = list(range(100))
        sample = sample_hitlist(values, 10, seed=1)
        assert len(sample) == 10
        assert sample == sorted(sample)
        assert sample_hitlist(values, 10, seed=1) == sample  # deterministic
        assert sample_hitlist(values, 1000) == values
