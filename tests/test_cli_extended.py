"""Tests for the extended CLI tools and failure handling."""

import pytest

from repro.cli import (
    main,
    main_census,
    main_simulate,
    main_stableprefix,
)
from repro.data import logfile
from repro.data.store import ObservationStore
from repro.net import addr


def _write_logs(tmp_path, schedule):
    store = ObservationStore()
    for day, values in schedule.items():
        store.add_day(day, values)
    return logfile.save_store(store, str(tmp_path))


class TestStableprefixCli:
    def test_reports_boundary(self, tmp_path, capsys):
        base = addr.parse("2001:db8:1:2::")
        paths = _write_logs(
            tmp_path,
            {
                0: [base + 0x1111, base + 0x2222],
                2: [base + 0x3333],
                5: [base + 0x4444],
            },
        )
        assert main_stableprefix(paths + ["-n", "3", "--min-days", "3"]) == 0
        output = capsys.readouterr().out
        assert "dominant boundary" in output
        assert "/112" in output  # the shared high bits of the small offsets

    def test_simulated_input(self, capsys):
        assert main_stableprefix(["--simulate", "0.02", "--min-days", "3"]) == 0
        assert "Longest stable prefixes" in capsys.readouterr().out


class TestSimulateCli:
    def test_writes_logs(self, tmp_path, capsys):
        directory = str(tmp_path / "logs")
        assert main_simulate([directory, "--scale", "0.02", "--days", "3"]) == 0
        output = capsys.readouterr().out
        assert "wrote 3 daily logs" in output
        paths = sorted((tmp_path / "logs").glob("log-*.txt"))
        assert len(paths) == 3
        # The logs round-trip through the census tool.
        assert main_census([str(p) for p in paths]) == 0

    def test_custom_start_day(self, tmp_path, capsys):
        directory = str(tmp_path / "logs2")
        assert main_simulate(
            [directory, "--scale", "0.02", "--days", "2", "--start", "100"]
        ) == 0
        names = sorted(p.name for p in (tmp_path / "logs2").glob("log-*.txt"))
        assert names == ["log-100.txt", "log-101.txt"]


class TestDispatch:
    def test_main_dispatches(self, tmp_path, capsys):
        paths = _write_logs(tmp_path, {0: [1, 2], 1: [2]})
        assert main(["census"] + paths) == 0
        assert "Census" in capsys.readouterr().out

    def test_main_unknown_tool(self, capsys):
        assert main(["nonsense"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_main_no_args(self, capsys):
        assert main([]) == 2


class TestFailureHandling:
    def test_census_with_corrupt_log(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("this is not a log line\n")
        with pytest.raises(SystemExit) as info:
            main_census([str(path)])
        # Malformed input exits with the classified input-error code.
        from repro.runtime.exitcodes import EXIT_INPUT

        assert info.value.code == EXIT_INPUT

    def test_stableprefix_empty_store(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# repro aggregated log day=0\n")
        assert main_stableprefix([str(path)]) == 0
        output = capsys.readouterr().out
        assert "dominant boundary: /0" in output
