"""Tests for the binary columnar day-log cache.

The invariants under test: a cache hit returns arrays identical to a
fresh text parse; editing the source log busts its entry (content-hash
keying means a stale entry can never be served); corrupt or truncated
entries fall back to parsing instead of failing or lying.
"""

import json
import os

import numpy as np
import pytest

from repro.data import daycache, logfile
from repro.net import addr


def _write_log(path, day, entries):
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# repro aggregated log day={day}\n")
        for value, hits in entries:
            handle.write(f"{addr.format_address(value)} {hits}\n")


@pytest.fixture
def log_and_cache(tmp_path):
    log = str(tmp_path / "day.txt")
    cache = str(tmp_path / "cache")
    _write_log(log, 7, [(0x20010DB8 << 96 | n, n + 1) for n in range(100)])
    return log, cache


class TestCacheHitAndMiss:
    def test_cached_equals_text_parsed(self, log_and_cache):
        log, cache = log_and_cache
        expected = logfile.read_daily_log_arrays(log)
        cold = daycache.load_day(log, cache)
        warm = daycache.load_day(log, cache)
        for got in (cold, warm):
            assert got[0] == expected[0]
            for got_col, want_col in zip(got[1:], expected[1:]):
                assert np.array_equal(np.asarray(got_col), want_col)

    def test_warm_load_skips_text_parse(self, log_and_cache, monkeypatch):
        log, cache = log_and_cache
        daycache.load_day(log, cache)  # populate

        calls = []
        original = logfile.read_daily_log_arrays

        def counting(path):
            calls.append(path)
            return original(path)

        monkeypatch.setattr(daycache.logfile, "read_daily_log_arrays", counting)
        daycache.load_day(log, cache)
        assert calls == []

    def test_cold_load_writes_entry(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        digest = daycache.content_hash(log)
        npy_path, meta_path = daycache.cache_paths(cache, digest)
        assert os.path.exists(npy_path) and os.path.exists(meta_path)
        meta = json.load(open(meta_path))
        assert meta["sha256"] == digest
        assert meta["day"] == 7

    def test_warm_arrays_are_memory_mapped(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        _day, hi, _lo, _hits = daycache.load_day(log, cache)
        assert isinstance(hi.base, np.memmap) or isinstance(hi, np.memmap)


class TestInvalidation:
    def test_editing_source_busts_cache(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        old_digest = daycache.content_hash(log)

        # Append one address; the old entry must not be served.
        with open(log, "a", encoding="ascii") as handle:
            handle.write("2001:db8::ffff 5\n")
        assert daycache.content_hash(log) != old_digest

        day, hi, lo, hits = daycache.load_day(log, cache)
        expected = logfile.read_daily_log_arrays(log)
        assert np.array_equal(np.asarray(hi), expected[1])
        assert np.array_equal(np.asarray(lo), expected[2])
        assert np.array_equal(np.asarray(hits), expected[3])

    def test_same_content_different_path_shares_entry(self, tmp_path):
        a, b = str(tmp_path / "a.txt"), str(tmp_path / "b.txt")
        cache = str(tmp_path / "cache")
        _write_log(a, 1, [(n, 1) for n in range(10)])
        _write_log(b, 1, [(n, 1) for n in range(10)])
        daycache.load_day(a, cache)
        # b has identical bytes, so its load is a hit on a's entry.
        assert daycache.content_hash(a) == daycache.content_hash(b)
        day, hi, _lo, _hits = daycache.load_day(b, cache)
        assert day == 1 and hi.shape == (10,)

    def test_digest_mismatch_in_meta_rejected(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        digest = daycache.content_hash(log)
        _npy, meta_path = daycache.cache_paths(cache, digest)
        meta = json.load(open(meta_path))
        meta["sha256"] = "0" * len(meta["sha256"])
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        payload, reason = daycache._try_load(_npy, meta_path, digest)
        assert payload is None and reason is None  # clean miss, not corruption
        # load_day still works by reparsing + rewriting.
        day, hi, _lo, _hits = daycache.load_day(log, cache)
        assert day == 7 and hi.shape == (100,)


class TestCorruption:
    def test_truncated_npy_falls_back(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        digest = daycache.content_hash(log)
        npy_path, _meta = daycache.cache_paths(cache, digest)
        payload = open(npy_path, "rb").read()
        with open(npy_path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])

        day, hi, _lo, _hits = daycache.load_day(log, cache)
        assert day == 7 and hi.shape == (100,)

    def test_garbage_meta_falls_back(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        digest = daycache.content_hash(log)
        _npy, meta_path = daycache.cache_paths(cache, digest)
        with open(meta_path, "w") as handle:
            handle.write("not json{")
        day, hi, _lo, _hits = daycache.load_day(log, cache)
        assert day == 7 and hi.shape == (100,)

    def test_version_bump_invalidates(self, log_and_cache, monkeypatch):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        monkeypatch.setattr(daycache, "CACHE_VERSION", daycache.CACHE_VERSION + 1)
        digest = daycache.content_hash(log)
        payload, reason = daycache._try_load(
            *daycache.cache_paths(cache, digest), digest
        )
        assert payload is None and reason is None  # stale layout, not corruption


class TestMetaTypeRegression:
    """Wrong-*type* meta entries must be a miss + rebuild, never a TypeError.

    Regression for the historical bug where a ``.meta.json`` holding a
    JSON list (or a field of the wrong type) crashed ``load_day`` with
    a TypeError instead of being treated as corruption.
    """

    def _meta_path(self, log, cache):
        digest = daycache.content_hash(log)
        _npy, meta_path = daycache.cache_paths(cache, digest)
        return meta_path

    def _assert_rebuilds(self, log, cache):
        from repro.runtime.quarantine import ERRORS_QUARANTINE, QuarantineReport

        report = QuarantineReport()
        day, hi, _lo, _hits = daycache.load_day(
            log, cache, errors=ERRORS_QUARANTINE, report=report
        )
        assert day == 7 and hi.shape == (100,)
        assert "cache-rebuilt" in report.by_rule()
        # Strict mode rebuilds too (silently) — corruption is recoverable.
        day, hi, _lo, _hits = daycache.load_day(log, cache)
        assert day == 7 and hi.shape == (100,)

    def test_meta_is_a_json_list(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        with open(self._meta_path(log, cache), "w") as handle:
            json.dump(["not", "a", "dict"], handle)
        self._assert_rebuilds(log, cache)

    def test_rows_field_is_a_string(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        meta_path = self._meta_path(log, cache)
        meta = json.load(open(meta_path))
        meta["rows"] = "one hundred"
        json.dump(meta, open(meta_path, "w"))
        self._assert_rebuilds(log, cache)

    def test_rows_field_is_a_bool(self, log_and_cache):
        # bool is an int subclass; it must still be rejected, not used
        # as a row count.
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        meta_path = self._meta_path(log, cache)
        meta = json.load(open(meta_path))
        meta["rows"] = True
        json.dump(meta, open(meta_path, "w"))
        self._assert_rebuilds(log, cache)

    def test_day_field_is_a_dict(self, log_and_cache):
        log, cache = log_and_cache
        daycache.load_day(log, cache)
        meta_path = self._meta_path(log, cache)
        meta = json.load(open(meta_path))
        meta["day"] = {"value": 7}
        json.dump(meta, open(meta_path, "w"))
        self._assert_rebuilds(log, cache)


class TestQuarantineInteraction:
    def test_dirty_parse_is_never_cached(self, tmp_path):
        # A quarantined (cleaned) parse must not be written to the
        # cache: a later *strict* load of the same bytes must parse the
        # text again and raise, not get cleaned arrays from a hit.
        from repro.runtime.quarantine import ERRORS_QUARANTINE, QuarantineReport

        log = str(tmp_path / "day.txt")
        cache = str(tmp_path / "cache")
        with open(log, "w", encoding="ascii") as handle:
            handle.write("# repro aggregated log day=7\n")
            handle.write("2001:db8::1 3\n")
            handle.write("not-an-address 5\n")
        report = QuarantineReport()
        day, hi, _lo, _hits = daycache.load_day(
            log, cache, errors=ERRORS_QUARANTINE, report=report
        )
        assert day == 7 and hi.shape == (1,)
        assert report.total_line_faults == 1
        with pytest.raises(logfile.LogFormatError):
            daycache.load_day(log, cache)

    def test_clean_parse_is_cached_in_quarantine_mode(self, log_and_cache):
        from repro.runtime.quarantine import ERRORS_QUARANTINE, QuarantineReport

        log, cache = log_and_cache
        daycache.load_day(log, cache, errors=ERRORS_QUARANTINE, report=QuarantineReport())
        digest = daycache.content_hash(log)
        npy_path, meta_path = daycache.cache_paths(cache, digest)
        assert os.path.exists(npy_path) and os.path.exists(meta_path)


class TestPrune:
    def test_prune_removes_unlisted_entries(self, tmp_path):
        cache = str(tmp_path / "cache")
        logs = []
        for n in range(3):
            log = str(tmp_path / f"log{n}.txt")
            _write_log(log, n, [(n * 100 + k, 1) for k in range(5)])
            daycache.load_day(log, cache)
            logs.append(log)
        keep = {daycache.content_hash(logs[0])}
        removed = daycache.prune(cache, keep)
        assert removed == 4  # two entries, .npy + .meta.json each
        # The kept entry still hits; the pruned ones rebuild cleanly.
        for log in logs:
            day, hi, _lo, _hits = daycache.load_day(log, cache)
            assert hi.shape == (5,)
