"""Unit tests for repro.core.density: n@/p classes and Table 3 accounting."""

import pytest

from repro.core.density import (
    TABLE3_CLASSES,
    DenseResult,
    DensityClass,
    dense_prefix_objects,
    find_dense,
    scan_targets,
    table3,
)
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


class TestDensityClass:
    def test_label(self):
        assert DensityClass(2, 112).label == "2 @ /112"

    def test_span(self):
        assert DensityClass(2, 112).span == 65536
        assert DensityClass(2, 124).span == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DensityClass(0, 112)
        with pytest.raises(Exception):
            DensityClass(2, 129)

    def test_table3_has_twelve_rows_in_paper_order(self):
        assert len(TABLE3_CLASSES) == 12
        assert TABLE3_CLASSES[0] == DensityClass(2, 124)
        assert TABLE3_CLASSES[-1] == DensityClass(2, 104)


class TestFindDense:
    def test_paper_example(self):
        result = find_dense([p("2001:db8::1"), p("2001:db8::4")], DensityClass(2, 112))
        assert result.num_prefixes == 1
        assert result.prefixes[0][0] == p("2001:db8::")
        assert result.contained_addresses == 2

    def test_no_dense_126_in_paper_example(self):
        result = find_dense([p("2001:db8::1"), p("2001:db8::4")], DensityClass(2, 126))
        assert result.num_prefixes == 0
        assert result.contained_addresses == 0
        assert result.address_density == 0.0

    def test_threshold_counts_distinct_addresses(self):
        values = [p("2001:db8::1")] * 10 + [p("2001:db8::2")]
        result = find_dense(values, DensityClass(3, 112))
        assert result.num_prefixes == 0

    def test_higher_n_is_subset(self):
        values = [p("2001:db8::") + i for i in range(10)]
        values += [p("2a00::") + i for i in range(3)]
        low = find_dense(values, DensityClass(2, 112))
        high = find_dense(values, DensityClass(8, 112))
        low_networks = {network for network, _l, _c in low.prefixes}
        high_networks = {network for network, _l, _c in high.prefixes}
        assert high_networks <= low_networks

    def test_possible_addresses_accounting(self):
        values = [p("2001:db8::") + i for i in range(5)]
        result = find_dense(values, DensityClass(2, 120))
        assert result.possible_addresses == result.num_prefixes * 256
        assert result.address_density == pytest.approx(
            result.contained_addresses / result.possible_addresses
        )


class TestTable3:
    def test_rows_cover_all_classes(self):
        values = [p("2001:db8::") + i for i in range(100)]
        rows = table3(values)
        assert [row.density_class for row in rows] == list(TABLE3_CLASSES)

    def test_dense_block_found_at_every_applicable_class(self):
        # 64 consecutive addresses: dense for every class with p >= 122
        # span... specifically any n <= 64 within a /112.
        values = [p("2001:db8::") + i for i in range(64)]
        rows = {row.density_class: row for row in table3(values)}
        assert rows[DensityClass(64, 112)].num_prefixes == 1
        assert rows[DensityClass(2, 112)].num_prefixes == 1
        assert rows[DensityClass(2, 124)].num_prefixes == 4

    def test_monotone_in_n_at_fixed_p(self):
        import random

        rng = random.Random(2)
        values = [p("2001:db8::") + rng.randrange(1 << 20) for _ in range(500)]
        rows = {row.density_class: row for row in table3(values)}
        p112 = [rows[DensityClass(n, 112)].num_prefixes for n in (2, 4, 8, 16, 32, 64)]
        assert p112 == sorted(p112, reverse=True)


class TestTargets:
    def test_dense_prefix_objects(self):
        result = find_dense([p("2001:db8::1"), p("2001:db8::4")], DensityClass(2, 112))
        objects = dense_prefix_objects(result)
        assert str(objects[0]) == "2001:db8::/112"

    def test_scan_targets_enumerates_span(self):
        result = find_dense([p("2001:db8::1"), p("2001:db8::4")], DensityClass(2, 124))
        targets = scan_targets(result)
        assert len(targets) == 16
        assert targets[0] == p("2001:db8::")

    def test_scan_targets_respects_limit(self):
        result = find_dense([p("2001:db8::1"), p("2001:db8::4")], DensityClass(2, 112))
        targets = scan_targets(result, limit=100)
        assert len(targets) == 100


class TestDuplicateInput:
    """Regression: find_dense counted raw array rows, not distinct
    addresses — a duplicated address could push a prefix over the n
    threshold and inflate contained_addresses / address_density."""

    def test_duplicates_do_not_reach_threshold(self):
        import numpy as np

        from repro.data import store as obstore

        single = obstore.to_array([p("2001:db8::1")])
        repeated = np.concatenate([single, single, single])
        result = find_dense(repeated, DensityClass(2, 112))
        assert result.num_prefixes == 0
        assert result.contained_addresses == 0

    def test_table3_on_store_with_repeats(self):
        import numpy as np

        from repro.data import store as obstore

        values = [p("2001:db8::") + i for i in range(8)]
        canonical = obstore.to_array(values)
        repeated = np.concatenate([canonical, canonical[:4]])
        clean_rows = table3(canonical)
        noisy_rows = table3(repeated)
        for clean, noisy in zip(clean_rows, noisy_rows):
            assert noisy.prefixes == clean.prefixes
            assert noisy.contained_addresses == clean.contained_addresses
            assert noisy.address_density == clean.address_density

    def test_iterable_input_already_deduplicated(self):
        values = [p("2001:db8::1")] * 5 + [p("2001:db8::2")]
        result = find_dense(values, DensityClass(2, 112))
        assert result.num_prefixes == 1
        assert result.contained_addresses == 2
