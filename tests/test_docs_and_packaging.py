"""Documentation and packaging hygiene checks.

A release-quality library keeps its public surface documented and its
metadata consistent; these tests enforce that mechanically:

* every public module, class and function in ``repro`` carries a
  docstring;
* the module doctest in ``repro.net.arpa`` runs;
* the console entry points declared in pyproject.toml exist;
* DESIGN.md's per-experiment index references only bench files that
  exist, and every bench file is referenced somewhere in the docs.
"""

import doctest
import importlib
import inspect
import os
import pkgutil

import pytest

import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [
            module.__name__
            for module in iter_public_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert missing == []

    def test_every_public_callable_documented(self):
        missing = []
        for module in iter_public_modules():
            for name, member in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(member) or inspect.isfunction(member)):
                    continue
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-exports documented at their home
                if not (member.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(member):
                    for method_name, method in vars(member).items():
                        if method_name.startswith("_"):
                            continue
                        if not inspect.isfunction(method):
                            continue
                        if (method.__doc__ or "").strip():
                            continue
                        # An override documented on a base class is fine.
                        inherited = any(
                            (getattr(base, method_name, None) is not None
                             and (getattr(base, method_name).__doc__ or "").strip())
                            for base in member.__mro__[1:]
                        )
                        if not inherited:
                            missing.append(
                                f"{module.__name__}.{name}.{method_name}"
                            )
        assert missing == [], f"undocumented: {missing[:20]}"

    def test_arpa_doctest(self):
        from repro.net import arpa

        results = doctest.testmod(arpa)
        assert results.failed == 0
        assert results.attempted >= 1


class TestPackaging:
    def test_console_entry_points_exist(self):
        with open(os.path.join(REPO_ROOT, "pyproject.toml")) as handle:
            text = handle.read()
        import re

        for match in re.finditer(r'^repro-[\w-]+ = "([\w.]+):(\w+)"', text, re.M):
            module_name, function_name = match.groups()
            module = importlib.import_module(module_name)
            assert hasattr(module, function_name), match.group(0)

    def test_version_is_set(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for module in iter_public_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestDocsReferenceRealFiles:
    def test_design_mentions_every_bench(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as handle:
            design = handle.read()
        with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as handle:
            experiments = handle.read()
        docs = design + experiments
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("bench_") and name.endswith(".py"):
                assert name in docs, f"{name} undocumented in DESIGN/EXPERIMENTS"

    def test_docs_reference_only_existing_benches(self):
        import re

        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as handle:
            design = handle.read()
        for name in set(re.findall(r"bench_\w+\.py", design)):
            assert os.path.exists(
                os.path.join(REPO_ROOT, "benchmarks", name)
            ), f"DESIGN.md references missing {name}"

    def test_examples_listed_in_readme(self):
        with open(os.path.join(REPO_ROOT, "README.md")) as handle:
            readme = handle.read()
        examples_dir = os.path.join(REPO_ROOT, "examples")
        for name in os.listdir(examples_dir):
            if name.endswith(".py"):
                assert name in readme, f"examples/{name} missing from README"
