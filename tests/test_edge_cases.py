"""Edge-case sweep across modules with thinner direct coverage."""

import pytest

from repro.analysis.tables import render_table, si_count
from repro.core.signature import PrefixClass, classify_profile
from repro.core.mra import profile
from repro.core.streaming import StabilityStream
from repro.data.hitlist import read_hitlist, write_hitlist
from repro.data.store import ObservationStore
from repro.net import addr
from repro.trie import build_tree, render_tree
from repro.viz.mra_plot import MraPlot, mra_plot


def p(text: str) -> int:
    return addr.parse(text)


class TestMraPlotEdges:
    def test_empty_plot(self):
        plot = mra_plot([], title="empty")
        assert plot.profile.size == 0
        assert "(no data)" not in plot.render_ascii() or plot.render_ascii()
        assert plot.privacy_plateau() == 0.0 or plot.privacy_plateau() >= 0.0

    def test_single_address_plot(self):
        plot = mra_plot([p("2001:db8::1")])
        assert plot.profile.size == 1
        assert plot.privacy_plateau() == pytest.approx(1.0)
        assert plot.u_bit_dip() == pytest.approx(1.0)
        assert plot.iid_flatline_start() == 64

    def test_flatline_never_found(self):
        # Two addresses differing only in the last bit: single-bit ratio
        # is 1 everywhere except position 127, so no 8-run of ~1 exists
        # after it... the run ends exactly at the tail.
        plot = mra_plot([p("2001:db8::0"), p("2001:db8::1")])
        assert 64 <= plot.iid_flatline_start() <= 128

    def test_pool_saturation_bounds(self):
        plot = mra_plot([p("2001:db8::1"), p("2001:db8::2")])
        assert 0.0 <= plot.pool_saturation() <= 1.0


class TestSignatureProfileOnly:
    def test_classify_profile_without_dense_share(self):
        # From a bare profile (no addresses), the tail ratios stand in
        # for the dense share.
        dense = [p("2400:100:0:8::") + i for i in range(100)]
        cls, features = classify_profile(profile(dense))
        assert cls is PrefixClass.DENSE_BLOCK
        assert features.dense_share is None

    def test_unknown_features_still_populated(self):
        cls, features = classify_profile(profile([1, 2]))
        assert cls is PrefixClass.UNKNOWN
        assert features.size == 2


class TestStreamingEdges:
    def test_zero_window(self):
        stream = StabilityStream(window_before=0, window_after=0)
        results = stream.push(0, [1, 2])
        assert [r.reference_day for r in results] == [0]
        assert results[0].stable_count(1) == 0

    def test_flush_empty_stream(self):
        assert StabilityStream().flush() == []

    def test_push_after_flush_continues(self):
        stream = StabilityStream(window_before=1, window_after=1)
        stream.push(0, [1])
        stream.flush()
        results = stream.push(1, [1])
        # Day 1's window needs day 2; nothing completes yet.
        assert results == []


class TestRenderTreeEdges:
    def test_min_count_filters(self):
        tree = build_tree([p("2001:db8::1")] * 5 + [p("2a00::1")])
        output = render_tree(tree, min_count=2)
        assert "2001:db8::1/128" in output
        assert "2a00::1/128" not in output

    def test_counts_only_mode(self):
        tree = build_tree([1, 2])
        output = render_tree(tree, show_share=False)
        assert "%" not in output.splitlines()[0]

    def test_empty_tree(self):
        output = render_tree(build_tree([]))
        assert "prefix" in output  # just the header


class TestTablesEdges:
    def test_render_without_title(self):
        output = render_table(["a"], [["x"]])
        assert output.splitlines()[0] == "a"

    def test_si_count_exact_boundaries(self):
        assert si_count(1000) == "1.00K"
        assert si_count(999_999) == "1000K"
        assert si_count(10**6) == "1.00M"


class TestHitlistEdges:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        report = read_hitlist(str(path))
        assert report.addresses == []
        assert report.total_lines == 0

    def test_write_empty(self, tmp_path):
        path = str(tmp_path / "empty-out.txt")
        assert write_hitlist(path, []) == 0
        assert read_hitlist(path).addresses == []


class TestStoreEdges:
    def test_replace_day(self):
        store = ObservationStore()
        store.add_day(0, [1, 2])
        store.add_day(0, [9])  # replaces
        from repro.data.store import from_array

        assert from_array(store.array(0)) == [9]

    def test_len_counts_days(self):
        store = ObservationStore()
        store.add_day(0, [1])
        store.add_day(5, [1])
        assert len(store) == 2
