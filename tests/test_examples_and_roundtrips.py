"""Example smoke tests and persistence round-trip properties."""

import os
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import logfile
from repro.data.hitlist import read_hitlist, write_hitlist
from repro.data.store import ObservationStore, from_array
from repro.net import arpa

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

addresses_strategy = st.integers(min_value=0, max_value=(1 << 128) - 1)


@pytest.mark.parametrize("script", ["analyze_logs.py", "network_monitoring.py"])
def test_example_runs_clean(script):
    """The two fastest examples must run end-to-end without error."""
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", script)],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


class TestPersistenceRoundtrips:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.sets(addresses_strategy, max_size=10),
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_npz_roundtrip(self, schedule):
        store = ObservationStore()
        for day, values in schedule.items():
            store.add_day(day, values)
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "store.npz")
            store.save(path)
            loaded = ObservationStore.load(path)
        assert loaded.days() == store.days()
        for day in store.days():
            assert from_array(loaded.array(day)) == from_array(store.array(day))

    @given(
        st.lists(
            st.tuples(
                addresses_strategy, st.integers(min_value=1, max_value=10**9)
            ),
            max_size=20,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_logfile_roundtrip(self, entries):
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "log.txt")
            logfile.write_daily_log(path, 7, entries)
            day, loaded = logfile.read_daily_log(path)
        assert day == 7
        assert loaded == entries

    @given(st.sets(addresses_strategy, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_hitlist_roundtrip(self, values):
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "list.txt")
            write_hitlist(path, sorted(values))
            assert read_hitlist(path).addresses == sorted(values)

    @given(addresses_strategy)
    @settings(max_examples=200)
    def test_arpa_roundtrip_property(self, value):
        assert arpa.from_arpa(arpa.to_arpa(value)) == value
