"""Classified exit codes: the mapping and its end-to-end CLI contract.

Every repro tool must exit with the same code for the same failure
class (0 ok, 1 findings, 2 usage, 3 input, 4 quarantine threshold,
5 internal) so shell drivers and CI can branch on *why* a step failed.
"""

import pytest

from repro.cli import main_census, main_sweep
from repro.runtime.exitcodes import (
    EXIT_FINDINGS,
    EXIT_INPUT,
    EXIT_INTERNAL,
    EXIT_OK,
    EXIT_QUARANTINE,
    EXIT_USAGE,
    InputError,
    classify_exception,
)
from repro.runtime.pool import PoolTaskError
from repro.runtime.quarantine import QuarantineThresholdError


class TestCodes:
    def test_codes_are_distinct(self):
        codes = [
            EXIT_OK,
            EXIT_FINDINGS,
            EXIT_USAGE,
            EXIT_INPUT,
            EXIT_QUARANTINE,
            EXIT_INTERNAL,
        ]
        assert codes == [0, 1, 2, 3, 4, 5]
        assert len(set(codes)) == len(codes)


class TestClassifyException:
    def test_quarantine_threshold(self):
        assert classify_exception(QuarantineThresholdError("over")) == EXIT_QUARANTINE

    def test_pool_task_error_is_internal(self):
        assert classify_exception(PoolTaskError("pool", 0, "died")) == EXIT_INTERNAL

    def test_input_shapes(self):
        assert classify_exception(InputError("bad flag value")) == EXIT_INPUT
        assert classify_exception(ValueError("bad value")) == EXIT_INPUT
        assert classify_exception(FileNotFoundError("gone")) == EXIT_INPUT

    def test_unknown_is_internal(self):
        assert classify_exception(RuntimeError("surprise")) == EXIT_INTERNAL


class TestCliContract:
    def test_missing_file_exits_input(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main_census([str(tmp_path / "never-written.txt")])
        assert info.value.code == EXIT_INPUT

    def test_quarantine_threshold_exits_4(self, tmp_path, capsys):
        flood = tmp_path / "flood.txt"
        lines = ["# repro aggregated log day=0"]
        lines += [f"2001:db8::{i + 1:x} 1" for i in range(50)]
        lines += [f"not-an-address-{i} 1" for i in range(20)]
        flood.write_text("\n".join(lines) + "\n")
        with pytest.raises(SystemExit) as info:
            main_census(["--errors", "quarantine", str(flood)])
        assert info.value.code == EXIT_QUARANTINE
        # The quarantine summary reaches stderr before the exit.
        assert "quarantine" in capsys.readouterr().err

    def test_quarantine_under_budget_exits_ok(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.txt"
        lines = ["# repro aggregated log day=0"]
        lines += [f"2001:db8::{i + 1:x} 1" for i in range(50)]
        lines += ["one-bad-line 1"]
        dirty.write_text("\n".join(lines) + "\n")
        assert main_census(["--errors", "quarantine", str(dirty)]) == EXIT_OK
        captured = capsys.readouterr()
        assert "Census" in captured.out
        assert "bad-address" in captured.err  # loss was reported, not silent

    def test_bad_errors_value_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main_census(["--errors", "ignore", str(tmp_path / "x.txt")])
        assert info.value.code == EXIT_USAGE

    def test_strict_corrupt_log_exits_input(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("definitely not a log line\n")
        with pytest.raises(SystemExit) as info:
            main_sweep([str(path)])
        assert info.value.code == EXIT_INPUT
