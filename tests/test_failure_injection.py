"""Failure-injection and robustness tests across the library.

These exercise the unhappy paths: corrupted persistence files, missing
observation days, degenerate inputs (empty sets, single elements,
boundary prefix lengths), and hostile log content.
"""

import numpy as np
import pytest

from repro.core.census import census
from repro.core.mra import aggregate_counts, profile
from repro.core.population import figure3_series
from repro.core.temporal import classify_day, classify_week, window_series
from repro.data import logfile
from repro.data.store import ObservationStore
from repro.net import addr
from repro.trie import build_tree, compute_dense_prefixes, densify
from repro.trie.radix import RadixTree


class TestCorruptedPersistence:
    def test_corrupt_npz_raises(self, tmp_path):
        path = tmp_path / "store.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(Exception):
            ObservationStore.load(str(path))

    def test_missing_npz_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ObservationStore.load(str(tmp_path / "missing.npz"))

    def test_truncated_log_file(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("2001:db8::1 5\n2001:db8::2")  # missing hit count
        with pytest.raises(logfile.LogFormatError):
            logfile.read_daily_log(str(path))

    def test_log_with_binary_noise(self, tmp_path):
        path = tmp_path / "log.bin"
        path.write_bytes(b"\x00\xff\xfe garbage\n")
        with pytest.raises((logfile.LogFormatError, UnicodeDecodeError)):
            logfile.read_daily_log(str(path))

    def test_negative_hit_count_rejected(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("2001:db8::1 -5\n")
        with pytest.raises(logfile.LogFormatError):
            logfile.read_daily_log(str(path))


class TestMissingAndEmptyData:
    def test_classify_day_with_no_data_at_all(self):
        result = classify_day(ObservationStore(), 10)
        assert result.active_count == 0
        assert result.stable_count(3) == 0
        assert result.stable_fraction(3) == 0.0

    def test_classify_week_with_holes(self):
        store = ObservationStore()
        store.add_day(0, [1])
        store.add_day(6, [1])  # days 1-5 missing entirely
        weekly = classify_week(store, list(range(7)), 3)
        assert weekly.active_count == 1
        assert weekly.stable_count == 1  # 6-day gap witnesses 3d-stability

    def test_window_series_over_absent_days(self):
        store = ObservationStore()
        store.add_day(5, [1, 2])
        series = window_series(store, 5)
        assert sum(series.active_counts) == 2  # only the reference day

    def test_census_of_empty_day(self):
        row = census([])
        assert row.total == 0
        assert row.other_addresses is not None
        assert row.other_addresses.shape[0] == 0

    def test_figure3_of_empty_set(self):
        series = figure3_series([])
        assert all(s.num_aggregates == 0 for s in series)

    def test_mra_of_empty_and_singleton(self):
        assert aggregate_counts([]).sum() == 0
        singleton = profile([addr.parse("2001:db8::1")])
        assert singleton.ratio_product(16) == pytest.approx(1.0)


class TestDegenerateBoundaries:
    def test_full_range_addresses(self):
        values = [0, addr.MAX_ADDRESS]
        counts = aggregate_counts(values)
        assert counts[0] == 1
        assert counts[1] == 2  # they differ at the first bit

    def test_dense_prefixes_at_length_zero(self):
        # Every address is in the single /0; n=2 at p=0 requires two.
        found = compute_dense_prefixes([1, 2], 2, 0)
        assert len(found) == 1
        network, length, count = found[0]
        assert length <= 127 and count == 2

    def test_densify_on_empty_tree(self):
        tree = RadixTree()
        densify(tree, 2, 112)  # must not raise
        assert tree.total_count == 0

    def test_trie_with_adversarial_insert_order(self):
        # Strictly nested prefixes inserted deepest-first: exercises the
        # split path repeatedly without recursion.
        tree = RadixTree()
        for length in range(128, 0, -1):
            tree.add_prefix(addr.parse("2001:db8::"), length)
        assert tree.total_count == 128
        node = tree.lookup(addr.parse("2001:db8::"))
        assert node is not None and node.length == 128

    def test_trie_alternating_extremes(self):
        tree = build_tree([0, addr.MAX_ADDRESS, 1, addr.MAX_ADDRESS - 1])
        assert tree.total_count == 4
        assert tree.lookup(0).length == 128

    def test_store_with_single_huge_day(self):
        store = ObservationStore()
        values = list(range(1, 50_001))
        store.add_day(0, values)
        assert len(store.get(0)) == 50_000
        result = classify_day(store, 0)
        assert result.stable_count(1) == 0  # nothing to compare against


class TestHostileLogContent:
    def test_comment_only_file(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("# just a comment\n# day=notanumber\n")
        day, entries = logfile.read_daily_log(str(path))
        assert day is None
        assert entries == []

    def test_duplicate_day_header_first_wins(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("# day=3\n# day=9\n2001:db8::1 1\n")
        day, _entries = logfile.read_daily_log(str(path))
        assert day == 3

    def test_enormous_hit_count_survives(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text(f"2001:db8::1 {10**18}\n")
        _day, entries = logfile.read_daily_log(str(path))
        assert entries[0][1] == 10**18
