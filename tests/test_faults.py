"""Deterministic fault injection (repro.sim.faults).

Determinism is the load-bearing property: the same seed must damage the
same lines, files, and workers on every run, or the fault-injection
gauntlet (``repro-faultcheck``) could never assert that every injected
fault was accounted for.
"""

import os

import pytest

from repro.data.logfile import load_store, save_store, write_daily_log
from repro.runtime.pool import PoolConfig, supervised_map
from repro.runtime.quarantine import ERRORS_QUARANTINE, QuarantineReport
from repro.sim.faults import (
    FAULT_ENV,
    FaultEvent,
    FaultPlan,
    apply_worker_faults,
    parse_fault_env,
)


def _campaign(directory, n_days=4, per_day=30):
    os.makedirs(str(directory), exist_ok=True)
    paths = []
    for day in range(n_days):
        path = os.path.join(str(directory), f"log-{day}.txt")
        write_daily_log(
            path,
            day,
            [((0x20010DB8 << 96) | (day * 100 + i), i + 1) for i in range(per_day)],
        )
        paths.append(path)
    return paths


class TestFaultEvent:
    def test_format(self):
        event = FaultEvent("corrupt-line", "log-0.txt", "line 3: garble-address")
        assert event.format() == "corrupt-line: log-0.txt (line 3: garble-address)"
        assert FaultEvent("drop-day", "log-1.txt").format() == "drop-day: log-1.txt"


class TestCorruptLogs:
    def test_same_seed_same_damage(self, tmp_path):
        a_paths = _campaign(tmp_path / "a")
        b_paths = _campaign(tmp_path / "b")
        plan = FaultPlan(seed=5, corrupt_line_rate=0.2)
        a_events = plan.corrupt_logs(a_paths)
        b_events = plan.corrupt_logs(b_paths)
        assert a_events  # the rate is high enough to hit something
        assert [(e.kind, os.path.basename(e.target), e.detail) for e in a_events] == [
            (e.kind, os.path.basename(e.target), e.detail) for e in b_events
        ]
        for a, b in zip(a_paths, b_paths):
            with open(a, encoding="utf-8") as ha, open(b, encoding="utf-8") as hb:
                assert ha.read() == hb.read()

    def test_different_seed_different_damage(self, tmp_path):
        a_events = FaultPlan(seed=1, corrupt_line_rate=0.2).corrupt_logs(
            _campaign(tmp_path / "a")
        )
        b_events = FaultPlan(seed=2, corrupt_line_rate=0.2).corrupt_logs(
            _campaign(tmp_path / "b")
        )
        assert [e.detail for e in a_events] != [e.detail for e in b_events]

    def test_comments_never_touched(self, tmp_path):
        paths = _campaign(tmp_path, n_days=2)
        FaultPlan(seed=5, corrupt_line_rate=1.0).corrupt_logs(paths)
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                first = handle.readline()
            assert first.startswith("# repro aggregated log day=")

    def test_every_corruption_is_quarantinable(self, tmp_path):
        # rate=1.0 exercises all four mutation shapes; every one must
        # land in the quarantine, none may abort or pass through.
        paths = _campaign(tmp_path, n_days=2, per_day=20)
        events = FaultPlan(seed=5, corrupt_line_rate=1.0).corrupt_logs(paths)
        assert len(events) == 40
        report = QuarantineReport()
        from repro.runtime.quarantine import QuarantinePolicy

        store = load_store(
            paths,
            errors=ERRORS_QUARANTINE,
            report=report,
            policy=QuarantinePolicy(max_line_fraction=1.0),
        )
        assert report.total_line_faults == len(events)
        assert all(len(store.get(day)) == 0 for day in store.days())

    def test_zero_rate_is_a_no_op(self, tmp_path):
        paths = _campaign(tmp_path, n_days=1)
        before = open(paths[0], encoding="utf-8").read()
        assert FaultPlan(seed=5).corrupt_logs(paths) == []
        assert open(paths[0], encoding="utf-8").read() == before


class TestCacheAndDayFaults:
    def test_truncate_cache_is_deterministic_and_recoverable(self, tmp_path):
        paths = _campaign(tmp_path / "logs")
        cache = str(tmp_path / "cache")
        baseline = load_store(paths, cache_dir=cache)
        plan = FaultPlan(seed=5, truncate_cache_rate=0.7)
        events = plan.truncate_cache(cache)
        assert events
        # Deterministic: a second pass picks the same payloads.
        assert [os.path.basename(e.target) for e in events] == [
            os.path.basename(e.target) for e in plan.truncate_cache(cache)
        ]
        report = QuarantineReport()
        rebuilt = load_store(
            paths, cache_dir=cache, errors=ERRORS_QUARANTINE, report=report
        )
        assert rebuilt.days() == baseline.days()
        assert report.by_rule().get("cache-rebuilt") == len(events)

    def test_truncate_missing_dir_is_empty(self, tmp_path):
        plan = FaultPlan(seed=5, truncate_cache_rate=1.0)
        assert plan.truncate_cache(str(tmp_path / "nope")) == []

    def test_drop_and_restore_days(self, tmp_path):
        paths = _campaign(tmp_path / "a", n_days=6)
        plan = FaultPlan(seed=5, drop_day_rate=0.4)
        events = plan.drop_days(paths)
        assert events
        for event in events:
            assert not os.path.exists(event.target)
            assert os.path.exists(event.target + ".dropped")
        # Deterministic: the same seed picks the same days elsewhere.
        other = FaultPlan(seed=5, drop_day_rate=0.4).drop_days(
            _campaign(tmp_path / "b", n_days=6)
        )
        assert [os.path.basename(e.target) for e in events] == [
            os.path.basename(e.target) for e in other
        ]
        plan.restore_days(events)
        for path in paths:
            assert os.path.exists(path)


class TestWorkerFaultEnv:
    def test_env_roundtrip(self):
        plan = FaultPlan(
            seed=9,
            kill_worker_rate=0.5,
            delay_worker_rate=0.25,
            delay_seconds=1.5,
            poison_tasks=(2, 7),
        )
        env = plan.worker_env()
        spec = parse_fault_env(env[FAULT_ENV])
        assert spec["seed"] == 9
        assert spec["kill"] == 0.5
        assert spec["delay"] == 0.25
        assert spec["delay_seconds"] == 1.5
        assert spec["poison"] == frozenset({2, 7})

    def test_parse_tolerates_garbage(self):
        spec = parse_fault_env("seed=x,,bogus,kill=nope,delay=0.5,wat")
        assert spec["seed"] == 0 and spec["kill"] == 0.0 and spec["delay"] == 0.5

    def test_apply_without_env_is_inert(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        apply_worker_faults("pool", 0, 0)  # must not raise or kill

    def test_kill_fires_only_on_first_attempt(self):
        # attempt > 0 never kills, even at rate 1.0 — that is the
        # retry-recovers contract.
        env = FaultPlan(seed=5, kill_worker_rate=1.0).worker_env()[FAULT_ENV]
        apply_worker_faults("pool", 0, 1, env=env)  # survives

    def test_delay_sleeps_deterministically(self, monkeypatch):
        slept = []
        monkeypatch.setattr("time.sleep", lambda s: slept.append(s))
        env = FaultPlan(
            seed=5, delay_worker_rate=1.0, delay_seconds=2.5
        ).worker_env()[FAULT_ENV]
        apply_worker_faults("pool", 3, 0, env=env)
        assert slept == [2.5]
        apply_worker_faults("pool", 3, 1, env=env)  # retries are not delayed
        assert slept == [2.5]

    def test_killed_workers_recover_through_pool(self, tmp_path, monkeypatch):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork start method")
        paths = _campaign(tmp_path, n_days=4)
        baseline = load_store(paths)
        monkeypatch.setenv(
            FAULT_ENV, FaultPlan(seed=5, kill_worker_rate=1.0).worker_env()[FAULT_ENV]
        )
        sink = []
        survived = load_store(paths, jobs=2, report_sink=sink)
        assert sink[0].crashes > 0  # every first attempt was SIGKILLed
        assert survived.days() == baseline.days()
        import numpy as np

        for day in baseline.days():
            np.testing.assert_array_equal(
                survived.get(day).addresses, baseline.get(day).addresses
            )

    def test_poison_task_forces_serial_fallback(self, monkeypatch):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork start method")
        monkeypatch.setenv(
            FAULT_ENV,
            FaultPlan(seed=5, poison_tasks=(1,)).worker_env()[FAULT_ENV],
        )
        sink = []
        results = supervised_map(
            _double,
            [10, 20, 30],
            jobs=2,
            config=PoolConfig(retries=1, base_delay=0.001, label="poisoned"),
            report_sink=sink,
        )
        assert results == [20, 40, 60]
        assert sink[0].fallbacks >= 1  # task 1 died in every child


def _double(value):
    return value * 2
