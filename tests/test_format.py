"""Unit tests for repro.core.format: address-format classification."""

import pytest

from repro.core.format import (
    AddressFormat,
    IidKind,
    TransitionKind,
    classify,
    classify_iid,
    count_eui64,
    distinct_nybbles,
    eui64_mac,
    is_eui64_address,
    partition_by_transition,
    plausible_embedded_ipv4,
    transition_kind,
)
from repro.net import addr, mac


def p(text: str) -> int:
    return addr.parse(text)


class TestTransitionKind:
    def test_teredo(self):
        assert transition_kind(p("2001:0:1::1")) is TransitionKind.TEREDO

    def test_6to4(self):
        assert transition_kind(p("2002:c000:204::1")) is TransitionKind.SIXTO4

    def test_isatap(self):
        assert transition_kind(p("2001:db8::5efe:c000:204")) is TransitionKind.ISATAP

    def test_other(self):
        assert transition_kind(p("2a00:1450::1")) is TransitionKind.OTHER

    def test_teredo_wins_over_isatap_pattern(self):
        # An ISATAP-looking IID inside the Teredo prefix is Teredo.
        value = p("2001:0:1:1:0:5efe:c000:204")
        assert transition_kind(value) is TransitionKind.TEREDO


class TestIidClassification:
    def test_eui64(self):
        iid = mac.mac_to_eui64(mac.parse_mac("00:1e:c2:01:02:03"))
        assert classify_iid(iid) is IidKind.EUI64

    def test_isatap_iid(self):
        assert classify_iid(0x00005EFE_C0000204) is IidKind.ISATAP

    def test_low(self):
        assert classify_iid(0x103) is IidKind.LOW
        assert classify_iid(1) is IidKind.LOW

    def test_embedded_ipv4_hex(self):
        assert classify_iid(0xC0000204) is IidKind.EMBEDDED_IPV4

    def test_embedded_ipv4_decimal_coded(self):
        # ::192:0:2:33 spells 192.0.2.33 in decimal-coded segments (the
        # hex text of each segment read as a decimal octet).
        iid = (0x192 << 48) | (0x0 << 32) | (0x2 << 16) | 0x33
        assert plausible_embedded_ipv4(iid) == (192 << 24) | (2 << 8) | 33
        assert classify_iid(iid) is IidKind.EMBEDDED_IPV4

    def test_structured(self):
        # ::10:901 — beyond LOW range, low entropy.
        assert classify_iid(0x10 << 16 | 0x901) is IidKind.STRUCTURED

    def test_random(self):
        # 16 distinct nybbles: unambiguously high-entropy.
        assert classify_iid(0x453C9E17BD82F60A) is IidKind.RANDOM

    def test_figure1_privacy_sample_is_a_known_miss(self):
        # The paper's own privacy-address sample (Figure 1, line iv) has
        # only 9 distinct nybbles, below the entropy threshold — one of
        # the ~27% of privacy IIDs content-only classification misses,
        # which is exactly why the paper built a temporal classifier.
        assert classify_iid(0x3031F3FD_BBDD2C2A) is IidKind.STRUCTURED

    def test_distinct_nybbles(self):
        assert distinct_nybbles(0) == 1
        assert distinct_nybbles(0x0123456789ABCDEF) == 16


class TestClassify:
    def test_full_classification_eui64(self):
        device_mac = mac.parse_mac("00:1e:c2:01:02:03")
        value = addr.from_halves(
            p("2001:db8::") >> 64, mac.mac_to_eui64(device_mac)
        )
        result = classify(value)
        assert isinstance(result, AddressFormat)
        assert result.is_native
        assert result.is_eui64
        assert result.mac == device_mac
        assert result.embedded_ipv4 is None

    def test_6to4_extracts_ipv4(self):
        result = classify(p("2002:c000:204::1"))
        assert result.transition is TransitionKind.SIXTO4
        assert result.embedded_ipv4 == 0xC0000204
        assert not result.is_native

    def test_teredo_extracts_client_ipv4(self):
        obfuscated = 0xC0000201 ^ 0xFFFFFFFF
        value = (0x20010000 << 96) | obfuscated
        result = classify(value)
        assert result.transition is TransitionKind.TEREDO
        assert result.embedded_ipv4 == 0xC0000201

    def test_high_entropy_privacy_address(self):
        result = classify(p("2001:db8:4137:9e76:453c:9e17:bd82:f60a"))
        assert result.is_native
        assert result.iid_kind is IidKind.RANDOM

    def test_embedded_ipv4_native(self):
        result = classify(p("2001:db8::c000:204"))
        assert result.iid_kind is IidKind.EMBEDDED_IPV4
        assert result.embedded_ipv4 == 0xC0000204


class TestHelpers:
    def test_is_eui64_address(self):
        assert is_eui64_address(p("2001:db8:0:1cdf:21e:c2ff:fec0:11db"))
        assert not is_eui64_address(p("2001:db8::1"))

    def test_eui64_mac_extraction(self):
        value = p("2001:db8:0:1cdf:21e:c2ff:fec0:11db")
        assert eui64_mac(value) == mac.parse_mac("00:1e:c2:c0:11:db")
        assert eui64_mac(p("2001:db8::1")) is None

    def test_partition_by_transition(self):
        values = [
            p("2002:c000:204::1"),
            p("2001:0:1::1"),
            p("2001:db8::5efe:c000:204"),
            p("2a00::1"),
            p("2a00::2"),
        ]
        buckets = partition_by_transition(values)
        assert len(buckets[TransitionKind.SIXTO4]) == 1
        assert len(buckets[TransitionKind.TEREDO]) == 1
        assert len(buckets[TransitionKind.ISATAP]) == 1
        assert len(buckets[TransitionKind.OTHER]) == 2
        # All four keys always present.
        assert set(buckets) == set(TransitionKind)

    def test_count_eui64_distinct_macs(self):
        shared = mac.mac_to_eui64(mac.parse_mac("00:11:22:33:44:56"))
        values = [
            addr.from_halves((p("2a00::") >> 64) + i, shared) for i in range(3)
        ]
        values.append(
            addr.from_halves(
                p("2001:db8::") >> 64,
                mac.mac_to_eui64(mac.parse_mac("00:1e:c2:01:02:03")),
            )
        )
        values.append(p("2001:db8::1"))  # not EUI-64
        count, distinct = count_eui64(values)
        assert count == 4
        assert distinct == 2
