"""Unit tests for routers, probing and DNS simulators."""

import pytest

from repro.core.density import DensityClass, find_dense
from repro.net import addr
from repro.net.prefix import Prefix
from repro.sim.dns import ReverseDns, add_dhcp_range, ptr_yield, zone_from_routers
from repro.sim.probing import (
    build_topology,
    improvement,
    probe,
    run_campaign,
)
from repro.sim.routers import build_isp_routers, build_router_corpus


def corpus_for_test(seed=1, responsiveness=0.8):
    prefix = Prefix(addr.parse("2a00:100::"), 32)
    return build_isp_routers(seed, "ispa", prefix, responsiveness=responsiveness)


class TestRouterCorpus:
    def test_roles_present(self):
        corpus = corpus_for_test()
        roles = {interface.role for interface in corpus.interfaces}
        assert roles == {"p2p", "loopback", "edge"}

    def test_addresses_inside_prefix(self):
        prefix = Prefix(addr.parse("2a00:100::"), 32)
        corpus = corpus_for_test()
        assert all(prefix.contains(i.address) for i in corpus.interfaces)

    def test_p2p_pairs_adjacent(self):
        corpus = corpus_for_test()
        p2p = sorted(i.address for i in corpus.interfaces if i.role == "p2p")
        # Allocated pairwise: even/odd neighbours.
        evens = [a for a in p2p if a % 2 == 0]
        assert all(a + 1 in set(p2p) for a in evens)

    def test_p2p_blocks_are_dense(self):
        corpus = corpus_for_test()
        addresses = [i.address for i in corpus.interfaces]
        result = find_dense(addresses, DensityClass(2, 112))
        assert result.num_prefixes >= 1

    def test_responsiveness_deterministic_and_partial(self):
        a = corpus_for_test()
        b = corpus_for_test()
        assert a.responsive == b.responsive
        observed = a.observed_addresses()
        assert 0 < len(observed) < len(a.interfaces)

    def test_full_responsiveness(self):
        corpus = corpus_for_test(responsiveness=1.0)
        assert len(corpus.observed_addresses()) == len(corpus.interfaces)

    def test_multi_isp_corpus_scales(self):
        isps = [
            ("a", Prefix(addr.parse("2a00:100::"), 32)),
            ("b", Prefix(addr.parse("2600:100::"), 32)),
        ]
        small = build_router_corpus(1, isps, scale=0.25)
        large = build_router_corpus(1, isps, scale=1.0)
        assert len(large.interfaces) > len(small.interfaces)


class TestProbing:
    def setup_method(self):
        self.corpus = corpus_for_test(responsiveness=1.0)
        base = addr.parse("2a00:100:1::") >> 64
        self.active_64s = [base + i for i in range(50)]
        self.topology = build_topology(1, self.corpus, self.active_64s)

    def test_probe_to_active_64_reaches_edge(self):
        target = (self.active_64s[0] << 64) | 0x1234
        responses = probe(1, self.topology, target)
        edge_addresses = {
            i.address for i in self.corpus.interfaces if i.role == "edge"
        }
        assert any(r in edge_addresses for r in responses)

    def test_probe_to_inactive_64_stops_short(self):
        inactive = ((addr.parse("2a00:100:2:ffff::") >> 64) << 64) | 1
        responses = probe(1, self.topology, inactive)
        edge_addresses = {
            i.address for i in self.corpus.interfaces if i.role == "edge"
        }
        assert not any(r in edge_addresses for r in responses)

    def test_campaign_discovers_more_with_active_targets(self):
        active_targets = [(n << 64) | 7 for n in self.active_64s]
        dead_targets = [
            ((addr.parse("2a00:100:3::") >> 64) + i) << 64 | 7 for i in range(50)
        ]
        good = run_campaign(1, self.topology, active_targets, self.corpus, "stable")
        poor = run_campaign(1, self.topology, dead_targets, self.corpus, "random")
        assert good.discovered_count > poor.discovered_count
        assert improvement(good, poor) > 0

    def test_improvement_handles_zero_baseline(self):
        empty = run_campaign(1, self.topology, [], self.corpus, "none")
        full = run_campaign(
            1, self.topology, [(self.active_64s[0] << 64) | 1], self.corpus, "one"
        )
        assert improvement(full, empty) == float("inf")

    def test_unresponsive_interfaces_never_observed(self):
        corpus = corpus_for_test(responsiveness=0.5)
        topology = build_topology(1, corpus, self.active_64s)
        targets = [(n << 64) | 7 for n in self.active_64s]
        campaign = run_campaign(1, topology, targets, corpus, "s")
        assert all(corpus.responsive[a] for a in campaign.discovered)


class TestReverseDns:
    def test_zone_from_routers_names_everything(self):
        corpus = corpus_for_test()
        zone = zone_from_routers(corpus)
        assert len(zone) == len(corpus.interfaces)
        first = corpus.interfaces[0]
        name = zone.query(first.address)
        assert name is not None and first.role in name

    def test_query_miss_is_none(self):
        zone = ReverseDns()
        assert zone.query(123) is None

    def test_dhcp_range_names(self):
        zone = ReverseDns()
        high = addr.parse("2a00:300:0:101::") >> 64
        add_dhcp_range(zone, high, 0x1000, 100)
        assert len(zone) == 100
        assert zone.query((high << 64) | 0x1005).startswith("dhcpv6-5.")

    def test_ptr_yield_scan_beats_active_queries(self):
        # Name a full /120 range but mark only a few addresses active:
        # scanning the dense prefix harvests the extra names (§6.2.3).
        zone = ReverseDns()
        high = addr.parse("2a00:300:0:101::") >> 64
        add_dhcp_range(zone, high, 0x100, 200)
        active = [(high << 64) | (0x100 + i) for i in range(0, 200, 40)]
        dense = find_dense(active, DensityClass(3, 120)).prefixes
        assert dense
        result = ptr_yield(zone, active, dense)
        assert result.active_names == 5
        assert result.scan_names > result.active_names
        assert result.extra_names == result.scan_names - result.active_names
