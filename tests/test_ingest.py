"""Regression tests for the fast ingestion pipeline.

Covers the two bug fixes that rode along with the pipeline rewrite —
duplicate addresses must merge by summing hit counts, and hit-count
validation must accept ASCII digits only — plus the parallel loader and
the CLI's ``--jobs`` / ``--cache-dir`` flags.
"""

import numpy as np
import pytest

from repro import cli
from repro.data import logfile
from repro.data.store import DailyObservations, ObservationStore
from repro.net import addr


def _write(path, text):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return str(path)


class TestDuplicateMerge:
    def test_duplicates_sum_hits(self, tmp_path):
        path = _write(
            tmp_path / "dup.txt",
            "# day=3\n2001:db8::1 4\n2001:db8::2 1\n2001:db8::1 6\n",
        )
        day, entries = logfile.read_daily_log(path)
        assert day == 3
        assert entries == [(addr.parse("2001:db8::1"), 10), (addr.parse("2001:db8::2"), 1)]

    def test_duplicates_merge_in_arrays_path(self, tmp_path):
        path = _write(
            tmp_path / "dup.txt",
            "# day=3\n2001:db8::2 1\n2001:db8::1 4\n2001:db8::1 6\n",
        )
        _day, hi, lo, hits = logfile.read_daily_log_arrays(path)
        assert hi.shape == (2,)
        assert lo.tolist() == [1, 2]
        assert hits.tolist() == [10, 1]

    def test_store_counts_duplicate_once(self, tmp_path):
        path = _write(tmp_path / "dup.txt", "::1 1\n::1 1\n::2 1\n")
        store = logfile.load_store([path])
        assert len(store.get(store.days()[0])) == 2


class TestHitCountValidation:
    @pytest.mark.parametrize("digits", ["٣", "３", "²", "٣3", "3٣"])
    def test_non_ascii_digits_rejected(self, tmp_path, digits):
        # str.isdigit() accepts these; the log format must not.
        assert digits.isdigit() or digits[:1].isdigit()
        path = _write(tmp_path / "bad.txt", f"2001:db8::1 {digits}\n")
        with pytest.raises(logfile.LogFormatError, match="bad.txt:1"):
            logfile.read_daily_log(path)
        with pytest.raises(logfile.LogFormatError, match="bad.txt:1"):
            logfile.read_daily_log_arrays(path)

    def test_ascii_digits_accepted(self, tmp_path):
        path = _write(tmp_path / "ok.txt", "2001:db8::1 0123456789\n")
        _day, entries = logfile.read_daily_log(path)
        assert entries == [(addr.parse("2001:db8::1"), 123456789)]

    def test_huge_hits_survive_dict_api(self, tmp_path):
        path = _write(tmp_path / "big.txt", f"::1 {10**18}\n")
        _day, entries = logfile.read_daily_log(path)
        assert entries[0][1] == 10**18


class TestParallelLoading:
    def _make_logs(self, tmp_path, days=3):
        store = ObservationStore()
        rng = np.random.default_rng(5)
        for day in range(days):
            values = [int(v) for v in rng.integers(1, 2**62, size=200)]
            store.add_observations(DailyObservations(day, values))
        return logfile.save_store(store, str(tmp_path / "logs"))

    def _assert_stores_equal(self, a, b):
        assert a.days() == b.days()
        for day in a.days():
            assert np.array_equal(a.get(day).addresses, b.get(day).addresses)

    def test_parallel_equals_serial(self, tmp_path):
        paths = self._make_logs(tmp_path)
        serial = logfile.load_store(paths)
        parallel = logfile.load_store(paths, jobs=2)
        self._assert_stores_equal(serial, parallel)

    def test_jobs_zero_means_all_cpus(self, tmp_path):
        paths = self._make_logs(tmp_path)
        self._assert_stores_equal(
            logfile.load_store(paths), logfile.load_store(paths, jobs=0)
        )

    def test_parallel_with_cache(self, tmp_path):
        paths = self._make_logs(tmp_path)
        cache = str(tmp_path / "cache")
        serial = logfile.load_store(paths)
        cold = logfile.load_store(paths, jobs=2, cache_dir=cache)
        warm = logfile.load_store(paths, jobs=2, cache_dir=cache)
        self._assert_stores_equal(serial, cold)
        self._assert_stores_equal(serial, warm)

    def test_parallel_error_propagates(self, tmp_path):
        paths = self._make_logs(tmp_path)
        bad = _write(tmp_path / "logs" / "zz-bad.txt", "2001:db8::1\n")
        with pytest.raises(logfile.LogFormatError):
            logfile.load_store(paths + [bad], jobs=2)


class TestCliFlags:
    def test_census_with_jobs_and_cache(self, tmp_path, capsys):
        store = ObservationStore()
        store.add_observations(DailyObservations(0, [1, 2, 3]))
        paths = logfile.save_store(store, str(tmp_path / "logs"))
        cache = str(tmp_path / "cache")

        argv = paths + ["--jobs", "2", "--cache-dir", cache]
        assert cli.main_census(argv) == 0
        first = capsys.readouterr().out
        assert "addresses" in first

        # Warm run through the cache prints the same census.
        assert cli.main_census(argv) == 0
        assert capsys.readouterr().out == first

    def test_cache_dir_env_default(self, tmp_path, monkeypatch, capsys):
        store = ObservationStore()
        store.add_observations(DailyObservations(0, [5, 6]))
        paths = logfile.save_store(store, str(tmp_path / "logs"))
        cache = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        assert cli.main_census(paths) == 0
        capsys.readouterr()
        assert cache.exists() and any(cache.iterdir())
