"""Unit tests for repro.lint: rules, suppression, scoping, CLI."""

import pathlib
import textwrap

import pytest

from repro.lint import RULES, Finding, get_rule, lint_paths, lint_source
from repro.lint.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CORE = "src/repro/core/example.py"
SIM = "src/repro/sim/example.py"
OTHER = "src/repro/viz/example.py"


def ids(source: str, path: str = OTHER):
    """Lint a snippet and return the list of triggered rule ids."""
    return [f.rule_id for f in lint_source(textwrap.dedent(source), path=path)]


class TestR001FloatThreshold:
    def test_original_aguri_snippet_trips(self):
        # The verbatim shape of the historical bug: 0.07 * 100 is
        # 7.000000000000001, so a node at exactly the threshold share
        # was folded into its parent.
        source = """
            def aggregate(node, fraction, total):
                if node.count < fraction * total:
                    fold(node)
        """
        assert ids(source) == ["R001"]

    def test_float_literal_product_trips(self):
        assert ids("ok = total >= 0.05 * window_size\n") == ["R001"]

    def test_exact_integer_comparison_passes(self):
        source = """
            def aggregate(node, numerator, denominator, total):
                if node.count * denominator < numerator * total:
                    fold(node)
        """
        assert ids(source) == []

    def test_pure_float_comparison_passes(self):
        assert ids("ok = density < 0.5 * ceiling\n") == []


class TestR002ElementLoop:
    LOOP = """
        def walk(array):
            out = []
            for hi, lo in zip(array["hi"], array["lo"]):
                out.append((int(hi) << 64) | int(lo))
            return out
    """

    def test_column_zip_loop_trips_in_core(self):
        assert ids(self.LOOP, path=CORE) == ["R002"]

    def test_rule_is_scoped_to_core(self):
        assert ids(self.LOOP, path=OTHER) == []
        assert ids(self.LOOP, path=SIM) == []

    def test_range_len_index_loop_trips(self):
        source = """
            def walk(addresses):
                for i in range(len(addresses)):
                    use(addresses[i])
        """
        # R003 also fires: 'addresses' is used raw, which is the point.
        assert "R002" in ids(source, path=CORE)

    def test_comprehension_over_columns_trips(self):
        source = 'values = [int(v) for v in array["lo"]]\n'
        assert ids(source, path=CORE) == ["R002"]

    def test_vectorized_code_passes(self):
        source = """
            def walk(array):
                return (array["hi"].astype(object) << 64) | array["lo"]
        """
        assert ids(source, path=CORE) == []


class TestR003UnguardedEntry:
    def test_bare_alias_trips(self):
        # The exact shape of the census bug: raw input escapes through
        # an alias even though a guard exists on another path.
        source = """
            import numpy as np

            def census(addresses):
                if isinstance(addresses, np.ndarray):
                    array = addresses
                else:
                    array = to_array(addresses)
                return array.shape[0]
        """
        assert ids(source, path=CORE) == ["R003"]

    def test_guarded_rebind_passes(self):
        source = """
            def census(addresses):
                array = _as_address_array(addresses)
                return array.shape[0]
        """
        assert ids(source, path=CORE) == []

    def test_raw_subscript_without_guard_trips(self):
        source = """
            def census(addresses):
                return addresses["hi"]
        """
        assert ids(source, path=CORE) == ["R003"]

    def test_forwarding_passes(self):
        source = """
            def census_day(store, day, addresses=None):
                return census(addresses)
        """
        assert ids(source, path=CORE) == []

    def test_scalar_annotation_is_exempt(self):
        source = """
            from typing import Iterable, List

            def cull_other(addresses: Iterable[int]) -> List[int]:
                return [v for v in addresses if keep(v)]
        """
        assert ids(source, path=CORE) == []

    def test_private_functions_are_exempt(self):
        source = """
            def _helper(addresses):
                return addresses["hi"]
        """
        assert ids(source, path=CORE) == []


class TestR004UnseededRandom:
    def test_module_level_random_trips(self):
        assert ids("value = random.random()\n", path=SIM) == ["R004"]

    def test_numpy_legacy_global_trips(self):
        assert ids("value = np.random.randint(0, 10)\n", path=SIM) == ["R004"]

    def test_unseeded_default_rng_trips(self):
        assert ids("rng = np.random.default_rng()\n", path=SIM) == ["R004"]

    def test_unseeded_random_instance_trips(self):
        assert ids("rng = random.Random()\n", path=SIM) == ["R004"]

    def test_seeded_constructions_pass(self):
        source = """
            rng = np.random.default_rng(seed)
            other = random.Random(42)
            stream = substream(seed, "network", 3)
        """
        assert ids(source, path=SIM) == []

    def test_rule_is_scoped_to_sim(self):
        assert ids("value = random.random()\n", path=CORE) == []


class TestR005ForkSafety:
    def test_lock_in_forking_module_trips(self):
        source = """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            _LOCK = threading.Lock()

            def fan_out(tasks):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, tasks))
        """
        assert ids(source) == ["R005"]

    def test_handle_opened_before_pool_trips(self):
        source = """
            def fan_out(path, tasks):
                handle = open(path, "rb")
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, tasks))
        """
        assert ids(source) == ["R005"]

    def test_handle_inside_worker_passes(self):
        source = """
            def _worker(path):
                with open(path, "rb") as handle:
                    return handle.read()

            def fan_out(paths):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(_worker, paths))
        """
        assert ids(source) == []

    def test_module_without_pools_passes(self):
        source = """
            import threading

            _LOCK = threading.Lock()
        """
        assert ids(source) == []


class TestR006DtypeMix:
    def test_bare_shift_literal_trips(self):
        assert ids("marker = lo >> 24\n") == ["R006"]

    def test_bare_mask_on_subscript_trips(self):
        assert ids('prefix = array["hi"] & 0xFFFF\n') == ["R006"]

    def test_wrapped_literal_passes(self):
        assert ids("marker = lo >> np.uint64(24)\n") == []

    def test_unrelated_names_pass(self):
        assert ids("offset = cursor >> 24\n") == []


class TestR007SwallowedFault:
    def test_bare_except_trips(self):
        source = """
            def cleanup():
                try:
                    work()
                except:
                    pass
        """
        assert ids(source) == ["R007"]

    def test_bare_except_trips_even_with_real_body(self):
        source = """
            def cleanup():
                try:
                    work()
                except:
                    log("failed")
        """
        assert ids(source) == ["R007"]

    def test_blanket_exception_pass_trips(self):
        source = """
            def cleanup():
                try:
                    work()
                except Exception:
                    pass
        """
        assert ids(source) == ["R007"]

    def test_blanket_in_tuple_with_ellipsis_body_trips(self):
        source = """
            def cleanup():
                try:
                    work()
                except (ValueError, BaseException):
                    ...
        """
        assert ids(source) == ["R007"]

    def test_blanket_with_reraise_passes(self):
        source = """
            def cleanup():
                try:
                    work()
                except Exception:
                    raise
        """
        assert ids(source) == []

    def test_blanket_with_recovery_body_passes(self):
        source = """
            def cleanup():
                try:
                    work()
                except BaseException:
                    report("fault")
        """
        assert ids(source) == []

    def test_narrow_except_pass_passes(self):
        source = """
            def cleanup():
                try:
                    work()
                except OSError:
                    pass
        """
        assert ids(source) == []

    def test_inline_ignore_suppresses(self):
        source = """
            def cleanup():
                try:
                    work()
                except Exception:  # repro-lint: ignore[R007]
                    pass
        """
        assert ids(source) == []

    def test_explain_has_rationale(self, capsys):
        assert main(["--explain", "R007"]) == 0
        out = capsys.readouterr().out
        assert "Invariant:" in out and "quarantine" in out


class TestSuppression:
    def test_inline_ignore_suppresses_the_rule(self):
        assert ids("m = lo >> 24  # repro-lint: ignore[R006]\n") == []

    def test_inline_ignore_of_other_rule_does_not(self):
        assert ids("m = lo >> 24  # repro-lint: ignore[R001]\n") == ["R006"]

    def test_bare_ignore_suppresses_everything(self):
        assert ids("m = lo >> 24  # repro-lint: ignore\n") == []

    def test_comment_only_line_covers_next_line(self):
        source = "# repro-lint: ignore[R006]\nm = lo >> 24\n"
        assert ids(source) == []

    def test_multiple_ids(self):
        source = (
            'v = random.random() + int(lo >> 24)'
            '  # repro-lint: ignore[R004, R006]\n'
        )
        assert ids(source, path=SIM) == []


class TestEngine:
    def test_syntax_error_yields_e000(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert [f.rule_id for f in findings] == ["E000"]

    def test_finding_format(self):
        finding = Finding("a/b.py", 3, 7, "R006", "msg")
        assert finding.format() == "a/b.py:3:7: R006 msg"
        assert finding.format_github().startswith("::error file=a/b.py,line=3")

    def test_every_rule_has_rationale_and_title(self):
        for rule in RULES:
            assert rule.rule_id.startswith("R")
            assert rule.title
            assert "Invariant:" in rule.rationale
            assert get_rule(rule.rule_id.lower()) is rule

    def test_repo_source_tree_is_clean(self):
        # The gate CI enforces: the shipped codebase itself lints clean.
        findings = lint_paths([REPO_ROOT / "src" / "repro"])
        assert findings == [], "\n".join(f.format() for f in findings)


class TestCli:
    def test_explain_known_rule(self, capsys):
        assert main(["--explain", "R001"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "7.000000000000001" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["--explain", "R999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("m = lo >> 24\n")
        assert main([str(bad)]) == 1
        captured = capsys.readouterr()
        assert "R006" in captured.out
        assert "finding" in captured.err

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("m = lo >> np.uint64(24)\n")
        assert main([str(good)]) == 0
        assert capsys.readouterr().out == ""

    def test_github_annotations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("m = lo >> 24\n")
        assert main(["--github", str(bad)]) == 1
        assert "::error file=" in capsys.readouterr().out
