"""Unit tests for repro.net.mac: MAC ⇄ Modified EUI-64 conversion."""

import pytest

from repro.net import mac


class TestMacParsing:
    def test_parse_colon_form(self):
        assert mac.parse_mac("00:1e:c2:aa:bb:cc") == 0x001EC2AABBCC

    def test_parse_dash_form(self):
        assert mac.parse_mac("00-1E-C2-AA-BB-CC") == 0x001EC2AABBCC

    def test_format_roundtrip(self):
        value = 0x001EC2AABBCC
        assert mac.parse_mac(mac.format_mac(value)) == value

    @pytest.mark.parametrize("bad", ["", "00:11:22:33:44", "00:11:22:33:44:5",
                                     "zz:11:22:33:44:55", "001122334455"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(mac.MacError):
            mac.parse_mac(bad)

    def test_range_checks(self):
        with pytest.raises(mac.MacError):
            mac.check_mac(1 << 48)
        with pytest.raises(mac.MacError):
            mac.format_mac(-1)


class TestEui64:
    def test_rfc4291_worked_example(self):
        # RFC 4291 Appendix A: MAC 34-56-78-9A-BC-DE -> 3656:78ff:fe9a:bcde
        value = mac.parse_mac("34:56:78:9a:bc:de")
        assert mac.mac_to_eui64(value) == 0x365678FFFE9ABCDE

    def test_roundtrip(self):
        value = mac.parse_mac("00:11:22:33:44:56")
        assert mac.eui64_to_mac(mac.mac_to_eui64(value)) == value

    def test_marker_detection(self):
        iid = mac.mac_to_eui64(0x001EC2AABBCC)
        assert mac.is_eui64_iid(iid)
        assert not mac.is_eui64_iid(0xDEADBEEF00000000)

    def test_u_bit_flipped_for_universal_mac(self):
        # A universally administered MAC (u/l bit 0) gets u=1 in the IID.
        iid = mac.mac_to_eui64(0x001EC2AABBCC)
        assert mac.iid_u_bit(iid) == 1

    def test_u_bit_for_local_mac(self):
        # A locally administered MAC (bit set) flips to u=0.
        local = 0x021EC2AABBCC
        assert mac.is_locally_administered(local)
        assert mac.iid_u_bit(mac.mac_to_eui64(local)) == 0

    def test_eui64_to_mac_rejects_non_marker(self):
        with pytest.raises(mac.MacError):
            mac.eui64_to_mac(0x1234567812345678)

    def test_eui64_mac_or_none(self):
        iid = mac.mac_to_eui64(0xA45E60010203)
        assert mac.eui64_mac_or_none(iid) == 0xA45E60010203
        assert mac.eui64_mac_or_none(12345) is None

    def test_iid_range_check(self):
        with pytest.raises(mac.MacError):
            mac.is_eui64_iid(1 << 64)


class TestMacBits:
    def test_oui(self):
        assert mac.oui(0x001EC2AABBCC) == 0x001EC2

    def test_group_bit(self):
        assert mac.is_group(0x010000000000)
        assert not mac.is_group(0x001EC2AABBCC)

    def test_marker_position_matches_address_layout(self):
        # The ff:fe marker must sit at IID bits 24..39 (from the LSB).
        iid = mac.mac_to_eui64(0x001EC2AABBCC)
        assert (iid >> 24) & 0xFFFF == 0xFFFE
