"""Unit tests for repro.core.mra: aggregate counts and MRA ratios."""

import random

import numpy as np
import pytest

from repro.core.mra import (
    MraProfile,
    _bit_length_u64,
    adjacent_common_prefix_lengths,
    aggregate_counts,
    profile,
    profiles_by_group,
    segment_ratio_matrix,
)
from repro.data import store as obstore
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


class TestBitLength:
    def test_matches_python_bit_length(self):
        values = [0, 1, 2, 3, 255, 256, (1 << 32) - 1, 1 << 32, (1 << 64) - 1]
        array = np.array(values, dtype=np.uint64)
        expected = [v.bit_length() for v in values]
        assert _bit_length_u64(array).tolist() == expected

    def test_powers_of_two_boundaries(self):
        values = [1 << k for k in range(64)] + [(1 << k) - 1 for k in range(1, 64)]
        array = np.array(values, dtype=np.uint64)
        expected = [v.bit_length() for v in values]
        assert _bit_length_u64(array).tolist() == expected


class TestAggregateCounts:
    def test_definition_endpoints(self):
        counts = aggregate_counts([p("2001:db8::1"), p("2001:db8::2"), p("2a00::1")])
        assert counts[0] == 1  # n_0 = 1
        assert counts[128] == 3  # n_128 = N

    def test_hand_example(self):
        # 2001:db8::1 and 2001:db8::2 share 126 bits; 2001:db8:8000::1
        # diverges at bit 33.
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2001:db8:8000::1")]
        counts = aggregate_counts(values)
        assert counts[32] == 1
        assert counts[33] == 2
        assert counts[126] == 2
        assert counts[127] == 3

    def test_empty_set(self):
        assert aggregate_counts([]).tolist() == [0] * 129

    def test_single_address(self):
        counts = aggregate_counts([p("2001:db8::1")])
        assert counts.tolist() == [1] * 129

    def test_monotone_nondecreasing(self):
        rng = random.Random(3)
        values = [rng.getrandbits(128) for _ in range(200)]
        counts = aggregate_counts(values)
        assert all(counts[i] <= counts[i + 1] for i in range(128))

    def test_duplicates_collapse(self):
        counts = aggregate_counts([1, 1, 1])
        assert counts[128] == 1

    def test_matches_bruteforce(self):
        rng = random.Random(9)
        values = [rng.getrandbits(128) for _ in range(64)]
        counts = aggregate_counts(values)
        for length in (0, 1, 17, 64, 65, 100, 128):
            brute = len({addr.truncate(v, length) for v in values})
            assert counts[length] == brute

    def test_accepts_prebuilt_array(self):
        array = obstore.to_array([1, 2, 3])
        assert aggregate_counts(array)[128] == 3


class TestAdjacentCommonPrefix:
    def test_split_across_halves(self):
        array = obstore.to_array([p("2001:db8::1"), p("2001:db9::1")])
        lengths = adjacent_common_prefix_lengths(array)
        assert lengths.tolist() == [31]

    def test_low_half_divergence(self):
        array = obstore.to_array([p("2001:db8::1"), p("2001:db8::3")])
        assert adjacent_common_prefix_lengths(array).tolist() == [126]

    def test_short_input(self):
        assert adjacent_common_prefix_lengths(obstore.to_array([1])).shape[0] == 0


class TestRatios:
    def test_range_bounds(self):
        rng = random.Random(5)
        prof = profile([rng.getrandbits(128) for _ in range(100)])
        for k in (1, 4, 16):
            for _, ratio in prof.series(k):
                assert 1.0 <= ratio <= 2.0**k

    def test_ratio_product_equals_size(self):
        rng = random.Random(7)
        prof = profile([rng.getrandbits(128) for _ in range(57)])
        for k in (1, 4, 16):
            assert prof.ratio_product(k) == pytest.approx(prof.size)

    def test_series_positions(self):
        prof = profile([1, 2])
        series16 = prof.series(16)
        assert [pos for pos, _ in series16] == list(range(0, 128, 16))
        assert len(prof.series(1)) == 128

    def test_invalid_k(self):
        prof = profile([1])
        with pytest.raises(ValueError):
            prof.series(3)

    def test_ratio_bounds_checked(self):
        prof = profile([1])
        with pytest.raises(ValueError):
            prof.ratio(128, 1)

    def test_segment_ratios_16(self):
        prof = profile([1, 2])
        ratios = prof.segment_ratios_16()
        assert len(ratios) == 8
        assert ratios[-1] == 2.0  # the two addresses split in the last segment


class TestPrivacySignature:
    """MRA signature of RFC 4941 addressing (Figure 2a)."""

    @staticmethod
    def privacy_set(num_64s: int = 8, per_64: int = 500, seed: int = 1):
        rng = random.Random(seed)
        values = []
        for index in range(num_64s):
            high = (p("2001:db8::") >> 64) | index
            for _ in range(per_64):
                iid = rng.getrandbits(64) & ~(1 << 57)  # u bit cleared
                values.append(addr.from_halves(high, iid))
        return values

    def test_plateau_near_two_past_bit_64(self):
        prof = profile(self.privacy_set())
        for position in range(64, 70):
            assert prof.ratio(position, 1) > 1.9

    def test_u_bit_dip_at_70(self):
        prof = profile(self.privacy_set())
        assert prof.ratio(70, 1) == pytest.approx(1.0)
        assert prof.ratio(71, 1) > 1.9  # the ratio rebounds after the dip

    def test_flatline_at_one_in_deep_tail(self):
        prof = profile(self.privacy_set())
        # Few hundred addresses are sparse in 2^64; the tail is all 1s.
        for position in range(100, 128):
            assert prof.ratio(position, 1) == pytest.approx(1.0)


class TestGroups:
    def test_profiles_by_group(self):
        groups = [("a", [1, 2]), ("b", [3])]
        profiles = profiles_by_group(groups)
        assert profiles[0][0] == "a"
        assert profiles[0][1].size == 2

    def test_segment_ratio_matrix_shape(self):
        profiles = [profile([1, 2]), profile([3, 4, 5])]
        matrix = segment_ratio_matrix(profiles)
        assert matrix.shape == (2, 8)


class TestRatioProductExactness:
    """ratio_product telescopes over the integer counts, so the identity
    ∏ γ = set size holds *exactly* even for million-address sets, where
    repeated float multiplication used to drift below the identity."""

    def test_million_address_set_exact(self):
        rng = np.random.default_rng(99)
        hi = rng.integers(0, 1 << 63, size=1_000_000, dtype=np.uint64)
        lo = rng.integers(0, 1 << 63, size=1_000_000, dtype=np.uint64)
        array = obstore.halves_to_array(hi, lo)
        prof = profile(array)
        for k in (1, 2, 4, 8, 16, 32, 64, 128):
            assert prof.ratio_product(k) == float(prof.size)

    def test_small_sets_exact(self):
        for size in (1, 2, 3, 257):
            prof = profile(list(range(1, size + 1)))
            for k in (1, 16, 128):
                assert prof.ratio_product(k) == float(size)

    def test_empty_set_product_zero(self):
        prof = profile([])
        assert prof.ratio_product(16) == 0.0


class TestCanonicalGuard:
    """Regression: structured-array input used to bypass canonicalization.

    `_as_address_array` passed any ADDRESS_DTYPE ndarray straight through,
    but the adjacent-pair scan is only meaningful on sorted, deduplicated
    input — an unsorted array silently returned wrong aggregate counts.
    """

    def test_shuffled_array_matches_sorted(self):
        rng = np.random.default_rng(17)
        values = [p("2001:db8::") + int(v) for v in rng.integers(0, 1 << 40, 400)]
        canonical = obstore.to_array(values)
        shuffled = canonical[rng.permutation(canonical.shape[0])]
        assert not np.array_equal(shuffled, canonical)
        assert aggregate_counts(shuffled).tolist() == aggregate_counts(canonical).tolist()

    def test_duplicated_array_counts_distinct(self):
        canonical = obstore.to_array([1, 2, 3])
        repeated = np.concatenate([canonical, canonical])
        counts = aggregate_counts(repeated)
        assert counts[128] == 3

    def test_canonical_array_not_copied(self):
        from repro.core.mra import _as_address_array

        canonical = obstore.to_array([5, 6, 7])
        assert _as_address_array(canonical) is canonical
