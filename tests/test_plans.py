"""Unit tests for repro.sim.plans: addressing plans and IID policies."""

import pytest

from repro.core.format import IidKind, classify_iid
from repro.net import addr, mac
from repro.net.prefix import Prefix
from repro.sim.plans import (
    DenseDhcpPlan,
    Device,
    DynamicPoolPlan,
    Eui64Iid,
    FixedIid,
    PrivacyIid,
    PseudorandomNetidPlan,
    StaticIspPlan,
    TelcoStructuredPlan,
    UniversityPlan,
    make_device,
)


def device(sub=0, index=0):
    return make_device(seed=1, network="net", subscriber_id=sub, device_index=index)


class TestIidPolicies:
    def test_privacy_changes_daily(self):
        policy = PrivacyIid()
        d = device()
        assert policy.iid(1, "n", d, 0) != policy.iid(1, "n", d, 1)

    def test_privacy_u_bit_cleared(self):
        policy = PrivacyIid()
        for day in range(50):
            iid = policy.iid(1, "n", device(), day)
            assert mac.iid_u_bit(iid) == 0

    def test_privacy_deterministic(self):
        policy = PrivacyIid()
        d = device()
        assert policy.iid(1, "n", d, 3) == policy.iid(1, "n", d, 3)

    def test_eui64_fixed_and_marked(self):
        policy = Eui64Iid()
        d = device()
        iid = policy.iid(1, "n", d, 0)
        assert iid == policy.iid(1, "n", d, 99)
        assert mac.is_eui64_iid(iid)
        assert mac.eui64_to_mac(iid) == d.mac

    def test_fixed_iid(self):
        policy = FixedIid(1, name="one")
        assert policy.iid(1, "n", device(), 5) == 1
        with pytest.raises(ValueError):
            FixedIid(1 << 64)

    def test_make_device_macs_universal(self):
        for sub in range(20):
            d = make_device(1, "net", sub, 0)
            assert not mac.is_locally_administered(d.mac)
            assert not mac.is_group(d.mac)


class TestStaticIspPlan:
    def make(self, delegation=48):
        prefix = Prefix(addr.parse("2400:100::"), 32)
        return StaticIspPlan("jp", seed=1, prefix=prefix, delegation_len=delegation)

    def test_network_id_stable_across_days(self):
        plan = self.make()
        assert plan.network_identifier(7, 0) == plan.network_identifier(7, 365)
        assert plan.network_is_stable()

    def test_network_id_within_prefix(self):
        plan = self.make()
        for sub in range(20):
            high = plan.network_identifier(sub, 0)
            assert plan.prefix.contains(high << 64)

    def test_distinct_subscribers_distinct_delegations(self):
        plan = self.make()
        slash48s = {plan.network_identifier(sub, 0) >> 16 for sub in range(100)}
        assert len(slash48s) == 100

    def test_constant_subnet_value_within_delegation(self):
        # The JP-ISP signature: one 16-bit subnet value per /48, fixed.
        plan = self.make()
        high_day0 = plan.network_identifier(5, 0)
        high_day9 = plan.network_identifier(5, 9)
        assert (high_day0 & 0xFFFF) == (high_day9 & 0xFFFF)

    def test_delegation_length_validated(self):
        with pytest.raises(ValueError):
            self.make(delegation=24)


class TestDynamicPoolPlan:
    def make(self):
        prefixes = [
            Prefix(addr.parse("2600:100::") + (i << 84), 44) for i in range(4)
        ]
        return DynamicPoolPlan("mobile", seed=1, prefixes=prefixes, pool_bits=12)

    def test_network_changes_between_days(self):
        plan = self.make()
        networks = {plan.network_identifier(3, day) for day in range(10)}
        assert len(networks) > 5
        assert not plan.network_is_stable()

    def test_network_within_some_pool(self):
        plan = self.make()
        for day in range(5):
            high = plan.network_identifier(0, day)
            assert any(p.contains(high << 64) for p in plan.prefixes)

    def test_pool_bits_bound_slot_range(self):
        plan = self.make()
        for sub in range(30):
            high = plan.network_identifier(sub, 0)
            slot = high & ((1 << 20) - 1)  # bits 44..63
            assert slot < (1 << 12)

    def test_64_reuse_across_subscribers(self):
        # With a small pool and many draws, distinct subscribers collide.
        plan = self.make()
        seen = {}
        collision = False
        for sub in range(300):
            for day in range(7):
                high = plan.network_identifier(sub, day)
                if high in seen and seen[high] != sub:
                    collision = True
                seen.setdefault(high, sub)
        assert collision

    def test_requires_pools(self):
        with pytest.raises(ValueError):
            DynamicPoolPlan("m", 1, [])


class TestPseudorandomNetidPlan:
    def make(self):
        return PseudorandomNetidPlan(
            "eu", seed=1, prefix=Prefix(addr.parse("2a00:200::"), 32), rotate_days=7
        )

    def test_bit40_constant_zero(self):
        plan = self.make()
        for sub in range(30):
            high = plan.network_identifier(sub, 0)
            assert (high >> 23) & 1 == 0  # address bit 40

    def test_random15_rotates(self):
        plan = self.make()
        networks = {plan.network_identifier(2, day) for day in range(0, 70, 7)}
        assert len(networks) > 3

    def test_stable_within_rotation_period(self):
        plan = self.make()
        # Two adjacent days usually share the network id (not across a
        # rotation boundary for every subscriber, so check one that does).
        matches = sum(
            plan.network_identifier(sub, 0) == plan.network_identifier(sub, 1)
            for sub in range(50)
        )
        assert matches > 30

    def test_final_octet_skewed_to_0_and_1(self):
        plan = self.make()
        octets = [plan.network_identifier(sub, 0) & 0xFF for sub in range(500)]
        low_share = sum(1 for o in octets if o in (0, 1)) / len(octets)
        assert low_share > 0.6
        assert len(set(octets)) > 20  # but many values occur

    def test_prefix_length_validated(self):
        with pytest.raises(ValueError):
            PseudorandomNetidPlan(
                "x", 1, Prefix(addr.parse("2a00:200::"), 44)
            )


class TestUniversityPlan:
    def make(self):
        return UniversityPlan(
            "univ", seed=1, prefix=Prefix(addr.parse("2600:400::"), 32)
        )

    def test_only_three_subnet_values(self):
        plan = self.make()
        nybbles = {
            addr.nybble(plan.network_identifier(sub, 0) << 64, 8)
            for sub in range(300)
        }
        assert nybbles <= set(plan.subnet_values)
        assert len(nybbles) == 3

    def test_requires_slash32(self):
        with pytest.raises(ValueError):
            UniversityPlan("u", 1, Prefix(addr.parse("2600:400::"), 40))


class TestDenseDhcpPlan:
    def make(self):
        return DenseDhcpPlan(
            "dept", seed=1, prefix=Prefix(addr.parse("2a00:300:0:101::"), 64)
        )

    def test_single_64(self):
        plan = self.make()
        networks = {plan.network_identifier(sub, 0) for sub in range(50)}
        assert len(networks) == 1

    def test_hosts_packed_in_low_16_bits(self):
        plan = self.make()
        for sub in range(50):
            d = Device(subscriber_id=sub, device_index=0, mac=0)
            address, truth = plan.address(d, 0)
            iid = address & ((1 << 64) - 1)
            host = iid & 0xFFFF
            assert plan.host_base <= host < plan.host_base + 0x200
            assert truth.is_stable_assignment

    def test_addresses_static_across_days(self):
        plan = self.make()
        d = Device(subscriber_id=3, device_index=0, mac=0)
        assert plan.address(d, 0)[0] == plan.address(d, 100)[0]


class TestTelcoStructuredPlan:
    def make(self):
        return TelcoStructuredPlan(
            "telco", seed=1, prefix=Prefix(addr.parse("2400:600::"), 32)
        )

    def test_static_population_structured(self):
        plan = self.make()
        statics = [sub for sub in range(100) if plan._is_static(sub)]
        assert statics
        d = Device(subscriber_id=statics[0], device_index=0, mac=0)
        address, truth = plan.address(d, 0)
        assert truth.iid_policy == "structured"
        assert classify_iid(address & ((1 << 64) - 1)) is IidKind.STRUCTURED

    def test_dynamic_population_privacy(self):
        plan = self.make()
        dynamics = [sub for sub in range(100) if not plan._is_static(sub)]
        d = Device(subscriber_id=dynamics[0], device_index=0, mac=0)
        _address, truth = plan.address(d, 0)
        assert truth.is_privacy


class TestGroundTruth:
    def test_labels_consistent(self):
        plan = StaticIspPlan(
            "isp", seed=1, prefix=Prefix(addr.parse("2a00:700::"), 32)
        )
        d = make_device(1, "isp", 0, 0)
        address, truth = plan.address(d, 0)
        assert truth.network == "isp"
        assert truth.plan == "static-isp"
        assert truth.subscriber_id == 0
        if truth.iid_policy == "privacy":
            assert truth.is_privacy
            assert not truth.is_stable_assignment
        else:
            assert truth.is_stable_assignment
