"""Unit tests for repro.core.population: aggregate population CCDFs."""

import numpy as np
import pytest

from repro.core.population import (
    aggregate_populations,
    average_per_aggregate,
    figure3_series,
    population_ccdf,
)
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


class TestPopulations:
    def test_counts_per_aggregate(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2a00::1")]
        populations = sorted(aggregate_populations(values, 32).tolist())
        assert populations == [1, 2]

    def test_sum_equals_total(self):
        values = [p("2001:db8::") + i for i in range(10)] + [p("2a00::1")]
        populations = aggregate_populations(values, 48)
        assert populations.sum() == 11

    def test_aggregate_above_64(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2001:db8::1:1")]
        populations = sorted(aggregate_populations(values, 112).tolist())
        assert populations == [1, 2]

    def test_empty(self):
        assert aggregate_populations([], 32).shape[0] == 0

    def test_average(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2a00::1")]
        assert average_per_aggregate(values, 64) == pytest.approx(1.5)
        assert average_per_aggregate([], 64) == 0.0


class TestCcdf:
    def test_proportions(self):
        # Populations: [1, 1, 2, 10] -> P(>=1)=1, P(>=2)=0.5, P(>=10)=0.25.
        values = (
            [p("2001:db8::1")]
            + [p("2a00::1")]
            + [p("2400::") + i for i in range(2)]
            + [p("2600:1::") + i for i in range(10)]
        )
        ccdf = population_ccdf(values, 48)
        assert ccdf.num_aggregates == 4
        assert ccdf.proportion_at_least(1) == pytest.approx(1.0)
        assert ccdf.proportion_at_least(2) == pytest.approx(0.5)
        assert ccdf.proportion_at_least(10) == pytest.approx(0.25)
        assert ccdf.proportion_at_least(11) == pytest.approx(0.0)

    def test_points_are_steps(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2a00::1")]
        points = population_ccdf(values, 32).points()
        assert points[0] == (1.0, 1.0)
        assert points[-1][0] == 2.0

    def test_default_label(self):
        assert population_ccdf([1], 48).label == "48-agg."

    def test_empty_ccdf(self):
        ccdf = population_ccdf([], 48)
        assert ccdf.points() == []
        assert ccdf.proportion_at_least(1) == 0.0


class TestFigure3:
    def test_five_series(self):
        values = [p("2001:db8::") + i for i in range(20)]
        series = figure3_series(values)
        labels = [s.label for s in series]
        assert labels == [
            "32-agg. of IPv6 addrs",
            "32-agg. of /64s",
            "48-agg. of IPv6 addrs",
            "48-agg. of /64s",
            "112-agg of IPv6 addrs",
        ]

    def test_concentration_shape(self):
        # Addresses concentrated in one /48 plus a scattering: the /48
        # CCDF has a long tail (few prefixes hold most addresses).
        dense = [p("2001:db8::") + i for i in range(100)]
        scattered = [p("2a00::") + (i << 80) for i in range(10)]
        series = figure3_series(dense + scattered)
        addrs48 = next(s for s in series if s.label == "48-agg. of IPv6 addrs")
        # Most /48 aggregates are tiny; only a small share holds >= 100.
        assert addrs48.proportion_at_least(100) < 0.2
        assert addrs48.proportion_at_least(1) == 1.0


class TestCanonicalInput:
    """Populations count distinct addresses even when the input array
    repeats rows or arrives unsorted (routed through the canonical
    guard shared with the MRA and density layers)."""

    def test_duplicates_not_double_counted(self):
        from repro.data import store as obstore

        canonical = obstore.to_array([p("2001:db8::") + i for i in range(5)])
        repeated = np.concatenate([canonical, canonical])
        assert aggregate_populations(repeated, 48).tolist() == [5]

    def test_unsorted_array_matches_sorted(self):
        from repro.data import store as obstore

        rng = np.random.default_rng(23)
        canonical = obstore.to_array(
            [p("2001:db8::") + int(v) for v in rng.integers(0, 1 << 30, 200)]
        )
        shuffled = canonical[rng.permutation(canonical.shape[0])]
        expected = sorted(aggregate_populations(canonical, 112).tolist())
        assert sorted(aggregate_populations(shuffled, 112).tolist()) == expected

    def test_populations_in_network_order(self):
        values = [p("2a00::1"), p("2001:db8::1"), p("2001:db8::2")]
        assert aggregate_populations(values, 32).tolist() == [2, 1]
