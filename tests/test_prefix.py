"""Unit tests for repro.net.prefix: CIDR blocks and their algebra."""

import pytest

from repro.net import addr
from repro.net.prefix import (
    Prefix,
    PrefixError,
    aggregate,
    common_prefix,
    covering_prefixes,
    mask_for,
    parse_prefix,
    span,
)


class TestConstruction:
    def test_from_string_cidr(self):
        p = Prefix("2001:db8::/32")
        assert p.network == addr.parse("2001:db8::")
        assert p.length == 32

    def test_from_int_and_length(self):
        p = Prefix(addr.parse("2001:db8::"), 32)
        assert str(p) == "2001:db8::/32"

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix(addr.parse("2001:db8::1"), 32)

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix(0, 129)
        with pytest.raises(PrefixError):
            Prefix(0, -1)

    def test_containing_truncates(self):
        p = Prefix.containing("2001:db8:ffff::1", 32)
        assert str(p) == "2001:db8::/32"

    def test_parse_prefix_errors(self):
        with pytest.raises(PrefixError):
            parse_prefix("2001:db8::")  # missing length
        with pytest.raises(PrefixError):
            parse_prefix("2001:db8::/abc")
        with pytest.raises(PrefixError):
            parse_prefix("nonsense/32")

    def test_zero_length_prefix_spans_everything(self):
        p = Prefix(0, 0)
        assert p.num_addresses == 1 << 128
        assert p.contains(addr.MAX_ADDRESS)


class TestGeometry:
    def test_first_last(self):
        p = Prefix("2001:db8::/112")
        assert p.first == addr.parse("2001:db8::")
        assert p.last == addr.parse("2001:db8::ffff")

    def test_num_addresses(self):
        assert Prefix("2001:db8::/112").num_addresses == 65536
        assert Prefix("::/128").num_addresses == 1

    def test_span_and_mask(self):
        assert span(112) == 65536
        assert mask_for(128) == addr.MAX_ADDRESS
        assert mask_for(0) == 0

    def test_contains_address_and_prefix(self):
        p = Prefix("2001:db8::/32")
        assert p.contains("2001:db8:1234::1")
        assert not p.contains("2001:db9::1")
        assert p.contains(Prefix("2001:db8:ffff::/48"))
        assert not p.contains(Prefix("2001::/16"))  # shorter never contained
        assert "2001:db8::5" in p

    def test_overlaps(self):
        a = Prefix("2001:db8::/32")
        b = Prefix("2001:db8:1::/48")
        c = Prefix("2001:db9::/32")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_supernet(self):
        p = Prefix("2001:db8::/32")
        assert str(p.supernet()) == "2001:db8::/31"
        assert str(p.supernet(16)) == "2001::/16"
        with pytest.raises(PrefixError):
            p.supernet(48)

    def test_subnets(self):
        p = Prefix("2001:db8::/32")
        halves = list(p.subnets())
        assert [str(s) for s in halves] == ["2001:db8::/33", "2001:db8:8000::/33"]
        quads = list(p.subnets(34))
        assert len(quads) == 4
        assert all(p.contains(s) for s in quads)
        with pytest.raises(PrefixError):
            next(p.subnets(16))

    def test_child_bit(self):
        p = Prefix("2001:db8::/32")
        inside_left = addr.parse("2001:db8:0::1")
        inside_right = addr.parse("2001:db8:8000::1")
        assert p.child_bit(inside_left) == 0
        assert p.child_bit(inside_right) == 1
        with pytest.raises(PrefixError):
            Prefix("::1/128").child_bit(1)

    def test_addresses_enumeration(self):
        p = Prefix("2001:db8::/126")
        assert len(list(p.addresses())) == 4


class TestSetOperations:
    def test_equality_and_hash(self):
        assert Prefix("2001:db8::/32") == Prefix("2001:db8::/32")
        assert Prefix("2001:db8::/32") != Prefix("2001:db8::/33")
        assert len({Prefix("::/0"), Prefix("::/0")}) == 1

    def test_ordering(self):
        assert Prefix("2001:db8::/32") < Prefix("2001:db9::/32")
        assert Prefix("2001:db8::/32") < Prefix("2001:db8::/33")

    def test_common_prefix(self):
        a = Prefix("2001:db8::/48")
        b = Prefix("2001:db9::/48")
        assert str(common_prefix(a, b)) == "2001:db8::/31"
        assert common_prefix(a, a) == a

    def test_covering_prefixes(self):
        values = [addr.parse("2001:db8::1"), addr.parse("2001:db8::2"),
                  addr.parse("2001:db9::1")]
        covers = covering_prefixes(values, 32)
        assert len(covers) == 2
        assert covers[0] == (addr.parse("2001:db8::"), 32)

    def test_aggregate_merges_siblings(self):
        merged = aggregate([Prefix("2001:db8::/33"), Prefix("2001:db8:8000::/33")])
        assert merged == [Prefix("2001:db8::/32")]

    def test_aggregate_removes_contained(self):
        merged = aggregate([Prefix("2001:db8::/32"), Prefix("2001:db8:1::/48")])
        assert merged == [Prefix("2001:db8::/32")]

    def test_aggregate_recursive_merge(self):
        quads = list(Prefix("2001:db8::/32").subnets(34))
        assert aggregate(quads) == [Prefix("2001:db8::/32")]

    def test_aggregate_keeps_disjoint(self):
        a, b = Prefix("2001:db8::/32"), Prefix("2001:dba::/32")
        assert aggregate([a, b]) == [a, b]
