"""Property-based tests (hypothesis) on the core data structures.

These assert the paper's mathematical identities and the substrate's
invariants over arbitrary inputs: parse/format round trips, trie count
conservation, MRA ratio identities, stability-class nesting, and density
monotonicity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mra import aggregate_counts, profile
from repro.core.temporal import classify_day
from repro.data import store as obstore
from repro.data.store import ObservationStore
from repro.net import addr
from repro.trie import (
    build_tree,
    compute_dense_prefixes,
    dense_prefixes_fixed,
    density_threshold,
)
from repro.trie.radix import RadixTree

addresses_strategy = st.integers(min_value=0, max_value=(1 << 128) - 1)
address_sets = st.sets(addresses_strategy, min_size=0, max_size=80)
prefix_lengths = st.integers(min_value=0, max_value=128)


class TestAddressProperties:
    @given(addresses_strategy)
    def test_parse_format_roundtrip(self, value):
        assert addr.parse(addr.format_address(value)) == value

    @given(addresses_strategy)
    def test_format_full_roundtrip(self, value):
        assert addr.parse(addr.format_full(value)) == value

    @given(addresses_strategy, prefix_lengths)
    def test_truncate_idempotent(self, value, length):
        once = addr.truncate(value, length)
        assert addr.truncate(once, length) == once

    @given(addresses_strategy, prefix_lengths)
    def test_truncate_only_clears_bits(self, value, length):
        truncated = addr.truncate(value, length)
        assert truncated & value == truncated
        assert truncated <= value

    @given(addresses_strategy, addresses_strategy)
    def test_common_prefix_symmetric(self, a, b):
        assert addr.common_prefix_len(a, b) == addr.common_prefix_len(b, a)

    @given(addresses_strategy, addresses_strategy)
    def test_common_prefix_defines_equal_truncations(self, a, b):
        shared = addr.common_prefix_len(a, b)
        assert addr.truncate(a, shared) == addr.truncate(b, shared)
        if shared < 128:
            assert addr.truncate(a, shared + 1) != addr.truncate(b, shared + 1)

    @given(addresses_strategy)
    def test_halves_recompose(self, value):
        assert addr.from_halves(addr.high64(value), addr.low64(value)) == value


class TestStoreProperties:
    @given(address_sets, address_sets)
    def test_set_algebra_matches_python(self, a, b):
        array_a = obstore.to_array(a)
        array_b = obstore.to_array(b)
        assert set(obstore.from_array(obstore.intersect(array_a, array_b))) == a & b
        assert set(obstore.from_array(obstore.union(array_a, array_b))) == a | b
        assert set(obstore.from_array(obstore.difference(array_a, array_b))) == a - b

    @given(address_sets, prefix_lengths)
    def test_truncate_array_matches_scalar(self, values, length):
        array = obstore.truncate_array(obstore.to_array(values), length)
        expected = sorted({addr.truncate(v, length) for v in values})
        assert obstore.from_array(array) == expected

    @given(address_sets)
    def test_to_array_sorted_unique(self, values):
        result = obstore.from_array(obstore.to_array(values))
        assert result == sorted(set(values))


class TestTrieProperties:
    @given(st.lists(addresses_strategy, min_size=0, max_size=60))
    def test_total_count_conserved(self, values):
        tree = build_tree(values)
        assert tree.total_count == len(values)

    @given(address_sets)
    def test_counted_prefixes_roundtrip(self, values):
        tree = build_tree(values)
        leaves = {
            network for network, length, _c in tree.counted_prefixes()
            if length == 128
        }
        assert leaves == values

    @given(address_sets)
    def test_lookup_finds_inserted_address(self, values):
        tree = build_tree(values)
        for value in values:
            node = tree.lookup(value)
            assert node is not None
            assert node.network == value and node.length == 128


class TestMraProperties:
    @given(address_sets)
    def test_counts_monotone(self, values):
        counts = aggregate_counts(values)
        assert all(counts[i] <= counts[i + 1] for i in range(128))

    @given(address_sets)
    def test_endpoints(self, values):
        counts = aggregate_counts(values)
        if values:
            assert counts[0] == 1
            assert counts[128] == len(values)
        else:
            assert counts.sum() == 0

    @given(st.sets(addresses_strategy, min_size=1, max_size=60))
    def test_ratio_product_identity(self, values):
        # Exact, not approximate: the product telescopes over integer counts.
        prof = profile(values)
        for k in (1, 4, 16):
            assert prof.ratio_product(k) == float(len(values))

    @given(st.sets(addresses_strategy, min_size=1, max_size=60))
    def test_split_bound(self, values):
        # n_{p+1} <= 2 * n_p: splitting can at most double the cover.
        counts = aggregate_counts(values)
        assert all(counts[i + 1] <= 2 * counts[i] for i in range(128))

    @given(st.sets(addresses_strategy, min_size=2, max_size=60))
    def test_counts_match_bruteforce_at_random_lengths(self, values):
        counts = aggregate_counts(values)
        for length in (7, 33, 64, 65, 127):
            assert counts[length] == len({addr.truncate(v, length) for v in values})


class TestDensityProperties:
    @given(address_sets, st.integers(min_value=1, max_value=8))
    def test_fixed_counts_sum(self, values, n):
        dense = dense_prefixes_fixed(values, n, 112)
        for network, length, count in dense:
            assert count >= n
            members = {
                v for v in values if addr.truncate(v, length) == network
            }
            assert len(members) == count

    @given(address_sets)
    def test_general_dense_nonoverlapping(self, values):
        dense = compute_dense_prefixes(values, 2, 112)
        spans = sorted(
            (network, network + (1 << (128 - length)) - 1)
            for network, length, _c in dense
        )
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 < b0

    @given(st.integers(min_value=1, max_value=64), prefix_lengths, prefix_lengths)
    def test_threshold_monotone_in_length(self, n, p, q):
        low, high = sorted((p, q))
        # A less-specific (shorter) prefix never needs fewer addresses.
        assert density_threshold(n, p, low) >= density_threshold(n, p, high)


class TestTemporalProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=14),
            st.sets(st.integers(min_value=0, max_value=30), max_size=12),
            max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_stability_classes_nested(self, schedule):
        store = ObservationStore()
        for day, values in schedule.items():
            store.add_day(day, values)
        result = classify_day(store, 7)
        for n in range(2, 15):
            stable_n = set(obstore.from_array(result.stable(n)))
            stable_prev = set(obstore.from_array(result.stable(n - 1)))
            assert stable_n <= stable_prev

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=14),
            st.sets(st.integers(min_value=0, max_value=30), max_size=12),
            max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_prefix_stability_dominates_address_stability(self, schedule):
        # An address's /64 is stable whenever the address itself is: the
        # paper's "upper limit" remark.
        store = ObservationStore()
        for day, values in schedule.items():
            # Spread the small integers into distinct /64s plus IID noise.
            store.add_day(day, [(v << 64) | (day % 3) for v in values])
        address_result = classify_day(store, 7)
        prefix_result = classify_day(store.truncated(64), 7)
        for n in (1, 3, 7):
            stable_addresses = obstore.from_array(address_result.stable(n))
            stable_64s = set(obstore.from_array(prefix_result.stable(n)))
            for value in stable_addresses:
                assert addr.truncate(value, 64) in stable_64s
