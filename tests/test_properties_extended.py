"""Extended property-based tests: parser fuzzing, densify invariants,
streaming equivalence, and census conservation."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.census import census
from repro.core.streaming import stream_classify
from repro.core.temporal import classify_day
from repro.data import store as obstore
from repro.data.store import ObservationStore
from repro.net import addr
from repro.trie import (
    aguri_aggregate,
    build_tree,
    compute_dense_prefixes,
    dense_prefixes_fixed,
)

addresses_strategy = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestParserFuzzing:
    @given(st.text(alphabet=string.printable, max_size=60))
    @settings(max_examples=300)
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary text either parses to a valid address or raises
        AddressError — never any other exception type."""
        try:
            value = addr.parse(text)
        except addr.AddressError:
            return
        assert 0 <= value < (1 << 128)
        # Anything that parses must round-trip through the formatter.
        assert addr.parse(addr.format_address(value)) == value

    @given(
        st.lists(
            st.integers(min_value=0, max_value=0xFFFF), min_size=8, max_size=8
        )
    )
    def test_all_full_forms_parse(self, groups):
        text = ":".join(f"{g:x}" for g in groups)
        value = addr.parse(text)
        for index, group in enumerate(groups):
            assert addr.segment16(value, index) == group

    @given(addresses_strategy, st.sampled_from(["upper", "lower"]))
    def test_case_insensitivity(self, value, case):
        text = addr.format_address(value)
        transformed = text.upper() if case == "upper" else text.lower()
        assert addr.parse(transformed) == value


class TestDensifyInvariants:
    @given(
        st.sets(addresses_strategy, max_size=50),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=64, max_value=124),
    )
    @settings(max_examples=100)
    def test_dense_counts_bounded_by_input(self, values, n, p):
        found = compute_dense_prefixes(values, n, p)
        total_contained = sum(count for _n, _l, count in found)
        assert total_contained <= len(values)
        for _network, length, count in found:
            assert count >= n
            assert length <= 127

    @given(
        st.sets(addresses_strategy, max_size=50),
        st.integers(min_value=64, max_value=124),
    )
    @settings(max_examples=100)
    def test_fixed_dense_monotone_in_n(self, values, p):
        low = {net for net, _l, _c in dense_prefixes_fixed(values, 2, p)}
        high = {net for net, _l, _c in dense_prefixes_fixed(values, 4, p)}
        assert high <= low

    @given(
        st.lists(addresses_strategy, min_size=1, max_size=40),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_aguri_conserves_total(self, values, fraction):
        tree = build_tree(values)
        aguri_aggregate(tree, fraction)
        assert tree.total_count == len(values)


class TestStreamingEquivalence:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=12),
            st.sets(st.integers(min_value=0, max_value=25), max_size=8),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_equals_batch(self, schedule):
        store = ObservationStore()
        for day, values in schedule.items():
            store.add_day(day, values)
        streamed = {
            result.reference_day: result
            for result in stream_classify(
                sorted(schedule.items()), window_before=3, window_after=3
            )
        }
        for day in schedule:
            batch = classify_day(store, day, 3, 3)
            assert obstore.from_array(streamed[day].active) == obstore.from_array(
                batch.active
            )
            assert streamed[day].gaps.tolist() == batch.gaps.tolist()


class TestCensusConservation:
    @given(st.sets(addresses_strategy, max_size=80))
    @settings(max_examples=100)
    def test_buckets_partition_total(self, values):
        row = census(values)
        assert row.teredo + row.isatap + row.sixto4 + row.other == row.total
        assert row.total == len(values)

    @given(st.sets(addresses_strategy, max_size=80))
    @settings(max_examples=100)
    def test_other_64s_bounded(self, values):
        row = census(values)
        assert row.other_64s <= row.other
        if row.other:
            assert row.avg_addrs_per_64 >= 1.0
