"""Quarantine-mode ingestion: report accounting, thresholds, and the
``load_store`` partial-failure matrix.

The matrix covers the failure shapes a year-long campaign actually
produces — unreadable day files, empty files, comment-only files,
duplicate day numbers — crossed with both error modes and both serial
and parallel loading, asserting identical classification either way.
"""

import os

import numpy as np
import pytest

from repro.data.logfile import load_store, read_daily_log, read_daily_log_arrays
from repro.runtime.quarantine import (
    ERRORS_QUARANTINE,
    ERRORS_STRICT,
    MAX_EXCERPT_CHARS,
    MAX_RECORDS_PER_RULE,
    QuarantinePolicy,
    QuarantineReport,
    QuarantineThresholdError,
    check_errors_mode,
    clip_excerpt,
)

JOBS = [1, 4]


def _write(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return str(path)


def _good_day(path, day, count=4):
    lines = [f"# repro aggregated log day={day}"]
    lines += [f"2001:db8::{i + 1:x} {i + 1}" for i in range(count)]
    return _write(path, lines)


class TestReportAccounting:
    def test_line_fault_counts_and_records(self):
        report = QuarantineReport()
        report.line_fault("day.txt", 3, "bad-address", "zz::1")
        report.line_fault("day.txt", 9, "bad-address", "qq::2")
        report.note_lines("day.txt", 100)
        assert report.total_line_faults == 2
        assert report.by_rule() == {"bad-address": 2}
        assert report.line_totals["day.txt"] == 100
        assert "day.txt:3" in report.records[0].format()

    def test_record_cap_keeps_counts_exact(self):
        report = QuarantineReport()
        for line in range(MAX_RECORDS_PER_RULE * 3):
            report.line_fault("day.txt", line + 1, "bad-address", "x")
        assert len(report.records) == MAX_RECORDS_PER_RULE
        assert report.counts[("day.txt", "bad-address")] == MAX_RECORDS_PER_RULE * 3

    def test_day_fault_and_info_are_separate(self):
        report = QuarantineReport()
        report.day_fault("log-3.txt", "unreadable-file")
        report.info("log-4.txt", "cache-rebuilt", "truncated payload")
        assert report.total_day_faults == 1
        assert report.total_line_faults == 0
        assert not report.is_empty()

    def test_merge_folds_everything(self):
        left, right = QuarantineReport(), QuarantineReport()
        left.line_fault("a.txt", 1, "bad-address")
        left.note_lines("a.txt", 10)
        right.line_fault("a.txt", 2, "bad-address")
        right.note_lines("a.txt", 5)
        right.day_fault("b.txt", "unreadable-file")
        left.merge(right)
        assert left.counts[("a.txt", "bad-address")] == 2
        assert left.line_totals["a.txt"] == 15
        assert left.line_faults["a.txt"] == 2
        assert left.day_faults == ["b.txt"]

    def test_summary_clean_and_dirty(self):
        report = QuarantineReport()
        assert "clean" in report.summary()
        report.line_fault("a.txt", 1, "bad-address", "junk")
        text = report.summary()
        assert "1 line fault(s)" in text and "bad-address" in text

    def test_clip_excerpt(self):
        assert clip_excerpt("short") == "short"
        clipped = clip_excerpt("y" * 500)
        assert len(clipped) == MAX_EXCERPT_CHARS and clipped.endswith("…")

    def test_check_errors_mode(self):
        assert check_errors_mode(ERRORS_STRICT) == ERRORS_STRICT
        assert check_errors_mode(ERRORS_QUARANTINE) == ERRORS_QUARANTINE
        with pytest.raises(ValueError, match="errors must be"):
            check_errors_mode("ignore")


class TestThresholds:
    def test_line_grace_shields_small_files(self):
        # A tiny test file with one typo must not abort the run even
        # though 1/3 lines vastly exceeds max_line_fraction.
        report = QuarantineReport()
        report.line_fault("a.txt", 2, "bad-address")
        report.note_lines("a.txt", 3)
        report.enforce_day("a.txt", QuarantinePolicy())  # no raise

    def test_line_fraction_budget_aborts(self):
        report = QuarantineReport()
        for line in range(20):
            report.line_fault("a.txt", line + 1, "bad-address")
        report.note_lines("a.txt", 100)
        with pytest.raises(QuarantineThresholdError) as info:
            report.enforce_day("a.txt", QuarantinePolicy())
        assert info.value.report is report
        assert "20 of 100" in str(info.value)

    def test_many_faults_in_huge_day_within_budget(self):
        report = QuarantineReport()
        for line in range(50):
            report.line_fault("a.txt", line + 1, "bad-address")
        report.note_lines("a.txt", 1_000_000)
        report.enforce_day("a.txt", QuarantinePolicy())  # 0.005% < 1%

    def test_day_budget_aborts(self):
        report = QuarantineReport()
        for i in range(3):
            report.day_fault(f"log-{i}.txt", "unreadable-file")
        with pytest.raises(QuarantineThresholdError, match="3 of 4 days"):
            report.enforce_run(QuarantinePolicy(), total_days=4)

    def test_day_grace_allows_single_loss(self):
        report = QuarantineReport()
        report.day_fault("log-0.txt", "unreadable-file")
        report.enforce_run(QuarantinePolicy(), total_days=2)  # no raise


class TestReaderQuarantine:
    def test_scalar_reader_diverts_bad_lines(self, tmp_path):
        path = _write(
            tmp_path / "day.txt",
            [
                "# repro aggregated log day=1",
                "2001:db8::1 3",
                "not-an-address 5",
                "2001:db8::2 too-many tokens",
                "2001:db8::3 x9",
                "2001:db8::4 7",
            ],
        )
        report = QuarantineReport()
        day, entries = read_daily_log(path, errors=ERRORS_QUARANTINE, report=report)
        assert day == 1 and len(entries) == 2
        assert report.by_rule() == {
            "bad-address": 1,
            "bad-line-shape": 1,
            "bad-hit-count": 1,
        }
        assert report.line_totals[path] == 5

    def test_columnar_reader_matches_scalar(self, tmp_path):
        path = _write(
            tmp_path / "day.txt",
            [
                "# repro aggregated log day=1",
                "2001:db8::1 3",
                "zz::: 5",
                "orphan-token",
                "2001:db8::2 1x",
                "2001:db8::4 7",
            ],
        )
        scalar_report, columnar_report = QuarantineReport(), QuarantineReport()
        _, entries = read_daily_log(
            path, errors=ERRORS_QUARANTINE, report=scalar_report
        )
        day, hi, lo, hits = read_daily_log_arrays(
            path, errors=ERRORS_QUARANTINE, report=columnar_report
        )
        assert day == 1
        assert hi.shape[0] == len(entries) == 2
        assert scalar_report.by_rule() == columnar_report.by_rule()
        assert (
            scalar_report.line_totals[path] == columnar_report.line_totals[path] == 5
        )

    def test_strict_mode_is_bit_identical_on_clean_input(self, tmp_path):
        path = _good_day(tmp_path / "day.txt", 1, count=6)
        strict = read_daily_log_arrays(path, errors=ERRORS_STRICT)
        report = QuarantineReport()
        relaxed = read_daily_log_arrays(path, errors=ERRORS_QUARANTINE, report=report)
        assert report.is_empty()
        assert strict[0] == relaxed[0]
        for a, b in zip(strict[1:], relaxed[1:]):
            np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("jobs", JOBS)
class TestLoadStoreMatrix:
    """Satellite matrix: partial failures x error mode x serial/parallel."""

    def test_unreadable_file_strict_raises(self, tmp_path, jobs):
        paths = [
            _good_day(tmp_path / "log-0.txt", 0),
            str(tmp_path / "log-1-missing.txt"),
            _good_day(tmp_path / "log-2.txt", 2),
        ]
        with pytest.raises(OSError):
            load_store(paths, jobs=jobs, errors=ERRORS_STRICT)

    def test_unreadable_file_quarantine_becomes_gap(self, tmp_path, jobs):
        paths = [
            _good_day(tmp_path / "log-0.txt", 0),
            str(tmp_path / "log-1-missing.txt"),
            _good_day(tmp_path / "log-2.txt", 2),
        ]
        report = QuarantineReport()
        store = load_store(paths, jobs=jobs, errors=ERRORS_QUARANTINE, report=report)
        assert store.days() == [0, 2]  # day 1 is an explicit gap
        assert report.day_faults == [paths[1]]
        assert report.by_rule() == {"unreadable-file": 1}

    def test_empty_file_loads_in_both_modes(self, tmp_path, jobs):
        empty = tmp_path / "log-1.txt"
        empty.touch()
        paths = [_good_day(tmp_path / "log-0.txt", 0), str(empty)]
        for errors in (ERRORS_STRICT, ERRORS_QUARANTINE):
            report = QuarantineReport()
            store = load_store(paths, jobs=jobs, errors=errors, report=report)
            assert store.days() == [0, 1]
            assert len(store.get(1)) == 0
            assert report.is_empty()

    def test_comment_only_file_keeps_header_day(self, tmp_path, jobs):
        comment_only = _write(
            tmp_path / "log-5.txt",
            ["# repro aggregated log day=5", "# maintenance window, no traffic"],
        )
        paths = [_good_day(tmp_path / "log-0.txt", 0), comment_only]
        for errors in (ERRORS_STRICT, ERRORS_QUARANTINE):
            store = load_store(paths, jobs=jobs, errors=errors)
            assert store.days() == [0, 5]
            assert len(store.get(5)) == 0

    def test_duplicate_day_strict_replaces_silently(self, tmp_path, jobs):
        first = _good_day(tmp_path / "log-3a.txt", 3, count=2)
        second = _good_day(tmp_path / "log-3b.txt", 3, count=7)
        store = load_store([first, second], jobs=jobs, errors=ERRORS_STRICT)
        assert store.days() == [3]
        assert len(store.get(3)) == 7  # last writer wins

    def test_duplicate_day_quarantine_records_info(self, tmp_path, jobs):
        first = _good_day(tmp_path / "log-3a.txt", 3, count=2)
        second = _good_day(tmp_path / "log-3b.txt", 3, count=7)
        report = QuarantineReport()
        store = load_store(
            [first, second], jobs=jobs, errors=ERRORS_QUARANTINE, report=report
        )
        assert store.days() == [3]
        assert len(store.get(3)) == 7
        assert report.by_rule() == {"duplicate-day": 1}
        # Info records never count as loss.
        assert report.total_line_faults == 0 and report.total_day_faults == 0

    def test_dirty_lines_quarantined_identically(self, tmp_path, jobs):
        dirty = _write(
            tmp_path / "log-1.txt",
            [
                "# repro aggregated log day=1",
                "2001:db8::1 3",
                "garbage-line 5",
                "2001:db8::2 4",
            ],
        )
        paths = [_good_day(tmp_path / "log-0.txt", 0), dirty]
        report = QuarantineReport()
        store = load_store(paths, jobs=jobs, errors=ERRORS_QUARANTINE, report=report)
        assert store.days() == [0, 1]
        assert len(store.get(1)) == 2
        assert report.by_rule() == {"bad-address": 1}
        assert report.line_totals[dirty] == 3

    def test_threshold_breach_aborts_run(self, tmp_path, jobs):
        flood = _write(
            tmp_path / "log-1.txt",
            ["# repro aggregated log day=1"]
            + [f"2001:db8::{i + 1:x} 1" for i in range(50)]
            + [f"not-an-address-{i} 1" for i in range(20)],
        )
        paths = [_good_day(tmp_path / "log-0.txt", 0), flood]
        with pytest.raises(QuarantineThresholdError):
            load_store(paths, jobs=jobs, errors=ERRORS_QUARANTINE)

    def test_serial_and_parallel_reports_match(self, tmp_path, jobs):
        # Identical quarantine accounting regardless of fan-out: the
        # parametrized run is compared against a serial reference.
        dirty = _write(
            tmp_path / "log-1.txt",
            [
                "# repro aggregated log day=1",
                "2001:db8::1 3",
                "bad-line",
                "2001:db8::2 x4",
            ],
        )
        paths = [
            _good_day(tmp_path / "log-0.txt", 0),
            dirty,
            str(tmp_path / "log-2-missing.txt"),
            _good_day(tmp_path / "log-3.txt", 3),
        ]
        reference = QuarantineReport()
        ref_store = load_store(paths, jobs=1, errors=ERRORS_QUARANTINE, report=reference)
        report = QuarantineReport()
        store = load_store(paths, jobs=jobs, errors=ERRORS_QUARANTINE, report=report)
        assert store.days() == ref_store.days() == [0, 1, 3]
        assert report.by_rule() == reference.by_rule()
        assert report.counts == reference.counts
        assert report.line_totals == reference.line_totals
        assert report.day_faults == reference.day_faults


@pytest.mark.parametrize("jobs", JOBS)
class TestLoadStoreStrictParity:
    def test_clean_inputs_identical_across_modes_and_jobs(self, tmp_path, jobs):
        paths = [_good_day(tmp_path / f"log-{d}.txt", d, count=3 + d) for d in range(4)]
        baseline = load_store(paths, jobs=1, errors=ERRORS_STRICT)
        for errors in (ERRORS_STRICT, ERRORS_QUARANTINE):
            store = load_store(paths, jobs=jobs, errors=errors)
            assert store.days() == baseline.days()
            for day in store.days():
                np.testing.assert_array_equal(
                    store.get(day).addresses, baseline.get(day).addresses
                )
                np.testing.assert_array_equal(
                    store.get(day).hits, baseline.get(day).hits
                )
