"""Unit tests for repro.trie.radix: the Patricia tree."""

import pytest

from repro.net import addr
from repro.trie.radix import RadixTree


def p(text: str) -> int:
    return addr.parse(text)


class TestInsertion:
    def test_single_address(self):
        tree = RadixTree()
        node = tree.add_address(p("2001:db8::1"))
        assert node.length == 128
        assert node.count == 1
        assert tree.total_count == 1

    def test_duplicate_accumulates(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        node = tree.add_address(p("2001:db8::1"), count=4)
        assert node.count == 5
        assert tree.total_count == 5

    def test_split_creates_branch_at_divergence(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        tree.add_address(p("2001:db8::4"))
        # ::1 = ...0001, ::4 = ...0100 -> common prefix length 125.
        branch = tree.find(p("2001:db8::"), 125)
        assert branch is not None
        assert branch.count == 0
        assert branch.left is not None and branch.right is not None

    def test_insert_prefix_at_branch_point(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        tree.add_address(p("2001:db8::4"))
        node = tree.add_prefix(p("2001:db8::"), 125, count=7)
        assert node.count == 7
        assert node.length == 125

    def test_insert_shorter_prefix_above_existing(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        node = tree.add_prefix(p("2001:db8::"), 32)
        assert node.length == 32
        assert tree.lookup(p("2001:db8:ffff::9")) is node

    def test_host_bits_truncated_on_insert(self):
        tree = RadixTree()
        node = tree.add_prefix(p("2001:db8::ffff"), 112)
        assert node.network == p("2001:db8::")

    def test_negative_count_rejected(self):
        tree = RadixTree()
        with pytest.raises(ValueError):
            tree.add_address(1, count=-1)

    def test_node_count_tracks_structure(self):
        tree = RadixTree()
        assert len(tree) == 1  # root
        tree.add_address(p("2001:db8::1"))
        assert len(tree) == 2
        tree.add_address(p("2001:db8::4"))
        assert len(tree) == 4  # + leaf + branch


class TestLookup:
    def test_longest_prefix_match(self):
        tree = RadixTree()
        tree.add_prefix(p("2001:db8::"), 32, count=1)
        tree.add_prefix(p("2001:db8:1::"), 48, count=1)
        hit = tree.lookup(p("2001:db8:1::5"))
        assert hit is not None and hit.length == 48
        hit = tree.lookup(p("2001:db8:2::5"))
        assert hit is not None and hit.length == 32

    def test_lookup_requires_positive_count(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        tree.add_address(p("2001:db8::4"))
        # The /125 branch node exists with count 0; lookup of a third
        # address inside it must not return the structural node.
        assert tree.lookup(p("2001:db8::6")) is None

    def test_lookup_miss(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        assert tree.lookup(p("2a00::1")) is None

    def test_find_exact(self):
        tree = RadixTree()
        tree.add_prefix(p("2001:db8::"), 48, count=3)
        assert tree.find(p("2001:db8::"), 48).count == 3
        assert tree.find(p("2001:db8::"), 47) is None
        assert tree.find(p("2001:db9::"), 48) is None


class TestTraversal:
    def test_preorder_parent_before_children(self):
        tree = RadixTree()
        for text in ("2001:db8::1", "2001:db8::4", "2a00::1"):
            tree.add_address(p(text))
        seen = list(tree.nodes_preorder())
        positions = {id(node): index for index, node in enumerate(seen)}
        for node in seen:
            for child in (node.left, node.right):
                if child is not None:
                    assert positions[id(node)] < positions[id(child)]

    def test_postorder_children_before_parent(self):
        tree = RadixTree()
        for text in ("2001:db8::1", "2001:db8::4", "2a00::1"):
            tree.add_address(p(text))
        seen = list(tree.nodes_postorder())
        positions = {id(node): index for index, node in enumerate(seen)}
        for node in seen:
            for child in (node.left, node.right):
                if child is not None:
                    assert positions[id(node)] > positions[id(child)]

    def test_counted_prefixes_only_positive(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        tree.add_address(p("2001:db8::4"))
        counted = list(tree.counted_prefixes())
        assert len(counted) == 2
        assert all(count > 0 for _n, _l, count in counted)


class TestAggregation:
    def test_absorb_children(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        tree.add_address(p("2001:db8::4"))
        branch = tree.find(p("2001:db8::"), 125)
        tree.absorb_children(branch)
        assert branch.count == 2
        assert branch.is_leaf
        assert tree.total_count == 2
        assert len(tree) == 2  # root + absorbed branch

    def test_absorb_leaf_is_noop(self):
        tree = RadixTree()
        node = tree.add_address(p("2001:db8::1"))
        tree.absorb_children(node)
        assert node.count == 1

    def test_subtree_count(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        tree.add_address(p("2001:db8::4"), count=2)
        assert tree.root.subtree_count == 3

    def test_compact_removes_passthrough(self):
        tree = RadixTree()
        tree.add_address(p("2001:db8::1"))
        tree.add_address(p("2001:db8::4"))
        branch = tree.find(p("2001:db8::"), 125)
        # Remove one child by absorbing it manually, creating a
        # zero-count single-child chain.
        branch.left = None
        tree._node_count -= 1
        before = len(tree)
        tree.compact()
        assert len(tree) == before - 1
        assert tree.lookup(p("2001:db8::4")).length == 128
