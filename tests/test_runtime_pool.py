"""Unit tests for repro.runtime.pool: supervised fork worker pools.

The tests drive every recovery path with real forked children: clean
runs, crashed workers (``os._exit``), raising workers, wedged workers
(timeout), poison tasks that exhaust retries (serial fallback), and the
``fallback=False`` hard-error mode.  First-attempt-only faults are
armed through marker files on disk so the retry genuinely succeeds.
"""

import multiprocessing
import os
import time

import pytest

from repro.runtime.pool import (
    OUTCOME_CRASH,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_SERIAL_OK,
    PoolConfig,
    PoolTaskError,
    RunReport,
    TaskAttempt,
    backoff_delay,
    resolve_jobs,
    run_supervised,
    supervised_map,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")

# Fast-retry config so fault tests don't sleep out real backoff.
FAST = dict(retries=2, base_delay=0.001, max_delay=0.005)


def _square(value):
    return value * value


class _FlakyCrash:
    """Dies with ``os._exit`` until its marker file exists, then works."""

    def __init__(self, marker):
        self.marker = str(marker)

    def __call__(self, value):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as handle:
                handle.write("armed")
            os._exit(1)
        return value * value


class _FlakyRaise:
    """Raises until its marker file exists, then works."""

    def __init__(self, marker):
        self.marker = str(marker)

    def __call__(self, value):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as handle:
                handle.write("armed")
            raise RuntimeError("transient fault")
        return value * value


class _FlakyHang:
    """Sleeps past the timeout until its marker file exists, then works."""

    def __init__(self, marker):
        self.marker = str(marker)

    def __call__(self, value):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as handle:
                handle.write("armed")
            time.sleep(30.0)
        return value * value


class _ChildPoison:
    """Dies in every forked child but succeeds inline in the parent."""

    def __init__(self, parent_pid):
        self.parent_pid = parent_pid

    def __call__(self, value):
        if os.getpid() != self.parent_pid:
            os._exit(1)
        return value * value


def _always_raises(value):
    raise ValueError(f"poison task {value}")


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestBackoff:
    def test_deterministic_for_same_inputs(self):
        config = PoolConfig(seed=7, label="x")
        assert backoff_delay(config, 3, 1) == backoff_delay(config, 3, 1)

    def test_varies_with_task_and_attempt(self):
        config = PoolConfig(seed=7, label="x")
        delays = {backoff_delay(config, i, a) for i in range(4) for a in (1, 2)}
        assert len(delays) == 8  # jitter separates every (task, attempt)

    def test_bounded_by_max_delay_and_jitter(self):
        config = PoolConfig(base_delay=0.1, max_delay=0.2)
        for attempt in range(1, 8):
            delay = backoff_delay(config, 0, attempt)
            assert 0.05 * 0.5 <= delay <= 0.2 * 1.5


class TestSerialPath:
    def test_jobs_one_runs_inline(self):
        results, report = run_supervised(_square, [1, 2, 3], PoolConfig(jobs=1))
        assert results == [1, 4, 9]
        assert report.clean and report.tasks == 3

    def test_exceptions_propagate_unchanged(self):
        # Serial execution must behave exactly like a plain loop.
        with pytest.raises(ValueError, match="poison task 2"):
            run_supervised(_always_raises, [2], PoolConfig(jobs=1))

    def test_single_task_skips_fork(self):
        results, report = run_supervised(_square, [5], PoolConfig(jobs=8))
        assert results == [25]
        assert [a.outcome for a in report.attempts] == [OUTCOME_OK]

    def test_empty_tasks(self):
        results, report = run_supervised(_square, [], PoolConfig(jobs=4))
        assert results == [] and report.attempts == []

    def test_on_result_fires_serially(self):
        seen = []
        run_supervised(
            _square, [1, 2], PoolConfig(jobs=1), on_result=lambda i, v: seen.append((i, v))
        )
        assert seen == [(0, 1), (1, 4)]


@needs_fork
class TestParallelPath:
    def test_results_in_task_order(self):
        tasks = list(range(12))
        results, report = run_supervised(_square, tasks, PoolConfig(jobs=4))
        assert results == [t * t for t in tasks]
        assert report.clean
        assert report.crashes == report.timeouts == report.errors == 0

    def test_on_result_sees_every_task_once(self):
        seen = {}
        run_supervised(
            _square,
            list(range(8)),
            PoolConfig(jobs=4),
            on_result=lambda i, v: seen.__setitem__(i, v),
        )
        assert seen == {i: i * i for i in range(8)}

    def test_crashed_worker_is_retried(self, tmp_path):
        func = _FlakyCrash(tmp_path / "armed")
        results, report = run_supervised(
            func, [3, 4], PoolConfig(jobs=2, **FAST)
        )
        assert results == [9, 16]
        assert report.crashes >= 1
        assert report.retries >= 1
        assert not report.clean

    def test_raising_worker_is_retried(self, tmp_path):
        func = _FlakyRaise(tmp_path / "armed")
        results, report = run_supervised(
            func, [3, 4], PoolConfig(jobs=2, **FAST)
        )
        assert results == [9, 16]
        assert report.errors >= 1
        # The traceback text travels back through the pipe.
        faulted = [a for a in report.attempts if a.outcome == OUTCOME_ERROR]
        assert "transient fault" in faulted[0].detail

    def test_wedged_worker_is_killed_and_retried(self, tmp_path):
        func = _FlakyHang(tmp_path / "armed")
        results, report = run_supervised(
            func, [3, 4], PoolConfig(jobs=2, timeout=0.5, **FAST)
        )
        assert results == [9, 16]
        assert report.timeouts >= 1

    def test_poison_task_falls_back_to_serial(self):
        func = _ChildPoison(os.getpid())
        results, report = run_supervised(
            func, [3, 4], PoolConfig(jobs=2, **FAST)
        )
        assert results == [9, 16]
        assert report.fallbacks >= 1
        serial = [a for a in report.attempts if a.outcome == OUTCOME_SERIAL_OK]
        assert serial, report.summary()

    def test_fallback_disabled_raises_pool_task_error(self):
        func = _ChildPoison(os.getpid())
        with pytest.raises(PoolTaskError) as info:
            run_supervised(
                func, [3, 4], PoolConfig(jobs=2, fallback=False, **FAST)
            )
        assert info.value.index in (0, 1)
        assert "died" in info.value.detail

    def test_serial_fallback_surfaces_real_exception(self):
        # A genuinely-broken task must raise its own exception type with
        # its real traceback, not a pickled shadow or a PoolTaskError.
        with pytest.raises(ValueError, match="poison task"):
            run_supervised(
                _always_raises, [3, 4], PoolConfig(jobs=2, **FAST)
            )


class TestRunReport:
    def _report(self):
        report = RunReport(label="t", tasks=2)
        report.attempts = [
            TaskAttempt(0, 0, OUTCOME_CRASH, detail="died"),
            TaskAttempt(0, 1, OUTCOME_OK),
            TaskAttempt(1, 0, OUTCOME_ERROR, detail="boom"),
            TaskAttempt(1, 1, OUTCOME_ERROR, detail="boom"),
            TaskAttempt(1, 2, OUTCOME_SERIAL_OK, detail="boom"),
        ]
        return report

    def test_counters(self):
        report = self._report()
        assert report.crashes == 1
        assert report.errors == 2
        assert report.timeouts == 0
        assert report.retries == 2  # attempts 1 of task 0 and 1 of task 1
        assert report.fallbacks == 1
        assert not report.clean

    def test_clean_requires_first_attempt_success(self):
        report = RunReport(label="t", tasks=1)
        report.attempts = [TaskAttempt(0, 0, OUTCOME_OK)]
        assert report.clean

    def test_summary_mentions_everything(self):
        text = self._report().summary()
        assert "1 crash(es)" in text
        assert "2 error(s)" in text
        assert "1 serial fallback(s)" in text


class TestSupervisedMap:
    def test_report_sink_collects_report(self):
        sink = []
        results = supervised_map(_square, [1, 2, 3], jobs=1, report_sink=sink)
        assert results == [1, 4, 9]
        assert len(sink) == 1 and sink[0].tasks == 3

    @needs_fork
    def test_jobs_capped_to_task_count(self):
        sink = []
        supervised_map(_square, [1, 2], jobs=16, report_sink=sink)
        assert sink[0].tasks == 2

    def test_config_jobs_used_when_jobs_omitted(self):
        results = supervised_map(
            _square, [2], config=PoolConfig(jobs=1, label="m")
        )
        assert results == [4]
