"""Integration tests: the full simulated internet and the paper's shapes."""

import pytest

from repro.core import census, classify_day, stability_table
from repro.data import store as obstore
from repro.sim import (
    EPOCH_2014_03,
    EPOCH_2015_03,
    InternetConfig,
    build_internet,
)
from repro.sim.scenarios import epoch_days
from repro.viz.mra_plot import mra_plot


@pytest.fixture(scope="module")
def internet():
    return build_internet(seed=11, config=InternetConfig(scale=0.1))


@pytest.fixture(scope="module")
def epoch_store(internet):
    return internet.build_store(epoch_days(EPOCH_2015_03))


class TestCensusShapes:
    def test_native_dominates(self, internet):
        row = census(internet.day_addresses(EPOCH_2015_03))
        assert row.other_share > 0.9

    def test_6to4_small_but_present(self, internet):
        row = census(internet.day_addresses(EPOCH_2015_03))
        assert 0.01 < row.sixto4_share < 0.12

    def test_teredo_and_isatap_negligible(self, internet):
        row = census(internet.day_addresses(EPOCH_2015_03))
        assert row.teredo_share < 0.01
        assert row.isatap_share < 0.01

    def test_growth_across_the_year(self, internet):
        early = census(internet.day_addresses(EPOCH_2014_03))
        late = census(internet.day_addresses(EPOCH_2015_03))
        assert 1.5 < late.other / max(early.other, 1) < 3.5

    def test_eui64_share_small(self, internet):
        row = census(internet.day_addresses(EPOCH_2015_03))
        assert 0.005 < row.eui64_share < 0.12


class TestStabilityShapes:
    def test_most_addresses_not_3d_stable(self, epoch_store):
        result = classify_day(epoch_store, EPOCH_2015_03)
        fraction = result.stable_fraction(3)
        # The paper: 9.44% of daily addresses are 3d-stable.
        assert fraction < 0.4

    def test_most_64s_are_3d_stable(self, epoch_store):
        result = classify_day(epoch_store.truncated(64), EPOCH_2015_03)
        # The paper: ~90% of daily /64s are 3d-stable.  Our scaled mix
        # keeps the same direction: /64s are far more stable than
        # addresses.
        address_result = classify_day(epoch_store, EPOCH_2015_03)
        assert result.stable_fraction(3) > 2 * address_result.stable_fraction(3)
        assert result.stable_fraction(3) > 0.5

    def test_stability_table_columns(self, epoch_store):
        table = stability_table(epoch_store, "2015-03", EPOCH_2015_03, n=3)
        assert table.daily_active > 0
        assert table.daily_stable + table.daily_not_stable == table.daily_active
        assert table.weekly_active >= table.daily_active
        assert table.weekly_stable >= table.daily_stable


class TestAttribution:
    def test_top_networks_dominate(self, internet):
        addresses = internet.day_addresses(EPOCH_2015_03, include_transition=False)
        groups = internet.registry.group_by_asn(addresses)
        counts = sorted((len(v) for v in groups.values()), reverse=True)
        top5 = sum(counts[:5])
        assert top5 / sum(counts) > 0.5  # top-heavy, as in the paper

    def test_many_asns_active(self, internet):
        addresses = internet.day_addresses(EPOCH_2015_03, include_transition=False)
        groups = internet.registry.group_by_asn(addresses)
        assert len(groups) > 30

    def test_all_native_addresses_routed(self, internet):
        addresses = internet.day_addresses(EPOCH_2015_03, include_transition=False)
        unrouted = [v for v in addresses if internet.registry.origin(v) is None]
        assert not unrouted


class TestMobileSignature:
    def test_dynamic_pool_64_churn(self, internet):
        mobile = next(n for n in internet.networks if n.name == "us-mobile-1")
        prefix_set = mobile.allocation.prefixes
        day_a = {
            v >> 64
            for v in internet.day_addresses(EPOCH_2015_03, include_transition=False)
            if any(p.contains(v) for p in prefix_set)
        }
        day_b = {
            v >> 64
            for v in internet.day_addresses(
                EPOCH_2015_03 + 3, include_transition=False
            )
            if any(p.contains(v) for p in prefix_set)
        }
        overlap = len(day_a & day_b) / max(1, len(day_a))
        assert overlap < 0.6  # /64s churn and are reused within days

    def test_weekly_mra_shows_pool_activity(self, internet, epoch_store):
        mobile = next(n for n in internet.networks if n.name == "us-mobile-1")
        week = epoch_store.union_over(
            range(EPOCH_2015_03, EPOCH_2015_03 + 7)
        )
        values = [
            v
            for v in obstore.from_array(week)
            if any(p.contains(v) for p in mobile.allocation.prefixes)
        ]
        # Heavy weekly utilization of the dynamic pools: the active /64
        # count approaches the total pool capacity (the Figure 5e
        # "nearly 100% utilized" signature, at simulation scale).
        active_64s = {v >> 64 for v in values}
        capacity = len(mobile.allocation.prefixes) * (
            1 << mobile.plan.pool_bits
        )
        assert len(active_64s) / capacity > 0.5
