"""Unit tests for repro.core.signature: MRA-signature classification."""

import random

import pytest

from repro.core.signature import (
    MIN_ADDRESSES,
    PrefixClass,
    class_histogram,
    classify_addresses,
    classify_groups,
    extract_features,
)
from repro.core.mra import profile
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


def privacy_population(num_64s=6, per_64=150, seed=3):
    rng = random.Random(seed)
    values = []
    for index in range(num_64s):
        high = (p("2001:db8::") >> 64) | index
        for _ in range(per_64):
            values.append((high << 64) | (rng.getrandbits(64) & ~(1 << 57)))
    return values


def dense_population(blocks=4, per_block=60):
    values = []
    for block in range(blocks):
        base = p("2400:100:0:8::") + (block << 16)
        values.extend(base + i for i in range(per_block))
    return values


def pool_population(slots=512, seed=5):
    rng = random.Random(seed)
    values = []
    base = p("2600:100::") >> 64
    for _ in range(slots * 2):
        slot = rng.getrandbits(9)
        values.append(((base | slot) << 64) | 1)
    return list(set(values))


def structured_population(per_64=12, num_64s=3):
    # Widely spaced structured IIDs in a few /64s: no privacy plateau,
    # no dense tail, no pool-style subnet churn.
    values = []
    for subnet in range(num_64s):
        high = (p("2a00:900::") >> 64) + subnet
        for host in range(per_64):
            values.append(addr.from_halves(high, (0x10 << 40) | (host << 24)))
    return values


class TestClassification:
    def test_privacy_slaac(self):
        cls, features = classify_addresses(privacy_population())
        assert cls is PrefixClass.PRIVACY_SLAAC
        assert features.iid_plateau > 1.7

    def test_dense_block(self):
        cls, features = classify_addresses(dense_population())
        assert cls is PrefixClass.DENSE_BLOCK
        assert features.tail_prominence > 1.5

    def test_pool_saturated(self):
        cls, features = classify_addresses(pool_population())
        assert cls is PrefixClass.POOL_SATURATED
        assert features.subnet_use > 64

    def test_structured(self):
        cls, _features = classify_addresses(structured_population())
        assert cls is PrefixClass.STRUCTURED

    def test_pool_vs_spread_statics_ambiguity(self):
        # Sequential one-address /64s with fixed IIDs are spatially the
        # same shape a dynamic pool leaves behind: the MRA signature
        # cannot tell them apart from one snapshot (the paper's temporal
        # classifier exists precisely for such cases).
        spread = [
            addr.from_halves((p("2a00:900::") >> 64) + i, (0x10 << 16) | 0x100)
            for i in range(100)
        ]
        cls, _features = classify_addresses(spread)
        assert cls is PrefixClass.POOL_SATURATED

    def test_unknown_below_minimum(self):
        cls, features = classify_addresses([1, 2, 3])
        assert cls is PrefixClass.UNKNOWN
        assert features.size == 3
        assert features.size < MIN_ADDRESSES


class TestFeatures:
    def test_features_from_profile(self):
        features = extract_features(profile(privacy_population()))
        assert features.u_bit_dip < 0.8
        assert features.tail_prominence < 1.2

    def test_size_matches(self):
        values = dense_population()
        features = extract_features(profile(values))
        assert features.size == len(set(values))


class TestGroups:
    def test_classify_groups_and_histogram(self):
        groups = [
            ("privacy-net", privacy_population()),
            ("dense-net", dense_population()),
            ("tiny", [1, 2]),
        ]
        results = classify_groups(groups)
        assert results[0][1] is PrefixClass.PRIVACY_SLAAC
        assert results[1][1] is PrefixClass.DENSE_BLOCK
        assert results[2][1] is PrefixClass.UNKNOWN
        histogram = class_histogram(results)
        assert histogram[PrefixClass.PRIVACY_SLAAC] == 1
        assert histogram[PrefixClass.DENSE_BLOCK] == 1
        assert histogram[PrefixClass.UNKNOWN] == 1
        assert sum(histogram.values()) == 3
