"""Unit tests for the simulator substrate: rng, registry, subscribers."""

import pytest

from repro.net.prefix import Prefix
from repro.sim import rng
from repro.sim.registry import RIR_BLOCKS, AddressRegistry
from repro.sim.subscribers import Population


class TestRng:
    def test_substreams_deterministic(self):
        a = rng.substream(1, "x", 2).random()
        b = rng.substream(1, "x", 2).random()
        assert a == b

    def test_substreams_independent_by_key(self):
        assert rng.substream(1, "x").random() != rng.substream(1, "y").random()

    def test_substreams_independent_by_seed(self):
        assert rng.substream(1, "x").random() != rng.substream(2, "x").random()

    def test_stable_u64_deterministic(self):
        assert rng.stable_u64(3, "a", 1) == rng.stable_u64(3, "a", 1)
        assert rng.stable_u64(3, "a", 1) != rng.stable_u64(3, "a", 2)

    def test_stable_uniform_in_range(self):
        values = [rng.stable_uniform(5, "u", index) for index in range(1000)]
        assert all(0.0 <= value < 1.0 for value in values)
        # Roughly uniform: mean near 0.5.
        assert 0.45 < sum(values) / len(values) < 0.55

    def test_numpy_substream(self):
        a = rng.numpy_substream(1, "n").integers(0, 100, size=5)
        b = rng.numpy_substream(1, "n").integers(0, 100, size=5)
        assert a.tolist() == b.tolist()


class TestRegistry:
    def test_allocations_do_not_overlap(self):
        registry = AddressRegistry(seed=0)
        for index in range(50):
            registry.allocate(f"isp-{index}", "US", "isp", [32])
        prefixes = [
            prefix
            for allocation in registry.allocations
            for prefix in allocation.prefixes
        ]
        spans = sorted((prefix.first, prefix.last) for prefix in prefixes)
        for (a_first, a_last), (b_first, b_last) in zip(spans, spans[1:]):
            assert a_last < b_first

    def test_allocations_land_in_rir_block(self):
        registry = AddressRegistry(seed=0)
        allocation = registry.allocate("isp-de", "DE", "isp", [32])
        ripe = next(block for block in RIR_BLOCKS if block.name == "RIPE")
        assert ripe.prefix.contains(allocation.prefixes[0])

    def test_multiple_prefixes_per_asn(self):
        registry = AddressRegistry(seed=0)
        allocation = registry.allocate("mobile", "US", "mobile", [44] * 10)
        assert len(allocation.prefixes) == 10
        assert all(prefix.length == 44 for prefix in allocation.prefixes)

    def test_origin_lookup(self):
        registry = AddressRegistry(seed=0)
        a = registry.allocate("a", "US", "isp", [32])
        b = registry.allocate("b", "JP", "isp", [32])
        inside_a = a.prefixes[0].network + 12345
        assert registry.origin(inside_a) is a
        assert registry.origin_prefix(inside_a) == a.prefixes[0]
        assert registry.origin(b.prefixes[0].network) is b
        assert registry.origin(0x3FFF << 112) is None  # unallocated space

    def test_origin_after_incremental_allocation(self):
        registry = AddressRegistry(seed=0)
        a = registry.allocate("a", "US", "isp", [32])
        assert registry.origin(a.prefixes[0].network) is a
        b = registry.allocate("b", "US", "isp", [32])
        assert registry.origin(b.prefixes[0].network) is b

    def test_group_by_asn(self):
        registry = AddressRegistry(seed=0)
        a = registry.allocate("a", "US", "isp", [32])
        b = registry.allocate("b", "JP", "isp", [32])
        values = [a.prefixes[0].network + 1, a.prefixes[0].network + 2,
                  b.prefixes[0].network + 1, 0x3FFF << 112]
        groups = registry.group_by_asn(values)
        assert len(groups[a.asn]) == 2
        assert len(groups[b.asn]) == 1
        assert len(groups) == 2  # unrouted dropped

    def test_deterministic_given_seed(self):
        r1 = AddressRegistry(seed=5)
        r2 = AddressRegistry(seed=5)
        a1 = r1.allocate("x", "US", "isp", [32, 48])
        a2 = r2.allocate("x", "US", "isp", [32, 48])
        assert [str(p) for p in a1.prefixes] == [str(p) for p in a2.prefixes]

    def test_bad_length_rejected(self):
        registry = AddressRegistry(seed=0)
        with pytest.raises(ValueError):
            registry.allocate("x", "US", "isp", [8])
        with pytest.raises(ValueError):
            registry.allocate("x", "US", "isp", [72])


class TestPopulation:
    def make(self, size=100):
        return Population(
            network="net", seed=1, size=size, start_day=0, end_day=100,
            start_fraction=0.5,
        )

    def test_growth_monotone(self):
        population = self.make()
        counts = [population.joined_count(day) for day in range(0, 120, 10)]
        assert counts == sorted(counts)
        assert counts[0] == 50
        assert counts[-1] == 100

    def test_cohort_deterministic_and_cached(self):
        population = self.make()
        assert population.cohort(7) == population.cohort(7)

    def test_cohort_shares_roughly_match(self):
        population = self.make(size=4000)
        labels = [population.cohort(i)[0] for i in range(4000)]
        daily_share = labels.count("daily") / 4000
        assert 0.40 < daily_share < 0.50

    def test_devices_deterministic(self):
        population = self.make()
        first = population.devices(3)
        second = population.devices(3)
        assert first is second  # cached
        assert 1 <= len(first) <= population.max_devices

    def test_not_joined_never_active(self):
        population = self.make()
        # Subscriber 99 joins only at the end; never active on day 0.
        assert not population.is_active(99, 0)

    def test_daily_cohort_usually_active(self):
        population = self.make(size=2000)
        daily_ids = [
            i for i in range(1000) if population.cohort(i)[0] == "daily"
        ]
        active = sum(population.is_active(i, 100) for i in daily_ids)
        assert active / len(daily_ids) > 0.85

    def test_first_device_always_active(self):
        population = self.make()
        device = population.devices(0)[0]
        assert population.device_is_active(device, 5)
