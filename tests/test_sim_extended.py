"""Extended simulator tests: multi-association, truth labels, scenarios."""

import pytest

from repro.core.format import IidKind, classify_iid
from repro.net import addr
from repro.net.prefix import Prefix
from repro.sim import (
    EPOCH_2015_03,
    InternetConfig,
    build_internet,
)
from repro.sim.plans import (
    DynamicPoolPlan,
    StablePrivacyIid,
    StaticIspPlan,
    make_device,
)
from repro.sim.registry import AddressRegistry
from repro.sim.scenarios import (
    epoch_days,
    hosting_asn,
    single_network_store,
)


class TestMultiAssociation:
    def make_plan(self):
        prefixes = [Prefix(addr.parse("2600:100::") + (i << 84), 44) for i in range(2)]
        return DynamicPoolPlan("mob", seed=1, prefixes=prefixes, pool_bits=10)

    def test_associations_in_range(self):
        plan = self.make_plan()
        for sub in range(50):
            count = plan.associations(sub, 0)
            assert 1 <= count <= 4

    def test_daily_addresses_matches_association_count(self):
        plan = self.make_plan()
        device = make_device(1, "mob", 3, 0)
        produced = plan.daily_addresses(device, 0)
        assert len(produced) == plan.associations(3, 0)
        # Each association draws its own /64; the IID stays fixed per
        # device for the fixed-IID policies.
        sixty_fours = {value >> 64 for value, _truth in produced}
        assert len(sixty_fours) == len(produced) or len(produced) == 1

    def test_daily_addresses_deterministic(self):
        plan = self.make_plan()
        device = make_device(1, "mob", 3, 0)
        a = [value for value, _ in plan.daily_addresses(device, 5)]
        b = [value for value, _ in plan.daily_addresses(device, 5)]
        assert a == b

    def test_truth_labels_never_stable(self):
        plan = self.make_plan()
        device = make_device(1, "mob", 3, 0)
        for _value, truth in plan.daily_addresses(device, 0):
            assert not truth.is_stable_assignment
            assert truth.plan == "dynamic-pool"

    def test_static_plan_daily_addresses_single(self):
        plan = StaticIspPlan(
            "isp", seed=1, prefix=Prefix(addr.parse("2a00:700::"), 32)
        )
        device = make_device(1, "isp", 0, 0)
        assert len(plan.daily_addresses(device, 0)) == 1


class TestStablePrivacyInPlans:
    def test_policy_distribution_includes_stable_privacy(self):
        plan = StaticIspPlan(
            "isp", seed=1, prefix=Prefix(addr.parse("2a00:700::"), 32),
            privacy_share=0.5,
        )
        names = {
            plan.iid_policy(make_device(1, "isp", sub, 0)).name
            for sub in range(300)
        }
        assert "stable-privacy" in names

    def test_stable_privacy_looks_random_but_persists(self):
        policy = StablePrivacyIid()
        device = make_device(1, "net", 0, 0)
        iid_day0 = policy.iid(1, "net", device, 0)
        iid_day9 = policy.iid(1, "net", device, 9)
        assert iid_day0 == iid_day9
        # Content-wise, frequently indistinguishable from RFC 4941.
        kinds = set()
        for sub in range(50):
            d = make_device(1, "net", sub, 0)
            kinds.add(classify_iid(policy.iid(1, "net", d, 0)))
        assert IidKind.RANDOM in kinds


class TestHostingScenario:
    def test_hosting_asn_is_dense(self):
        registry = AddressRegistry(9)
        network = hosting_asn(registry, 9, index=0, servers=120)
        days = range(EPOCH_2015_03, EPOCH_2015_03 + 7)
        store = single_network_store(network, days, seed=9)
        from repro.core.density import DensityClass, find_dense
        from repro.data.store import from_array

        weekly = from_array(store.union_over(days))
        dense = find_dense(weekly, DensityClass(2, 112))
        assert dense.contained_addresses > 0.5 * len(weekly)

    def test_hosting_kind_recorded(self):
        registry = AddressRegistry(9)
        network = hosting_asn(registry, 9, index=1, servers=40)
        assert network.allocation.kind == "hosting"


class TestGroundTruthConsistency:
    @pytest.fixture(scope="class")
    def internet(self):
        return build_internet(seed=5, config=InternetConfig(scale=0.03))

    def test_every_generated_address_has_truth(self, internet):
        day = EPOCH_2015_03
        truth = internet.ground_truth_for_day(day)
        observed = {
            observation.address
            for observation in internet.observations_for_day(day)
        }
        assert observed == set(truth)

    def test_privacy_labels_match_content_when_detectable(self, internet):
        from repro.core.baseline import is_privacy_address

        truth = internet.ground_truth_for_day(EPOCH_2015_03)
        # Content detection must never fire on genuinely non-random IIDs
        # of the fixed/sequential kinds.
        for address, label in truth.items():
            if label.iid_policy in ("fixed-one", "sequential", "dhcpv6"):
                assert not is_privacy_address(address)

    def test_registry_group_by_prefix_covers_native(self, internet):
        day = EPOCH_2015_03
        native = internet.day_addresses(day, include_transition=False)
        groups = internet.registry.group_by_prefix(native)
        grouped = sum(len(values) for values in groups.values())
        assert grouped == len(native)
        for prefix, values in groups.items():
            assert all(prefix.contains(value) for value in values)

    def test_epoch_days_shape(self):
        days = epoch_days(100, window=7, week_length=7)
        assert days[0] == 92
        assert days[-1] == 113
        assert len(days) == 22
