"""Unit tests for repro.core.spatial: the array-native spatial engine.

The load-bearing assertion is bit-identity: the vectorized general
densify must return exactly what the tree-based reference
(:func:`repro.trie.aguri.compute_dense_prefixes_tree`) returns, across
randomized address sets and (n, p) classes.
"""

import random

import numpy as np
import pytest

from repro.core.density import TABLE3_CLASSES, DensityClass, table3
from repro.core.mra import adjacent_common_prefix_lengths, aggregate_counts
from repro.core.spatial import (
    _nearest_smaller_left,
    _nearest_smaller_right,
    day_spatial_summary,
    dense_runs,
    general_dense_prefixes,
    prefix_runs,
    sweep_spatial,
    threshold_table,
)
from repro.data import store as obstore
from repro.net import addr
from repro.trie.aguri import (
    compute_dense_prefixes_tree,
    dense_prefixes_fixed,
    density_threshold,
)


def p(text: str) -> int:
    return addr.parse(text)


def random_clustered(rng: random.Random, size: int, clusters: int) -> list:
    """Addresses drawn from random-density clusters (plus stragglers)."""
    out = []
    for _ in range(clusters):
        plen = rng.choice([32, 48, 64, 96, 104, 112, 116, 120, 124, 126, 127, 128])
        network = addr.truncate(rng.getrandbits(128), plen)
        for _ in range(rng.randint(1, max(1, size // clusters))):
            offset = rng.getrandbits(128 - plen) if plen < 128 else 0
            out.append(network | offset)
    rng.shuffle(out)
    return out[:size]


class TestThresholdTable:
    def test_matches_reference(self):
        for n, prefix_len in [(1, 0), (2, 112), (64, 112), (3, 120), (2, 124)]:
            table = threshold_table(n, prefix_len)
            for length in range(129):
                expected = min(density_threshold(n, prefix_len, length), 1 << 62)
                assert table[length] == expected

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            threshold_table(0, 112)
        with pytest.raises(ValueError):
            threshold_table(2, 129)


class TestNearestSmaller:
    def naive_left(self, values):
        out = []
        for i in range(len(values)):
            j = i - 1
            while j >= 0 and values[j] >= values[i]:
                j -= 1
            out.append(j)
        return out

    def naive_right(self, values):
        out = []
        for i in range(len(values)):
            j = i + 1
            while j < len(values) and values[j] >= values[i]:
                j += 1
            out.append(j)
        return out

    def test_matches_naive(self):
        rng = random.Random(5)
        for _ in range(60):
            size = rng.randint(1, 120)
            values = np.array(
                [rng.randint(0, 8) for _ in range(size)], dtype=np.int64
            )
            assert _nearest_smaller_left(values).tolist() == self.naive_left(values)
            assert _nearest_smaller_right(values).tolist() == self.naive_right(values)

    def test_monotone_and_flat(self):
        up = np.arange(10, dtype=np.int64)
        assert _nearest_smaller_left(up).tolist() == list(range(-1, 9))
        flat = np.full(6, 3, dtype=np.int64)
        assert _nearest_smaller_left(flat).tolist() == [-1] * 6
        assert _nearest_smaller_right(flat).tolist() == [6] * 6


class TestPrefixRuns:
    def test_matches_truncate_array(self):
        rng = random.Random(9)
        for _ in range(30):
            values = random_clustered(rng, rng.randint(0, 150), rng.randint(1, 8))
            array = obstore.to_array(values)
            for prefix_len in (0, 32, 64, 112, 128):
                starts, counts = prefix_runs(array, prefix_len)
                aggregates = obstore.truncate_array(array, prefix_len)
                assert starts.shape == counts.shape
                assert len(starts) == aggregates.shape[0]
                assert int(counts.sum()) == array.shape[0]
                for start, length in zip(starts, counts):
                    run = array[start : start + length]
                    truncated = obstore.truncate_array(run, prefix_len)
                    assert truncated.shape[0] == 1

    def test_empty(self):
        starts, counts = prefix_runs(np.empty(0, dtype=obstore.ADDRESS_DTYPE), 112)
        assert starts.tolist() == [] and counts.tolist() == []


class TestDenseRuns:
    def test_matches_fixed_reference(self):
        rng = random.Random(13)
        for _ in range(40):
            values = random_clustered(rng, rng.randint(0, 150), rng.randint(1, 8))
            n = rng.choice([1, 2, 4, 8])
            prefix_len = rng.choice([0, 48, 64, 104, 112, 120, 128])
            expected = dense_prefixes_fixed(values, n, prefix_len)
            found, contained = dense_runs(obstore.to_array(values), n, prefix_len)
            assert found == expected
            assert contained == sum(count for _net, _len, count in expected)


class TestGeneralDensify:
    """The tentpole property: vectorized == tree-based, bit for bit."""

    def test_property_identity_across_classes(self):
        rng = random.Random(4242)
        trials = 0
        for _ in range(120):
            values = random_clustered(rng, rng.randint(0, 250), rng.randint(1, 10))
            if values and rng.random() < 0.4:
                values += rng.choices(values, k=rng.randint(1, 10))
            n = rng.choice([1, 2, 3, 4, 8, 16, 64])
            prefix_len = rng.choice([0, 16, 64, 104, 112, 116, 120, 124, 127, 128])
            widen = rng.random() < 0.5
            expected = compute_dense_prefixes_tree(values, n, prefix_len, widen=widen)
            got = general_dense_prefixes(
                obstore.to_array(values), n, prefix_len, widen=widen
            )
            assert got == expected, (n, prefix_len, widen, sorted(set(values))[:6])
            trials += 1
        assert trials == 120

    def test_table3_classes_on_one_set(self):
        rng = random.Random(77)
        values = random_clustered(rng, 400, 12)
        array = obstore.to_array(values)
        lengths = adjacent_common_prefix_lengths(array)
        for cls in TABLE3_CLASSES:
            expected = compute_dense_prefixes_tree(values, cls.n, cls.p)
            assert general_dense_prefixes(array, cls.n, cls.p, lengths=lengths) == expected

    def test_accepts_int_iterable(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2001:db8::2")]
        assert general_dense_prefixes(values, 2, 112) == [(p("2001:db8::"), 126, 2)]

    def test_empty(self):
        assert general_dense_prefixes([], 2, 112) == []
        assert (
            general_dense_prefixes(np.empty(0, dtype=obstore.ADDRESS_DTYPE), 2, 112)
            == []
        )

    def test_single_address(self):
        assert general_dense_prefixes([p("2001:db8::1")], 2, 112) == []
        assert general_dense_prefixes([p("2001:db8::1")], 1, 112) == []
        # 1@/0 density is met by any single address: the root reports.
        assert general_dense_prefixes([p("2001:db8::1")], 1, 0) == [(0, 0, 1)]

    def test_root_dense_without_branch(self):
        # Two addresses sharing a long prefix, searched at 2@/0: the
        # root (not itself a branch point) absorbs everything.
        values = [p("2001:db8::1"), p("2001:db8::2")]
        assert general_dense_prefixes(values, 2, 0) == [(0, 0, 2)]
        assert compute_dense_prefixes_tree(values, 2, 0) == [(0, 0, 2)]

    def test_widen_identity(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2a00::8001"), p("2a00::8002")]
        expected = compute_dense_prefixes_tree(values, 2, 112, widen=True)
        assert general_dense_prefixes(values, 2, 112, widen=True) == expected
        assert expected == [(p("2001:db8::"), 112, 2), (p("2a00::"), 112, 2)]


class TestGoldenTable3:
    """Table 3 on a seeded simulated store, pinned against golden values
    and cross-checked against the tree-based reference."""

    GOLDEN = [
        ("2 @ /124", 97, 288),
        ("3 @ /120", 59, 258),
        ("2 @ /120", 80, 300),
        ("2 @ /116", 80, 300),
        ("64 @ /112", 0, 0),
        ("32 @ /112", 0, 0),
        ("16 @ /112", 2, 36),
        ("8 @ /112", 4, 53),
        ("4 @ /112", 30, 171),
        ("2 @ /112", 80, 300),
        ("2 @ /104", 94, 328),
    ]

    @pytest.fixture(scope="class")
    def union(self):
        from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

        internet = build_internet(seed=42, config=InternetConfig(scale=0.05))
        store = internet.build_store(range(EPOCH_2015_03, EPOCH_2015_03 + 7))
        return store.union_over(store.days())

    def test_golden_rows(self, union):
        assert union.shape[0] == 15713
        rows = {row.density_class.label: row for row in table3(union)}
        for label, num_prefixes, contained in self.GOLDEN:
            assert rows[label].num_prefixes == num_prefixes, label
            assert rows[label].contained_addresses == contained, label

    def test_rows_match_general_densify_widened(self, union):
        # The fixed-length /p search equals the widened general densify
        # restricted to the same count floor on this store.
        for cls in (DensityClass(2, 112), DensityClass(8, 112)):
            fixed, _ = dense_runs(union, cls.n, cls.p)
            widened = [
                entry
                for entry in general_dense_prefixes(union, cls.n, cls.p, widen=True)
                if entry[2] >= cls.n
            ]
            assert fixed == widened


class TestSweepSpatial:
    @pytest.fixture(scope="class")
    def store(self):
        from repro.sim import EPOCH_2015_03, InternetConfig, build_internet

        internet = build_internet(seed=7, config=InternetConfig(scale=0.05))
        return internet.build_store(range(EPOCH_2015_03, EPOCH_2015_03 + 6))

    def test_serial_matches_per_day(self, store):
        classes = [DensityClass(2, 112), DensityClass(2, 120)]
        results = sweep_spatial(store, classes=classes)
        assert [result.day for result in results] == store.days()
        for result in results:
            array = store.array(result.day)
            assert result.total == array.shape[0]
            assert result.mra_counts.tolist() == aggregate_counts(array).tolist()
            expected = day_spatial_summary(array, classes, day=result.day)
            assert result.dense == expected.dense

    def test_jobs_identical(self, store):
        classes = [DensityClass(2, 112)]
        serial = sweep_spatial(store, classes=classes, jobs=1)
        parallel = sweep_spatial(store, classes=classes, jobs=2)
        assert [result.day for result in serial] == [result.day for result in parallel]
        for one, two in zip(serial, parallel):
            assert one.total == two.total
            assert one.dense == two.dense
            assert one.mra_counts.tolist() == two.mra_counts.tolist()

    def test_cull_scopes_to_other(self, store):
        from repro.core.census import other_mask

        results = sweep_spatial(store, classes=[DensityClass(2, 112)], cull=True)
        for result in results:
            array = store.array(result.day)
            assert result.total == int(np.count_nonzero(other_mask(array)))

    def test_keep_prefixes_and_accounting(self, store):
        cls = DensityClass(2, 112)
        results = sweep_spatial(store, classes=[cls], keep_prefixes=True)
        for result in results:
            summary = result.dense[0]
            found = result.prefixes[summary.label]
            assert summary.num_prefixes == len(found)
            assert summary.contained_addresses == sum(c for _n, _l, c in found)
            assert summary.possible_addresses == len(found) * cls.span
            if summary.possible_addresses:
                assert summary.address_density == pytest.approx(
                    summary.contained_addresses / summary.possible_addresses
                )

    def test_accepts_plain_tuples_and_day_subset(self, store):
        days = store.days()[:2]
        results = sweep_spatial(store, days=days, classes=[(2, 112)])
        assert [result.day for result in results] == days
        assert results[0].dense[0].label == "2 @ /112"

    def test_empty_store_days(self):
        empty = obstore.ObservationStore()
        assert sweep_spatial(empty) == []


class TestCli:
    def test_main_spatial_smoke(self, capsys):
        from repro.cli import main_spatial

        assert main_spatial(["--simulate", "0.02", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Spatial sweep" in out
        assert "2 @ /112" in out

    def test_main_spatial_cull_and_density(self, capsys):
        from repro.cli import main_spatial

        code = main_spatial(
            ["--simulate", "0.02", "--seed", "1", "--cull", "--density", "4@/112"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "native (Other) addresses" in out
        assert "4 @ /112" in out

    def test_bad_density_rejected(self):
        from repro.cli import main_spatial

        with pytest.raises(SystemExit):
            main_spatial(["--simulate", "0.02", "--density", "nope"])
