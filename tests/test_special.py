"""Unit tests for repro.net.special: transition mechanisms, special prefixes."""

import pytest

from repro.net import addr, special


class TestTransitionPredicates:
    def test_6to4(self):
        assert special.is_6to4(addr.parse("2002:c000:204::1"))
        assert not special.is_6to4(addr.parse("2001:db8::1"))

    def test_teredo(self):
        assert special.is_teredo(addr.parse("2001:0:53aa:64c::1"))
        assert not special.is_teredo(addr.parse("2001:db8::1"))  # 2001:db8 != 2001:0

    def test_isatap_both_u_bit_variants(self):
        assert special.is_isatap(addr.parse("2001:db8::200:5efe:c000:204"))
        assert special.is_isatap(addr.parse("2001:db8::5efe:c000:204"))
        assert not special.is_isatap(addr.parse("2001:db8::1"))

    def test_isatap_marker_must_be_aligned(self):
        # 5efe elsewhere in the IID is not ISATAP: here it sits in the
        # third IID segment rather than at bits 64..95.
        assert not special.is_isatap(addr.parse("2001:db8::0:5efe:1"))


class TestScopePredicates:
    def test_global_unicast(self):
        assert special.is_global_unicast(addr.parse("2001:db8::1"))
        assert special.is_global_unicast(addr.parse("3fff::1"))
        assert not special.is_global_unicast(addr.parse("fe80::1"))
        assert not special.is_global_unicast(addr.parse("::1"))

    def test_link_local(self):
        assert special.is_link_local(addr.parse("fe80::1"))
        assert not special.is_link_local(addr.parse("fec0::1"))

    def test_multicast(self):
        assert special.is_multicast(addr.parse("ff02::1"))
        assert not special.is_multicast(addr.parse("fe80::1"))

    def test_ula(self):
        assert special.is_ula(addr.parse("fd12:3456::1"))
        assert special.is_ula(addr.parse("fc00::1"))
        assert not special.is_ula(addr.parse("fe80::1"))


class TestEmbeddedIPv4:
    def test_6to4_extraction(self):
        value = addr.parse("2002:c000:0204::1")
        assert special.embedded_ipv4_6to4(value) == 0xC0000204
        assert special.format_ipv4(0xC0000204) == "192.0.2.4"

    def test_6to4_extraction_none_for_other(self):
        assert special.embedded_ipv4_6to4(addr.parse("2001:db8::1")) is None

    def test_teredo_extraction_is_xored(self):
        # Client IPv4 192.0.2.1 is stored XOR 0xffffffff.
        obfuscated = 0xC0000201 ^ 0xFFFFFFFF
        value = (0x20010000 << 96) | obfuscated
        assert special.embedded_ipv4_teredo(value) == 0xC0000201

    def test_isatap_extraction(self):
        value = addr.parse("2001:db8::200:5efe:c0a8:101")
        assert special.embedded_ipv4_isatap(value) == 0xC0A80101

    def test_format_ipv4_range_check(self):
        with pytest.raises(addr.AddressError):
            special.format_ipv4(1 << 32)


class TestSpecialClass:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2001::1", "teredo"),
            ("2002:c000:204::1", "6to4"),
            ("2001:db8::1", "documentation"),
            ("64:ff9b::c000:201", "nat64"),
            ("::ffff:c000:201", "ipv4-mapped"),
            ("fd00::1", "ula"),
            ("fe80::1", "link-local"),
            ("ff02::1", "multicast"),
            ("2a00:1450::1", None),
        ],
    )
    def test_classification(self, text, expected):
        assert special.special_class(addr.parse(text)) == expected

    def test_registry_well_formed(self):
        for name, prefix in special.SPECIAL_PREFIXES.items():
            assert prefix.length <= 128
            assert isinstance(name, str) and name
