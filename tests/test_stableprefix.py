"""Unit tests for repro.core.stableprefix: §7.2 longest stable prefixes."""

import random

import pytest

from repro.core.stableprefix import (
    longest_stable_prefixes,
    plan_boundary_estimate,
)
from repro.data.store import ObservationStore
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


def privacy_iid(rng: random.Random) -> int:
    return rng.getrandbits(64) & ~(1 << 57)


class TestBasicDiscovery:
    def test_stable_address_is_its_own_longest_prefix(self):
        store = ObservationStore()
        store.add_day(0, [p("2001:db8::1")])
        store.add_day(5, [p("2001:db8::1")])
        report = longest_stable_prefixes(store, n=3, lengths=(128, 64, 48))
        assert (p("2001:db8::1"), 128) in report.prefixes
        # The /64 is suppressed: its stability is witnessed by a longer
        # stable prefix inside it.
        assert (p("2001:db8::"), 64) not in report.prefixes

    def test_churning_iids_expose_the_64(self):
        rng = random.Random(1)
        store = ObservationStore()
        high = p("2001:db8:1:2::") >> 64
        store.add_day(0, [(high << 64) | privacy_iid(rng) for _ in range(20)])
        store.add_day(5, [(high << 64) | privacy_iid(rng) for _ in range(20)])
        report = longest_stable_prefixes(store, n=3, lengths=(128, 96, 64, 48))
        assert report.prefixes == [(high << 64, 64)]
        assert report.dominant_length() == 64

    def test_nothing_stable(self):
        store = ObservationStore()
        store.add_day(0, [p("2001:db8::1")])
        store.add_day(5, [p("2a00::2")])
        report = longest_stable_prefixes(store, n=3, lengths=(128, 64))
        assert report.prefixes == []
        assert report.dominant_length() == 0

    def test_gap_must_meet_n(self):
        store = ObservationStore()
        store.add_day(0, [p("2001:db8::1")])
        store.add_day(2, [p("2001:db8::1")])
        report = longest_stable_prefixes(store, n=3, lengths=(128,))
        assert report.prefixes == []
        report = longest_stable_prefixes(store, n=2, lengths=(128,))
        assert len(report.prefixes) == 1

    def test_requires_lengths(self):
        with pytest.raises(ValueError):
            longest_stable_prefixes(ObservationStore(), lengths=())


class TestPoolBoundaryRecovery:
    """The §7.1/§7.2 motivation: recover a mobile carrier's pool boundary."""

    def test_dynamic_64s_from_stable_44_pool(self):
        # Subscribers draw a fresh /64 each day from a /44 pool (20 slot
        # bits) and use a fixed IID.  Individual /64s essentially never
        # repeat, so no stable prefix reaches /64; repetition — and hence
        # the longest stable prefixes — concentrates at the pool's upper
        # levels.  Counting stable /64s here would miscount subscribers,
        # which is the §7.1 point this method addresses.
        rng = random.Random(4)
        pool = p("2600:1000::")  # a /44-aligned base
        store = ObservationStore()
        for day in (0, 2, 5, 7):
            addresses = []
            for _subscriber in range(8):
                slot = rng.getrandbits(20)  # bits 44..63
                addresses.append(pool | (slot << 64) | 1)
            store.add_day(day, addresses)
        lengths = tuple(range(128, 40, -4))
        report = longest_stable_prefixes(store, n=3, lengths=lengths)
        assert report.prefixes, "the pool level must show stability"
        assert max(length for _n, length in report.prefixes) <= 60
        assert 44 <= report.dominant_length() <= 56
        assert plan_boundary_estimate(store, n=3, lengths=lengths) == (
            report.dominant_length()
        )

    def test_static_plan_reports_subscriber_boundary(self):
        # Static /64 per subscriber with churning privacy IIDs: the /64s
        # themselves are the longest stable prefixes.
        rng = random.Random(9)
        store = ObservationStore()
        highs = [(p("2a00:1::") >> 64) + i for i in range(30)]
        for day in (0, 4, 8):
            store.add_day(
                day, [(h << 64) | privacy_iid(rng) for h in highs]
            )
        report = longest_stable_prefixes(store, n=3, lengths=tuple(range(128, 40, -4)))
        assert report.dominant_length() == 64
        # A few /64s land deeper by 4-bit nybble coincidence (about 3/16
        # of them with three qualifying day pairs); the bulk sit at 64.
        assert report.by_length()[64] >= 20
        assert sum(report.by_length().values()) == 30
