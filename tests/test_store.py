"""Unit tests for repro.data.store: the observation store."""

import numpy as np
import pytest

from repro.data import store as obstore
from repro.data.store import DailyObservations, ObservationStore, day_date, day_number
from repro.net import addr


def p(text: str) -> int:
    return addr.parse(text)


class TestDayNumbers:
    def test_epoch(self):
        assert day_number("2014-01-01") == 0

    def test_paper_epochs_ordering(self):
        march14 = day_number("2014-03-17")
        sept14 = day_number("2014-09-17")
        march15 = day_number("2015-03-17")
        assert march14 < sept14 < march15
        assert sept14 - march14 == 184
        assert march15 - sept14 == 181

    def test_roundtrip(self):
        assert day_number(day_date(440)) == 440

    def test_accepts_date_objects(self):
        import datetime

        assert day_number(datetime.date(2014, 1, 2)) == 1


class TestArrays:
    def test_to_array_sorts_and_dedupes(self):
        array = obstore.to_array([5, 1, 5, 3])
        assert obstore.from_array(array) == [1, 3, 5]

    def test_roundtrip_preserves_128_bits(self):
        values = [0, 1, (1 << 128) - 1, 1 << 64, (1 << 64) - 1]
        assert obstore.from_array(obstore.to_array(values)) == sorted(values)

    def test_sorted_order_is_numeric(self):
        # hi must dominate lo in the sort.
        values = [(1 << 64) | 0, 0xFFFFFFFFFFFFFFFF]
        assert obstore.from_array(obstore.to_array(values)) == sorted(values)

    def test_set_operations(self):
        a = obstore.to_array([1, 2, 3])
        b = obstore.to_array([2, 3, 4])
        assert obstore.from_array(obstore.intersect(a, b)) == [2, 3]
        assert obstore.from_array(obstore.union(a, b)) == [1, 2, 3, 4]
        assert obstore.from_array(obstore.difference(a, b)) == [1]

    def test_member_mask(self):
        a = obstore.to_array([1, 2, 3])
        b = obstore.to_array([2, 9])
        assert obstore.member_mask(a, b).tolist() == [False, True, False]

    def test_member_mask_empty_haystack(self):
        a = obstore.to_array([1, 2])
        empty = obstore.to_array([])
        assert obstore.member_mask(a, empty).tolist() == [False, False]

    def test_union_many_empty(self):
        assert obstore.array_size(obstore.union_many([])) == 0


class TestTruncation:
    def test_truncate_to_64(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2001:db9::1")]
        truncated = obstore.truncate_array(obstore.to_array(values), 64)
        assert obstore.from_array(truncated) == [p("2001:db8::"), p("2001:db9::")]

    def test_truncate_above_64(self):
        values = [p("2001:db8::1"), p("2001:db8::2"), p("2001:db8::1:0")]
        truncated = obstore.truncate_array(obstore.to_array(values), 112)
        assert obstore.from_array(truncated) == [p("2001:db8::"), p("2001:db8::1:0")]

    def test_truncate_to_zero_collapses(self):
        values = [p("2001:db8::1"), p("2a00::1")]
        truncated = obstore.truncate_array(obstore.to_array(values), 0)
        assert obstore.from_array(truncated) == [0]

    def test_truncate_128_identity(self):
        array = obstore.to_array([1, 2, 3])
        assert obstore.from_array(obstore.truncate_array(array, 128)) == [1, 2, 3]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            obstore.truncate_array(obstore.to_array([1]), 129)


class TestDailyObservations:
    def test_basic(self):
        day = DailyObservations(5, [3, 1, 3])
        assert day.day == 5
        assert len(day) == 2
        assert day.as_ints() == [1, 3]

    def test_hits_summed_per_unique_address(self):
        day = DailyObservations(0, [1, 2, 1], hits=[10, 5, 7])
        assert day.as_ints() == [1, 2]
        assert day.hits.tolist() == [17, 5]

    def test_hits_length_mismatch(self):
        with pytest.raises(ValueError):
            DailyObservations(0, [1, 2], hits=[1])

    def test_truncated(self):
        day = DailyObservations(0, [p("2001:db8::1"), p("2001:db8::2")])
        assert day.truncated(64).as_ints() == [p("2001:db8::")]


class TestObservationStore:
    def test_add_and_get(self):
        store = ObservationStore()
        store.add_day(3, [1, 2])
        assert 3 in store
        assert 4 not in store
        assert store.days() == [3]
        assert obstore.from_array(store.array(3)) == [1, 2]

    def test_missing_day_is_empty(self):
        store = ObservationStore()
        assert obstore.array_size(store.array(9)) == 0
        assert store.get(9) is None

    def test_union_over(self):
        store = ObservationStore()
        store.add_day(0, [1, 2])
        store.add_day(1, [2, 3])
        assert obstore.from_array(store.union_over([0, 1, 7])) == [1, 2, 3]

    def test_truncated_store(self):
        store = ObservationStore()
        store.add_day(0, [p("2001:db8::1"), p("2001:db8::2")])
        derived = store.truncated(64)
        assert obstore.from_array(derived.array(0)) == [p("2001:db8::")]

    def test_iter_days_chronological(self):
        store = ObservationStore()
        store.add_day(5, [1])
        store.add_day(2, [1])
        assert [d.day for d in store.iter_days()] == [2, 5]

    def test_save_load_roundtrip(self, tmp_path):
        store = ObservationStore()
        store.add_day(0, [p("2001:db8::1"), 1], hits=[4, 2])
        store.add_day(1, [2])
        path = str(tmp_path / "store.npz")
        store.save(path)
        loaded = ObservationStore.load(path)
        assert loaded.days() == [0, 1]
        assert obstore.from_array(loaded.array(0)) == [1, p("2001:db8::1")]
        assert loaded.get(0).hits.tolist() == [2, 4]
        assert loaded.get(1).hits is None
