"""Unit tests for streaming stability, aguri rendering, and CSV export."""

import random

import pytest

from repro.core.streaming import StabilityStream, stream_classify
from repro.core.temporal import classify_day
from repro.data import store as obstore
from repro.data.store import ObservationStore
from repro.net import addr
from repro.trie import aguri_aggregate, build_tree, render_dense, render_tree
from repro.viz import (
    CcdfPlot,
    mra_plot,
    read_series_csv,
    write_boxstats_csv,
    write_ccdf_csv,
    write_mra_csv,
)
from repro.viz.boxplot import BoxStats


def p(text: str) -> int:
    return addr.parse(text)


class TestStabilityStream:
    def make_schedule(self, seed=1, num_days=20, pool=40):
        rng = random.Random(seed)
        return {
            day: sorted(rng.sample(range(1, pool + 1), rng.randrange(5, 20)))
            for day in range(num_days)
        }

    def test_matches_batch_classifier(self):
        schedule = self.make_schedule()
        # Batch reference.
        store = ObservationStore()
        for day, values in schedule.items():
            store.add_day(day, values)
        # Streaming.
        results = list(
            stream_classify(sorted(schedule.items()), window_before=4,
                            window_after=4)
        )
        by_day = {result.reference_day: result for result in results}
        assert set(by_day) == set(schedule)
        for day in schedule:
            batch = classify_day(store, day, 4, 4)
            stream = by_day[day]
            assert obstore.from_array(stream.active) == obstore.from_array(
                batch.active
            )
            assert stream.gaps.tolist() == batch.gaps.tolist()

    def test_emission_timing(self):
        stream = StabilityStream(window_before=2, window_after=2)
        assert stream.push(0, [1]) == []
        assert stream.push(1, [1]) == []
        results = stream.push(2, [1])
        assert [r.reference_day for r in results] == [0]

    def test_gap_days_emit_older_classifications(self):
        stream = StabilityStream(window_before=2, window_after=2)
        stream.push(0, [1])
        results = stream.push(10, [2])  # jumps far ahead
        assert [r.reference_day for r in results] == [0]

    def test_memory_bounded(self):
        stream = StabilityStream(window_before=3, window_after=3)
        for day in range(50):
            stream.push(day, [day % 7])
        assert stream.days_held <= 3 + 3 + 1 + 1

    def test_flush_classifies_tail(self):
        stream = StabilityStream(window_before=2, window_after=2)
        stream.push(0, [1])
        stream.push(1, [1])
        tail = stream.flush()
        assert [r.reference_day for r in tail] == [0, 1]
        # Day 0 sees day 1: 1d-stable.
        assert tail[0].stable_count(1) == 1

    def test_out_of_order_rejected(self):
        stream = StabilityStream()
        stream.push(5, [1])
        with pytest.raises(ValueError):
            stream.push(5, [1])
        with pytest.raises(ValueError):
            stream.push(4, [1])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            StabilityStream(window_before=-1)


class TestRenderTree:
    def test_profile_rendering(self):
        tree = build_tree(
            [p("2001:db8::1")] * 6 + [p("2001:db8::2")] * 2 + [p("2a00::1")] * 2
        )
        aguri_aggregate(tree, 0.2)
        output = render_tree(tree)
        assert "%total" in output
        assert "2001:db8::1/128" in output
        lines = output.splitlines()
        assert len(lines) >= 2

    def test_indentation_reflects_nesting(self):
        tree = build_tree([])
        tree.add_prefix(p("2001:db8::"), 32, count=10)
        tree.add_prefix(p("2001:db8:1::"), 48, count=5)
        output = render_tree(tree)
        lines = [line for line in output.splitlines()[1:]]
        outer = next(line for line in lines if "/32" in line)
        inner = next(line for line in lines if "/48" in line)
        assert inner.index("2001") > outer.index("2001")

    def test_render_dense(self):
        output = render_dense([(p("2001:db8::"), 112, 5)], title="dense")
        assert "dense" in output
        assert "2001:db8::/112" in output
        assert "(5 addrs)" in output
        assert "(none)" in render_dense([])


class TestCsvExport:
    def test_mra_roundtrip(self, tmp_path):
        plot = mra_plot([p("2001:db8::1"), p("2001:db8::2"), p("2a00::1")])
        path = str(tmp_path / "mra.csv")
        write_mra_csv(plot, path)
        header, rows = read_series_csv(path)
        assert header == ["prefix_len", "ratio_16bit", "ratio_4bit", "ratio_1bit"]
        assert len(rows) == 32
        assert rows[0][0] == "0"

    def test_ccdf_export(self, tmp_path):
        plot = CcdfPlot(title="t")
        plot.add("a", [1, 2, 4])
        path = str(tmp_path / "ccdf.csv")
        write_ccdf_csv(plot, path)
        header, rows = read_series_csv(path)
        assert header == ["series", "x", "ccdf"]
        assert all(row[0] == "a" for row in rows)
        assert float(rows[0][2]) == 1.0

    def test_boxstats_export(self, tmp_path):
        stats = [BoxStats(1, 2, 3, 4, 5, 6)] * 8
        path = str(tmp_path / "box.csv")
        write_boxstats_csv(stats, path)
        header, rows = read_series_csv(path)
        assert len(rows) == 8
        assert rows[0][0] == "0"
        assert rows[-1][0] == "112"

    def test_empty_csv_read(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        open(path, "w").close()
        header, rows = read_series_csv(path)
        assert header == [] and rows == []
