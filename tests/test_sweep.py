"""Unit tests for repro.core.sweep: the incremental sweep engine.

The engine's contract is bit-identity with per-day ``classify_day``
regardless of store gaps, window shape, chunking, parallelism, or
streaming delivery; these tests pin that contract down, plus a golden
multi-epoch Table 2 end-to-end run on a seeded synthetic store.
"""

import random

import numpy as np
import pytest

from repro.core.streaming import StabilityStream, stream_classify
from repro.core.sweep import (
    SweepState,
    grouped_spans,
    sweep_days,
    sweep_granularities,
)
from repro.core.temporal import classify_day, classify_week, stability_table
from repro.data import store as obstore
from repro.data.store import ObservationStore


def make_gappy_store(seed=11, num_days=60, pool=700, missing=0.25):
    """A 60-day store with random day gaps and churning address sets."""
    rng = random.Random(seed)
    store = ObservationStore()
    schedule = {}
    for day in range(num_days):
        if rng.random() < missing:
            continue
        addresses = sorted(rng.sample(range(1, pool + 1), rng.randrange(10, 80)))
        schedule[day] = addresses
        store.add_day(day, addresses)
    return store, schedule


def assert_result_equal(result, baseline):
    assert result.reference_day == baseline.reference_day
    assert result.window == baseline.window
    assert result.active.dtype == baseline.active.dtype
    assert result.gaps.dtype == baseline.gaps.dtype
    assert np.array_equal(result.active, baseline.active)
    assert np.array_equal(result.gaps, baseline.gaps)


class TestSweepMatchesClassifyDay:
    def test_gappy_store_default_window(self):
        store, _ = make_gappy_store()
        results = sweep_days(store)
        assert [r.reference_day for r in results] == store.days()
        for result in results:
            assert_result_equal(result, classify_day(store, result.reference_day))

    @pytest.mark.parametrize("window", [(7, 7), (4, 4), (0, 3), (3, 0), (0, 0)])
    def test_every_window_shape(self, window):
        store, _ = make_gappy_store(seed=5)
        before, after = window
        for result in sweep_days(store, None, before, after):
            assert_result_equal(
                result, classify_day(store, result.reference_day, before, after)
            )

    def test_requested_days_absent_from_store(self):
        store, schedule = make_gappy_store(seed=7)
        days = list(range(-3, 63))  # includes gap days and out-of-range days
        results = sweep_days(store, days)
        assert [r.reference_day for r in results] == days
        for result in results:
            assert_result_equal(result, classify_day(store, result.reference_day))
            if result.reference_day not in schedule:
                assert result.active_count == 0

    def test_duplicate_and_unsorted_day_requests(self):
        store, _ = make_gappy_store(seed=9)
        results = sweep_days(store, [20, 5, 20, 11])
        assert [r.reference_day for r in results] == [5, 11, 20]

    def test_chunking_invariance(self):
        store, _ = make_gappy_store(seed=13)
        wide = sweep_days(store, chunk_days=1000)
        for narrow_chunk in (1, 3, 9):
            narrow = sweep_days(store, chunk_days=narrow_chunk)
            for a, b in zip(wide, narrow):
                assert_result_equal(a, b)

    def test_jobs_equal_serial(self):
        store, _ = make_gappy_store(seed=17)
        serial = sweep_days(store, chunk_days=10)
        for jobs in (2, 4):
            parallel = sweep_days(store, jobs=jobs, chunk_days=10)
            assert len(parallel) == len(serial)
            for a, b in zip(serial, parallel):
                assert_result_equal(a, b)

    def test_empty_store(self):
        assert sweep_days(ObservationStore()) == []
        results = sweep_days(ObservationStore(), [1, 2])
        assert [r.active_count for r in results] == [0, 0]

    def test_bad_arguments(self):
        store, _ = make_gappy_store()
        with pytest.raises(ValueError):
            sweep_days(store, window_before=-1)
        with pytest.raises(ValueError):
            sweep_days(store, chunk_days=0)
        with pytest.raises(ValueError):
            sweep_days(store, jobs=-2)


class TestSweepGranularities:
    def test_matches_per_store_sweeps(self):
        from repro.net import addr

        base = addr.parse("2001:db8::")
        store = ObservationStore()
        rng = random.Random(23)
        for day in range(20):
            store.add_day(
                day,
                [base + (rng.randrange(1, 40) << 64) + rng.randrange(1, 1000)
                 for _ in range(30)],
            )
        swept = sweep_granularities(store, [128, 64], jobs=2, chunk_days=7)
        assert set(swept) == {128, 64}
        truncated = store.truncated(64)
        for result in swept[128]:
            assert_result_equal(result, classify_day(store, result.reference_day))
        for result in swept[64]:
            assert_result_equal(result, classify_day(truncated, result.reference_day))


class TestSweepMatchesStream:
    def test_stream_emissions_identical(self):
        store, schedule = make_gappy_store(seed=29)
        emitted = list(stream_classify(sorted(schedule.items()), 7, 7))
        swept = {r.reference_day: r for r in sweep_days(store)}
        assert sorted(r.reference_day for r in emitted) == store.days()
        for result in emitted:
            assert_result_equal(result, swept[result.reference_day])

    def test_stream_with_prebuilt_observations(self):
        store, _ = make_gappy_store(seed=31)
        stream = StabilityStream(4, 4)
        emitted = []
        for observations in store.iter_days():
            emitted.extend(stream.push_observations(observations))
        emitted.extend(stream.flush())
        for result in emitted:
            assert_result_equal(result, classify_day(store, result.reference_day, 4, 4))


class TestSweepState:
    def test_classify_excludes_unevicted_days_outside_window(self):
        state = SweepState(2, 2)
        state.push_day(0, obstore.to_array([1, 2]))
        state.push_day(10, obstore.to_array([1]))
        result = state.classify(0)
        # Day 10 is buffered but outside day 0's window: no stability.
        assert result.active_count == 2
        assert result.gaps.tolist() == [0, 0]

    def test_eviction_and_days_held(self):
        state = SweepState(1, 1)
        for day in range(5):
            state.push_day(day, obstore.to_array([day]))
        assert state.days_held == 5
        state.evict_before(3)
        assert state.days_held == 2
        # Evicted days no longer contribute observations.
        assert state.classify(2).active_count == 0

    def test_out_of_order_push_rejected(self):
        state = SweepState()
        state.push_day(5, obstore.to_array([1]))
        with pytest.raises(ValueError):
            state.push_day(5, obstore.to_array([1]))

    def test_empty_days_classify_empty(self):
        state = SweepState(2, 2)
        state.push_day(0, obstore.to_array([]))
        state.push_day(1, obstore.to_array([7]))
        assert state.classify(0).active_count == 0
        assert state.classify(1).gaps.tolist() == [0]


class TestWeekAndTableRebase:
    def test_classify_week_matches_per_day_construction(self):
        store, _ = make_gappy_store(seed=37)
        days = list(range(10, 17))
        weekly = classify_week(store, days, 3)
        stable_sets = [classify_day(store, day).stable(3) for day in days]
        assert np.array_equal(weekly.stable_union, obstore.union_many(stable_sets))
        assert np.array_equal(weekly.active_union, store.union_over(days))

    def test_stability_table_matches_old_construction(self):
        store, _ = make_gappy_store(seed=41)
        table = stability_table(
            store, "test", 20, n=3, earlier_epochs={"earlier": 5}
        )
        daily = classify_day(store, 20)
        assert table.daily_active == daily.active_count
        assert table.daily_stable == daily.stable_count(3)
        week_days = list(range(20, 27))
        stable_union = obstore.union_many(
            [classify_day(store, day).stable(3) for day in week_days]
        )
        assert table.weekly_active == obstore.array_size(store.union_over(week_days))
        assert table.weekly_stable == obstore.array_size(stable_union)

    def test_stability_table_classifies_reference_day_once(self, monkeypatch):
        """The daily column and the week share one sweep classification."""
        from repro.core import sweep as sweep_module

        store, _ = make_gappy_store(seed=43)
        seen_days = []
        original = sweep_module._sweep_chunk

        def counting_chunk(observations, ref_days, before, after):
            seen_days.extend(ref_days)
            return original(observations, ref_days, before, after)

        monkeypatch.setattr(sweep_module, "_sweep_chunk", counting_chunk)
        stability_table(store, "test", 20, n=3)
        assert sorted(seen_days) == list(range(20, 27))
        assert len(seen_days) == len(set(seen_days))


class TestGroupedSpans:
    def test_matches_bruteforce(self):
        store, schedule = make_gappy_store(seed=47)
        days = store.days()
        addresses, first, last, seen = grouped_spans(
            [store.array(day) for day in days], days
        )
        expected = {}
        for day, addrs in schedule.items():
            for value in addrs:
                lo, hi, count = expected.get(value, (day, day, 0))
                expected[value] = (min(lo, day), max(hi, day), count + 1)
        as_ints = obstore.from_array(addresses)
        assert as_ints == sorted(expected)
        for value, f, l, c in zip(as_ints, first, last, seen):
            assert expected[value] == (f, l, c)

    def test_empty(self):
        addresses, first, last, seen = grouped_spans([], [])
        assert addresses.shape[0] == 0
        assert first.shape[0] == last.shape[0] == seen.shape[0] == 0


def _golden_store():
    """Seeded synthetic store spanning three epochs, with a persistent
    pool so cross-epoch classes are populated."""
    rng = np.random.default_rng(1234)
    pool = [int(v) for v in rng.integers(1, 1 << 40, size=300)]
    store = ObservationStore()
    for epoch in (100, 280, 465):
        for day in range(epoch - 7, epoch + 14):
            keep = rng.random(len(pool)) < 0.5
            stable = [value for value, k in zip(pool, keep) if k]
            ephemeral = [int(v) for v in rng.integers(1 << 41, 1 << 42, size=120)]
            store.add_day(day, stable + ephemeral)
    return store


class TestGoldenTable2:
    """End-to-end Table 2 over three epochs of a seeded synthetic store.

    The golden numbers were computed with per-day ``classify_day`` and
    the pre-sweep ``classify_week``; the sweep-based pipeline must
    reproduce them exactly.
    """

    def test_multi_epoch_golden(self):
        store = _golden_store()
        earlier = {"6m-stable (-6m)": 280, "1y-stable (-1y)": 100}
        table = stability_table(store, "epoch-3", 465, n=3, earlier_epochs=earlier)
        daily = classify_day(store, 465)
        assert table.daily_active == daily.active_count
        assert table.daily_stable == daily.stable_count(3)
        golden = {
            "daily_active": table.daily_active,
            "daily_stable": table.daily_stable,
            "weekly_active": table.weekly_active,
            "weekly_stable": table.weekly_stable,
            "cross_daily": dict(table.cross_epoch_daily),
            "cross_weekly": dict(table.cross_epoch_weekly),
        }
        expected = {
            "daily_active": 267,
            "daily_stable": 147,
            "weekly_active": 1139,
            "weekly_stable": 299,
            "cross_daily": {"6m-stable (-6m)": 78, "1y-stable (-1y)": 80},
            "cross_weekly": {"6m-stable (-6m)": 298, "1y-stable (-1y)": 295},
        }
        assert golden == expected

    def test_epochs_consistent_across_granularities(self):
        store = _golden_store()
        for epoch in (100, 280, 465):
            table = stability_table(store, str(epoch), epoch, n=3)
            # The persistent pool keeps a majority of actives 3d-stable.
            assert 0 < table.daily_stable <= table.daily_active
            assert table.weekly_stable <= table.weekly_active
