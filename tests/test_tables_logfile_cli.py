"""Unit tests for analysis.tables, data.logfile and the CLI entry points."""

import pytest

from repro.analysis.tables import count_with_share, percent, render_table, si_count
from repro.cli import main_census, main_dense, main_mra, main_stability
from repro.data import logfile
from repro.data.store import ObservationStore
from repro.net import addr


class TestSiCount:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (30_100_000, "30.1M"),
            (1_810_000_000, "1.81B"),
            (64_200, "64.2K"),
            (1_810_000_000_000, "1.81T"),
            (153_000_000, "153M"),
            (999, "999"),
            (0, "0"),
            (12, "12"),
        ],
    )
    def test_paper_style(self, value, expected):
        assert si_count(value) == expected

    def test_negative(self):
        assert si_count(-1500) == "-1.50K"


class TestPercent:
    @pytest.mark.parametrize(
        "fraction,expected",
        [
            (0.0944, "9.44%"),
            (0.00296, ".296%"),
            (0.92, "92.0%"),
            (0.00103, ".103%"),
            (0.001, ".100%"),
            (1.0, "100%"),
        ],
    )
    def test_paper_style(self, fraction, expected):
        assert percent(fraction) == expected

    def test_count_with_share(self):
        assert count_with_share(30_100_000, 318_000_000) == "30.1M (9.47%)"


class TestRenderTable:
    def test_alignment_and_rule(self):
        output = render_table(
            ["name", "count"], [["alpha", "10"], ["b", "2000"]], title="demo"
        )
        lines = output.splitlines()
        assert lines[0] == "demo"
        assert "-" in lines[2]
        assert lines[3].startswith("alpha")
        # Numeric column right-aligned.
        assert lines[3].endswith("10")


class TestLogfile:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "log-0.txt")
        entries = [(addr.parse("2001:db8::1"), 5), (addr.parse("2a00::2"), 1)]
        logfile.write_daily_log(path, 17, entries)
        day, loaded = logfile.read_daily_log(path)
        assert day == 17
        assert loaded == entries

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as handle:
            handle.write("2001:db8::1 5\nnot-an-address 3\n")
        with pytest.raises(logfile.LogFormatError, match="bad.txt:2"):
            logfile.read_daily_log(path)

    def test_bad_hit_count(self, tmp_path):
        path = str(tmp_path / "bad2.txt")
        with open(path, "w") as handle:
            handle.write("2001:db8::1 five\n")
        with pytest.raises(logfile.LogFormatError):
            logfile.read_daily_log(path)

    def test_store_roundtrip(self, tmp_path):
        store = ObservationStore()
        store.add_day(3, [addr.parse("2001:db8::1")], hits=[7])
        store.add_day(4, [addr.parse("2001:db8::2")])
        paths = logfile.save_store(store, str(tmp_path))
        assert len(paths) == 2
        loaded = logfile.load_store(paths)
        assert loaded.days() == [3, 4]
        assert loaded.get(3).hits.tolist() == [7]

    def test_missing_day_header_takes_sequence(self, tmp_path):
        path = str(tmp_path / "plain.txt")
        with open(path, "w") as handle:
            handle.write("2001:db8::1 1\n")
        store = logfile.load_store([path])
        assert store.days() == [0]


class TestCli:
    def _logs(self, tmp_path):
        store = ObservationStore()
        base = addr.parse("2001:db8::")
        store.add_day(0, [base + 1, base + 2, base + 3])
        store.add_day(3, [base + 1])
        return logfile.save_store(store, str(tmp_path))

    def test_census(self, tmp_path, capsys):
        assert main_census(self._logs(tmp_path)) == 0
        output = capsys.readouterr().out
        assert "Other addresses" in output

    def test_stability(self, tmp_path, capsys):
        paths = self._logs(tmp_path)
        assert main_stability(paths + ["--reference", "0", "-n", "3"]) == 0
        output = capsys.readouterr().out
        assert "3d-stable" in output
        assert "1 (33.3%)" in output

    def test_mra(self, tmp_path, capsys):
        assert main_mra(self._logs(tmp_path) + ["--title", "cli-test"]) == 0
        output = capsys.readouterr().out
        assert "cli-test" in output
        assert "single bits" in output

    def test_dense(self, tmp_path, capsys):
        assert main_dense(self._logs(tmp_path) + ["--density", "2@/112", "--show", "2"]) == 0
        output = capsys.readouterr().out
        assert "2 @ /112" in output
        assert "dense prefixes" in output

    def test_dense_bad_class(self, tmp_path):
        with pytest.raises(SystemExit):
            main_dense(self._logs(tmp_path) + ["--density", "nonsense"])

    def test_no_input_errors(self):
        with pytest.raises(SystemExit):
            main_census([])

    def test_simulate_path(self, capsys):
        assert main_census(["--simulate", "0.02", "--seed", "3"]) == 0
        assert "Census" in capsys.readouterr().out
