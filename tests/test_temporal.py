"""Unit tests for repro.core.temporal: stability classification (§5.1)."""

import pytest

from repro.core.temporal import (
    classify_day,
    classify_week,
    cross_epoch_stable,
    stability_table,
    window_series,
)
from repro.data import store as obstore
from repro.data.store import ObservationStore


def make_store(schedule):
    """Build a store from {day: [addresses]}."""
    store = ObservationStore()
    for day, addresses in schedule.items():
        store.add_day(day, addresses)
    return store


class TestPaperDefinition:
    """The paper's worked definitions: March 17/18/19 examples."""

    def test_consecutive_days_is_1d_stable(self):
        # Seen March 17 and 18 (no intervening days): 1d-stable only.
        store = make_store({17: [1], 18: [1]})
        result = classify_day(store, 17)
        assert result.stable_count(1) == 1
        assert result.stable_count(2) == 0

    def test_one_intervening_day_is_2d_stable(self):
        # Seen March 17 and 19 (one intervening day): 2d- and 1d-stable.
        store = make_store({17: [1], 19: [1]})
        result = classify_day(store, 17)
        assert result.stable_count(2) == 1
        assert result.stable_count(1) == 1  # classes are nested
        assert result.stable_count(3) == 0

    def test_nd_stable_implies_n_minus_1d_stable(self):
        store = make_store({10: [1], 15: [1]})
        result = classify_day(store, 10)
        for n in range(1, 6):
            assert result.stable_count(n) == 1
        assert result.stable_count(6) == 0

    def test_single_sighting_not_stable(self):
        store = make_store({17: [1]})
        result = classify_day(store, 17)
        assert result.stable_count(1) == 0
        assert result.not_stable(1).shape[0] == 1


class TestWindow:
    def test_observations_outside_window_ignored(self):
        # Active on day 0 and day 20; a (-7,+7) window around day 0
        # cannot see day 20.
        store = make_store({0: [1], 20: [1]})
        result = classify_day(store, 0)
        assert result.stable_count(1) == 0

    def test_pair_need_not_include_reference_day(self):
        # Active on the reference day, and on days -7 and +7: the
        # 14-day gap between the outer days counts.
        store = make_store({0: [1], -7: [1], 7: [1]})
        result = classify_day(store, 0)
        assert result.stable_count(14) == 1

    def test_asymmetric_window(self):
        store = make_store({0: [1], 5: [1]})
        result = classify_day(store, 0, window_before=0, window_after=3)
        assert result.stable_count(1) == 0
        result = classify_day(store, 0, window_before=0, window_after=7)
        assert result.stable_count(5) == 1

    def test_negative_window_rejected(self):
        store = make_store({0: [1]})
        with pytest.raises(ValueError):
            classify_day(store, 0, window_before=-1)

    def test_only_reference_day_addresses_classified(self):
        store = make_store({0: [1], 1: [1, 2], 4: [2]})
        result = classify_day(store, 0)
        # Address 2 is 3d-stable across days 1..4 but was not active on
        # the reference day, so it is not in this day's census.
        assert result.active_count == 1

    def test_gaps_reflect_extremes(self):
        store = make_store({0: [1], -3: [1], 2: [1]})
        result = classify_day(store, 0)
        assert result.gaps[0] == 5


class TestWeekly:
    def test_union_of_per_day_stable(self):
        # Address 1 is 3d-stable as seen from day 0 (also on day 3);
        # address 2 is 3d-stable as seen from day 3 (also on day 6);
        # address 3 is never stable.
        store = make_store(
            {0: [1, 3], 3: [1, 2], 6: [2]}
        )
        weekly = classify_week(store, [0, 1, 2, 3, 4, 5, 6], 3)
        assert weekly.stable_count == 2
        assert weekly.active_count == 3
        assert weekly.not_stable_count == 1

    def test_weekly_fraction(self):
        store = make_store({0: [1, 2], 3: [1]})
        weekly = classify_week(store, [0, 1, 2, 3], 3)
        assert weekly.stable_fraction == pytest.approx(0.5)

    def test_empty_week(self):
        weekly = classify_week(make_store({}), [0, 1], 3)
        assert weekly.active_count == 0
        assert weekly.stable_fraction == 0.0


class TestCrossEpoch:
    def test_intersection(self):
        now = obstore.to_array([1, 2, 3])
        earlier = obstore.to_array([2, 4])
        assert obstore.from_array(cross_epoch_stable(now, earlier)) == [2]


class TestWindowSeries:
    def test_figure4_shape(self):
        store = make_store({0: [1, 2, 3], 1: [1, 9], 2: [2]})
        series = window_series(store, 0, window_before=1, window_after=2)
        assert series.days == [-1, 0, 1, 2]
        assert series.active_counts == [0, 3, 2, 1]
        assert series.common_counts == [0, 3, 1, 1]

    def test_reference_day_common_equals_active(self):
        store = make_store({5: [1, 2]})
        series = window_series(store, 5, 2, 2)
        index = series.days.index(5)
        assert series.common_counts[index] == series.active_counts[index] == 2


class TestStabilityTable:
    def test_full_column(self):
        # Reference day 100; address 1 stable, 2 ephemeral; earlier epoch
        # at day 50 shares address 1.
        store = make_store(
            {
                50: [1],
                100: [1, 2],
                103: [1],
                104: [5],
            }
        )
        table = stability_table(
            store,
            "test",
            100,
            n=3,
            week_length=7,
            earlier_epochs={"6m-stable (-6m)": 50},
        )
        assert table.daily_active == 2
        assert table.daily_stable == 1
        assert table.daily_not_stable == 1
        assert table.weekly_active == 3
        assert table.weekly_stable == 1
        assert table.cross_epoch_daily["6m-stable (-6m)"] == 1
        assert table.cross_epoch_weekly["6m-stable (-6m)"] == 1

    def test_works_on_truncated_store(self):
        from repro.net import addr

        base = addr.parse("2001:db8:1:2::")
        store = make_store(
            {
                100: [base + 0x1111],
                103: [base + 0x2222],
            }
        )
        table_addresses = stability_table(store, "addrs", 100, n=3)
        table_64s = stability_table(store.truncated(64), "/64s", 100, n=3)
        # The address churns, but its /64 is 3d-stable.
        assert table_addresses.daily_stable == 0
        assert table_64s.daily_stable == 1


class TestClassifyDayRegression:
    """The vectorized classify_day must match the original scalar-dispatch
    implementation (``np.minimum.at``/``np.maximum.at`` over ``nonzero``)
    bit-for-bit on randomized stores."""

    @staticmethod
    def _reference_classify_day(
        observations, reference_day, window_before=7, window_after=7
    ):
        import numpy as np

        active = observations.array(reference_day)
        size = obstore.array_size(active)
        min_day = np.full(size, reference_day, dtype=np.int64)
        max_day = np.full(size, reference_day, dtype=np.int64)
        for day in range(
            reference_day - window_before, reference_day + window_after + 1
        ):
            if day == reference_day or day not in observations:
                continue
            present = obstore.member_mask(active, observations.array(day))
            if day < reference_day:
                np.minimum.at(min_day, np.nonzero(present)[0], day)
            else:
                np.maximum.at(max_day, np.nonzero(present)[0], day)
        return active, max_day - min_day

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_original_on_random_stores(self, seed):
        import random

        import numpy as np

        rng = random.Random(seed)
        store = ObservationStore()
        for day in range(30):
            if rng.random() < 0.2:
                continue
            store.add_day(
                day, [rng.randrange(1, 400) for _ in range(rng.randrange(0, 120))]
            )
        for day in store.days():
            for window in ((7, 7), (3, 0), (0, 3)):
                result = classify_day(store, day, *window)
                active, gaps = self._reference_classify_day(store, day, *window)
                assert np.array_equal(result.active, active)
                assert result.gaps.dtype == gaps.dtype
                assert np.array_equal(result.gaps, gaps)
